# Convenience targets; all assume the repo root as working directory.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-regress bench-regress-update bench

# Tier-1 verification: the fast test suite (bench marker deselected).
test:
	$(PYTHON) -m pytest -x -q

# Compare current kernel timings against the committed BENCH_kernels.json;
# exits non-zero on a >25% regression in any kernel.
bench-regress:
	$(PYTHON) -m benchmarks.bench_regress --check

# Re-time the kernels and rewrite BENCH_kernels.json (commit the result).
bench-regress-update:
	$(PYTHON) -m benchmarks.bench_regress

# The full pytest-benchmark micro-bench suite (slow, informational).
bench:
	$(PYTHON) -m pytest benchmarks/bench_kernels.py --benchmark-only -q
