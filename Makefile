# Convenience targets; all assume the repo root as working directory.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-numba test-chaos serve-smoke bench-regress \
        bench-regress-update bench bench-e2e bench-e2e-update \
        bench-e2e-smoke bench-serve bench-serve-update install-numba

# Tier-1 verification: the fast test suite (bench/chaos deselected).
test:
	$(PYTHON) -m pytest -x -q

# Fault-injection suite for the hardened execution layer: injected
# crashes (real SIGKILLs), hangs vs the watchdog, exceptions, shm-attach
# failures, and poisoned results, across every execution backend.
# Opt-in — it deliberately kills and rebuilds worker pools.
test-chaos:
	$(PYTHON) -m pytest -m chaos -q

# Serving smoke: boot a real `repro-partition serve` daemon, submit
# p in {2, 4} over both algorithms, verify a cache hit on resubmission,
# and drain it cleanly with SIGTERM.  Completion-gated only — no wall
# clock (see docs/serving.md).
serve-smoke:
	$(PYTHON) -m benchmarks.bench_serve --smoke

# Install the optional numba JIT (see setup.py extras) and run the suite
# with the JIT path exercised end to end.  The tests auto-detect numba:
# when it is importable, "auto" resolves to the JIT backend everywhere
# and the numba-marked equivalence tests stop being interpreted-only.
install-numba:
	$(PYTHON) -m pip install numba

test-numba: install-numba test

# Compare current kernel timings against the committed BENCH_kernels.json;
# exits non-zero on a >25% regression in any kernel.
bench-regress:
	$(PYTHON) -m benchmarks.bench_regress --check

# Re-time the kernels and rewrite BENCH_kernels.json (commit the result).
bench-regress-update:
	$(PYTHON) -m benchmarks.bench_regress

# Compare current *end-to-end pipeline* timings (split -> partition ->
# refine -> volume -> vector distribution -> verified SpMV, serial sweep)
# against the committed BENCH_e2e.json; exits non-zero on a >50%
# regression (whole-pipeline wall clock is noisier than kernel timings).
bench-e2e:
	$(PYTHON) -m benchmarks.bench_e2e --check

# Re-time the full pipeline (serial + parallel sweep + frozen pre-PR
# baseline) and rewrite BENCH_e2e.json (commit the result).
bench-e2e-update:
	$(PYTHON) -m benchmarks.bench_e2e

# CI smoke for the execution layer: tiny instances, every kernel x
# execution backend with --jobs 2, gated on completion + bit-identity
# only (never on wall clock — CI runners are noisy).
bench-e2e-smoke:
	$(PYTHON) -m benchmarks.bench_e2e --smoke --jobs 2

# Re-measure the serving tier against its gates (cache hits >= 20x
# faster than cold; saturation p99 under 10% injected worker crashes
# <= 3x fault-free); exits non-zero when a gate fails.
bench-serve:
	$(PYTHON) -m benchmarks.bench_serve --check

# Re-time the serving tier and rewrite BENCH_serve.json (commit it).
bench-serve-update:
	$(PYTHON) -m benchmarks.bench_serve

# The full pytest-benchmark micro-bench suite (slow, informational).
bench:
	$(PYTHON) -m pytest benchmarks/bench_kernels.py --benchmark-only -q
