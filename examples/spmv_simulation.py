#!/usr/bin/env python3
"""Why partitioning matters: simulate parallel SpMV under different
partitionings of the same matrix.

Takes an arrow matrix (dense first row + column — the classic hard case
for 1D methods), partitions it four ways (naive block split, row-net,
localbest, medium-grain + IR), and simulates the 4-step BSP SpMV for each,
reporting words moved, message counts, BSP cost, and the verified result.

Run:  python examples/spmv_simulation.py
"""

import numpy as np

from repro import bipartition, communication_volume
from repro.sparse.generators import arrow
from repro.spmv import simulate_spmv


def naive_block_parts(matrix) -> np.ndarray:
    """Split the nonzeros by column index (a 1D block distribution with no
    intelligence at all)."""
    return (matrix.cols >= matrix.ncols // 2).astype(np.int64)


def main() -> None:
    matrix = arrow(400, 1, seed=3)
    print(f"arrow matrix: {matrix.nrows} x {matrix.ncols}, "
          f"nnz = {matrix.nnz}\n")
    v = np.linspace(1.0, 2.0, matrix.ncols)
    reference = matrix.matvec(v)

    candidates = {}
    candidates["naive-block"] = naive_block_parts(matrix)
    for method, refine in (
        ("rownet", False),
        ("localbest", False),
        ("mediumgrain", True),
    ):
        res = bipartition(matrix, method=method, refine=refine, seed=5)
        candidates[res.method] = res.parts

    print(f"{'partitioning':18s} {'volume':>7s} {'fan-out':>8s} "
          f"{'fan-in':>7s} {'msgs':>5s} {'BSP h':>6s}")
    for name, parts in candidates.items():
        report = simulate_spmv(matrix, parts, 2, v)
        assert np.allclose(report.result, reference)  # verified every time
        assert report.volume == communication_volume(matrix, parts)
        msgs = report.messages_fanout + report.messages_fanin
        print(f"{name:18s} {report.volume:7d} {report.words_fanout:8d} "
              f"{report.words_fanin:7d} {msgs:5d} {report.bsp.cost:6d}")

    print("\nAll four simulations produced the exact sequential result;")
    print("the 2D medium-grain partitioning moves far fewer words than")
    print("any 1D split of this matrix — the paper's motivating effect.")


if __name__ == "__main__":
    main()
