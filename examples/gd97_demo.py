#!/usr/bin/env python3
"""The paper's Fig. 3 walk-through, step by step.

Reproduces the medium-grain pipeline on the gd97-like matrix (the built-in
stand-in for the UF matrix ``gd97_b``: 47 x 47, 264 nonzeros, symmetric):

1. Algorithm-1 split ``A = Ar + Ac``;
2. the composite matrix ``B`` of eqn (4) (dummies included) and the reduced
   hypergraph actually partitioned;
3. hypergraph bipartitioning and the eqn-(5) mapping back to nonzeros;
4. comparison of the best volumes found by the row-net, column-net,
   fine-grain, and medium-grain methods over many runs, as in the Fig. 3
   caption.

Run:  python examples/gd97_demo.py
"""

import numpy as np

from repro import bipartition, communication_volume
from repro.core.medium_grain import assemble_b_matrix, build_medium_grain
from repro.core.split import initial_split
from repro.hypergraph.metrics import connectivity_volume
from repro.partitioner import bipartition_hypergraph
from repro.sparse.generators import gd97_like
from repro.utils.rng import spawn_seeds

RUNS = 40  # the paper uses 100; 40 keeps the demo quick


def main() -> None:
    a = gd97_like()
    print(f"A: {a.nrows} x {a.ncols}, {a.nnz} nonzeros (gd97_b-like)")

    # -- step 1: Algorithm 1 ------------------------------------------- #
    split = initial_split(a, seed=7)
    n_ar = int(split.ar_mask.sum())
    print(f"\nAlgorithm-1 split: |Ar| = {n_ar}, |Ac| = {a.nnz - n_ar}")

    # -- step 2: the composite matrix B and its hypergraph -------------- #
    b = assemble_b_matrix(split)
    inst = build_medium_grain(split)
    h = inst.hypergraph
    print(f"B (eqn 4): {b.nrows} x {b.ncols}, {b.nnz} entries "
          f"({a.nnz} real + {b.nnz - a.nnz} dummy diagonal)")
    print(f"medium-grain hypergraph: {h.nverts} vertices, {h.nnets} nets "
          f"(vs m + n = {a.nrows + a.ncols}, "
          f"vs fine-grain's N = {a.nnz} vertices)")

    # -- step 3: partition B's columns, map back to A -------------------- #
    hres = bipartition_hypergraph(h, eps=0.03, seed=7)
    parts = inst.nonzero_parts(hres.parts)
    vol = communication_volume(a, parts)
    print(f"\none medium-grain run: hypergraph cut = {hres.cut}, "
          f"matrix volume = {vol} (equal by eqn (6))")
    assert hres.cut == vol
    sizes = np.bincount(parts, minlength=2)
    print(f"part sizes = {sizes.tolist()} (eps = 0.03 allows "
          f"max {int(1.03 * a.nnz / 2)})")

    # -- step 4: method comparison, best of RUNS ------------------------ #
    print(f"\nbest volume over {RUNS} runs (cf. the paper's Fig. 3 caption,"
          " where medium-grain found the optimum 11 for gd97_b while the"
          " 1D models found 31):")
    seeds = spawn_seeds(1997, RUNS)
    for method in ("rownet", "colnet", "finegrain", "mediumgrain"):
        vols = [
            bipartition(a, method=method, seed=s).volume for s in seeds
        ]
        vols_ir = [
            bipartition(a, method=method, refine=True, seed=s).volume
            for s in seeds
        ]
        print(f"  {method:12s} best = {min(vols):3d}  "
              f"(mean {np.mean(vols):6.2f})   "
              f"+IR best = {min(vols_ir):3d}  "
              f"(mean {np.mean(vols_ir):6.2f})")


if __name__ == "__main__":
    main()
