#!/usr/bin/env python3
"""The paper's Section-V extension: the full iterative method.

Algorithm 2 refines locally (single-level FM per iteration); the paper's
closing section proposes going further — re-running the *entire multilevel
medium-grain partitioner* on the re-encoded problem each iteration,
trading computation time for solution quality.  This example shows the
trade-off on a power-law matrix, then demonstrates the equal
input/output vector distribution (the constraint iterative linear solvers
impose) and its extra-communication cost.

Run:  python examples/iterative_method.py
"""

from repro import bipartition, full_iterative_bipartition, load_instance
from repro.core.volume import volume_breakdown
from repro.spmv import distribute_vectors, expected_phase_words


def main() -> None:
    matrix = load_instance("sqr_cl_m")  # 1800 x 1800 power-law, 7200 nnz
    print(f"matrix: {matrix.nrows} x {matrix.ncols}, nnz = {matrix.nnz}\n")

    baseline = bipartition(
        matrix, method="mediumgrain", refine=True, seed=12
    )
    print(f"{'method':>22s} {'volume':>7s} {'time':>8s}")
    print(f"{'MG+IR (paper)':>22s} {baseline.volume:7d} "
          f"{baseline.seconds:7.2f}s")
    for iters in (0, 2, 4, 8):
        res = full_iterative_bipartition(matrix, iterations=iters, seed=12)
        print(f"{f'full-iterative({iters})':>22s} {res.volume:7d} "
              f"{res.seconds:7.2f}s   best-so-far {res.volumes}")

    # ------------------------------------------------------------------ #
    # Equal input/output vector distribution (iterative solvers).
    # ------------------------------------------------------------------ #
    parts = baseline.parts
    vb = volume_breakdown(matrix, parts)
    free = distribute_vectors(matrix, parts, 2)
    eq = distribute_vectors(matrix, parts, 2, equal=True)
    f_out, f_in = expected_phase_words(matrix, parts, free)
    e_out, e_in = expected_phase_words(matrix, parts, eq)
    print("\nvector distribution (same partitioning):")
    print(f"  independent  : {f_out + f_in} words "
          f"(= eqn-(3) volume {vb.total})")
    print(f"  equal in/out : {e_out + e_in} words "
          f"(+{e_out + e_in - vb.total} surplus — the paper's caveat for "
          "matrices with missing diagonal entries)")


if __name__ == "__main__":
    main()
