#!/usr/bin/env python3
"""Quickstart: bipartition a sparse matrix with the medium-grain method.

Covers the core workflow of the library in ~40 lines:

1. get a matrix (here: a named instance of the built-in collection;
   ``read_matrix_market`` works the same way for .mtx files);
2. bipartition it with the paper's method (+ iterative refinement);
3. inspect volume / balance / timing;
4. verify the result with the distributed-SpMV simulator.

Run:  python examples/quickstart.py
"""

from repro import bipartition, load_instance
from repro.spmv import simulate_spmv


def main() -> None:
    # A structurally symmetric 1444 x 1444 grid Laplacian, 7068 nonzeros.
    matrix = load_instance("sym_grid2d_m")
    print(f"matrix: {matrix.nrows} x {matrix.ncols}, nnz = {matrix.nnz}")

    # The paper's headline configuration: medium-grain + iterative
    # refinement at load imbalance eps = 0.03.
    result = bipartition(
        matrix,
        method="mediumgrain",
        eps=0.03,
        refine=True,
        seed=42,
    )
    print(f"method             : {result.method}")
    print(f"communication vol  : {result.volume} words")
    print(f"part sizes         : {result.max_part} max "
          f"(imbalance {result.imbalance:.4f}, feasible={result.feasible})")
    print(f"partitioning time  : {result.seconds:.3f} s")
    if result.refinement:
        print(f"IR volume trace    : {result.refinement.volumes}")

    # Ground-truth check: actually run the 4-step parallel SpMV and count
    # every communicated word.
    report = simulate_spmv(matrix, result.parts, 2)
    assert report.volume == result.volume
    print(f"simulated SpMV     : {report.words_fanout} fan-out words + "
          f"{report.words_fanin} fan-in words "
          f"(= analytic volume, result verified)")
    print(f"BSP cost           : {report.bsp.cost} "
          f"(h_fanout={report.bsp.h_fanout}, h_fanin={report.bsp.h_fanin})")


if __name__ == "__main__":
    main()
