#!/usr/bin/env python3
"""Recursive bisection to many parts (the paper's p = 64 experiments).

Partitions a 3D grid Laplacian into p = 2, 4, ..., 64 parts with the
medium-grain method + iterative refinement, shows how volume and imbalance
scale with p, and verifies each partitioning with the SpMV simulator.

Run:  python examples/pway_partition.py
"""

from repro import partition, load_instance
from repro.core.volume import max_allowed_part_size
from repro.spmv import simulate_spmv


def main() -> None:
    matrix = load_instance("sym_grid3d_m")  # 1331 x 1331, ~8.6k nonzeros
    print(f"matrix: {matrix.nrows} x {matrix.ncols}, nnz = {matrix.nnz}")
    print(f"{'p':>3s} {'volume':>7s} {'max part':>9s} {'ceiling':>8s} "
          f"{'imbalance':>9s} {'BSP cost':>8s} {'time':>7s}")
    p = 2
    while p <= 64:
        res = partition(
            matrix, p, method="mediumgrain", refine=True, eps=0.03, seed=64
        )
        assert res.feasible, f"balance violated at p={p}"
        report = simulate_spmv(matrix, res.parts, p)
        assert report.volume == res.volume
        ceiling = max_allowed_part_size(matrix.nnz, p, 0.03)
        print(f"{p:3d} {res.volume:7d} {res.max_part:9d} {ceiling:8d} "
              f"{res.imbalance:9.4f} {report.bsp.cost:8d} "
              f"{res.seconds:6.2f}s")
        p *= 2
    print("\nEvery level satisfied the global eqn-(1) constraint; the")
    print("volume grows with p while per-part work shrinks — the")
    print("communication/parallelism trade-off the paper optimizes.")


if __name__ == "__main__":
    main()
