#!/usr/bin/env python3
"""A miniature of the paper's main experiment (Fig. 4 / Table I).

Runs the six methods (LB, LB+IR, MG, MG+IR, FG, FG+IR) over the small tier
of the built-in collection, prints the normalized geometric means and an
ASCII Dolan–Moré performance profile — the same analysis pipeline the
benchmark harness uses at full scale.

Run:  python examples/method_comparison.py            (~30 s)
      python examples/method_comparison.py --jobs 4   (parallel sweep;
      bit-identical results, faster on multi-core machines — same as the
      CLI's `repro-partition experiment ... --jobs 4`)
"""

import argparse

from repro.eval.geomean import normalized_geomeans
from repro.eval.profiles import performance_profile
from repro.eval.report import ascii_profile_chart
from repro.eval.runner import PAPER_METHODS, run_methods
from repro.sparse.collection import build_collection


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=1,
                        help="sweep worker processes (0 = CPU count)")
    args = parser.parse_args()
    entries = build_collection(tier="small")
    print(f"running {len(PAPER_METHODS)} methods x {len(entries)} matrices "
          f"(small tier) x 2 runs (jobs={args.jobs}) ...")
    data = run_methods(
        entries, PAPER_METHODS, nruns=2, base_seed=2014, jobs=args.jobs
    )

    volumes = data.mean_metric("volume")
    times = data.mean_metric("seconds")

    vol_means, n = normalized_geomeans(volumes, "LB")
    time_means, _ = normalized_geomeans(times, "LB")
    print(f"\nnormalized geometric means over {n} matrices "
          f"(LB = 1.00, lower is better):")
    print(f"{'method':>7s} {'volume':>8s} {'time':>7s}")
    for label in volumes:
        print(f"{label:>7s} {vol_means[label]:8.2f} "
              f"{time_means[label]:7.2f}")

    profile = performance_profile(volumes, max_tau=2.0)
    print()
    print(ascii_profile_chart(
        profile, "Communication volume relative to best (small tier)"
    ))
    print("\nThe paper's ordering (MG+IR lowest volume, MG fastest) should")
    print("be visible even at this miniature scale; the benchmarks under")
    print("benchmarks/ run the same pipeline on the full collection.")


if __name__ == "__main__":
    main()
