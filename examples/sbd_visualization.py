#!/usr/bin/env python3
"""Visualize a 2D partitioning: spy plots and SBD reordering.

Draws the paper's Fig. 2/3-style pictures in plain text: the partitioned
matrix with each nonzero's part, then the separated block-diagonal (SBD)
permutation of the same matrix, where each part's private rows/columns
form a diagonal block and the cut lines gather into separator cross-bars
— communication made visible.

Also checks the medium-grain result against the *provably optimal* volume
from the exact branch-and-bound solver on a tiny instance (the role
ref. [19] plays for gd97_b in the paper's Fig. 3).

Run:  python examples/sbd_visualization.py
"""

import numpy as np

from repro import bipartition, exact_bipartition
from repro.core.sbd import ascii_spy, sbd_order
from repro.sparse.generators import block_diagonal, gd97_like
from repro.sparse.matrix import SparseMatrix


def main() -> None:
    # ------------------------------------------------------------------ #
    # A clustered matrix: partition, then show raw vs SBD-reordered.
    # ------------------------------------------------------------------ #
    a = block_diagonal(2, 14, 0.45, noise_nnz=24, seed=5)
    res = bipartition(a, method="mediumgrain", refine=True, seed=8)
    print(f"matrix {a.nrows} x {a.ncols}, nnz = {a.nnz}, "
          f"volume = {res.volume}\n")
    print("partitioned pattern (digits = part, # = mixed display cell):")
    print(ascii_spy(a, res.parts, 2, width=28, height=28))

    rp, cp = sbd_order(a, res.parts, 2)
    b = a.permuted(rp, cp)
    order = np.lexsort((cp[a.cols], rp[a.rows]))
    print("\nSBD-reordered: part-0 block, separator cross, part-1 block:")
    print(ascii_spy(b, res.parts[order], 2, width=28, height=28))

    # ------------------------------------------------------------------ #
    # Exact optimum on a tiny matrix (the paper's ref [19] workflow).
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(4)
    cells = set()
    while len(cells) < 24:
        cells.add((int(rng.integers(0, 8)), int(rng.integers(0, 8))))
    tiny = SparseMatrix(
        (8, 8),
        np.array([c[0] for c in cells]),
        np.array([c[1] for c in cells]),
    )
    mg = bipartition(tiny, method="mediumgrain", refine=True, seed=1)
    opt = exact_bipartition(tiny, eps=0.03, initial_incumbent=mg.parts)
    print(f"\ntiny 8x8 with {tiny.nnz} nonzeros:")
    print(f"  medium-grain + IR volume : {mg.volume}")
    print(f"  provably optimal volume  : {opt.volume} "
          f"({opt.nodes} B&B nodes, {opt.seconds:.3f} s)")
    assert mg.volume >= opt.volume


if __name__ == "__main__":
    main()
