"""Canned experiment definitions — one per paper table/figure.

Each ``run_*`` function regenerates the corresponding artifact over the
synthetic collection: it executes the paper's protocol via
:mod:`repro.eval.runner`, renders the same rows/series the paper reports
(ASCII chart + markdown table), and optionally writes CSV files.  The
benchmark modules under ``benchmarks/`` are thin wrappers around these.

Artifact map (see DESIGN.md Section 5):

========  ===========================================================
fig3      medium-grain walk-through on the gd97-like matrix
fig4a–d   volume profiles, 6 methods, internal partitioner, p = 2
fig5      partitioning-time profile, same runs
table1    normalized geometric means (volume & time) per class
fig6a/b   volume profiles under the "patoh" preset, p = 2 and p = 64
table2    volume & BSP-cost geometric means, p = 2 and p = 64
========  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.methods import bipartition
from repro.core.split import initial_split
from repro.core.medium_grain import assemble_b_matrix, build_medium_grain
from repro.eval.geomean import normalized_geomeans
from repro.eval.profiles import PerformanceProfile, performance_profile
from repro.eval.report import (
    PWAY_COLUMNS,
    ascii_profile_chart,
    format_float,
    markdown_table,
    pway_rows,
    pway_table,
    write_csv,
)
from repro.eval.runner import (
    PAPER_METHODS,
    ExperimentData,
    MethodSpec,
    run_methods,
)
from repro.sparse.collection import build_collection
from repro.sparse.generators import gd97_like
from repro.utils.rng import spawn_seeds

__all__ = [
    "ExperimentReport",
    "run_fig3_demo",
    "collect_paper_runs",
    "collect_kway_runs",
    "run_fig4_profiles",
    "run_fig5_time_profile",
    "run_table1_geomeans",
    "run_fig6_profiles",
    "run_table2_geomeans",
    "CLASS_ORDER",
]

CLASS_ORDER = ("Rec", "Sym", "Sqr")
_REFERENCE = "LB"  # paper normalizes by localbest without IR


@dataclass
class ExperimentReport:
    """Rendered output of one experiment."""

    name: str
    text: str
    tables: dict[str, list[list[object]]] = field(default_factory=dict)
    profiles: dict[str, PerformanceProfile] = field(default_factory=dict)
    data: Optional[ExperimentData] = None

    def write(self, out_dir: str | Path) -> None:
        """Persist the text report and CSV series under ``out_dir``."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{self.name}.txt").write_text(self.text, encoding="utf-8")
        for key, rows in self.tables.items():
            if rows:
                write_csv(
                    out / f"{self.name}_{key}.csv",
                    [str(c) for c in rows[0]],
                    rows[1:],
                )


# --------------------------------------------------------------------- #
# Fig. 3 — qualitative walk-through
# --------------------------------------------------------------------- #
def run_fig3_demo(nruns: int = 25, seed: int = 1997) -> ExperimentReport:
    """Medium-grain walk-through on the gd97-like matrix (paper Fig. 3).

    Reports the split sizes, the reduced-B/hypergraph dimensions, and the
    best volume over ``nruns`` runs for the row-net, column-net,
    fine-grain, and medium-grain methods (the quantities the Fig. 3
    caption reports for gd97_b).
    """
    a = gd97_like()
    split = initial_split(a, seed=seed)
    instance = build_medium_grain(split)
    b = assemble_b_matrix(split)
    lines = [
        "Fig. 3 walk-through (gd97-like stand-in for gd97_b)",
        f"  A: {a.nrows} x {a.ncols}, {a.nnz} nonzeros",
        f"  split: |Ar| = {int(split.ar_mask.sum())}, "
        f"|Ac| = {int(split.ac_mask.sum())}",
        f"  B: {b.nrows} x {b.ncols}, {b.nnz} nonzeros "
        f"({a.nnz} real + {b.nnz - a.nnz} dummies)",
        f"  medium-grain hypergraph: {instance.hypergraph.nverts} vertices "
        f"(<= m+n = {a.nrows + a.ncols}), {instance.hypergraph.nnets} nets",
        f"  best volume over {nruns} runs (eps = 0.03):",
    ]
    rows: list[list[object]] = [["method", "best_volume", "mean_volume"]]
    seeds = spawn_seeds(seed, nruns)
    for method in ("rownet", "colnet", "finegrain", "mediumgrain"):
        for refine in (False, True):
            vols = [
                bipartition(a, method=method, refine=refine, seed=s).volume
                for s in seeds
            ]
            label = method + ("+ir" if refine else "")
            lines.append(
                f"    {label:16s} best = {min(vols):3d}   "
                f"mean = {np.mean(vols):6.2f}"
            )
            rows.append([label, min(vols), float(np.mean(vols))])
    return ExperimentReport(
        name="fig3", text="\n".join(lines), tables={"volumes": rows}
    )


# --------------------------------------------------------------------- #
# Shared sweep for Figs. 4–5 and Table I
# --------------------------------------------------------------------- #
_sweep_cache: dict[tuple, ExperimentData] = {}


def collect_paper_runs(
    *,
    tier: str | None = None,
    max_tier: str | None = "medium",
    nruns: int = 2,
    nparts: int = 2,
    config: str = "mondriaan",
    base_seed: int = 2014,
    with_bsp: bool = False,
    min_nnz: int = 0,
    progress: bool = False,
    jobs: "int | None | JobsBudget" = 1,
    backend: str = "auto",
    algo: str = "recursive",
    kway_vcycles: int = 0,
    task_timeout: float | None = None,
    retries: int = 0,
) -> ExperimentData:
    """Run (and memoize) the six-method sweep used by several artifacts.

    ``jobs`` changes only how fast the sweep runs, never its results
    (the parallel sweep is bit-identical to the serial one), so it is
    not part of the memoization key; ``task_timeout`` / ``retries`` (the
    hardened-execution knobs, see ``docs/robustness.md``) never change
    results either and are likewise excluded.  ``backend`` IS part of
    the key: volumes are bit-compatible across backends, but the
    recorded ``seconds`` — a first-class metric (Fig. 5, Table I) —
    depends systematically on which backend ran.  ``algo`` (the p-way
    scheme for ``nparts > 2``) and ``kway_vcycles`` (flat vs multilevel
    direct k-way) change results outright, so they are part of the key
    too.
    """
    key = (
        tier, max_tier, nruns, nparts, config, base_seed, with_bsp,
        min_nnz, backend, algo, kway_vcycles,
    )
    if key in _sweep_cache:
        return _sweep_cache[key]
    entries = build_collection(tier=tier, max_tier=max_tier)
    if min_nnz:
        from repro.sparse.collection import load_instance

        entries = [
            e for e in entries if load_instance(e.name).nnz >= min_nnz
        ]
    data = run_methods(
        entries,
        PAPER_METHODS,
        nruns=nruns,
        nparts=nparts,
        config=config,
        base_seed=base_seed,
        with_bsp=with_bsp,
        progress=progress,
        jobs=jobs,
        backend=backend,
        algo=algo,
        kway_vcycles=kway_vcycles,
        task_timeout=task_timeout,
        retries=retries,
    )
    _sweep_cache[key] = data
    return data


#: Method-family columns of the Table-II k-way comparison: the direct
#: k-way partitioner, flat and multilevel.  ``KWAY_ML_VCYCLES`` matches
#: the BENCH ``kway-ml`` stage (one full multilevel construction).
KWAY_ML_VCYCLES = 1
KWAY_FAMILIES: tuple[tuple[str, int], ...] = (
    ("kway", 0),
    ("kway+ml", KWAY_ML_VCYCLES),
)


def collect_kway_runs(
    *,
    max_tier: str | None = "medium",
    nparts: int = 64,
    base_seed: int = 2014,
    with_bsp: bool = True,
    min_nnz: int = 6400,
    progress: bool = False,
    jobs: "int | None | JobsBudget" = 1,
    backend: str = "auto",
    task_timeout: float | None = None,
    retries: int = 0,
) -> dict[str, ExperimentData]:
    """Mediumgrain p-way runs under the direct k-way families.

    One sweep per :data:`KWAY_FAMILIES` entry — the ``kway`` (flat) and
    ``kway+ml`` (multilevel) method-family columns of the Table-II
    comparison — restricted to the mediumgrain method so the extra cost
    stays a fraction of the six-method recursive sweep.  Seeds, entries,
    and the PaToH preset match :func:`collect_paper_runs`' p = 64 data,
    so records line up per instance.  Memoized like the paper sweeps.
    """
    key = (
        "kway-families", max_tier, nparts, base_seed, with_bsp,
        min_nnz, backend,
    )
    if key in _sweep_cache:
        return _sweep_cache[key]
    entries = build_collection(max_tier=max_tier)
    if min_nnz:
        from repro.sparse.collection import load_instance

        entries = [
            e for e in entries if load_instance(e.name).nnz >= min_nnz
        ]
    out: dict[str, ExperimentData] = {}
    for label, vcycles in KWAY_FAMILIES:
        out[label] = run_methods(
            entries,
            (MethodSpec(label, "mediumgrain", False),),
            nruns=1,
            nparts=nparts,
            config="patoh",
            base_seed=base_seed,
            with_bsp=with_bsp,
            progress=progress,
            jobs=jobs,
            backend=backend,
            algo="kway",
            kway_vcycles=vcycles,
            task_timeout=task_timeout,
            retries=retries,
        )
    _sweep_cache[key] = out
    return out


def _profile_report(
    name: str,
    title: str,
    data: ExperimentData,
    metric: str,
    max_tau: float,
    by_class: bool,
) -> ExperimentReport:
    report = ExperimentReport(name=name, text="", data=data)
    sections = [("all", data)]
    if by_class:
        sections += [(cls, data.subset(cls)) for cls in CLASS_ORDER]
    chunks = []
    for label, subset in sections:
        if not subset.records:
            continue
        values = subset.mean_metric(metric)
        profile = performance_profile(values, max_tau=max_tau)
        report.profiles[label] = profile
        chunks.append(
            ascii_profile_chart(profile, f"{title} — {label}")
        )
        rows: list[list[object]] = [["tau"] + list(values)]
        for i, tau in enumerate(profile.taus):
            rows.append(
                [float(tau)]
                + [float(profile.fractions[m][i]) for m in values]
            )
        report.tables[label] = rows
    report.text = "\n\n".join(chunks)
    return report


def run_fig4_profiles(data: ExperimentData) -> ExperimentReport:
    """Fig. 4(a–d): volume profiles for all / Sqr / Sym / Rec classes."""
    return _profile_report(
        "fig4",
        "Communication volume relative to best",
        data,
        metric="volume",
        max_tau=2.0,
        by_class=True,
    )


def run_fig5_time_profile(data: ExperimentData) -> ExperimentReport:
    """Fig. 5: partitioning-time profile over all matrices."""
    return _profile_report(
        "fig5",
        "Partitioning time relative to best",
        data,
        metric="seconds",
        max_tau=6.0,
        by_class=False,
    )


def run_table1_geomeans(data: ExperimentData) -> ExperimentReport:
    """Table I: normalized geometric means of volume and time per class."""
    methods = data.methods()
    header = ["metric", "class"] + methods
    rows: list[list[object]] = [header]
    lines = ["Table I — geometric means relative to LB (internal partitioner)"]
    for metric, label in (("volume", "Com.Vol."), ("seconds", "Time")):
        for cls in CLASS_ORDER + ("All",):
            subset = data if cls == "All" else data.subset(cls)
            if not subset.records:
                continue
            values = subset.mean_metric(metric)
            means, n_used = normalized_geomeans(values, _REFERENCE)
            rows.append(
                [label, cls] + [round(means[m], 3) for m in methods]
            )
            lines.append(
                f"  {label:9s} {cls:4s} "
                + "  ".join(
                    f"{m}={format_float(means[m])}" for m in methods
                )
                + f"   (n={n_used})"
            )
    md = markdown_table(
        rows[0], rows[1:], highlight_min=False
    )
    return ExperimentReport(
        name="table1",
        text="\n".join(lines) + "\n\n" + md,
        tables={"geomeans": rows},
        data=data,
    )


# --------------------------------------------------------------------- #
# Fig. 6 and Table II — "patoh" preset, p = 2 and p = 64
# --------------------------------------------------------------------- #
def run_fig6_profiles(
    data_p2: ExperimentData, data_p64: ExperimentData | None
) -> ExperimentReport:
    """Fig. 6(a,b): volume profiles under the PaToH-preset partitioner."""
    report = ExperimentReport(name="fig6", text="", data=data_p2)
    chunks = []
    for label, data in (("p2", data_p2), ("p64", data_p64)):
        if data is None or not data.records:
            continue
        values = data.mean_metric("volume")
        profile = performance_profile(values, max_tau=2.0)
        report.profiles[label] = profile
        chunks.append(
            ascii_profile_chart(
                profile,
                f"Volume relative to best — patoh preset, {label}",
            )
        )
        rows: list[list[object]] = [["tau"] + list(values)]
        for i, tau in enumerate(profile.taus):
            rows.append(
                [float(tau)]
                + [float(profile.fractions[m][i]) for m in values]
            )
        report.tables[label] = rows
    report.text = "\n\n".join(chunks)
    return report


def run_table2_geomeans(
    data_p2: ExperimentData,
    data_p64: ExperimentData | None,
    data_kway: "dict[str, ExperimentData] | None" = None,
) -> ExperimentReport:
    """Table II: volume and BSP-cost geometric means, p = 2 and p = 64.

    ``data_kway`` (label -> mediumgrain-only runs, see
    :func:`collect_kway_runs`) appends the method-family comparison:
    ``kway`` / ``kway+ml`` columns normalized against the recursive
    ``MG`` baseline, plus the per-record :func:`pway_table` so the
    families are compared in the paper-style table, not just in BENCH
    JSON.
    """
    lines = ["Table II — geometric means relative to LB (patoh preset)"]
    rows: list[list[object]] = []
    header: list[object] | None = None
    for plabel, data in (("2", data_p2), ("64", data_p64)):
        if data is None or not data.records:
            continue
        methods = data.methods()
        if header is None:
            header = ["metric", "p"] + methods
            rows.append(header)
        for metric, label in (("volume", "Vol"), ("bsp", "Cost")):
            values = data.mean_metric(metric)
            means, n_used = normalized_geomeans(values, _REFERENCE)
            rows.append(
                [label, plabel] + [round(means[m], 3) for m in methods]
            )
            lines.append(
                f"  {label:5s} p={plabel:3s} "
                + "  ".join(
                    f"{m}={format_float(means[m])}" for m in methods
                )
                + f"   (n={n_used})"
            )
    md = markdown_table(rows[0], rows[1:]) if rows else ""
    tables = {"geomeans": rows}
    if data_kway and data_p64 is not None and data_p64.records:
        # Method-family comparison: recursive MG vs the direct k-way
        # engines on the same instances/seeds, normalized by MG.
        combined = ExperimentData(
            [r for r in data_p64.records if r.method == "MG"]
            + [r for d in data_kway.values() for r in d.records]
        )
        fam_methods = combined.methods()
        fam_rows: list[list[object]] = [["metric", "p"] + fam_methods]
        lines.append("")
        lines.append(
            "p-way method families — recursive MG vs direct k-way "
            "(geomeans relative to MG):"
        )
        for metric, label in (("volume", "Vol"), ("bsp", "Cost")):
            values = combined.mean_metric(metric)
            means, n_used = normalized_geomeans(values, "MG")
            fam_rows.append(
                [label, "64"] + [round(means[m], 3) for m in fam_methods]
            )
            lines.append(
                f"  {label:5s} p=64  "
                + "  ".join(
                    f"{m}={format_float(means[m])}" for m in fam_methods
                )
                + f"   (n={n_used})"
            )
        md += "\n\n" + markdown_table(fam_rows[0], fam_rows[1:])
        md += "\n\n" + pway_table(combined.records)
        tables["kway_families"] = fam_rows
        tables["kway_pway"] = (
            [list(PWAY_COLUMNS)] + pway_rows(combined.records)
        )
    return ExperimentReport(
        name="table2",
        text="\n".join(lines) + "\n\n" + md,
        tables=tables,
        data=data_p2,
    )
