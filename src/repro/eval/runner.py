"""Experiment runner: (instance x method x seed) sweeps.

The paper's protocol (Section IV): for every matrix, run every method 10
times, record the *average* communication volume and partitioning time,
then compare methods through performance profiles and normalized geometric
means.  :func:`run_methods` reproduces that protocol over the synthetic
collection; the run count is configurable because the pure-Python
partitioner trades speed for fidelity.

Determinism: run ``r`` of any method on any instance uses the seed
``spawn_seeds(base_seed, nruns)[r]`` so experiments are reproducible and
methods face identical randomness.

Execution is delegated to the sweep engine (:mod:`repro.eval.sweep`):
the (instance x method x seed) triple loop becomes a list of
:class:`~repro.eval.sweep.RunSpec` work items executed serially
(``jobs=1``, the reference path) or by a process pool (``jobs>=2``).
Results are bit-identical across ``jobs`` values — only the measured
wall-clock ``seconds`` differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.eval.sweep import build_runspecs, run_sweep
from repro.sparse.collection import CollectionEntry

__all__ = [
    "MethodSpec",
    "RunRecord",
    "ExperimentData",
    "PAPER_METHODS",
    "run_methods",
]


@dataclass(frozen=True)
class MethodSpec:
    """One experiment column: a method plus the IR flag and display label."""

    label: str
    method: str
    refine: bool


#: The six methods of the paper's figures and tables, in display order.
PAPER_METHODS: tuple[MethodSpec, ...] = (
    MethodSpec("LB", "localbest", False),
    MethodSpec("LB+IR", "localbest", True),
    MethodSpec("MG", "mediumgrain", False),
    MethodSpec("MG+IR", "mediumgrain", True),
    MethodSpec("FG", "finegrain", False),
    MethodSpec("FG+IR", "finegrain", True),
)


@dataclass(frozen=True)
class RunRecord:
    """One (instance, method, run) measurement.

    ``volume`` is the connectivity-(λ−1) communication volume for any
    ``nparts``; ``max_part`` / ``imbalance`` carry the eqn-(1) balance
    outcome so p-way comparisons (k-way direct vs recursive bisection)
    report balance first-class instead of only the boolean ``feasible``.

    ``failures`` lists the structured failure briefs (see
    :meth:`repro.errors.ExecutionError.brief`) the hardened execution
    layer recorded while producing this run — retries that eventually
    succeeded, watchdog kills, degraded serial completions.  Empty on an
    untroubled run, and excluded from bit-identity comparisons (like
    ``seconds``, it describes *how* the run went, not its result).
    """

    instance: str
    matrix_class: str  # "Rec" / "Sym" / "Sqr"
    method: str
    seed: int
    nparts: int
    volume: int
    seconds: float
    feasible: bool
    bsp: Optional[int] = None
    max_part: Optional[int] = None
    imbalance: Optional[float] = None
    failures: tuple = ()


@dataclass
class ExperimentData:
    """A sweep's records plus aggregation helpers."""

    records: list[RunRecord] = field(default_factory=list)

    def instances(self) -> list[str]:
        """Instance names in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.instance, None)
        return list(seen)

    def methods(self) -> list[str]:
        """Method labels in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.method, None)
        return list(seen)

    def classes(self) -> dict[str, str]:
        """Instance -> class short name."""
        return {r.instance: r.matrix_class for r in self.records}

    def mean_metric(
        self,
        metric: str,
        instances: Sequence[str] | None = None,
    ) -> dict[str, np.ndarray]:
        """Per-method arrays of run-averaged metrics, instance-aligned.

        ``metric`` is ``"volume"``, ``"seconds"``, or ``"bsp"``.  This is
        the paper's averaging over the 10 runs before profiles/geomeans.
        """
        if metric not in ("volume", "seconds", "bsp"):
            raise EvaluationError(f"unknown metric {metric!r}")
        names = list(instances) if instances is not None else self.instances()
        index = {name: i for i, name in enumerate(names)}
        methods = self.methods()
        sums = {m: np.zeros(len(names)) for m in methods}
        counts = {m: np.zeros(len(names)) for m in methods}
        for r in self.records:
            i = index.get(r.instance)
            if i is None:
                continue
            value = getattr(r, "bsp" if metric == "bsp" else metric)
            if value is None:
                raise EvaluationError(
                    f"record {r.instance}/{r.method} lacks metric {metric!r}"
                )
            sums[r.method][i] += value
            counts[r.method][i] += 1
        out = {}
        for m in methods:
            if (counts[m] == 0).any():
                missing = [
                    names[i] for i in np.flatnonzero(counts[m] == 0)
                ][:3]
                raise EvaluationError(
                    f"method {m!r} has no runs on instances {missing}..."
                )
            out[m] = sums[m] / counts[m]
        return out

    def subset(self, matrix_class: str) -> "ExperimentData":
        """Records restricted to one class short name ('Rec'/'Sym'/'Sqr')."""
        return ExperimentData(
            [r for r in self.records if r.matrix_class == matrix_class]
        )

    def feasible_fraction(self) -> float:
        """Fraction of runs satisfying the eqn-(1) constraint."""
        if not self.records:
            return 1.0
        return sum(r.feasible for r in self.records) / len(self.records)


def run_methods(
    entries: Iterable[CollectionEntry],
    methods: Sequence[MethodSpec] = PAPER_METHODS,
    *,
    nruns: int = 3,
    nparts: int = 2,
    eps: float = 0.03,
    config: str = "mondriaan",
    base_seed: int = 2014,
    with_bsp: bool = False,
    progress: bool = False,
    jobs: "int | None | JobsBudget" = 1,
    backend: str = "auto",
    algo: str = "recursive",
    kway_vcycles: int = 0,
    task_timeout: float | None = None,
    retries: int = 0,
    checkpoint=None,
) -> ExperimentData:
    """Run the paper's protocol over a set of collection entries.

    Parameters
    ----------
    entries:
        Collection entries (see :func:`repro.sparse.build_collection`).
    methods:
        Method columns; default the paper's six.
    nruns:
        Runs per (instance, method); volumes/times are averaged downstream.
    nparts:
        2 for bipartitioning (Figs. 4–6a); 64 for the Fig. 6b / Table II
        recursive-bisection experiments.
    eps:
        Imbalance fraction (paper: 0.03).
    config:
        Partitioner preset ("mondriaan" or "patoh").
    base_seed:
        Root of the deterministic seed tree.
    with_bsp:
        Also compute the Table-II BSP cost per run.
    progress:
        Print one line per instance (useful for the long benches).
    jobs:
        Worker processes; 1 (default) runs serially in this process,
        ``None``/0 uses the CPU count.  A
        :class:`~repro.utils.executor.JobsBudget` splits its total
        between sweep-level workers and recursion-level workers inside
        each p-way run (no nested-pool oversubscription).  Results are
        bit-identical to the serial sweep apart from the measured
        ``seconds``.
    backend:
        Kernel backend for the hot loops (``"auto"`` / ``"python"`` /
        ``"numba"``); bit-compatible, so a speed knob only.
    algo:
        p-way partitioning scheme for ``nparts > 2`` runs:
        ``"recursive"`` bisection (default) or the direct ``"kway"``
        partitioner.  Unlike ``backend`` this changes the results — it
        is the comparison axis of the kway-vs-recursive experiments.
    kway_vcycles:
        Multilevel V-cycle count for ``algo="kway"`` runs (``0`` = the
        flat direct k-way path; ``N >= 1`` = multilevel construction
        plus ``N - 1`` restricted V-cycles).  Result-determining, like
        ``algo``.  Ignored for recursive runs.
    task_timeout / retries:
        Hardened-execution knobs, handed to
        :func:`~repro.eval.sweep.run_sweep` unchanged: per-task deadline
        in seconds and retry budget for crashed / timed-out / invalid
        pool tasks (see ``docs/robustness.md``).  ``None``/``0`` —
        the defaults — preserve the unhardened behavior exactly.
    checkpoint:
        Path of a JSONL journal for crash-resumable sweeps (see
        :func:`~repro.eval.sweep.run_sweep`); ``None`` disables it.

    Returns
    -------
    ExperimentData
    """
    specs = build_runspecs(
        entries,
        methods,
        nruns=nruns,
        nparts=nparts,
        eps=eps,
        config=config,
        base_seed=base_seed,
        with_bsp=with_bsp,
        backend=backend,
        algo=algo,
        kway_vcycles=kway_vcycles,
    )
    data = ExperimentData()
    for record in run_sweep(
        specs, jobs=jobs, progress=progress,
        task_timeout=task_timeout, retries=retries, checkpoint=checkpoint,
    ):
        data.records.append(record)
    return data
