"""Dolan–Moré performance profiles (paper Section IV, Figs. 4–6).

For a set of methods evaluated on a common set of instances, the
performance ratio of method ``m`` on instance ``i`` is

.. code-block:: text

    r[i, m] = value[i, m] / min_m' value[i, m']

and the profile of ``m`` is the fraction of instances with
``r[i, m] <= tau`` as a function of ``tau >= 1``.  Higher curves are
better; the value at ``tau = 1`` is the fraction of instances where the
method is (tied-)best.

Following the paper, instances whose best value is 0 are removed (their
ratio is undefined); a method with value 0 on such an instance would have
been best anyway.  For the *time* profiles no removal ever triggers since
wall-clock times are positive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError

__all__ = ["PerformanceProfile", "performance_ratios", "performance_profile"]


@dataclass(frozen=True)
class PerformanceProfile:
    """A computed profile.

    Attributes
    ----------
    taus:
        Factor axis (``>= 1``).
    fractions:
        ``fractions[label]`` is an array parallel to ``taus`` with the
        fraction of instances within that factor of the best.
    n_instances:
        Number of instances after the zero-best removal.
    dropped:
        Instance indices removed because every method scored 0.
    """

    taus: np.ndarray
    fractions: dict[str, np.ndarray]
    n_instances: int
    dropped: tuple[int, ...]

    def auc(self, label: str) -> float:
        """Area under the profile curve (for scalar ranking in tests)."""
        return float(np.trapezoid(self.fractions[label], self.taus))

    def fraction_at(self, label: str, tau: float) -> float:
        """Profile value of ``label`` at factor ``tau``."""
        idx = int(np.searchsorted(self.taus, tau, side="right")) - 1
        if idx < 0:
            return 0.0
        return float(self.fractions[label][idx])


def performance_ratios(
    values: dict[str, np.ndarray],
) -> tuple[dict[str, np.ndarray], tuple[int, ...]]:
    """Per-instance ratios to the best method; drops all-zero instances.

    Parameters
    ----------
    values:
        ``values[label][i]`` is method ``label``'s (non-negative) metric on
        instance ``i``; all arrays must have equal length.

    Returns
    -------
    (ratios, dropped):
        ``ratios[label][i']`` over the surviving instances, and the indices
        of dropped instances.
    """
    if not values:
        raise EvaluationError("values must contain at least one method")
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in values.items()}
    lengths = {a.size for a in arrays.values()}
    if len(lengths) != 1:
        raise EvaluationError(
            f"all methods must cover the same instances, got sizes {lengths}"
        )
    (n,) = lengths
    if n == 0:
        raise EvaluationError("no instances given")
    stacked = np.stack(list(arrays.values()))
    if (stacked < 0).any():
        raise EvaluationError("metric values must be non-negative")
    best = stacked.min(axis=0)
    alive = best > 0
    dropped = tuple(int(i) for i in np.flatnonzero(~alive))
    if not alive.any():
        raise EvaluationError("every instance has best value 0")
    ratios = {
        label: arr[alive] / best[alive] for label, arr in arrays.items()
    }
    return ratios, dropped


def performance_profile(
    values: dict[str, np.ndarray],
    taus: np.ndarray | None = None,
    max_tau: float = 2.0,
    n_taus: int = 101,
) -> PerformanceProfile:
    """Compute a Dolan–Moré profile.

    Parameters
    ----------
    values:
        Metric per method per instance (see :func:`performance_ratios`).
    taus:
        Explicit factor axis; default ``linspace(1, max_tau, n_taus)``
        (the paper plots volume profiles on [1, 2] and time profiles on
        [1, 6]).
    """
    ratios, dropped = performance_ratios(values)
    if taus is None:
        taus = np.linspace(1.0, float(max_tau), int(n_taus))
    else:
        taus = np.asarray(taus, dtype=np.float64)
        if taus.size == 0 or (np.diff(taus) < 0).any() or taus[0] < 1.0:
            raise EvaluationError(
                "taus must be a non-empty non-decreasing array starting >= 1"
            )
    n_alive = next(iter(ratios.values())).size
    fractions = {}
    for label, r in ratios.items():
        sorted_r = np.sort(r)
        counts = np.searchsorted(sorted_r, taus, side="right")
        fractions[label] = counts / n_alive
    return PerformanceProfile(
        taus=taus,
        fractions=fractions,
        n_instances=n_alive,
        dropped=dropped,
    )
