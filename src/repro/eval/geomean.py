"""Normalized geometric means (paper Tables I–II).

The paper summarizes each method by the geometric mean over the test set of
its per-matrix metric *normalized by the localbest-without-IR value* (the
default of Mondriaan 3.11).  The geometric mean — unlike the arithmetic —
is invariant to which method is chosen as reference and is the standard
summary for ratio data.

Instances where the reference value is zero cannot be normalized; they are
dropped (and counted), mirroring the profile convention.  Zero values of a
*non-reference* method on a surviving instance are clamped to a small
epsilon so the geometric mean stays finite while still rewarding the
method strongly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EvaluationError

__all__ = ["normalized_geomeans", "geometric_mean"]

_ZERO_CLAMP = 1e-3


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of positive values (log-mean-exp)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise EvaluationError("geometric mean of an empty set")
    if (values <= 0).any():
        raise EvaluationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


def normalized_geomeans(
    values: dict[str, np.ndarray],
    reference: str,
) -> tuple[dict[str, float], int]:
    """Geometric means of per-instance ratios to ``reference``.

    Parameters
    ----------
    values:
        ``values[label][i]``: metric of method ``label`` on instance ``i``
        (all arrays the same length, non-negative).
    reference:
        The normalizing method's label (``reference`` itself then scores
        exactly 1.0, as in the paper's tables).

    Returns
    -------
    (means, n_used):
        Normalized geometric mean per label, and the number of instances
        that survived the zero-reference removal.
    """
    if reference not in values:
        raise EvaluationError(
            f"reference {reference!r} not among methods {sorted(values)}"
        )
    arrays = {k: np.asarray(v, dtype=np.float64) for k, v in values.items()}
    lengths = {a.size for a in arrays.values()}
    if len(lengths) != 1:
        raise EvaluationError(
            f"all methods must cover the same instances, got sizes {lengths}"
        )
    ref = arrays[reference]
    alive = ref > 0
    n_used = int(alive.sum())
    if n_used == 0:
        raise EvaluationError("reference method is zero on every instance")
    out = {}
    for label, arr in arrays.items():
        ratios = arr[alive] / ref[alive]
        ratios = np.maximum(ratios, _ZERO_CLAMP)
        out[label] = geometric_mean(ratios)
    return out, n_used
