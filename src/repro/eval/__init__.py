"""Evaluation harness.

Reimplements the paper's experimental apparatus (Section IV): Dolan–Moré
performance profiles, normalized geometric-mean tables, an experiment
runner over the synthetic collection, and text/CSV rendering of every
table and figure.
"""

from repro.eval.profiles import (
    PerformanceProfile,
    performance_profile,
    performance_ratios,
)
from repro.eval.geomean import normalized_geomeans
from repro.eval.runner import (
    PAPER_METHODS,
    ExperimentData,
    MethodSpec,
    RunRecord,
    run_methods,
)
from repro.eval.sweep import (
    RunSpec,
    SweepAggregator,
    build_runspecs,
    execute_runspec,
    run_sweep,
)
from repro.eval.report import ascii_profile_chart, markdown_table, write_csv

__all__ = [
    "PerformanceProfile",
    "performance_profile",
    "performance_ratios",
    "normalized_geomeans",
    "MethodSpec",
    "RunRecord",
    "ExperimentData",
    "PAPER_METHODS",
    "run_methods",
    "RunSpec",
    "SweepAggregator",
    "build_runspecs",
    "execute_runspec",
    "run_sweep",
    "ascii_profile_chart",
    "markdown_table",
    "write_csv",
]
