"""Parallel sweep engine: (instance x method x seed) as a work queue.

The paper's experiments are *sweeps* — every matrix, every method, many
seeds — and their cost is embarrassingly parallel across runs.  This
module turns the runner's sequential triple loop into explicit work
items:

:class:`RunSpec`
    One fully-described run: instance name, method, seed, and every
    knob needed to execute it in any process.  Specs are plain frozen
    dataclasses, picklable by construction.
:func:`build_runspecs`
    Expands (entries x methods x seeds) in the canonical order — the
    exact iteration order of the historical serial runner, with the
    seed tree ``spawn_seeds(base_seed, nruns)`` preserved, so a sweep's
    results are a pure function of its inputs regardless of ``jobs``.
:func:`run_sweep`
    Streams :class:`~repro.eval.runner.RunRecord` results in spec
    order.  ``jobs=1`` executes inline (the reference path); ``jobs>=2``
    dispatches chunks to the shared execution layer's persistent worker
    pool (:func:`repro.utils.executor.process_pool` — the same pool
    recursive bisection schedules its tree on, shut down once via
    atexit).  Chunks follow instance boundaries so each worker's matrix
    cache (:func:`~repro.sparse.collection.load_instance` is memoized
    per process, and the kernel/SpMV states hang off the cached objects)
    stays hot for a whole instance.  Because every record is determined
    by its spec alone, the parallel sweep is **bit-identical** to the
    serial one — same seeds, volumes, feasibility, BSP costs, and
    ordering — apart from the measured wall-clock ``seconds``.

    ``jobs`` also accepts a :class:`~repro.utils.executor.JobsBudget`:
    the total is then *split* between sweep-level workers and the
    recursion-level workers inside each p-way run (``outer * inner <=
    total``), so ``experiment --jobs N`` composes across both levels
    instead of oversubscribing with nested pools.
:class:`SweepAggregator`
    Incremental aggregation: per-(method, instance) running sums of
    volume/seconds/BSP cost.  Consuming the stream through an
    aggregator keeps memory flat for very large sweeps instead of
    materializing every record.
"""

from __future__ import annotations

import dataclasses
import errno as _errno
import hashlib
import json
import os
import sys
import time
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.core.validate import validate_run_record
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.errors import (
    EvaluationError,
    ExecutionError,
    ResultValidationError,
    ShmAttachError,
)
from repro.sparse.collection import CollectionEntry, load_instance
from repro.utils import faults
from repro.utils.executor import (
    STORE_CAP,
    JobsBudget,
    RetryPolicy,
    SharedMatrixStore,
    account_payload,
    drop_process_pool,
    pool_map,
    pool_submit,
    resilient_map,
)
from repro.utils.parallel import resolve_jobs as _resolve_jobs
from repro.utils.rng import spawn_seeds

_SWEEP_CHUNKS = _metrics.counter(
    "repro_sweep_chunks_total", "Sweep chunks dispatched to workers."
)
_SWEEP_RUNS = _metrics.counter(
    "repro_sweep_runs_total",
    "Sweep runs executed (checkpoint replays excluded).",
)

__all__ = [
    "RunSpec",
    "build_runspecs",
    "execute_runspec",
    "run_sweep",
    "SweepCheckpoint",
    "SweepAggregator",
    "resolve_jobs",
]


@dataclass(frozen=True)
class RunSpec:
    """One (instance, method, seed) work item of a sweep.

    Carries everything :func:`execute_runspec` needs so a spec can be
    executed in any process; ``index`` is the spec's position in the
    canonical sweep order (used only for bookkeeping — results are
    streamed in order already).
    """

    index: int
    instance: str
    matrix_class: str
    label: str
    method: str
    refine: bool
    seed: int
    nparts: int = 2
    eps: float = 0.03
    config: str = "mondriaan"
    backend: str = "auto"
    with_bsp: bool = False
    #: Run the full downstream pipeline as well: greedy vector
    #: distribution plus the verified SpMV simulation, with the simulated
    #: volume cross-checked against the partitioner's.  This is the
    #: "whole pipeline" the end-to-end benchmark times.
    verify_spmv: bool = False
    #: Recursion-level worker count *inside* this run (p-way runs only;
    #: a bipartitioning has no inner parallelism).  Set by the sweep's
    #: :class:`~repro.utils.executor.JobsBudget` split — a speed knob
    #: only, the record is bit-identical for every value.
    jobs: int = 1
    #: p-way partitioning scheme for ``nparts > 2`` runs: ``"recursive"``
    #: bisection or the direct ``"kway"`` partitioner (see
    #: :func:`repro.core.recursive.partition`'s ``algo``).  Ignored for
    #: bipartitionings.
    algo: str = "recursive"
    #: Multilevel V-cycle count for ``algo="kway"`` runs (see
    #: :attr:`repro.partitioner.config.PartitionerConfig.kway_vcycles`).
    #: ``0`` keeps the flat direct k-way path bit-for-bit; a
    #: result-determining knob, so it participates in the sweep
    #: fingerprint (unlike ``jobs``).  Ignored for recursive runs and
    #: bipartitionings.
    kway_vcycles: int = 0
    #: Cross-process trace envelope
    #: (:class:`repro.obs.trace.TraceContext`, ``None`` when tracing is
    #: disabled).  Rides the spec into pool workers the way the
    #: deadline rides hardened tasks; purely observational, so it is
    #: normalized away from the sweep fingerprint like ``jobs``.
    trace: object = None


def build_runspecs(
    entries: Iterable[CollectionEntry],
    methods: Sequence,
    *,
    nruns: int = 3,
    nparts: int = 2,
    eps: float = 0.03,
    config: str = "mondriaan",
    base_seed: int = 2014,
    with_bsp: bool = False,
    backend: str = "auto",
    verify_spmv: bool = False,
    algo: str = "recursive",
    kway_vcycles: int = 0,
) -> list[RunSpec]:
    """Expand a sweep into specs in the canonical (serial) order.

    The order is instance-major, then method, then run — exactly the
    historical triple loop — and run ``r`` of every method uses
    ``spawn_seeds(base_seed, nruns)[r]``, so methods face identical
    randomness and the spec list is a pure function of the arguments.
    """
    if nruns < 1:
        raise EvaluationError("nruns must be at least 1")
    seeds = spawn_seeds(base_seed, nruns)
    specs: list[RunSpec] = []
    for entry in entries:
        for spec in methods:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        index=len(specs),
                        instance=entry.name,
                        matrix_class=entry.matrix_class.short,
                        label=spec.label,
                        method=spec.method,
                        refine=spec.refine,
                        seed=seed,
                        nparts=nparts,
                        eps=eps,
                        config=config,
                        backend=backend,
                        with_bsp=with_bsp,
                        verify_spmv=verify_spmv,
                        algo=algo,
                        kway_vcycles=kway_vcycles,
                    )
                )
    return specs


def execute_runspec(spec: RunSpec, matrix=None):
    """Execute one work item and return its :class:`RunRecord`.

    Importable at module level (process-pool workers pickle the function
    by reference).  The heavy per-instance objects — the matrix, its
    hypergraph models, kernel states — are cached per process via
    :func:`load_instance` and the object caches hanging off it;
    ``matrix`` short-circuits the load when the caller already holds the
    instance (shared-memory chunk delivery hands workers the published
    matrix instead of rebuilding it by name).
    """
    import dataclasses

    from repro.core.methods import bipartition
    from repro.core.recursive import partition
    from repro.eval.runner import RunRecord
    from repro.partitioner.config import get_config
    from repro.spmv.bsp import bsp_cost

    if matrix is None:
        matrix = load_instance(spec.instance)
    cfg = get_config(spec.config)
    if spec.backend != cfg.kernel_backend:
        cfg = dataclasses.replace(cfg, kernel_backend=spec.backend)
    if spec.kway_vcycles != cfg.kway_vcycles:
        cfg = dataclasses.replace(cfg, kway_vcycles=spec.kway_vcycles)
    if spec.nparts == 2:
        res = bipartition(
            matrix,
            method=spec.method,
            eps=spec.eps,
            refine=spec.refine,
            config=cfg,
            seed=spec.seed,
        )
    else:
        res = partition(
            matrix,
            spec.nparts,
            method=spec.method,
            eps=spec.eps,
            refine=spec.refine,
            config=cfg,
            seed=spec.seed,
            jobs=spec.jobs,
            algo=spec.algo,
        )
    bsp = None
    if spec.with_bsp:
        bsp = bsp_cost(matrix, res.parts, spec.nparts).cost
    if spec.verify_spmv:
        from repro.errors import EvaluationError as _EvalError
        from repro.spmv.simulate import simulate_spmv

        report = simulate_spmv(matrix, res.parts, spec.nparts)
        if report.volume != res.volume:
            raise _EvalError(
                f"simulated SpMV volume {report.volume} disagrees with "
                f"partitioner volume {res.volume} on {spec.instance}"
            )
    return RunRecord(
        instance=spec.instance,
        matrix_class=spec.matrix_class,
        method=spec.label,
        seed=spec.seed,
        nparts=spec.nparts,
        volume=res.volume,
        seconds=res.seconds,
        feasible=res.feasible,
        bsp=bsp,
        max_part=res.max_part,
        imbalance=res.imbalance,
        failures=tuple(getattr(res, "failures", ())),
    )


def _execute_chunk(specs: list[RunSpec]) -> list:
    """Worker entry point: execute one chunk of specs in order."""
    faults.fault_point("sweep.chunk")
    ctx = specs[0].trace if specs else None
    with _trace.activate(
        ctx, "sweep.chunk",
        instance=specs[0].instance if specs else "",
        nspecs=len(specs),
    ):
        records = [execute_runspec(spec) for spec in specs]
    return faults.fault_point("sweep.result", records)


def _execute_chunk_shm(payload) -> list:
    """Worker entry point for shared-memory chunk delivery.

    The payload carries a :class:`~repro.utils.executor.MatrixHandle`
    (a few dozen bytes) instead of relying on the worker rebuilding the
    instance by name; attaching is zero-copy and cached per process, so
    consecutive chunks of one instance in one worker share the matrix
    object — and with it the kernel/SpMV state caches — exactly like the
    name-loaded path did.  A ``None`` handle (the parent paced its
    publications past the store cap) or an already-evicted segment falls
    back to the by-name load; records are identical either way.
    """
    handle, name, specs = payload
    faults.fault_point("sweep.chunk")
    ctx = specs[0].trace if specs else None
    with _trace.activate(
        ctx, "sweep.chunk", instance=name, nspecs=len(specs),
        shm=handle is not None,
    ):
        if handle is None:
            matrix = load_instance(name)
        else:
            try:
                matrix = handle.open()
            except ShmAttachError:
                matrix = load_instance(name)
        records = [
            execute_runspec(spec, matrix=matrix) for spec in specs
        ]
    return faults.fault_point("sweep.result", records)


def _chunk_by_instance(specs: Sequence[RunSpec]) -> list[list[RunSpec]]:
    """Split specs at instance boundaries (specs are instance-major)."""
    chunks: list[list[RunSpec]] = []
    for spec in specs:
        if chunks and chunks[-1][0].instance == spec.instance:
            chunks[-1].append(spec)
        else:
            chunks.append([spec])
    return chunks


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` request: ``None``/``0`` means the CPU count."""
    return _resolve_jobs(jobs, error=EvaluationError)


def _sweep_fingerprint(specs: Sequence[RunSpec]) -> str:
    """Identity of a sweep for checkpoint compatibility.

    Every result-determining spec field participates; the speed and
    resilience knobs are normalized away — ``jobs`` is zeroed, and when
    ``spec.config`` is a live
    :class:`~repro.partitioner.config.PartitionerConfig` (rather than a
    preset name) its ``jobs`` / ``exec_backend`` / ``task_timeout`` /
    ``retries`` are reset to their defaults.  None of those change what
    a run computes (see ``docs/robustness.md``), so a sweep interrupted
    under one set of resilience knobs and resumed under another must
    still match its journal.
    """
    payload = []
    for spec in specs:
        cfg = spec.config
        if dataclasses.is_dataclass(cfg) and not isinstance(cfg, type):
            cfg = dataclasses.replace(
                cfg, jobs=1, exec_backend="auto",
                task_timeout=None, retries=0,
            )
        payload.append(dataclasses.astuple(
            dataclasses.replace(spec, jobs=0, config=cfg, trace=None)
        ))
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:16]


def _record_to_json(record) -> dict:
    out = {}
    for f in dataclasses.fields(record):
        value = getattr(record, f.name)
        if isinstance(value, tuple):
            value = list(value)
        elif value is not None and not isinstance(value, (bool, str)):
            value = float(value) if isinstance(value, float) else int(value)
        out[f.name] = value
    return out


def _record_from_json(data: dict):
    from repro.eval.runner import RunRecord

    data = dict(data)
    data["failures"] = tuple(data.get("failures", ()))
    return RunRecord(**data)


class SweepCheckpoint:
    """JSONL journal of completed sweep records (crash-resumable sweeps).

    Line 1 is a header carrying the sweep fingerprint (so a journal can
    never be replayed against a *different* sweep); every further line is
    ``{"index": <spec index>, "record": {...}}``, appended and fsynced
    the moment the record is produced — a SIGKILLed sweep loses at most
    the record being written, and a torn trailing line from the kill is
    skipped on reload.  ``done`` maps already-completed spec indices to
    their reloaded records; :func:`run_sweep` skips those specs and
    yields the journal's records in their place, so an interrupted sweep
    resumed with the same specs streams results bit-identical to an
    uninterrupted run.

    Disk pressure degrades, never aborts: an ``OSError`` on a journal
    write (``ENOSPC``, quota) drops the file handle and the sweep keeps
    streaming **unjournaled** — records after the failure simply rerun
    on a resume.  The one-shot brief is exposed via
    :meth:`take_write_error` so :func:`run_sweep` can annotate the
    record in flight when it happened; the ``checkpoint.write`` fault
    point (inside :meth:`_write`) lets the chaos suite inject exactly
    this.
    """

    def __init__(self, path, specs: Sequence[RunSpec]) -> None:
        self.path = Path(path)
        self.fingerprint = _sweep_fingerprint(specs)
        self.done: dict[int, object] = {}
        self.write_error: str | None = None
        self._error_taken = False
        self._fh = None
        if self.path.exists() and self.path.stat().st_size:
            self._load()
        try:
            self._fh = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            self._degrade(exc)
        if self._fh is not None and self._fh.tell() == 0:
            self._write({"sweep": self.fingerprint, "version": 1})

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        try:
            header = json.loads(lines[0])
        except (json.JSONDecodeError, IndexError):
            raise EvaluationError(
                f"checkpoint {self.path} has no readable header; "
                f"delete it to start the sweep over"
            ) from None
        if header.get("sweep") != self.fingerprint:
            raise EvaluationError(
                f"checkpoint {self.path} belongs to a different sweep "
                f"(journal {header.get('sweep')!r} != specs "
                f"{self.fingerprint!r}); point it elsewhere or delete it"
            )
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail write from a crash; the spec reruns
            self.done[int(entry["index"])] = _record_from_json(
                entry["record"]
            )

    def _write(self, obj: dict) -> None:
        if self._fh is None:
            return  # journaling already degraded away
        try:
            faults.fault_point("checkpoint.write")
            self._fh.write(json.dumps(obj) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            self._degrade(exc)

    def _degrade(self, exc: OSError) -> None:
        """Stop journaling after a write failure; the sweep continues."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - close-on-full-disk
                pass
            self._fh = None
        name = _errno.errorcode.get(exc.errno, "OSError")
        self.write_error = f"CheckpointWriteError[{name}]"
        print(
            f"repro-sweep: checkpoint journal degraded to read-only "
            f"({name}: {exc}); the sweep continues unjournaled",
            file=sys.stderr,
        )

    def take_write_error(self) -> str | None:
        """The degradation brief, the first time it is asked for.

        One record carries the annotation (the one whose append
        failed); later records run identically to an unjournaled sweep
        and stay clean — ``failures`` describes events, not a sticky
        state, and ``/stats``-style polling belongs to the daemon tier.
        """
        if self.write_error is None or self._error_taken:
            return None
        self._error_taken = True
        return self.write_error

    def append(self, spec: RunSpec, record) -> None:
        """Journal one completed record (flushed and fsynced)."""
        self._write(
            {"index": spec.index, "record": _record_to_json(record)}
        )

    def close(self) -> None:
        """Close the journal file handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _validate_chunk_records(chunk: list[RunSpec], records) -> None:
    """Boundary validation of a worker-returned chunk of records."""
    name = chunk[0].instance
    if not isinstance(records, list) or len(records) != len(chunk):
        got = (
            len(records) if isinstance(records, list)
            else type(records).__name__
        )
        raise ResultValidationError(
            f"chunk of {len(chunk)} specs returned {got} records",
            task=name,
        )
    for spec, record in zip(chunk, records):
        validate_run_record(spec, record)


def _annotate(record, briefs: tuple):
    if not briefs:
        return record
    return dataclasses.replace(
        record, failures=record.failures + briefs
    )


def _execute_serial(spec: RunSpec, policy: RetryPolicy):
    """Inline execution with the retry half of ``policy``.

    The serial path *is* the degradation ladder's bottom rung — there is
    no worker to kill, so deadlines don't apply and retry exhaustion
    propagates the error instead of degrading further.
    """
    briefs: list[str] = []
    attempt = 0
    while True:
        try:
            records = _execute_chunk([spec])
            _validate_chunk_records([spec], records)
            return _annotate(records[0], tuple(briefs))
        except Exception as exc:
            attempt += 1
            if attempt > policy.retries:
                raise
            briefs.append(ExecutionError(
                f"run raised {type(exc).__name__}: {exc}",
                task=spec.instance, attempt=attempt,
            ).brief())
            time.sleep(policy.delay_for(attempt))


def run_sweep(
    specs: Sequence[RunSpec],
    *,
    jobs: "int | None | JobsBudget" = 1,
    exec_backend: str = "process",
    progress: bool = False,
    task_timeout: float | None = None,
    retries: int = 0,
    checkpoint=None,
) -> Iterator:
    """Execute specs and yield their records in spec order.

    ``jobs=1`` runs inline; ``jobs>=2`` dispatches instance-aligned
    chunks to the shared persistent worker pool (splitting down to
    per-run items when there are fewer instances than workers),
    streaming chunk results as they complete (``map`` preserves
    submission order).  A :class:`~repro.utils.executor.JobsBudget`
    instead *splits* its total between sweep workers and the recursion
    workers inside each p-way run — chunks then stay instance-aligned
    and the remainder of the budget is handed down via ``RunSpec.jobs``.
    Records are bit-identical across every ``jobs`` value and backend
    except for the measured ``seconds`` (and any ``failures``
    annotations — like ``seconds``, they describe how a run went, not
    its result).

    ``exec_backend`` selects the worker flavour: ``"process"`` (the
    default — sweeps are dominated by per-run Python orchestration, so
    processes sidestep the GIL; each chunk ships a
    :class:`~repro.utils.executor.MatrixHandle` to its worker, which
    attaches the published instance zero-copy instead of rebuilding it
    by name) or ``"thread"`` (in-process workers; chunks never split
    below instance boundaries there, so concurrent threads never share
    one instance's cached kernel states).  Process-chunk payloads are
    folded into any active
    :func:`~repro.utils.executor.payload_audit`.

    ``task_timeout`` / ``retries`` arm the hardened execution path (see
    ``docs/robustness.md``): each pool chunk gets a per-task deadline
    enforced by a watchdog that kills hung workers, crashed / timed-out
    / invalid chunks are retried with capped exponential backoff, and a
    chunk that exhausts its budget is completed serially in the driver —
    the sweep always finishes, annotating affected records' ``failures``
    instead of aborting.  The defaults (``None``/``0``) preserve the
    unhardened dispatch exactly.  Every worker-returned record is
    boundary-validated (spec-echo consistency, sane metrics) on every
    path, hardened or not.

    ``checkpoint`` (a path) makes the sweep crash-resumable: completed
    records are journaled to JSONL as they stream
    (:class:`SweepCheckpoint`), and a rerun pointing at the same journal
    with the same specs skips the already-done work and replays its
    records in place — merged output bit-identical to an uninterrupted
    sweep.
    """
    if exec_backend not in ("process", "thread"):
        raise EvaluationError(
            f"run_sweep exec_backend must be 'process' or 'thread', "
            f"got {exec_backend!r}"
        )
    inner = None
    if isinstance(jobs, JobsBudget):
        budget = jobs
        chunks = _chunk_by_instance(specs)
        workers, inner = budget.split(len(chunks))
        if inner > 1:
            chunks = [
                [dataclasses.replace(spec, jobs=inner) for spec in chunk]
                for chunk in chunks
            ]
            specs = [spec for chunk in chunks for spec in chunk]
        jobs = workers
    else:
        jobs = resolve_jobs(jobs)
    ctx = _trace.current_context()
    if ctx is not None:
        # Stamp the live trace envelope onto every spec so pool workers
        # parent their chunk spans into this sweep.  Fingerprints
        # normalize the field away, so checkpoints are unaffected.
        specs = [dataclasses.replace(s, trace=ctx) for s in specs]
    policy = RetryPolicy.resolve(task_timeout, retries)
    journal = (
        SweepCheckpoint(checkpoint, specs) if checkpoint is not None
        else None
    )
    try:
        if journal is not None and journal.done:
            pending = [s for s in specs if s.index not in journal.done]
        else:
            pending = list(specs)
        stream = _execute_pending(
            pending, jobs, exec_backend, policy, progress, inner
        )
        try:
            for spec in specs:
                if journal is not None and spec.index in journal.done:
                    yield journal.done[spec.index]
                    continue
                record = next(stream)
                if journal is not None:
                    journal.append(spec, record)
                    brief = journal.take_write_error()
                    if brief is not None:
                        record = _annotate(record, (brief,))
                faults.fault_point("sweep.record")
                _SWEEP_RUNS.inc()
                yield record
        finally:
            stream.close()
    finally:
        if journal is not None:
            journal.close()


def _execute_pending(
    specs: list[RunSpec],
    jobs: int,
    exec_backend: str,
    policy: RetryPolicy,
    progress: bool,
    inner: int | None,
) -> Iterator:
    """Yield records for ``specs`` in order (the dispatch half of
    :func:`run_sweep`, after checkpoint filtering)."""
    if jobs == 1 or len(specs) <= 1:
        last = None
        for spec in specs:
            if progress and spec.instance != last:  # pragma: no cover
                print(f"[sweep] {spec.instance}", flush=True)
                last = spec.instance
            _SWEEP_CHUNKS.inc()
            yield _execute_serial(spec, policy)
        return
    chunks = _chunk_by_instance(specs)
    if len(chunks) < jobs and inner is None and exec_backend != "thread":
        # Fewer instances than workers (e.g. many seeds of one matrix):
        # instance-aligned chunks would leave workers idle, so fall back
        # to per-run items — cache locality matters less than an empty
        # pool.  (Not under a budget — the leftover went to the inner
        # level — and not under threads, where two workers sharing one
        # instance would share its cached kernel states.)
        chunks = [[spec] for spec in specs]
    workers = min(jobs, len(chunks))
    _SWEEP_CHUNKS.inc(len(chunks))
    if policy.active:
        yield from _run_chunks_resilient(
            chunks, workers, exec_backend, policy, progress
        )
        return
    try:
        if exec_backend == "thread":
            results = pool_map("thread", workers, _execute_chunk, chunks)
            for chunk, records in zip(chunks, results):
                if progress:  # pragma: no cover - console side effect
                    print(f"[sweep] {chunk[0].instance}", flush=True)
                _validate_chunk_records(chunk, records)
                yield from records
        else:
            for chunk, records in _run_chunks_shm(chunks, workers):
                if progress:  # pragma: no cover - console side effect
                    print(f"[sweep] {chunk[0].instance}", flush=True)
                _validate_chunk_records(chunk, records)
                yield from records
    except BrokenProcessPool:
        # A worker died; forget the poisoned pool so the next sweep
        # starts fresh instead of failing forever.
        drop_process_pool()
        raise


def _run_chunks_resilient(
    chunks: list[list[RunSpec]],
    workers: int,
    exec_backend: str,
    policy: RetryPolicy,
    progress: bool,
) -> Iterator:
    """Hardened chunk dispatch: deadlines, retry/backoff, serial fallback.

    Chunks become individual :func:`~repro.utils.executor.resilient_map`
    tasks (per-chunk deadlines need per-chunk futures, so the windowed
    streaming of :func:`_run_chunks_shm` gives way to one fan-out; the
    first ``STORE_CAP`` distinct instances still ship shared-memory
    handles, the rest load by name in their workers).  Chunk-level
    failure briefs are annotated onto every record of the affected
    chunk.
    """
    if exec_backend == "thread":
        kind, fn = "thread", _execute_chunk
        items: list = list(chunks)
    else:
        kind, fn = "process", _execute_chunk_shm
        published: set[str] = set()
        items = []
        for chunk in chunks:
            name = chunk[0].instance
            if name in published or len(published) < STORE_CAP:
                handle = SharedMatrixStore.for_matrix(
                    load_instance(name)
                ).handle
                published.add(name)
            else:
                handle = None  # past the cap: the worker loads by name
            payload = (handle, name, chunk)
            account_payload([payload])
            items.append(payload)

    def fallback(i: int):
        # The driver's own by-name execution: scope="worker" faults and
        # pool pathologies cannot reach here, so degraded completion is
        # genuine completion.
        return _execute_chunk(chunks[i])

    values, failures = resilient_map(
        kind, workers, fn, items,
        policy=policy, fallback=fallback,
        validate=lambda i, recs: _validate_chunk_records(chunks[i], recs),
        labels=[chunk[0].instance for chunk in chunks],
    )
    for chunk, records, fails in zip(chunks, values, failures):
        if progress:  # pragma: no cover - console side effect
            print(f"[sweep] {chunk[0].instance}", flush=True)
        briefs = tuple(f.brief() for f in fails)
        for record in records:
            yield _annotate(record, briefs)


def _run_chunks_shm(
    chunks: list[list[RunSpec]], workers: int
) -> Iterator[tuple[list[RunSpec], list]]:
    """Dispatch chunks to the shared process pool via the matrix store.

    Chunks are instance-aligned, so each ships one
    :class:`~repro.utils.executor.MatrixHandle` (publishing the instance
    on first use — repeated chunks of one matrix reuse the live segment)
    plus the specs; submission runs in a bounded window of ``2 *
    workers`` — wide enough to keep every worker busy, narrow enough
    that a long sweep publishes stores just ahead of the workers that
    need them.  Publication itself is paced by the store cache's LRU
    cap: while ``STORE_CAP`` *distinct instances* have handle-shipped
    chunks in flight, chunks of further instances ship name-only (their
    worker rebuilds the instance, exactly like the ``pool_map`` path
    this replaces) instead of publishing a segment destined for
    eviction before its worker attaches; chunks of already-published
    instances always ship the live handle.  The worker-side by-name
    fallback still covers any remaining eviction race.  Results stream
    in submission order.

    Publishing requires building each instance in the *parent* (the old
    path had workers rebuild instances themselves, in parallel); the
    window overlaps the parent's builds with worker compute, which wins
    whenever partitioning dominates generation — the normal case — and
    trades the old path's duplicated per-worker rebuilds for one
    zero-copy publication per instance.
    """
    window = max(2, 2 * workers)
    pending: deque = deque()
    #: Distinct instances whose pending chunks shipped a handle -> count.
    #: The publication gate works on *instances*, not chunks: a repeat
    #: chunk of an already-published matrix reuses the live segment at
    #: zero eviction risk, and only genuinely new instances count
    #: against the cap.
    live: dict[str, int] = {}
    idx = 0
    while idx < len(chunks) or pending:
        while idx < len(chunks) and len(pending) < window:
            chunk = chunks[idx]
            name = chunk[0].instance
            if name in live or len(live) < STORE_CAP:
                handle = SharedMatrixStore.for_matrix(
                    load_instance(name)
                ).handle
                live[name] = live.get(name, 0) + 1
            else:
                handle = None  # past the cap: would be evicted unused
            payload = (handle, name, chunk)
            account_payload([payload])
            pending.append(
                (chunk, handle is not None,
                 pool_submit("process", workers,
                             _execute_chunk_shm, payload))
            )
            idx += 1
        chunk, had_handle, future = pending.popleft()
        records = future.result()
        if had_handle:
            name = chunk[0].instance
            live[name] -= 1
            if not live[name]:
                del live[name]
        yield chunk, records


@dataclass
class _MethodInstanceAgg:
    """Running sums for one (method, instance) cell."""

    runs: int = 0
    volume_sum: float = 0.0
    seconds_sum: float = 0.0
    bsp_sum: float = 0.0
    has_bsp: bool = True
    feasible_runs: int = 0


@dataclass
class SweepAggregator:
    """Incremental sweep aggregation (streaming counterpart of
    ``ExperimentData.mean_metric``).

    Feed records with :meth:`add` as they arrive; per-(method, instance)
    run-averaged metrics are available at any point without holding the
    records themselves.  The paper's protocol averages each metric over
    the runs before profiles/geomeans — this computes exactly those
    averages.
    """

    cells: dict = field(default_factory=dict)
    _instances: dict = field(default_factory=dict)
    _methods: dict = field(default_factory=dict)
    total_runs: int = 0
    feasible_runs: int = 0

    def add(self, record) -> None:
        """Fold one :class:`RunRecord` into the running sums."""
        key = (record.method, record.instance)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = _MethodInstanceAgg()
            self._instances.setdefault(record.instance, None)
            self._methods.setdefault(record.method, None)
        cell.runs += 1
        cell.volume_sum += record.volume
        cell.seconds_sum += record.seconds
        if record.bsp is None:
            cell.has_bsp = False
        else:
            cell.bsp_sum += record.bsp
        cell.feasible_runs += bool(record.feasible)
        self.total_runs += 1
        self.feasible_runs += bool(record.feasible)

    def instances(self) -> list[str]:
        """Instance names in first-appearance order."""
        return list(self._instances)

    def methods(self) -> list[str]:
        """Method labels in first-appearance order."""
        return list(self._methods)

    def mean(self, method: str, instance: str, metric: str) -> float:
        """Run-averaged ``metric`` for one (method, instance) cell."""
        cell = self.cells.get((method, instance))
        if cell is None or cell.runs == 0:
            raise EvaluationError(
                f"no runs recorded for {method!r} on {instance!r}"
            )
        if metric == "volume":
            return cell.volume_sum / cell.runs
        if metric == "seconds":
            return cell.seconds_sum / cell.runs
        if metric == "bsp":
            if not cell.has_bsp:
                raise EvaluationError(
                    f"record {instance}/{method} lacks metric 'bsp'"
                )
            return cell.bsp_sum / cell.runs
        raise EvaluationError(f"unknown metric {metric!r}")

    def feasible_fraction(self) -> float:
        """Fraction of aggregated runs satisfying the eqn-(1) constraint."""
        if self.total_runs == 0:
            return 1.0
        return self.feasible_runs / self.total_runs
