"""Text rendering: ASCII profile charts, markdown tables, CSV emission.

matplotlib is unavailable in the reproduction environment, so figures are
rendered as monospace charts (one character column per tau step, one curve
glyph per method) plus machine-readable CSV series for external plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.eval.profiles import PerformanceProfile

__all__ = [
    "ascii_profile_chart",
    "markdown_table",
    "write_csv",
    "format_float",
    "PWAY_COLUMNS",
    "pway_rows",
    "pway_table",
]

_GLYPHS = "ox+*#@%&$"


def format_float(x: float, digits: int = 2) -> str:
    """Fixed-point format used across the report tables."""
    return f"{x:.{digits}f}"


def ascii_profile_chart(
    profile: PerformanceProfile,
    title: str,
    width: int = 72,
    height: int = 20,
) -> str:
    """Render a performance profile as a monospace chart.

    The x-axis is the factor tau, the y-axis the fraction of test cases;
    each method gets a glyph, with a legend underneath — the textual
    equivalent of the paper's Figs. 4–6.
    """
    labels = list(profile.fractions)
    if len(labels) > len(_GLYPHS):
        raise EvaluationError(
            f"too many methods to chart ({len(labels)} > {len(_GLYPHS)})"
        )
    taus = profile.taus
    grid = [[" "] * width for _ in range(height)]
    xs = np.linspace(taus[0], taus[-1], width)
    for li, label in enumerate(labels):
        fr = np.interp(xs, taus, profile.fractions[label])
        for col in range(width):
            row = height - 1 - int(round(fr[col] * (height - 1)))
            if grid[row][col] == " ":  # first curve through a cell wins
                grid[row][col] = _GLYPHS[li]
    lines = [f"{title}  (n={profile.n_instances})"]
    for r, row in enumerate(grid):
        frac = 1.0 - r / (height - 1)
        axis = f"{frac:4.2f} |" if r % 4 == 0 or r == height - 1 else "     |"
        lines.append(axis + "".join(row))
    lines.append("     +" + "-" * width)
    tick_line = "      "
    n_ticks = 5
    for t in range(n_ticks):
        pos = int(t * (width - 1) / (n_ticks - 1))
        tick = f"{xs[pos]:.2f}"
        tick_line = tick_line.ljust(6 + pos) + tick
    lines.append(tick_line)
    legend = "      legend: " + "  ".join(
        f"{_GLYPHS[i]}={label}" for i, label in enumerate(labels)
    )
    lines.append(legend)
    return "\n".join(lines)


def markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    highlight_min: bool = False,
) -> str:
    """Render a markdown table; optionally bold the minimum numeric cell of
    each row (the paper's boldface convention in Tables I–II)."""
    out = ["| " + " | ".join(str(h) for h in headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        cells = [str(c) for c in row]
        if highlight_min:
            numeric = []
            for i, c in enumerate(row):
                if isinstance(c, (int, float)) and not isinstance(c, bool):
                    numeric.append((float(c), i))
            if numeric:
                best = min(v for v, _ in numeric)
                for v, i in numeric:
                    if v == best:
                        cells[i] = f"**{cells[i]}**"
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)


#: Column order of the p-way record tables: the connectivity-(λ−1)
#: communication volume plus the eqn-(1) balance outcome per run.
PWAY_COLUMNS = (
    "instance",
    "method",
    "nparts",
    "volume",
    "max_part",
    "imbalance",
    "feasible",
    "seconds",
)


def pway_rows(records) -> list[list[object]]:
    """Rows (one per record) for the p-way comparison tables.

    Each :class:`~repro.eval.runner.RunRecord` contributes its
    connectivity-(λ−1) ``volume`` together with the balance columns —
    ``max_part`` and the achieved ``imbalance`` (``max_k |A_k| / (N/p) -
    1``) — that a k-way-vs-recursive comparison needs first-class.
    Records predating those fields render them as ``"-"``.
    """
    rows: list[list[object]] = []
    for r in records:
        rows.append([
            r.instance,
            r.method,
            r.nparts,
            r.volume,
            r.max_part if r.max_part is not None else "-",
            (
                format_float(r.imbalance, 4)
                if r.imbalance is not None
                else "-"
            ),
            r.feasible,
            format_float(r.seconds, 3),
        ])
    return rows


def pway_table(records) -> str:
    """Markdown table of p-way records (see :func:`pway_rows`)."""
    return markdown_table(PWAY_COLUMNS, pway_rows(records))


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Write rows to CSV, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
