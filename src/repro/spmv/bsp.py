"""The BSP communication-cost metric of Table II.

The paper defines the BSP cost as "the sum of the maximum number of data
words that are sent or received by a single processor during the fan-in
and fan-out phase": with per-processor word counts ``send_s``/``recv_s``
in each phase,

.. code-block:: text

    cost = max_s max(send_s, recv_s) |fanout  +  max_s max(send_s, recv_s) |fanin

i.e. the h-relation of each communication superstep, summed.  Unlike the
total volume ``V`` this metric penalizes concentrating traffic on one
processor, which is where the vector distribution matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.volume import check_nonzero_parts
from repro.kernels.spmv import axis_incidences
from repro.sparse.matrix import SparseMatrix
from repro.spmv.vector_dist import VectorDistribution, distribute_vectors
from repro.utils.validation import check_pos_int

__all__ = ["BSPCost", "bsp_cost", "phase_loads"]


@dataclass(frozen=True)
class BSPCost:
    """Per-phase communication loads and the scalar BSP cost.

    Attributes
    ----------
    fanout_send, fanout_recv:
        Words sent/received per part during fan-out (length ``nparts``).
    fanin_send, fanin_recv:
        Likewise for fan-in.
    """

    fanout_send: np.ndarray
    fanout_recv: np.ndarray
    fanin_send: np.ndarray
    fanin_recv: np.ndarray

    @property
    def h_fanout(self) -> int:
        """h-relation of the fan-out superstep."""
        return int(
            max(
                self.fanout_send.max(initial=0),
                self.fanout_recv.max(initial=0),
            )
        )

    @property
    def h_fanin(self) -> int:
        """h-relation of the fan-in superstep."""
        return int(
            max(
                self.fanin_send.max(initial=0),
                self.fanin_recv.max(initial=0),
            )
        )

    @property
    def cost(self) -> int:
        """The Table-II BSP cost: ``h_fanout + h_fanin``."""
        return self.h_fanout + self.h_fanin

    @property
    def total_words(self) -> int:
        """Total words over both phases (equals the volume ``V`` whenever
        owners lie inside the touching part sets)."""
        return int(self.fanout_send.sum() + self.fanin_send.sum())

    @property
    def per_processor_volume(self) -> np.ndarray:
        """Words sent plus received by each processor over both phases —
        the per-processor communication volume whose maximum UMPa (paper
        ref. [2]) minimizes."""
        return (
            self.fanout_send
            + self.fanout_recv
            + self.fanin_send
            + self.fanin_recv
        )

    @property
    def max_per_processor_volume(self) -> int:
        """``max_s (sent_s + received_s)`` — the UMPa bottleneck metric.

        The paper's Section I names this as one of the "other
        communication metrics" outside its scope; it is provided here for
        completeness of the evaluation harness.
        """
        return int(self.per_processor_volume.max(initial=0))


def phase_loads(
    matrix: SparseMatrix,
    parts: np.ndarray,
    nparts: int,
    dist: VectorDistribution,
) -> BSPCost:
    """Compute per-part send/receive word counts for both phases.

    Fan-out: the owner of ``v_j`` sends one word to every *other* part
    with a nonzero in column ``j``; if the owner itself holds no nonzero
    in the column it still must send to all of them (and receives
    nothing — it already has the value).  Fan-in: every non-owner part
    with a nonzero in row ``i`` sends one partial sum to the owner of
    ``u_i``.
    """
    parts = check_nonzero_parts(matrix, parts, nparts)
    m, n = matrix.shape

    fanout_send = np.zeros(nparts, dtype=np.int64)
    fanout_recv = np.zeros(nparts, dtype=np.int64)
    fanin_send = np.zeros(nparts, dtype=np.int64)
    fanin_recv = np.zeros(nparts, dtype=np.int64)

    # Distinct (line, part) incidences per axis (shared group-by kernel;
    # no per-call sorting).
    for axis, owner, send, recv in (
        ("col", dist.input_owner, fanout_send, fanout_recv),
        ("row", dist.output_owner, fanin_send, fanin_recv),
    ):
        index = matrix.cols if axis == "col" else matrix.rows
        extent = n if axis == "col" else m
        if index.size == 0:
            continue
        ptr, lp = axis_incidences(index, parts, extent, nparts)
        li = np.repeat(np.arange(extent, dtype=np.int64), np.diff(ptr))
        own = owner[li]
        foreign = lp != own
        if axis == "col":
            # Owner sends one word per foreign incidence; the foreign part
            # receives it.
            np.add.at(send, own[foreign], 1)
            np.add.at(recv, lp[foreign], 1)
        else:
            # Each foreign part sends its partial sum to the owner.
            np.add.at(send, lp[foreign], 1)
            np.add.at(recv, own[foreign], 1)
    return BSPCost(
        fanout_send=fanout_send,
        fanout_recv=fanout_recv,
        fanin_send=fanin_send,
        fanin_recv=fanin_recv,
    )


def bsp_cost(
    matrix: SparseMatrix,
    parts: np.ndarray,
    nparts: int,
    dist: VectorDistribution | None = None,
) -> BSPCost:
    """BSP cost of a partitioning; computes a greedy vector distribution
    when ``dist`` is not supplied."""
    nparts = check_pos_int(nparts, "nparts")
    if dist is None:
        dist = distribute_vectors(matrix, parts, nparts)
    else:
        dist.validate_against(matrix)
    return phase_loads(matrix, parts, nparts, dist)
