"""Input/output vector distribution for parallel SpMV.

After the nonzeros are partitioned, every input component ``v_j`` and
output component ``u_i`` needs an owner processor.  The total volume is
fixed by the matrix partitioning as long as each owner is chosen *inside*
the set of parts touching that column/row (then column ``j`` costs exactly
``lambda_j - 1`` fan-out words and row ``i`` costs ``lambda_i - 1`` fan-in
words — eqn (2)).  The freedom that remains is *which* member of the set
owns the component, which only affects the per-processor (BSP) balance of
Table II.

:func:`distribute_vectors` implements a greedy balancer: components are
processed in decreasing connectivity order and each is assigned to the
candidate part that minimizes the phase's tentative bottleneck — the
standard greedy used for Mondriaan-style vector distribution.

The incidence lists and the greedy loop itself run through
:mod:`repro.kernels.spmv`: incidences come from the boolean-scatter
group-by (no per-call lexsort), singleton lines are assigned vectorized,
and only the cut lines go through the sequential greedy kernel (scalar
reference or numba JIT, bit-identical by contract).  The ``equal=True``
path applies the same split: forced zero-cost indices are assigned
vectorized and only contended indices run through its greedy loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.volume import check_nonzero_parts
from repro.errors import SimulationError
from repro.kernels.spmv import axis_incidences
from repro.sparse.matrix import SparseMatrix
from repro.utils.validation import check_pos_int

__all__ = ["VectorDistribution", "distribute_vectors"]


@dataclass(frozen=True)
class VectorDistribution:
    """Owners of the vector components.

    Attributes
    ----------
    input_owner:
        Part owning ``v_j`` for each column ``j`` (length ``n``).
    output_owner:
        Part owning ``u_i`` for each row ``i`` (length ``m``).
    nparts:
        Number of parts.
    """

    input_owner: np.ndarray
    output_owner: np.ndarray
    nparts: int

    def validate_against(self, matrix: SparseMatrix) -> None:
        """Sanity-check array lengths and part ranges for ``matrix``."""
        m, n = matrix.shape
        if self.input_owner.shape != (n,):
            raise SimulationError(
                f"input_owner must have length {n}, got "
                f"{self.input_owner.shape}"
            )
        if self.output_owner.shape != (m,):
            raise SimulationError(
                f"output_owner must have length {m}, got "
                f"{self.output_owner.shape}"
            )
        for name, arr in (
            ("input_owner", self.input_owner),
            ("output_owner", self.output_owner),
        ):
            if arr.size and (arr.min() < 0 or arr.max() >= self.nparts):
                raise SimulationError(f"{name} contains out-of-range parts")


def _axis_part_sets(
    index: np.ndarray, parts: np.ndarray, extent: int, nparts: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """CSR lists of the distinct parts touching each row/column index.

    Returns ``(ptr, flat)`` with the parts of line ``i`` in
    ``flat[ptr[i]:ptr[i+1]]`` (thin alias of the shared group-by kernel).
    """
    return axis_incidences(index, parts, extent, nparts)


def distribute_vectors(
    matrix: SparseMatrix,
    parts: np.ndarray,
    nparts: int,
    *,
    equal: bool = False,
    backend="auto",
) -> VectorDistribution:
    """Assign owners to all input/output vector components.

    With ``equal=False`` (default) owners always lie inside the part set
    touching the component's column/row (when non-empty), so the simulated
    word count equals the communication volume of eqn (3).

    With ``equal=True`` (square matrices only) the input and output
    distributions are forced identical — ``owner(v_j) == owner(u_j)`` —
    the constraint iterative solvers impose and that the enhanced models
    of Ucar & Aykanat (paper ref. [7]) optimize for.  The owner of index
    ``j`` is drawn from the intersection of the column-``j`` and
    row-``j`` part sets when possible; otherwise from their union, which
    costs extra communicated words exactly as the paper notes ("may cause
    extra communication for matrices with zeros on the main diagonal").
    Use :func:`expected_phase_words` to account for the surplus.

    ``backend`` selects the :mod:`repro.kernels` backend running the
    greedy loop (``"auto"`` / ``"python"`` / ``"numba"`` or an instance);
    backends are bit-compatible, so this is a speed knob only.
    """
    from repro.kernels import resolve_backend

    nparts = check_pos_int(nparts, "nparts")
    parts = check_nonzero_parts(matrix, parts, nparts)
    m, n = matrix.shape
    col_ptr, col_parts = _axis_part_sets(matrix.cols, parts, n, nparts)
    row_ptr, row_parts = _axis_part_sets(matrix.rows, parts, m, nparts)
    fallback = np.arange(nparts, dtype=np.int64)
    if equal:
        if m != n:
            raise SimulationError(
                "equal input/output distribution requires a square matrix"
            )
        owner = _greedy_equal_owners(
            col_ptr, col_parts, row_ptr, row_parts, n, nparts, fallback
        )
        dist = VectorDistribution(
            input_owner=owner, output_owner=owner.copy(), nparts=nparts
        )
    else:
        kernels = resolve_backend(backend)
        input_owner = kernels.greedy_owners(
            col_ptr, col_parts, n, nparts, fallback
        )
        output_owner = kernels.greedy_owners(
            row_ptr, row_parts, m, nparts, fallback
        )
        dist = VectorDistribution(
            input_owner=input_owner,
            output_owner=output_owner,
            nparts=nparts,
        )
    dist.validate_against(matrix)
    return dist


def _greedy_equal_owners(
    col_ptr: np.ndarray,
    col_flat: np.ndarray,
    row_ptr: np.ndarray,
    row_flat: np.ndarray,
    extent: int,
    nparts: int,
    fallback_balance: np.ndarray,
) -> np.ndarray:
    """One common owner per index, minimizing surplus words first, load
    second.

    Choosing owner ``s`` for index ``j`` costs ``|P_j \\ {s}|`` fan-out
    sends plus ``|R_j \\ {s}|`` fan-in receives; any ``s`` in the
    intersection achieves the eqn-(3) minimum for that index.

    Indices whose column and row sets union to a single part are *forced*
    (the owner has no alternative) and *free* (both set differences are
    empty, so they never touch the running loads) — they are assigned
    vectorized, and only the contended indices go through the sequential
    greedy loop, in index order.  Because the hoisted indices contribute
    zero load, the loop sees the exact load sequence of the historical
    all-indices loop: the result is bit-identical.
    """
    owners = np.full(extent, -1, dtype=np.int64)
    col_lam = np.diff(col_ptr)
    row_lam = np.diff(row_ptr)
    col_single = col_lam == 1
    row_single = row_lam == 1
    first_col = np.full(extent, -1, dtype=np.int64)
    first_col[col_single] = col_flat[col_ptr[:-1][col_single]]
    first_row = np.full(extent, -1, dtype=np.int64)
    first_row[row_single] = row_flat[row_ptr[:-1][row_single]]
    forced = (
        (col_single & (row_lam == 0))
        | (row_single & (col_lam == 0))
        | (col_single & row_single & (first_col == first_row))
    )
    owners[forced] = np.where(
        col_single[forced], first_col[forced], first_row[forced]
    )
    contended = np.flatnonzero(~forced & (col_lam + row_lam > 0))
    if contended.size:
        load = [0] * nparts
        col_ptr_l = col_ptr.tolist()
        row_ptr_l = row_ptr.tolist()
        for j in contended.tolist():
            cols = set(col_flat[col_ptr_l[j] : col_ptr_l[j + 1]].tolist())
            rows = set(row_flat[row_ptr_l[j] : row_ptr_l[j + 1]].tolist())
            both = cols & rows
            candidates = both or (cols | rows)
            s = min(candidates, key=lambda p: (load[p], p))
            owners[j] = s
            load[s] += len(cols - {s}) + len(rows - {s})
    empty = owners < 0
    if empty.any():
        idx = np.flatnonzero(empty)
        owners[idx] = fallback_balance[np.arange(idx.size) % nparts]
    return owners


def expected_phase_words(
    matrix: SparseMatrix,
    parts: np.ndarray,
    dist: VectorDistribution,
) -> tuple[int, int]:
    """Exact fan-out/fan-in word counts implied by a vector distribution.

    For any (not necessarily sets-respecting) distribution: column ``j``
    moves ``|P_j \\ {owner(v_j)}|`` words in fan-out and row ``i`` moves
    ``|R_i \\ {owner(u_i)}|`` words in fan-in.  Equals the eqn-(3)
    breakdown whenever owners lie inside the touching sets.
    """
    parts = check_nonzero_parts(matrix, parts, dist.nparts)
    m, n = matrix.shape
    totals = []
    for index, owner, extent in (
        (matrix.cols, dist.input_owner, n),
        (matrix.rows, dist.output_owner, m),
    ):
        ptr, flat = _axis_part_sets(index, parts, extent, dist.nparts)
        line_of = np.repeat(np.arange(extent), np.diff(ptr))
        foreign = flat != owner[line_of]
        totals.append(int(np.count_nonzero(foreign)))
    return totals[0], totals[1]
