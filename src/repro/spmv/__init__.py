"""Parallel sparse matrix–vector multiplication substrate.

The paper's Section I motivates matrix partitioning with the four-step BSP
SpMV: (1) fan-out of input-vector entries, (2) local multiplication,
(3) fan-in of partial sums, (4) summation.  This subpackage provides:

* vector distribution — assigning an owner to every input/output vector
  component (:mod:`repro.spmv.vector_dist`);
* the BSP cost model used in Table II (:mod:`repro.spmv.bsp`);
* a full simulator that executes the four steps on a partitioned matrix,
  counts every communicated word, and verifies the distributed result
  against the sequential product (:mod:`repro.spmv.simulate`) — the
  ground-truth check that the volume of eqn (3) is really what a parallel
  run would communicate.
"""

from repro.spmv.vector_dist import (
    VectorDistribution,
    distribute_vectors,
    expected_phase_words,
)
from repro.spmv.bsp import BSPCost, bsp_cost
from repro.spmv.simulate import SimulationReport, simulate_spmv

__all__ = [
    "VectorDistribution",
    "distribute_vectors",
    "expected_phase_words",
    "BSPCost",
    "bsp_cost",
    "SimulationReport",
    "simulate_spmv",
]
