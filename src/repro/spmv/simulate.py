"""Distributed SpMV simulation — the ground truth for all volume math.

:func:`simulate_spmv` executes the paper's four steps on an actual
partitioning:

1. **fan-out** — each part determines which input entries ``v_j`` it needs
   (columns of its local nonzeros) but does not own; owners send them;
2. **local multiply** — each part computes partial sums over its nonzeros;
3. **fan-in** — parts send their partial sums for rows whose output entry
   they do not own;
4. **summation** — owners accumulate partial sums into ``u``.

All four steps run on flat arrays: fan-out needs are the distinct
``(part, column)`` pairs of the partitioning (one combined-key
``np.unique``), partial sums accumulate in float64 arrays grouped by
``(part, row)`` (:func:`repro.kernels.spmv.partial_sums` — no per-part
Python dicts on any path), and fan-in words are the groups whose part
does not own the output row.  Per-matrix buffers (the default input
vector, its sequential reference product, scratch) live on the cached
:class:`~repro.kernels.spmv.SpMVState`, so sweeps that evaluate one
matrix repeatedly stop rebuilding them.

The simulator then *verifies*:

* the assembled ``u`` equals the sequential ``A @ v``;
* the words moved in fan-out and fan-in equal the per-phase volumes of
  eqn (3) (when owners lie inside the touching part sets, as
  :func:`~repro.spmv.vector_dist.distribute_vectors` guarantees) —
  computed independently by :func:`expected_phase_words` through the
  incidence kernel, a different code path than the simulation counts;
* the per-part loads agree with :func:`repro.spmv.bsp.phase_loads`.

A disagreement raises :class:`~repro.errors.SimulationError` — this is the
package's strongest internal consistency check and is exercised by the
property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.volume import check_nonzero_parts, volume_breakdown
from repro.errors import SimulationError
from repro.kernels.spmv import partial_sums
from repro.sparse.matrix import SparseMatrix
from repro.spmv.bsp import BSPCost, phase_loads
from repro.spmv.vector_dist import (
    VectorDistribution,
    distribute_vectors,
    expected_phase_words,
)
from repro.utils.validation import check_pos_int

__all__ = ["SimulationReport", "simulate_spmv"]


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of a verified distributed SpMV run.

    Attributes
    ----------
    result:
        The assembled output vector ``u`` (length ``m``).
    words_fanout, words_fanin:
        Total words moved in each phase.
    messages_fanout, messages_fanin:
        Number of distinct (sender, receiver) pairs per phase (the
        message-count metric the paper mentions but does not optimize).
    bsp:
        Per-part loads / BSP cost of the run.
    volume:
        ``words_fanout + words_fanin`` — verified equal to eqn (3).
    """

    result: np.ndarray
    words_fanout: int
    words_fanin: int
    messages_fanout: int
    messages_fanin: int
    bsp: BSPCost

    @property
    def volume(self) -> int:
        return self.words_fanout + self.words_fanin


def simulate_spmv(
    matrix: SparseMatrix,
    parts: np.ndarray,
    nparts: int,
    v: np.ndarray | None = None,
    dist: VectorDistribution | None = None,
    *,
    rtol: float = 1e-9,
) -> SimulationReport:
    """Run and verify a distributed SpMV under ``parts``.

    Parameters
    ----------
    matrix:
        The matrix ``A``.
    parts:
        Part per canonical nonzero (values in ``[0, nparts)``).
    nparts:
        Number of processors.
    v:
        Input vector; defaults to ``1, 2, ..., n`` scaled to unit norm so
        index mix-ups change the result.
    dist:
        Vector distribution; greedy default.
    rtol:
        Relative tolerance for the result check.

    Raises
    ------
    SimulationError
        If the distributed result or any communication count disagrees
        with its analytic value.
    """
    nparts = check_pos_int(nparts, "nparts")
    parts = check_nonzero_parts(matrix, parts, nparts)
    m, n = matrix.shape
    state = matrix.spmv_state()
    if v is None:
        v = state.default_vector()
        reference = state.reference_result()
    else:
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.size != n:
            raise SimulationError(f"v must have length {n}, got {v.size}")
        reference = matrix.matvec(v)
    if dist is None:
        dist = distribute_vectors(matrix, parts, nparts)
    else:
        dist.validate_against(matrix)

    rows, cols, vals = matrix.rows, matrix.cols, matrix.vals

    # ------------------------------------------------------------------ #
    # Step 1: fan-out.  need (s, j): part s holds a nonzero in column j;
    # the owner of v_j sends one word for every foreign need.  (Fan-out
    # is complete by construction — the owner always stores its own
    # entry — so the value received for (s, j) is exactly v[j].)
    # ------------------------------------------------------------------ #
    if matrix.nnz:
        need = np.unique(parts * np.int64(n) + cols)
        need_part = need // n
        need_col = need - need_part * n
    else:
        need_part = need_col = np.empty(0, dtype=np.int64)
    need_owner = dist.input_owner[need_col]
    foreign_out = need_part != need_owner
    words_fanout = int(np.count_nonzero(foreign_out))
    messages_fanout = int(
        np.unique(
            need_owner[foreign_out] * np.int64(nparts)
            + need_part[foreign_out]
        ).size
    )

    # ------------------------------------------------------------------ #
    # Steps 2-4: local multiplication into per-(part, row) float64
    # partial sums, fan-in of the foreign ones, summation at the owners.
    # ------------------------------------------------------------------ #
    gparts, grows, gsums = partial_sums(
        rows, cols, vals, parts, v, m, state
    )
    u = np.zeros(m, dtype=np.float64)
    np.add.at(u, grows, gsums)  # owner accumulation, part-major order
    gowner = dist.output_owner[grows]
    foreign_in = gparts != gowner
    words_fanin = int(np.count_nonzero(foreign_in))
    messages_fanin = int(
        np.unique(
            gparts[foreign_in] * np.int64(nparts) + gowner[foreign_in]
        ).size
    )

    # ------------------------------------------------------------------ #
    # Verification.
    # ------------------------------------------------------------------ #
    if not np.allclose(u, reference, rtol=rtol, atol=rtol):
        worst = float(np.abs(u - reference).max(initial=0.0))
        raise SimulationError(
            f"distributed result disagrees with sequential SpMV "
            f"(max abs err {worst:.3e})"
        )
    expected_out, expected_in = expected_phase_words(matrix, parts, dist)
    if words_fanout != expected_out:
        raise SimulationError(
            f"fan-out words {words_fanout} != distribution-implied "
            f"{expected_out}"
        )
    if words_fanin != expected_in:
        raise SimulationError(
            f"fan-in words {words_fanin} != distribution-implied "
            f"{expected_in}"
        )
    # When owners respect the touching sets (the default distribution
    # guarantees it), the counts must ALSO equal eqn (3) exactly; an
    # equal input/output distribution may legitimately exceed it.
    breakdown = volume_breakdown(matrix, parts)
    if words_fanout < breakdown.fanout or words_fanin < breakdown.fanin:
        raise SimulationError(
            "simulated words fell below the eqn-(3) lower bound — "
            "volume accounting is inconsistent"
        )
    bsp = phase_loads(matrix, parts, nparts, dist)
    if int(bsp.fanout_send.sum()) != words_fanout or (
        int(bsp.fanin_send.sum()) != words_fanin
    ):
        raise SimulationError("BSP phase loads disagree with simulation")
    return SimulationReport(
        result=u,
        words_fanout=words_fanout,
        words_fanin=words_fanin,
        messages_fanout=messages_fanout,
        messages_fanin=messages_fanin,
        bsp=bsp,
    )
