"""Distributed SpMV simulation — the ground truth for all volume math.

:func:`simulate_spmv` executes the paper's four steps on an actual
partitioning, with every inter-processor word materialized in explicit
per-pair message buffers:

1. **fan-out** — each part determines which input entries ``v_j`` it needs
   (columns of its local nonzeros) but does not own; owners send them;
2. **local multiply** — each part computes partial sums over its nonzeros;
3. **fan-in** — parts send their partial sums for rows whose output entry
   they do not own;
4. **summation** — owners accumulate partial sums into ``u``.

The simulator then *verifies*:

* the assembled ``u`` equals the sequential ``A @ v``;
* the words moved in fan-out and fan-in equal the per-phase volumes of
  eqn (3) (when owners lie inside the touching part sets, as
  :func:`~repro.spmv.vector_dist.distribute_vectors` guarantees);
* the per-part loads agree with :func:`repro.spmv.bsp.phase_loads`.

A disagreement raises :class:`~repro.errors.SimulationError` — this is the
package's strongest internal consistency check and is exercised by the
property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.volume import check_nonzero_parts, volume_breakdown
from repro.errors import SimulationError
from repro.sparse.matrix import SparseMatrix
from repro.spmv.bsp import BSPCost, phase_loads
from repro.spmv.vector_dist import (
    VectorDistribution,
    distribute_vectors,
    expected_phase_words,
)
from repro.utils.validation import check_pos_int

__all__ = ["SimulationReport", "simulate_spmv"]


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of a verified distributed SpMV run.

    Attributes
    ----------
    result:
        The assembled output vector ``u`` (length ``m``).
    words_fanout, words_fanin:
        Total words moved in each phase.
    messages_fanout, messages_fanin:
        Number of distinct (sender, receiver) pairs per phase (the
        message-count metric the paper mentions but does not optimize).
    bsp:
        Per-part loads / BSP cost of the run.
    volume:
        ``words_fanout + words_fanin`` — verified equal to eqn (3).
    """

    result: np.ndarray
    words_fanout: int
    words_fanin: int
    messages_fanout: int
    messages_fanin: int
    bsp: BSPCost

    @property
    def volume(self) -> int:
        return self.words_fanout + self.words_fanin


def simulate_spmv(
    matrix: SparseMatrix,
    parts: np.ndarray,
    nparts: int,
    v: np.ndarray | None = None,
    dist: VectorDistribution | None = None,
    *,
    rtol: float = 1e-9,
) -> SimulationReport:
    """Run and verify a distributed SpMV under ``parts``.

    Parameters
    ----------
    matrix:
        The matrix ``A``.
    parts:
        Part per canonical nonzero (values in ``[0, nparts)``).
    nparts:
        Number of processors.
    v:
        Input vector; defaults to ``1, 2, ..., n`` scaled to unit norm so
        index mix-ups change the result.
    dist:
        Vector distribution; greedy default.
    rtol:
        Relative tolerance for the result check.

    Raises
    ------
    SimulationError
        If the distributed result or any communication count disagrees
        with its analytic value.
    """
    nparts = check_pos_int(nparts, "nparts")
    parts = check_nonzero_parts(matrix, parts, nparts)
    m, n = matrix.shape
    if v is None:
        v = (np.arange(1, n + 1, dtype=np.float64)) / n
    else:
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.size != n:
            raise SimulationError(f"v must have length {n}, got {v.size}")
    if dist is None:
        dist = distribute_vectors(matrix, parts, nparts)
    else:
        dist.validate_against(matrix)

    rows, cols, vals = matrix.rows, matrix.cols, matrix.vals

    # ------------------------------------------------------------------ #
    # Step 1: fan-out.  needed[(s, j)]: part s holds a nonzero in column j.
    # ------------------------------------------------------------------ #
    need_pairs = np.unique(np.stack([parts, cols], axis=1), axis=0)
    need_owner = dist.input_owner[need_pairs[:, 1]]
    foreign_in = need_pairs[need_owner != need_pairs[:, 0]]
    # Local copies of v: each part stores the entries it owns ...
    vlocal = [dict() for _ in range(nparts)]
    for j, owner in enumerate(dist.input_owner.tolist()):
        vlocal[owner][j] = v[j]
    # ... plus the entries received during fan-out.
    words_fanout = int(foreign_in.shape[0])
    msg_pairs_out = set()
    for s, j in foreign_in.tolist():
        owner = int(dist.input_owner[j])
        msg_pairs_out.add((owner, s))
        # The message carries (index, value) from the owner's storage.
        vlocal[s][j] = vlocal[owner][j]
    messages_fanout = len(msg_pairs_out)

    # ------------------------------------------------------------------ #
    # Step 2: local multiplication into per-part partial sums.
    # ------------------------------------------------------------------ #
    partials = [dict() for _ in range(nparts)]
    for k in range(matrix.nnz):
        s = int(parts[k])
        i = int(rows[k])
        j = int(cols[k])
        try:
            vj = vlocal[s][j]
        except KeyError:
            raise SimulationError(
                f"part {s} multiplies column {j} without having received "
                "its input entry — fan-out is incomplete"
            ) from None
        acc = partials[s]
        acc[i] = acc.get(i, 0.0) + vals[k] * vj

    # ------------------------------------------------------------------ #
    # Steps 3 + 4: fan-in and summation at the output owners.
    # ------------------------------------------------------------------ #
    u = np.zeros(m, dtype=np.float64)
    words_fanin = 0
    msg_pairs_in = set()
    for s in range(nparts):
        for i, val in partials[s].items():
            owner = int(dist.output_owner[i])
            if owner != s:
                words_fanin += 1
                msg_pairs_in.add((s, owner))
            u[i] += val  # accumulated at the owner
    messages_fanin = len(msg_pairs_in)

    # ------------------------------------------------------------------ #
    # Verification.
    # ------------------------------------------------------------------ #
    reference = matrix.matvec(v)
    if not np.allclose(u, reference, rtol=rtol, atol=rtol):
        worst = float(np.abs(u - reference).max(initial=0.0))
        raise SimulationError(
            f"distributed result disagrees with sequential SpMV "
            f"(max abs err {worst:.3e})"
        )
    expected_out, expected_in = expected_phase_words(matrix, parts, dist)
    if words_fanout != expected_out:
        raise SimulationError(
            f"fan-out words {words_fanout} != distribution-implied "
            f"{expected_out}"
        )
    if words_fanin != expected_in:
        raise SimulationError(
            f"fan-in words {words_fanin} != distribution-implied "
            f"{expected_in}"
        )
    # When owners respect the touching sets (the default distribution
    # guarantees it), the counts must ALSO equal eqn (3) exactly; an
    # equal input/output distribution may legitimately exceed it.
    breakdown = volume_breakdown(matrix, parts)
    if words_fanout < breakdown.fanout or words_fanin < breakdown.fanin:
        raise SimulationError(
            "simulated words fell below the eqn-(3) lower bound — "
            "volume accounting is inconsistent"
        )
    bsp = phase_loads(matrix, parts, nparts, dist)
    if int(bsp.fanout_send.sum()) != words_fanout or (
        int(bsp.fanin_send.sum()) != words_fanin
    ):
        raise SimulationError("BSP phase loads disagree with simulation")
    return SimulationReport(
        result=u,
        words_fanout=words_fanout,
        words_fanin=words_fanin,
        messages_fanout=messages_fanout,
        messages_fanin=messages_fanin,
        bsp=bsp,
    )
