"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
subclasses mirror the major subsystems: sparse-matrix handling, hypergraph
construction, partitioning, and the evaluation harness.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SparseFormatError",
    "MatrixFormatError",
    "MatrixMarketError",
    "HypergraphError",
    "PartitioningError",
    "BalanceError",
    "SplitError",
    "SimulationError",
    "EvaluationError",
    "ExecutionError",
    "TaskTimeout",
    "WorkerCrash",
    "DegradedExecution",
    "ResultValidationError",
    "ShmAttachError",
    "InjectedFault",
    "ServeError",
    "ProtocolError",
    "RequestRejected",
    "RequestFailed",
    "CircuitOpen",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SparseFormatError(ReproError):
    """A sparse matrix argument is malformed (bad shape, dtype, indices...)."""


class MatrixFormatError(SparseFormatError):
    """A matrix file's *content* is malformed (bad header, out-of-range
    indices, truncated body, non-finite entries...).

    Structured: ``source`` names the file (or ``"<stream>"``) and
    ``line`` the 1-based line the parser rejected (``0`` = whole-file
    problems such as a truncated body), and both are baked into the
    message — so an upload boundary (the serving daemon's 400 path) can
    hand the text straight back to the client and a human knows exactly
    what to fix.  Parsers raising this must never leak the raw
    ``ValueError``/``IndexError`` that detected the problem.
    """

    def __init__(self, message: str, *, source: str = "", line: int = 0):
        where = source
        if line:
            where = f"{where or '<stream>'}:{line}"
        super().__init__(f"{where}: {message}" if where else message)
        self.source = source
        self.line = line


class MatrixMarketError(MatrixFormatError):
    """A MatrixMarket file or stream could not be parsed or written."""


class HypergraphError(ReproError):
    """A hypergraph is structurally invalid (bad CSR arrays, pin ids...)."""


class PartitioningError(ReproError):
    """The partitioner failed to produce a valid partitioning."""


class BalanceError(PartitioningError):
    """No partitioning satisfying the load-balance constraint exists/was found."""


class SplitError(ReproError):
    """Algorithm 1 produced or was given an invalid split ``A = Ar + Ac``."""


class SimulationError(ReproError):
    """The distributed SpMV simulation detected an inconsistency."""


class EvaluationError(ReproError):
    """The evaluation harness was misconfigured or given inconsistent data."""


class ExecutionError(ReproError):
    """The parallel execution layer failed to deliver a task's result.

    Base class of the structured failure records the hardened executor
    produces (see :mod:`repro.utils.executor`): every subclass carries
    ``task`` (a short label of the work item) and ``attempt`` (1-based
    attempt number) so reports can say *which* run was retried or
    degraded, not merely that something went wrong.
    """

    def __init__(self, message: str, *, task: str = "", attempt: int = 0):
        super().__init__(message)
        self.task = task
        self.attempt = attempt

    def brief(self) -> str:
        """A compact one-token-ish record for per-run failure lists."""
        kind = type(self).__name__
        where = f"[{self.task}]" if self.task else ""
        when = f"@attempt{self.attempt}" if self.attempt else ""
        return f"{kind}{where}{when}"


class TaskTimeout(ExecutionError):
    """A task exceeded its per-task deadline; its worker was killed by
    the watchdog (process backends) or abandoned (thread backend)."""

    def __init__(self, message: str, *, task: str = "", attempt: int = 0,
                 timeout: float | None = None):
        super().__init__(message, task=task, attempt=attempt)
        self.timeout = timeout


class WorkerCrash(ExecutionError):
    """A worker process died abruptly (signal, OOM kill, ``os._exit``)
    while the task was in flight; the pool was rebuilt."""


class DegradedExecution(ExecutionError):
    """A task exhausted its retry budget on the worker pool and was
    completed by serial in-process execution instead.

    Raised only when even the serial fallback is impossible; normally it
    is *recorded* (``.brief()``) on the completed result so a sweep
    finishes with an annotation instead of aborting.
    """


class ResultValidationError(ExecutionError):
    """A worker-returned result violated the partition invariants
    (assignment completeness, part-id range, or volume consistency) —
    shared-memory corruption or a buggy backend, never silently kept."""


class ShmAttachError(ExecutionError):
    """Attaching a shared-memory matrix segment failed (evicted/unlinked).

    Callers holding the instance name may fall back to rebuilding the
    matrix by name (the sweep engine does); the message names both the
    segment and the matrix so the fallback path is obvious from logs.
    """


class InjectedFault(ReproError):
    """An artificial failure fired by the deterministic fault-injection
    harness (:mod:`repro.utils.faults`).  Never raised in production —
    only under an installed fault plan."""


class ServeError(ReproError):
    """Base class of the partitioning-service errors (:mod:`repro.serve`)."""


class ProtocolError(ServeError):
    """A request is malformed (bad JSON, unknown fields, invalid knobs).

    The daemon maps this to HTTP 400 — client error, never a worker
    crash.
    """


class RequestRejected(ServeError):
    """The service refused admission (saturated or draining — HTTP 503).

    ``retry_after`` carries the server's suggested backoff in seconds;
    the client's retry loop honours it (capped by its own policy).
    """

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 status: int = 503):
        super().__init__(message)
        self.retry_after = retry_after
        self.status = status


class RequestFailed(ServeError):
    """The service accepted the request but could not complete it.

    ``briefs`` lists the structured failure records
    (:meth:`ExecutionError.brief`-style strings) the hardened execution
    path accumulated — the request's isolated failure story, never the
    daemon's.
    """

    def __init__(self, message: str, *, briefs: tuple = (),
                 status: int = 500):
        super().__init__(message)
        self.briefs = tuple(briefs)
        self.status = status


class CircuitOpen(ServeError):
    """The client's circuit breaker is open: consecutive failures crossed
    the threshold, so calls fail fast (no network I/O) until the reset
    window elapses."""
