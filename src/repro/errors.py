"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
subclasses mirror the major subsystems: sparse-matrix handling, hypergraph
construction, partitioning, and the evaluation harness.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SparseFormatError",
    "MatrixMarketError",
    "HypergraphError",
    "PartitioningError",
    "BalanceError",
    "SplitError",
    "SimulationError",
    "EvaluationError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SparseFormatError(ReproError):
    """A sparse matrix argument is malformed (bad shape, dtype, indices...)."""


class MatrixMarketError(SparseFormatError):
    """A MatrixMarket file or stream could not be parsed or written."""


class HypergraphError(ReproError):
    """A hypergraph is structurally invalid (bad CSR arrays, pin ids...)."""


class PartitioningError(ReproError):
    """The partitioner failed to produce a valid partitioning."""


class BalanceError(PartitioningError):
    """No partitioning satisfying the load-balance constraint exists/was found."""


class SplitError(ReproError):
    """Algorithm 1 produced or was given an invalid split ``A = Ar + Ac``."""


class SimulationError(ReproError):
    """The distributed SpMV simulation detected an inconsistency."""


class EvaluationError(ReproError):
    """The evaluation harness was misconfigured or given inconsistent data."""
