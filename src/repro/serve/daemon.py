"""The always-available partitioning daemon.

``repro-partition serve`` turns the batch pipeline into a resident
service: matrices stay published in the shared-memory store, worker
pools stay warm (JIT compilation is paid once, at startup), and every
partitioning request is executed through the hardened
:func:`repro.utils.executor.resilient_call` path — a request that
crashes, hangs, or poisons its worker gets a structured failure brief in
*its own* response while every concurrent request completes untouched.
The daemon process itself never dies for a request's sins.

Resilience is layered exactly like ``docs/robustness.md`` prescribes:

admission control
    Malformed requests die at the boundary (HTTP 400 with the parse
    error; oversized bodies are refused *without buffering* as 413).
    At most ``max_inflight`` requests execute concurrently and at most
    ``queue_cap`` more may wait; everything beyond that is shed
    immediately as 503 + ``Retry-After`` — the daemon degrades by
    refusing work, never by falling over under it.
anytime degradation
    Each request's ``timeout`` becomes a *soft* deadline handed to the
    partitioner, which stops at its next pass/level boundary and
    returns the incumbent: an expiring request answers **200 with
    ``degraded: true``** (plus the ``Degraded[...]`` briefs) instead of
    a 504, and the watchdog's hard kill waits ``deadline_grace``
    seconds behind the soft deadline.  Under queue pressure the soft
    deadline shrinks (``overload_deadline_factor``) — everyone gets a
    slightly worse answer before anyone is shed.  Degraded results are
    never cached.
crash isolation
    Work runs in pool workers under a per-request
    :class:`~repro.utils.executor.RetryPolicy` deadline; the watchdog
    SIGKILLs hung workers and crashed ones are retried with capped
    backoff.  With the budget exhausted the daemon *refuses* the batch
    layer's inline fallback (:func:`resilient_call` with no fallback):
    running a request that repeatedly killed workers inside the daemon's
    own address space would trade everyone's availability for one
    caller's answer.  The request gets a 500 (504 when every failure was
    a deadline) carrying the full brief trail.
crash-safe memoization
    Results are cached content-addressed (see
    :mod:`repro.serve.cache`); the journal is fsynced per entry and
    torn-tail tolerant, so a SIGKILLed daemon restarts warm with zero
    corrupted entries.
graceful drain
    SIGTERM (or ``POST /drain``) stops admission (``/readyz`` flips to
    503), lets inflight requests finish, then exits 0.

Endpoints: ``GET /healthz`` (liveness), ``GET /readyz`` (readiness),
``GET /stats`` (counters), ``GET /metrics`` (Prometheus text
exposition of the :mod:`repro.obs` registry), ``POST /partition``
(the work), ``POST /drain`` (graceful shutdown).  See
``docs/serving.md`` and ``docs/observability.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import json
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.recursive import partition
from repro.core.validate import validate_parts
from repro.errors import (
    DegradedExecution,
    EvaluationError,
    MatrixFormatError,
    ProtocolError,
    RequestFailed,
    RequestRejected,
    ResultValidationError,
)
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.serve.cache import PartitionCache
from repro.serve.protocol import (
    PartitionRequest,
    http_response,
    matrix_digest,
    read_http_request,
)
from repro.sparse.io_mm import read_matrix_market
from repro.sparse.matrix import SparseMatrix
from repro.utils import faults
from repro.utils.deadline import Deadline
from repro.utils.executor import (
    RetryPolicy,
    SharedMatrixStore,
    resilient_call,
    shutdown_pools,
)

__all__ = ["ServeConfig", "PartitionDaemon", "run_daemon"]


@dataclass
class ServeConfig:
    """Capacity and resilience knobs of one daemon instance."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (written to ``port_file`` and
    #: announced on stdout — how tests and scripts discover it).
    port: int = 0
    #: Concurrently *executing* requests (each occupies one pool worker
    #: and one dispatch thread).
    max_inflight: int = 2
    #: Admitted-but-waiting requests beyond ``max_inflight``; everything
    #: past the sum is shed as 503.
    queue_cap: int = 8
    #: Request body ceiling in bytes; larger uploads are refused as 413
    #: without ever being buffered.
    max_body: int = 8 * 1024 * 1024
    #: Default per-request deadline (seconds) on each worker attempt;
    #: requests may lower/raise it via their ``timeout`` field.
    timeout: float = 60.0
    #: Headroom (seconds) between a request's *soft* anytime deadline —
    #: handed to the partitioner, which stops at its next pass/level
    #: boundary and returns the incumbent — and the watchdog's hard
    #: SIGKILL.  The grace is what turns "deadline missed" into a 200
    #: with ``degraded: true`` instead of a killed worker and a 504.
    deadline_grace: float = 5.0
    #: Overload rung: once the admission queue is more than half full,
    #: new requests get their soft deadline multiplied by this factor —
    #: the daemon answers everyone a bit worse before it sheds anyone.
    #: ``1.0`` disables the rung.
    overload_deadline_factor: float = 0.5
    #: Worker-attempt retry budget per request.
    retries: int = 1
    #: Pool size backing request execution.
    jobs: int = 2
    #: ``"process"`` isolates requests in pool workers (the point);
    #: ``"thread"`` exists for tests and numba-less environments.
    backend: str = "process"
    #: Partition-cache journal path (``None``/empty = in-memory only).
    cache_path: Optional[str] = None
    cache_cap: int = 512
    #: Where to write the bound port once listening (test discovery).
    port_file: Optional[str] = None
    #: Skip the startup warmup partition (tests that only probe HTTP).
    warmup: bool = True
    #: JSONL trace sink (``None`` = tracing disabled, the default).
    #: When set, every request produces one stitched span tree —
    #: admission, cache probe, dispatch, worker attempts, FM passes —
    #: in this file (see ``docs/observability.md``).
    trace_path: Optional[str] = None


_SERVE_EVENTS = _metrics.counter(
    "repro_serve_events_total",
    "Daemon request-lifecycle events by kind.",
    ("event",),
)
_SERVE_LATENCY = _metrics.histogram(
    "repro_serve_request_seconds",
    "POST /partition latency by outcome (hit/miss/degraded/shed/failed).",
    ("outcome",),
)

#: The daemon's lifecycle counters; ``degraded_responses`` counts 200s
#: answered with ``degraded: true`` (anytime incumbent) and
#: ``deadline_misses`` counts requests whose soft deadline expired
#: (degraded 200s *and* 504s).
_STAT_EVENTS = (
    "requests", "served", "cached", "failed", "rejected", "shed",
    "degraded_responses", "deadline_misses",
)


class _Stats:
    """Daemon counters, migrated onto the shared metrics registry.

    Each count lives as a ``repro_serve_events_total{event=...}`` child,
    so ``GET /stats`` and ``GET /metrics`` read the same source of
    truth.  The ``/stats`` JSON shape is unchanged: attribute reads
    return plain ints *relative to this daemon's start* (the registry is
    process-global and outlives a daemon instance — tests spin up
    several per process — while the historical hand-maintained ints
    started at zero with the daemon).
    """

    def __init__(self) -> None:
        self.started = time.monotonic()
        self._base = {
            name: _SERVE_EVENTS.labels(event=name).value
            for name in _STAT_EVENTS
        }

    def inc(self, name: str, amount: int = 1) -> None:
        _SERVE_EVENTS.labels(event=name).inc(amount)

    def __getattr__(self, name: str) -> int:
        base = self.__dict__.get("_base")
        if base is not None and name in base:
            return int(_SERVE_EVENTS.labels(event=name).value - base[name])
        raise AttributeError(name)


def _execute_request(arg):
    """Worker-side body of one request (module-level: must pickle).

    Receives a shared-memory handle plus the result-determining knobs;
    returns ``(parts, info)`` — a *tuple* so the fault layer's poison
    kind can reach the array, and so the daemon-side validator has a
    fixed shape to check.  The ``executor.task``/``executor.result``
    fault points make requests injectable exactly like batch tasks.
    """
    import dataclasses

    from repro.partitioner.config import get_config

    handle, spec = arg
    faults.fault_point("executor.task")
    matrix = handle.open()
    cfg = get_config(spec["config"])
    if spec.get("kway_vcycles", 0) != cfg.kway_vcycles:
        cfg = dataclasses.replace(
            cfg, kway_vcycles=spec["kway_vcycles"]
        )
    # The soft deadline starts ticking *here*, per attempt: a retry
    # after a crashed worker gets the full anytime window again, and
    # the watchdog's hard kill sits ``deadline_grace`` behind it.
    deadline = (
        Deadline(spec["deadline"]) if spec.get("deadline") else None
    )
    with _trace.activate(
        spec.get("trace"), "worker.partition",
        nparts=spec["nparts"], method=spec["method"],
    ):
        res = partition(
            matrix,
            spec["nparts"],
            method=spec["method"],
            eps=spec["eps"],
            refine=spec["refine"],
            config=cfg,
            seed=spec["seed"],
            jobs=1,
            algo=spec["algo"],
            deadline=deadline,
        )
    info = {
        "volume": int(res.volume),
        "max_part": int(res.max_part),
        "feasible": bool(res.feasible),
        "imbalance": float(res.imbalance),
        "seconds": float(res.seconds),
        "failures": list(res.failures),
        "degraded": any(b.startswith("Degraded") for b in res.failures),
    }
    return faults.fault_point("executor.result", (res.parts, info))


class PartitionDaemon:
    """One serving instance; ``run()`` is the whole lifecycle."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        if self.config.backend not in ("process", "thread"):
            raise ValueError(
                f"backend must be 'process' or 'thread', got "
                f"{self.config.backend!r}"
            )
        self.cache = PartitionCache(
            self.config.cache_path or None, cap=self.config.cache_cap
        )
        self.stats = _Stats()
        self._cache_error_surfaced = False
        self.port: Optional[int] = None
        self._ready = False
        self._draining = False
        self._inflight = 0
        self._stop = asyncio.Event()
        self._sem = asyncio.Semaphore(self.config.max_inflight)
        #: Dispatch threads: each admitted request blocks one of these
        #: on :func:`resilient_call` while the event loop stays free.
        self._exec = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="serve-dispatch",
        )

    # ------------------------------------------------------------------ #
    # Request execution
    # ------------------------------------------------------------------ #
    def _resolve_matrix(self, req: PartitionRequest) -> SparseMatrix:
        """The request's matrix (resident instance or parsed upload).

        Anything wrong here is the *caller's* fault → 400.
        """
        if req.instance:
            from repro.sparse.collection import load_instance

            try:
                return load_instance(req.instance)
            except EvaluationError as exc:
                raise ProtocolError(str(exc)) from None
        try:
            return read_matrix_market(io.StringIO(req.matrix_market))
        except MatrixFormatError as exc:
            raise ProtocolError(f"bad matrix_market upload: {exc}") from None

    def _dispatch(
        self,
        req: PartitionRequest,
        matrix: SparseMatrix,
        soft_deadline: float | None = None,
        trace: object = None,
    ) -> tuple[dict, bool]:
        """Blocking execution of one cache-miss request (dispatch
        thread): publish, run hardened, validate at the trust boundary,
        assemble the cacheable result dict plus a degraded flag.

        ``soft_deadline`` is the anytime budget (seconds) the worker
        hands to the partitioner; the watchdog's hard kill sits
        ``deadline_grace`` behind it, so an expiring request answers
        with its incumbent instead of dying.
        """
        store = SharedMatrixStore.for_matrix(matrix, label=req.label())
        if soft_deadline is None:
            soft_deadline = req.timeout or self.config.timeout
        spec = {
            "nparts": req.nparts,
            "eps": req.eps,
            "method": req.method,
            "refine": req.refine,
            "algo": req.algo,
            "kway_vcycles": req.kway_vcycles,
            "seed": req.seed,
            "config": req.config,
            "deadline": soft_deadline,
        }
        policy = RetryPolicy(
            timeout=soft_deadline + self.config.deadline_grace,
            retries=self.config.retries,
        )
        label = req.label()
        nnz, nparts = matrix.nnz, req.nparts

        def check(_i, value):
            if not (isinstance(value, tuple) and len(value) == 2):
                raise ResultValidationError(
                    f"worker returned {type(value).__name__}, not a "
                    f"(parts, info) pair", task=label,
                )
            validate_parts(value[0], nnz, nparts, context=label)

        kind = "thread" if self.config.backend == "thread" else "process"
        with _trace.activate(trace, "serve.dispatch", label=label) as dsp:
            # The worker parents its spans under this dispatch span —
            # the envelope rides the spec dict like the deadline does.
            spec["trace"] = dsp.context()
            value, failures = resilient_call(
                kind, self.config.jobs, _execute_request,
                (store.handle, spec),
                policy=policy, validate=check, label=label,
            )
        parts, info = value
        result = {
            "instance": req.instance,
            "digest": matrix_digest(matrix),
            "nparts": req.nparts,
            "eps": req.eps,
            "method": req.method,
            "refine": req.refine,
            "algo": req.algo,
            "kway_vcycles": req.kway_vcycles,
            "seed": req.seed,
            "config": req.config,
            "volume": info["volume"],
            "max_part": info["max_part"],
            "feasible": info["feasible"],
            "imbalance": info["imbalance"],
            "seconds": info["seconds"],
            "parts": np.asarray(parts).tolist(),
            "failures": list(info.get("failures", ()))
            + [f.brief() for f in failures],
        }
        return result, bool(info.get("degraded", False))

    async def _partition(self, payload) -> tuple[int, dict, dict]:
        """The ``POST /partition`` pipeline; returns
        ``(status, body, extra_headers)``."""
        t0 = time.monotonic()
        req = PartitionRequest.from_payload(payload)
        matrix = self._resolve_matrix(req)
        key = req.cache_key(matrix_digest(matrix))
        # Detached (explicit-parent) span: requests interleave on the
        # event-loop thread, so stack-implicit nesting would braid
        # concurrent requests into each other's trees.
        sp = _trace.detached_span(
            "serve.request", label=req.label(), nparts=req.nparts,
            method=req.method,
        )
        outcome = "failed"
        try:
            # Cache probe *before* admission: hits must stay fast (and
            # shed-free) while the execution lanes are saturated.
            hit = self.cache.get(key)
            if hit is not None:
                outcome = "hit"
                sp.event("cache_hit")
                self.stats.inc("cached")
                self.stats.inc("served")
                return 200, self._render(req, hit, cached=True), {}
            sp.event("cache_miss")

            if self._draining:
                outcome = "shed"
                sp.event("shed", reason="draining")
                raise RequestRejected(
                    "daemon is draining", retry_after=2.0
                )
            waiting = self._inflight - (
                self.config.max_inflight - getattr(self._sem, "_value", 0)
            )
            if (
                self._inflight
                >= self.config.max_inflight + self.config.queue_cap
            ):
                outcome = "shed"
                sp.event(
                    "shed", reason="queue_full", inflight=self._inflight
                )
                self.stats.inc("shed")
                raise RequestRejected(
                    f"admission queue full ({self._inflight} requests "
                    f"admitted)",
                    retry_after=round(0.2 * max(1, waiting), 2),
                )

            # Anytime/overload rung: the soft deadline the partitioner
            # gets.  Above the queue's high-water mark it shrinks — the
            # daemon answers everyone a little worse *before* it sheds
            # anyone.
            soft = req.timeout or self.config.timeout
            if waiting > self.config.queue_cap // 2:
                soft = max(
                    0.05, soft * self.config.overload_deadline_factor
                )
                sp.event("overload_deadline", soft=soft)
            sp.event("admitted", waiting=waiting)

            self._inflight += 1
            try:
                async with self._sem:
                    # Daemon-side fault point: fires once the request
                    # holds an execution lane (chaos tests poison
                    # exactly here).
                    faults.fault_point("serve.request")
                    loop = asyncio.get_running_loop()
                    result, degraded = await loop.run_in_executor(
                        self._exec, self._dispatch, req, matrix, soft,
                        sp.context(),
                    )
            except DegradedExecution as exc:
                self.stats.inc("failed")
                briefs = [f.brief() for f in getattr(exc, "failures", ())]
                status = 504 if briefs and all(
                    "Timeout" in b for b in briefs
                ) else 500
                if status == 504:
                    self.stats.inc("deadline_misses")
                sp.event("retry_budget_exhausted", status=status)
                raise RequestFailed(
                    f"request {req.label()} exhausted its retry budget; "
                    f"inline fallback is disabled in the daemon",
                    briefs=briefs, status=status,
                ) from None
            finally:
                self._inflight -= 1

            if degraded:
                # The soft deadline expired inside the worker: the
                # incumbent partition comes back as a 200 with
                # ``degraded: true`` and the ``Degraded[...]`` briefs
                # saying what was cut short.  Never cached — a retry
                # with more headroom deserves (and will get) the
                # full-quality answer under the same key.
                outcome = "degraded"
                sp.event("degraded")
                self.stats.inc("deadline_misses")
                self.stats.inc("degraded_responses")
                self.stats.inc("served")
                body = self._render(req, result, cached=False)
                body["degraded"] = True
                return 200, body, {}

            outcome = "miss"
            try:
                self.cache.put(key, result)
            except Exception as exc:  # noqa: BLE001 - cache loss only
                # A broken cache degrades memoization, never the request.
                print(
                    f"repro-serve: cache write failed ({exc}); serving "
                    f"uncached", file=sys.stderr, flush=True,
                )
            self.stats.inc("served")
            body = self._render(req, result, cached=False)
            if self.cache.read_only and not self._cache_error_surfaced:
                # Surface the journal degradation once, on the response
                # that (first) observed it; /stats carries it
                # permanently.
                self._cache_error_surfaced = True
                body["failures"] = list(body.get("failures", ())) + [
                    self.cache.write_error
                ]
            return 200, body, {}
        finally:
            sp.set(outcome=outcome)
            sp.end()
            _SERVE_LATENCY.labels(outcome=outcome).observe(
                time.monotonic() - t0
            )

    @staticmethod
    def _render(req: PartitionRequest, result: dict, *, cached: bool) -> dict:
        body = dict(result)
        body["cached"] = cached
        if not req.include_parts:
            body.pop("parts", None)
        return body

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _on_connection(self, reader, writer) -> None:
        self.stats.inc("requests")
        try:
            status, body, extra = await self._route(reader)
        except ProtocolError as exc:
            self.stats.inc("rejected")
            status, body, extra = 400, {"error": str(exc)}, {}
        except RequestRejected as exc:
            status = exc.status
            body = {"error": str(exc), "retry_after": exc.retry_after}
            extra = {"Retry-After": f"{exc.retry_after:g}"}
        except RequestFailed as exc:
            status = exc.status
            body = {"error": str(exc), "failures": list(exc.briefs)}
            extra = {}
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - the daemon must live
            # The last line of defence: *nothing* a request does may
            # take the daemon down.  Unknown failures become opaque
            # 500s, with the detail on stderr for the operator.
            self.stats.inc("failed")
            print(
                f"repro-serve: unhandled {type(exc).__name__}: {exc}",
                file=sys.stderr, flush=True,
            )
            status, body = 500, {"error": f"internal error: {type(exc).__name__}"}
            extra = {}
        try:
            writer.write(http_response(status, body, extra))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    async def _route(self, reader) -> tuple[int, dict, dict]:
        request = await read_http_request(reader, self.config.max_body)
        if request is None:
            raise ProtocolError("empty request")
        method, path, _headers, body = request
        if body is None:
            self.stats.inc("shed")
            return 413, {
                "error": f"request body exceeds max_body="
                f"{self.config.max_body} bytes"
            }, {}
        if path == "/healthz":
            self._expect(method, "GET", path)
            return 200, {"ok": True, "draining": self._draining}, {}
        if path == "/readyz":
            self._expect(method, "GET", path)
            if self._ready and not self._draining:
                return 200, {"ready": True}, {}
            return 503, {
                "ready": False,
                "reason": "draining" if self._draining else "warming up",
            }, {"Retry-After": "1"}
        if path == "/stats":
            self._expect(method, "GET", path)
            return 200, self._stats_body(), {}
        if path == "/metrics":
            self._expect(method, "GET", path)
            # Prometheus text exposition 0.0.4 — a raw bytes body, which
            # ``http_response`` passes through untouched.
            return 200, _metrics.render_prometheus().encode("utf-8"), {
                "Content-Type": "text/plain; version=0.0.4; charset=utf-8"
            }
        if path == "/partition":
            self._expect(method, "POST", path)
            try:
                payload = json.loads(body.decode("utf-8") or "null")
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ProtocolError(f"request body is not JSON: {exc}") \
                    from None
            return await self._partition(payload)
        if path == "/drain":
            self._expect(method, "POST", path)
            self._stop.set()
            return 200, {"draining": True}, {}
        return 404, {"error": f"unknown path {path!r}"}, {}

    @staticmethod
    def _expect(method: str, want: str, path: str) -> None:
        if method != want:
            raise RequestRejected(
                f"{path} expects {want}, got {method}", status=405,
                retry_after=0.0,
            )

    def _stats_body(self) -> dict:
        s = self.stats
        return {
            "uptime": round(time.monotonic() - s.started, 3),
            "ready": self._ready,
            "draining": self._draining,
            "inflight": self._inflight,
            "requests": s.requests,
            "served": s.served,
            "failed": s.failed,
            "rejected": s.rejected,
            "shed": s.shed,
            "degraded_responses": s.degraded_responses,
            "deadline_misses": s.deadline_misses,
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": round(self.cache.hit_rate(), 4),
                "read_only": self.cache.read_only,
            },
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _warmup(self) -> None:
        """Pay the cold-start costs (pool spawn, JIT compilation) before
        declaring readiness, through the exact serving path."""
        rng = np.random.default_rng(0)
        n = 24
        rows = rng.integers(0, n, size=6 * n)
        cols = rng.integers(0, n, size=6 * n)
        matrix = SparseMatrix((n, n), rows, cols)
        req = PartitionRequest(instance="__warmup__", nparts=2)
        self._dispatch(req, matrix)

    async def run(self) -> int:
        """Serve until SIGTERM/SIGINT or ``POST /drain``; returns the
        exit code (0 on a clean drain)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(
                NotImplementedError, RuntimeError, ValueError
            ):
                loop.add_signal_handler(sig, self._stop.set)

        server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if self.config.port_file:
            with open(self.config.port_file, "w", encoding="utf-8") as fh:
                fh.write(str(self.port))
        if self.config.warmup:
            try:
                await loop.run_in_executor(self._exec, self._warmup)
            except Exception as exc:  # noqa: BLE001 - warmup is advisory
                # A failed warmup costs the first caller the JIT time;
                # refusing to serve over it would cost everyone.
                print(
                    f"repro-serve: warmup failed "
                    f"({type(exc).__name__}: {exc}); serving cold",
                    file=sys.stderr, flush=True,
                )
        self._ready = True
        print(
            f"repro-serve ready host={self.config.host} port={self.port} "
            f"cache={len(self.cache)} entries",
            flush=True,
        )

        async with server:
            await self._stop.wait()
            # Graceful drain: stop admitting, finish what is inflight.
            self._draining = True
            with contextlib.suppress(Exception):
                # An injected drain fault must degrade the drain (skip
                # straight to shutdown), never hang or crash it.
                faults.fault_point("serve.drain")
            # Let an in-flight ``POST /drain`` acknowledgement flush
            # before the listener goes away.
            await asyncio.sleep(0.05)
            deadline = time.monotonic() + max(
                5.0, self.config.timeout * (self.config.retries + 1)
            )
            while self._inflight and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            server.close()
            await server.wait_closed()

        self._exec.shutdown(wait=True)
        self.cache.close()
        shutdown_pools()
        print(
            f"repro-serve drained: {self.stats.served} served, "
            f"{self.stats.failed} failed, {self.stats.shed} shed",
            flush=True,
        )
        return 0


def run_daemon(config: ServeConfig | None = None) -> int:
    """Blocking entry point behind ``repro-partition serve``."""
    daemon = PartitionDaemon(config)
    if daemon.config.trace_path:
        _trace.enable(daemon.config.trace_path)
    try:
        return asyncio.run(daemon.run())
    finally:
        if daemon.config.trace_path:
            _trace.disable()
