"""Crash-safe, content-addressed partition cache.

The memoization point of the serving daemon: results are keyed by
:meth:`repro.serve.protocol.PartitionRequest.cache_key` — ``(matrix
digest, nparts, eps, method, refine, algo, seed, config)`` — so a cache
hit is *guaranteed* bit-identical to recomputation (partitioning is
deterministic in the seed; speed-only knobs never enter the key).

Persistence follows the ``SweepCheckpoint`` journal discipline
(:class:`repro.eval.sweep.SweepCheckpoint`): an append-only JSONL file
whose first line is a format header and whose every further line is one
``{"key": ..., "result": {...}}`` entry, flushed **and fsynced** before
the entry is considered stored.  A SIGKILLed daemon therefore loses at
most the entry being written, and the torn trailing line it may leave is
skipped on reload — restart is warm with zero corrupted entries, by
construction rather than by repair.

Two deliberate differences from the checkpoint journal:

* an unreadable or foreign journal is *not* fatal — a cache's contract
  is availability, so the bad file is moved aside
  (``<path>.corrupt``) and service continues cold instead of refusing
  to start;
* the journal self-compacts: entries evicted by the in-memory LRU stay
  on disk (append-only) until they outnumber live entries enough that a
  restart would mostly replay garbage, at which point the journal is
  atomically rewritten (tmp + fsync + rename) with live entries only.

Disk pressure is a degradation, never a crash: an ``OSError`` on a
journal write (``ENOSPC``, quota, a yanked volume) switches the cache to
**pass-through mode** — the journal handle is dropped, the in-memory LRU
keeps serving hits, and :attr:`PartitionCache.write_error` records one
brief for the daemon to surface.  The ``cache.write`` fault point sits
inside the guarded append so the chaos suite can inject exactly that.
"""

from __future__ import annotations

import errno as _errno
import json
import os
import sys
from collections import OrderedDict
from pathlib import Path

from repro.utils import faults

__all__ = ["PartitionCache"]

_HEADER = {"partition_cache": 1}


class PartitionCache:
    """In-memory LRU of partition results, persisted via a JSONL journal.

    ``path=None`` disables persistence (a pure in-memory LRU — the
    daemon's ``--cache ''`` spelling).  ``cap`` bounds the number of
    *live* entries; eviction is LRU on access order.

    Results are plain JSON-able dicts (the daemon stores the partition
    metrics plus the part vector as a list); the cache never interprets
    them beyond round-tripping.
    """

    def __init__(self, path=None, cap: int = 512) -> None:
        if cap < 1:
            raise ValueError(f"cache cap must be >= 1, got {cap}")
        self.path = Path(path) if path else None
        self.cap = cap
        self.hits = 0
        self.misses = 0
        #: Journal lines appended since the last compaction that no
        #: longer correspond to a live entry (eviction/overwrite debt).
        self._dead = 0
        self._live: OrderedDict[str, dict] = OrderedDict()
        self._valid_bytes = 0
        self._fh = None
        #: One brief (``"CacheWriteError[ENOSPC]"``) after the journal
        #: degraded to pass-through mode; ``None`` while healthy.
        self.write_error: str | None = None
        if self.path is not None:
            try:
                self._open_journal()
            except OSError as exc:
                self._degrade(exc)

    # ------------------------------------------------------------------ #
    # Journal lifecycle
    # ------------------------------------------------------------------ #
    def _open_journal(self) -> None:
        if self.path.exists() and self.path.stat().st_size:
            if not self._load():
                # Unreadable header: move the bad file aside and start
                # cold — a cache must come up, not refuse to.
                corrupt = self.path.with_name(self.path.name + ".corrupt")
                os.replace(self.path, corrupt)
                self._live.clear()
                self._dead = 0
            elif self._valid_bytes < self.path.stat().st_size:
                # Drop the torn tail a mid-write kill left, so the next
                # append starts on a clean line instead of merging into
                # (and thereby losing) the half-written one.
                os.truncate(self.path, self._valid_bytes)
        self._fh = open(self.path, "a", encoding="utf-8")
        if self._fh.tell() == 0:
            self._append_line(_HEADER)
        elif self._dead > max(16, len(self._live)):
            # A restart replaying mostly-dead lines: compact now, while
            # nothing is being served.
            self._compact()

    def _load(self) -> bool:
        """Replay the journal; ``False`` when the header is unusable.

        Tracks ``_valid_bytes`` — the byte length of the replayable
        prefix — so the caller can truncate a torn tail away.  A line
        only counts as valid when it parsed *and* ended in a newline
        (a kill between an entry's bytes and its ``\\n`` would
        otherwise swallow the next append).
        """
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        self._valid_bytes = 0
        if not raw:
            return True
        try:
            header = json.loads(lines[0])
        except (json.JSONDecodeError, UnicodeDecodeError):
            return False
        if not isinstance(header, dict) \
                or header.get("partition_cache") != 1:
            return False
        if len(lines) == 1:  # header without its newline yet
            return False
        self._valid_bytes = len(lines[0]) + 1
        self._live.clear()
        self._dead = 0
        # ``split`` leaves a trailing b"" for a newline-terminated file;
        # anything else in the last slot is a torn tail by definition.
        for line in lines[1:-1]:
            try:
                entry = json.loads(line)
                key, result = entry["key"], entry["result"]
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                    TypeError):
                # Torn/garbled line: everything before it was fsynced
                # entry-by-entry, so stop here and truncate the rest.
                break
            self._valid_bytes += len(line) + 1
            if key in self._live:
                self._dead += 1
                self._live.pop(key)
            self._live[key] = result
        while len(self._live) > self.cap:
            self._live.popitem(last=False)
            self._dead += 1
        return True

    def _append_line(self, obj: dict) -> None:
        self._fh.write(json.dumps(obj) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def _compact(self) -> None:
        """Atomically rewrite the journal with live entries only."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(_HEADER) + "\n")
            for key, result in self._live.items():
                fh.write(json.dumps({"key": key, "result": result}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if self._fh is not None:
            self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._dead = 0

    def _degrade(self, exc: OSError) -> None:
        """Drop the journal: pass-through mode, one recorded brief.

        The in-memory LRU is untouched — hits keep serving — and the
        degradation is one-way for this process's lifetime: a disk that
        just filled will fill again, and flapping between modes would
        interleave torn appends with good ones.
        """
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - close-on-full-disk
                pass
            self._fh = None
        name = _errno.errorcode.get(exc.errno, "OSError")
        self.write_error = f"CacheWriteError[{name}]"
        print(
            f"repro-serve: partition cache journal degraded to "
            f"pass-through ({name}: {exc}); memoization continues "
            f"in memory only",
            file=sys.stderr,
        )

    @property
    def read_only(self) -> bool:
        """True once a journal write failure dropped persistence."""
        return self.write_error is not None

    # ------------------------------------------------------------------ #
    # The cache API
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, key: str) -> bool:
        return key in self._live

    def get(self, key: str):
        """The stored result for ``key`` (LRU-touched), else ``None``."""
        result = self._live.get(key)
        if result is None:
            self.misses += 1
            return None
        self._live.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: str, result: dict) -> None:
        """Store ``result`` under ``key`` (journaled before returning).

        The ``serve.cache`` fault point sits *before* the append so
        chaos tests can kill the daemon mid-write — the torn line the
        kill leaves is exactly what :meth:`_load` tolerates.
        """
        if key in self._live:
            self._live.pop(key)
            self._dead += 1
        self._live[key] = result
        while len(self._live) > self.cap:
            self._live.popitem(last=False)
            self._dead += 1
        if self._fh is None:
            return
        faults.fault_point("serve.cache")
        try:
            faults.fault_point("cache.write")
            self._append_line({"key": key, "result": result})
            if self._dead > max(64, 2 * len(self._live)):
                self._compact()
        except OSError as exc:
            self._degrade(exc)

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def close(self) -> None:
        """Close the journal handle (idempotent; entries stay on disk)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
