"""Request/response model and wire helpers of the partitioning service.

Three concerns live here because daemon and client must agree on them:

* :class:`PartitionRequest` — the validated request schema.  Parsing is
  strict (unknown fields, wrong types, and out-of-range knobs raise
  :class:`~repro.errors.ProtocolError`) so every malformed request dies
  at the admission boundary as an HTTP 400 instead of inside a worker.
* Content-addressed identity — :func:`matrix_digest` fingerprints a
  matrix's exact nonzero structure and values, and
  :meth:`PartitionRequest.cache_key` combines it with every
  result-determining knob ``(digest, nparts, eps, method, refine, algo,
  kway_vcycles, seed, config)``.  Two requests with equal keys are guaranteed the
  same partition (partitioning is deterministic in the seed), which is
  what makes the partition cache safe to serve from.
* Minimal HTTP/1.1 — the daemon speaks just enough HTTP for stdlib
  clients (``http.client``, ``curl``) to talk to it: one request per
  connection, ``Content-Length`` framing, JSON bodies.

Everything here is stdlib-only by design; the daemon must not grow
dependencies the batch CLI does not have.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.errors import ProtocolError

__all__ = [
    "DEFAULT_SEED",
    "MAX_NPARTS",
    "MAX_KWAY_VCYCLES",
    "PartitionRequest",
    "matrix_digest",
    "read_http_request",
    "http_response",
]

#: Requests that do not pin a seed get this one: a memoizing service
#: must be deterministic, so "no seed" means "the well-known seed", not
#: "fresh randomness" (the paper's base seed, as elsewhere in the repo).
DEFAULT_SEED = 2014

#: Admission-control ceiling on the requested part count: a request for
#: an absurd ``nparts`` is refused up front instead of exhausting a
#: worker.
MAX_NPARTS = 4096

#: Admission-control ceiling on ``kway_vcycles`` — each V-cycle is a
#: full coarsen/refine sweep, so an absurd count is a denial-of-service
#: knob, not a quality knob.
MAX_KWAY_VCYCLES = 64

_DIGEST_KEY = "serve_digest"


def matrix_digest(matrix) -> str:
    """Content digest of a matrix: shape + exact nonzero arrays.

    Cached on the (immutable) matrix object, so repeated requests
    against one resident matrix pay the hash once.
    """
    cached = matrix._cache.get(_DIGEST_KEY)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(repr(matrix.shape).encode())
    h.update(matrix.rows.tobytes())
    h.update(matrix.cols.tobytes())
    h.update(matrix.vals.tobytes())
    digest = h.hexdigest()[:32]
    matrix._cache[_DIGEST_KEY] = digest
    return digest


@dataclass(frozen=True)
class PartitionRequest:
    """One validated partitioning request.

    Exactly one of ``instance`` (a named collection matrix, resident in
    the daemon's hot matrix cache) or ``matrix_market`` (an uploaded
    MatrixMarket text, parsed — and rejected with a 400 — at admission)
    identifies the matrix.  The remaining fields mirror the
    ``repro-partition partition`` knobs that determine the result;
    speed-only knobs (kernel/exec backends, jobs) deliberately have no
    place in a request — they would fragment the cache without changing
    any answer.
    """

    instance: str = ""
    matrix_market: str = ""
    nparts: int = 2
    eps: float = 0.03
    method: str = "mediumgrain"
    refine: bool = False
    algo: str = "recursive"
    #: Multilevel V-cycle count for ``algo="kway"`` (0 = the flat direct
    #: k-way path).  Result-determining, so it is part of the cache key.
    kway_vcycles: int = 0
    seed: int = DEFAULT_SEED
    config: str = "mondriaan"
    #: Echo the per-nonzero part vector in the response (the one field
    #: that can dominate response size; ``False`` returns metrics only).
    include_parts: bool = True
    #: Per-request deadline override in seconds (``None`` = the
    #: daemon's configured default).
    timeout: Optional[float] = None

    @classmethod
    def from_payload(cls, payload) -> "PartitionRequest":
        """Parse and validate a decoded JSON body (strict)."""
        from repro.core.methods import ALGO_NAMES, METHOD_NAMES
        from repro.partitioner.config import PRESETS

        if not isinstance(payload, dict):
            raise ProtocolError(
                f"request body must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ProtocolError(
                f"unknown request field(s) {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        instance = _typed(payload, "instance", str, "")
        matrix_market = _typed(payload, "matrix_market", str, "")
        if bool(instance) == bool(matrix_market):
            raise ProtocolError(
                "exactly one of 'instance' or 'matrix_market' must be "
                "given"
            )
        nparts = _typed(payload, "nparts", int, 2)
        if not 2 <= nparts <= MAX_NPARTS:
            raise ProtocolError(
                f"nparts must be in [2, {MAX_NPARTS}], got {nparts}"
            )
        eps = _typed(payload, "eps", float, 0.03)
        if not 0.0 < eps <= 1.0:
            raise ProtocolError(f"eps must be in (0, 1], got {eps}")
        method = _typed(payload, "method", str, "mediumgrain")
        if method not in METHOD_NAMES:
            raise ProtocolError(
                f"unknown method {method!r}; expected one of "
                f"{tuple(METHOD_NAMES)}"
            )
        algo = _typed(payload, "algo", str, "recursive")
        if algo not in ALGO_NAMES:
            raise ProtocolError(
                f"unknown algo {algo!r}; expected one of "
                f"{tuple(ALGO_NAMES)}"
            )
        kway_vcycles = _typed(payload, "kway_vcycles", int, 0)
        if not 0 <= kway_vcycles <= MAX_KWAY_VCYCLES:
            raise ProtocolError(
                f"kway_vcycles must be in [0, {MAX_KWAY_VCYCLES}], got "
                f"{kway_vcycles}"
            )
        config = _typed(payload, "config", str, "mondriaan")
        if config not in PRESETS:
            raise ProtocolError(
                f"unknown config preset {config!r}; expected one of "
                f"{sorted(PRESETS)}"
            )
        timeout = payload.get("timeout")
        if timeout is not None:
            timeout = _typed(payload, "timeout", float, None)
            if timeout <= 0:
                raise ProtocolError(
                    f"timeout must be positive, got {timeout}"
                )
        return cls(
            instance=instance,
            matrix_market=matrix_market,
            nparts=nparts,
            eps=eps,
            method=method,
            refine=_typed(payload, "refine", bool, False),
            algo=algo,
            kway_vcycles=kway_vcycles,
            seed=_typed(payload, "seed", int, DEFAULT_SEED),
            config=config,
            include_parts=_typed(payload, "include_parts", bool, True),
            timeout=timeout,
        )

    def cache_key(self, digest: str) -> str:
        """Content-addressed identity of this request's *result*.

        Keyed on the matrix digest plus every result-determining knob —
        and nothing else, so equal keys imply bit-identical partitions.
        """
        raw = (
            f"{digest}:{self.nparts}:{self.eps!r}:{self.method}:"
            f"{int(self.refine)}:{self.algo}:{self.kway_vcycles}:"
            f"{self.seed}:{self.config}"
        )
        return hashlib.sha256(raw.encode()).hexdigest()[:32]

    def label(self) -> str:
        """Short human label for failure briefs and logs."""
        what = self.instance or "upload"
        return f"{what}/p{self.nparts}/{self.algo}/seed{self.seed}"


def _typed(payload: dict, key: str, want: type, default):
    value = payload.get(key, default)
    if value is default:
        return default
    if want is float and isinstance(value, int) and not isinstance(
        value, bool
    ):
        value = float(value)
    if want is int and isinstance(value, bool):
        raise ProtocolError(f"field {key!r} must be {want.__name__}")
    if not isinstance(value, want):
        raise ProtocolError(
            f"field {key!r} must be {want.__name__}, got "
            f"{type(value).__name__}"
        )
    return value


# --------------------------------------------------------------------- #
# Minimal HTTP/1.1
# --------------------------------------------------------------------- #
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Hard ceiling on accepted header block size (shed before buffering).
_MAX_HEADER_BYTES = 16 * 1024


async def read_http_request(reader, max_body: int):
    """Read one HTTP/1.1 request; returns ``(method, path, headers,
    body)`` or ``None`` on a closed/empty connection.

    ``body`` is ``None`` (instead of bytes) when the declared
    ``Content-Length`` exceeds ``max_body`` — the caller responds 413
    *without ever buffering* the oversized payload (admission control
    has to fire before memory pressure, not after).
    """
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _version = line.decode("latin-1").split()
    except ValueError:
        raise ProtocolError(
            f"malformed request line {line[:60]!r}"
        ) from None
    headers: dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise ProtocolError("header block too large")
        if line in (b"\r\n", b"\n", b""):
            break
        key, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line[:60]!r}")
        headers[key.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ProtocolError("malformed Content-Length header") from None
    if length < 0:
        raise ProtocolError("negative Content-Length")
    if length > max_body:
        return method.upper(), path, headers, None
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


def http_response(
    status: int, payload, extra_headers: dict | None = None
) -> bytes:
    """Serialize one HTTP/1.1 response (JSON body, connection closed)."""
    body = (
        payload if isinstance(payload, bytes)
        else json.dumps(payload).encode("utf-8")
    )
    extra = extra_headers or {}
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if "Content-Type" not in extra:
        lines.append("Content-Type: application/json")
    for key, value in extra.items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
