"""Client for the partitioning daemon (``repro-partition submit``).

The daemon sheds load deliberately (503 + ``Retry-After``) and may be
briefly absent (restarting after a SIGKILL, draining on deploy), so a
naive client would turn the service's *designed* degradation into caller
failures.  :class:`ServeClient` owns the two client-side halves of the
resilience contract instead:

* **Capped-exponential retry** on transport errors and 503s, honouring
  the daemon's ``Retry-After`` hint when it is larger than the local
  backoff — the client never hammers a server that just said "later".
  Request-specific failures (400, 500/504) are *not* retried: a request
  that crashed its worker twice will crash it a third time, and the
  daemon already spent its own retry budget saying so.
* **A circuit breaker**: after ``breaker_threshold`` *consecutive*
  transport-level failures the circuit opens and calls fail fast with
  :class:`~repro.errors.CircuitOpen` for ``breaker_cooldown`` seconds —
  a fleet of callers retry-spinning against a dead daemon is exactly
  the thundering herd admission control exists to prevent.  After the
  cooldown one trial call is let through (half-open); success closes
  the circuit.

A 200 carrying ``degraded: true`` — the daemon's anytime path answered
with a deadline-cut incumbent instead of a 504 — comes back as a
:class:`DegradedResult` (still a plain dict) so callers can tell a
full-quality answer from a degraded one without inspecting keys.

Stdlib-only (``http.client``), one connection per call — matching the
daemon's one-request-per-connection HTTP.
"""

from __future__ import annotations

import http.client
import json
import math
import socket
import time
from typing import Optional

from repro.errors import (
    CircuitOpen,
    ProtocolError,
    RequestFailed,
    RequestRejected,
    ServeError,
)

__all__ = ["DegradedResult", "ServeClient"]

#: Retry-After hints above this are treated as malformed (a daemon that
#: asks a minute of patience is lying or broken — use local backoff).
_RETRY_AFTER_ABSURD = 60.0
#: Honoured hints are capped here regardless of what the server said.
_RETRY_AFTER_CAP = 30.0
#: Local backoff fallback when the hint is missing or malformed.
_RETRY_AFTER_FALLBACK = 0.5


class DegradedResult(dict):
    """A 200 whose partition was cut short by the request's deadline.

    Behaves exactly like the plain result dict (it *is* one) so
    existing callers keep working, but the distinct type lets callers
    that care — the CLI, retry wrappers re-submitting with more
    headroom — branch on ``isinstance`` instead of fishing for the
    ``degraded`` key.  ``briefs`` lists the ``Degraded[...]`` records
    saying which loops were cut short.
    """

    @property
    def briefs(self) -> tuple:
        return tuple(
            b for b in self.get("failures", ())
            if isinstance(b, str) and b.startswith("Degraded")
        )

#: Transport-level failures that mean "the daemon may be fine, the
#: attempt was not" — retryable, and counted by the circuit breaker.
_TRANSPORT_ERRORS = (
    ConnectionError,
    socket.timeout,
    socket.gaierror,
    http.client.HTTPException,
    OSError,
)


class ServeClient:
    """Resilient HTTP client for one daemon endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 120.0,
        retries: int = 4,
        backoff: float = 0.25,
        backoff_cap: float = 4.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 5.0,
    ) -> None:
        if port <= 0:
            raise ValueError(f"a concrete daemon port is required, got {port}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._consecutive_failures = 0
        self._open_until = 0.0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def partition(self, **fields) -> dict:
        """Submit one partitioning request; returns the result dict.

        Keyword fields mirror
        :class:`repro.serve.protocol.PartitionRequest` (``instance=`` or
        ``matrix_market=``, plus ``nparts``/``eps``/``method``/
        ``refine``/``algo``/``kway_vcycles``/``seed``/``config``/
        ``include_parts``/``timeout``).

        Raises :class:`~repro.errors.ProtocolError` on a 400,
        :class:`~repro.errors.RequestFailed` on a 500/504 (with the
        daemon's failure briefs attached),
        :class:`~repro.errors.RequestRejected` when every retry was
        shed, and :class:`~repro.errors.CircuitOpen` while the breaker
        is open.
        """
        return self._call("POST", "/partition", fields)

    def health(self) -> dict:
        """Liveness probe (no retry loop: a probe must not mask death)."""
        status, body, _ = self._once("GET", "/healthz", None)
        if status != 200:
            raise ServeError(f"healthz returned {status}: {body}")
        return body

    def ready(self) -> bool:
        """Readiness probe; ``False`` while warming up or draining."""
        status, _body, _ = self._once("GET", "/readyz", None)
        return status == 200

    def stats(self) -> dict:
        """Daemon counters: served/failed/shed, inflight, cache rates."""
        return self._call("GET", "/stats", None)

    def drain(self) -> dict:
        """Ask the daemon to drain and exit gracefully."""
        status, body, _ = self._once("POST", "/drain", None)
        if status != 200:
            raise ServeError(f"drain returned {status}: {body}")
        return body

    # ------------------------------------------------------------------ #
    # Retry + breaker machinery
    # ------------------------------------------------------------------ #
    def _call(self, method: str, path: str, payload):
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            self._check_breaker()
            try:
                status, body, headers = self._once(method, path, payload)
            except _TRANSPORT_ERRORS as exc:
                self._record_failure()
                last = exc
                if attempt >= self.retries:
                    break
                time.sleep(self._delay(attempt))
                continue
            self._record_success()
            if status == 503:
                last = RequestRejected(
                    str(body.get("error", "service unavailable")),
                    retry_after=_retry_after(headers, body),
                )
                if attempt >= self.retries:
                    break
                time.sleep(max(self._delay(attempt), last.retry_after))
                continue
            return self._finish(status, body)
        assert last is not None
        raise last

    def _once(self, method: str, path: str, payload):
        """One HTTP exchange; returns ``(status, decoded body, headers)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers = {"Content-Type": "application/json"}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                decoded = {"error": raw[:200].decode("latin-1")}
            return resp.status, decoded, dict(resp.getheaders())
        finally:
            conn.close()

    @staticmethod
    def _finish(status: int, body: dict):
        if status == 200:
            if isinstance(body, dict) and body.get("degraded"):
                return DegradedResult(body)
            return body
        message = str(body.get("error", f"HTTP {status}"))
        if status in (400, 404, 405, 413):
            raise ProtocolError(message)
        raise RequestFailed(
            message, briefs=tuple(body.get("failures", ())), status=status
        )

    def _delay(self, attempt: int) -> float:
        return min(self.backoff_cap, self.backoff * 2.0 ** attempt)

    def _check_breaker(self) -> None:
        if self._open_until and time.monotonic() < self._open_until:
            remaining = self._open_until - time.monotonic()
            raise CircuitOpen(
                f"circuit open after {self._consecutive_failures} "
                f"consecutive transport failures; retry in "
                f"{remaining:.1f}s"
            )
        # Past the cooldown: half-open — let this call through as the
        # trial; success closes, failure re-opens.
        self._open_until = 0.0

    def _record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.breaker_threshold:
            self._open_until = time.monotonic() + self.breaker_cooldown

    def _record_success(self) -> None:
        self._consecutive_failures = 0
        self._open_until = 0.0


def _retry_after(headers: dict, body: dict) -> float:
    """The server's Retry-After hint, sanitized to ``[0, 30]`` seconds.

    A hint is advice from a possibly-broken (or hostile) server, so it
    is *clamped*, never trusted: non-numeric, NaN/inf, negative, or
    absurdly large (> 60 s) values fall back to the local backoff's
    0.5 s floor instead of stalling the caller for however long a
    garbled header says, and honoured values are capped at 30 s.
    """
    raw = headers.get("Retry-After")
    if raw is None:
        raw = body.get("retry_after")
    if raw is None or isinstance(raw, bool):
        return _RETRY_AFTER_FALLBACK
    try:
        value = float(raw)
    except (TypeError, ValueError):
        return _RETRY_AFTER_FALLBACK
    if not math.isfinite(value) or value < 0.0 \
            or value > _RETRY_AFTER_ABSURD:
        return _RETRY_AFTER_FALLBACK
    return min(value, _RETRY_AFTER_CAP)
