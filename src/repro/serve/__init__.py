"""The always-available partitioning service.

Everything before this package was batch-shaped: a cold process loads a
matrix, partitions it, exits.  :mod:`repro.serve` turns the hardened
execution substrate (:mod:`repro.utils.executor`,
:mod:`repro.utils.faults`, see ``docs/robustness.md``) into a long-lived
daemon in which robustness actually pays: one poisoned request, hung
worker, or daemon restart must never take down — or corrupt — service
for everyone else.

The package splits into four modules:

:mod:`repro.serve.protocol`
    The request/response model shared by daemon and client: request
    validation (a malformed request is an HTTP 400 at the admission
    boundary, never a worker crash), content-addressed cache keys, and
    the minimal HTTP/1.1 wire helpers (stdlib only).
:mod:`repro.serve.cache`
    The crash-safe partition cache: a content-addressed in-memory map
    persisted through an fsynced, torn-tail-tolerant JSONL journal in
    the ``SweepCheckpoint`` style — a SIGKILLed daemon restarts warm
    with zero corrupted entries.
:mod:`repro.serve.daemon`
    The asyncio daemon itself: bounded admission queue with
    backpressure (503 + ``Retry-After``), per-request deadlines through
    :class:`~repro.utils.executor.RetryPolicy`, crash isolation via the
    shared worker pool (structured failure briefs in the response,
    never daemon death), liveness/readiness endpoints, and graceful
    drain on SIGTERM.
:mod:`repro.serve.client`
    The client API behind ``repro-partition submit``: capped-exponential
    retry honouring ``Retry-After``, plus a consecutive-failure circuit
    breaker that fails fast while the service is down.

See ``docs/serving.md`` for the endpoint reference, failure modes, and
capacity knobs.
"""

from repro.serve.cache import PartitionCache
from repro.serve.client import ServeClient
from repro.serve.daemon import PartitionDaemon, ServeConfig, run_daemon
from repro.serve.protocol import PartitionRequest, matrix_digest

__all__ = [
    "PartitionCache",
    "PartitionDaemon",
    "PartitionRequest",
    "ServeClient",
    "ServeConfig",
    "matrix_digest",
    "run_daemon",
]
