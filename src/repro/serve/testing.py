"""Daemon harness for tests, chaos suites, and benchmarks.

Starting the daemon as a *real subprocess* — its own event loop, signal
handlers, and worker pool — is the only honest way to exercise the
serving contract (SIGTERM drain, SIGKILL restart, crash isolation), so
the harness lives in the package rather than being copy-pasted across
``tests/serve``, ``tests/chaos``, and ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

__all__ = ["DaemonHandle", "start_daemon"]


class DaemonHandle:
    """One running ``repro-partition serve`` subprocess."""

    def __init__(self, proc: subprocess.Popen, port: int) -> None:
        self.proc = proc
        self.port = port

    def client(self, **kwargs):
        """A :class:`repro.serve.client.ServeClient` bound to the port."""
        from repro.serve.client import ServeClient

        kwargs.setdefault("retries", 2)
        kwargs.setdefault("timeout", 60.0)
        return ServeClient(port=self.port, **kwargs)

    def alive(self) -> bool:
        """Whether the daemon process is still running."""
        return self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL (the chaos primitive); waits for the corpse.

        The whole process group dies — even when the daemon itself is
        already a corpse (a chaos fault may have SIGKILLed it mid-write):
        a SIGKILLed daemon cannot reap its forked pool workers, and
        leaving them orphaned would leak idle processes into every later
        test and benchmark.
        """
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            if self.alive():
                self.proc.kill()
        if self.proc.poll() is None:
            self.proc.wait(timeout=10)

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM (graceful drain) and wait; returns the exit code."""
        if self.alive():
            self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def output(self) -> str:
        """Drain and return the process's combined stdout/stderr (call
        only after the process exited)."""
        return self.proc.stdout.read() if self.proc.stdout else ""


def start_daemon(
    tmp_path, *args, env: dict | None = None, timeout: float = 120.0,
) -> DaemonHandle:
    """Launch a daemon subprocess and wait for its stdout ready line.

    ``args`` are extra ``repro-partition serve`` flags; ``env`` entries
    overlay the inherited environment (e.g. ``REPRO_FAULTS`` plans).
    The daemon binds an ephemeral port, discovered via ``--port-file``;
    startup warmup is disabled so harness-driven daemons come up fast
    (the first request pays the JIT instead).
    """
    tmp_path = Path(tmp_path)
    port_file = tmp_path / f"port-{os.getpid()}-{time.monotonic_ns()}"
    src = str(Path(__file__).resolve().parents[2])
    run_env = dict(os.environ)
    run_env["PYTHONPATH"] = src + (
        os.pathsep + run_env["PYTHONPATH"] if run_env.get("PYTHONPATH") else ""
    )
    if env:
        run_env.update(env)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--port-file", str(port_file),
            "--jobs", "2", "--no-warmup", *args,
        ],
        env=run_env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        # Own session: the daemon leads a process group containing its
        # forked pool workers, so kill() can SIGKILL all of them.
        start_new_session=True,
    )
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "ready" in line:
            break
        if proc.poll() is not None:
            rest = proc.stdout.read()
            raise RuntimeError(
                f"daemon died during startup (rc={proc.returncode}):\n"
                f"{line}{rest}"
            )
    else:
        proc.kill()
        raise RuntimeError("daemon did not become ready in time")
    return DaemonHandle(proc, int(port_file.read_text()))
