"""Tracer/Span core: monotonic spans, JSONL sink, cross-process context.

Design constraints, in order:

1. **Disabled is free.**  The module-level :data:`TRACER` is ``None``
   by default; every instrumentation site costs one attribute load and
   one ``is None`` test before bailing to a shared no-op singleton.
   No span is allocated, no clock is read, no RNG is touched — the
   traced-off path executes the same algorithmic instructions as
   before, so pinned goldens and BENCH bit-identity are unaffected.
2. **One clock, everywhere.**  Timestamps are ``time.monotonic()`` —
   the same discipline as :class:`repro.utils.deadline.Deadline`.  On
   Linux ``CLOCK_MONOTONIC`` is system-wide, so spans recorded in a
   forked pool worker land on the same timeline as the parent's and
   the stitched tree needs no clock reconciliation.
3. **Journal-grade sink.**  Span records are JSON Lines appended with
   a single buffered write + flush per record (the
   ``SweepCheckpoint`` / ``PartitionCache`` idiom).  Files are opened
   ``O_APPEND`` so concurrent writers (daemon + pool workers) do not
   clobber each other; readers tolerate a torn tail.  On ``OSError``
   the sink degrades to dropping records rather than failing the run.
4. **Context crosses processes like a deadline does.**  A
   :class:`TraceContext` is a tiny picklable envelope — trace id,
   parent span id, sink path — carried on the task payload (serve
   ``spec`` dict, ``_TreeJob``, ``RunSpec``) and re-armed worker-side
   with :func:`activate`.  Span ids embed the minting pid plus a
   per-process counter, so retried attempts and respawned workers can
   never collide, and a watchdog-killed worker leaves no orphans: a
   worker only ever writes *completed* spans whose parent chain runs
   through the parent-process span that the surviving caller closes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Iterator, Optional

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "enable",
    "disable",
    "span",
    "detached_span",
    "event",
    "activate",
    "current_context",
    "current_span",
]


class TraceContext:
    """Picklable envelope carrying a trace across a process boundary.

    The moral analogue of :class:`repro.utils.deadline.Deadline`'s
    absolute expiry: the minimum state that keeps its meaning inside a
    forked or spawned pool worker.  ``parent`` is the span id the
    worker's spans should hang from; ``path`` is the JSONL sink both
    sides append to.
    """

    __slots__ = ("trace_id", "parent", "path")

    def __init__(self, trace_id: str, parent: str, path: str):
        self.trace_id = trace_id
        self.parent = parent
        self.path = path

    def __getstate__(self):
        return (self.trace_id, self.parent, self.path)

    def __setstate__(self, state):
        self.trace_id, self.parent, self.path = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext(trace={self.trace_id}, parent={self.parent})"


class _Sink:
    """Append-only JSONL writer, pid-guarded across fork.

    One buffered write + flush per record; a record is a single line,
    so readers recover everything up to a torn tail.  Any ``OSError``
    (disk full, unlinked directory) flips the sink to dropping mode —
    tracing must never take down the traced computation.
    """

    __slots__ = ("path", "_fh", "_pid", "_lock", "_dead")

    def __init__(self, path: str):
        self.path = str(path)
        self._fh = None
        self._pid = None
        self._lock = threading.Lock()
        self._dead = False

    def write(self, record: dict) -> None:
        if self._dead:
            return
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            try:
                if self._fh is None or self._pid != os.getpid():
                    # Reopen after fork: an inherited buffered handle
                    # could duplicate or interleave partial buffers.
                    self._fh = open(self.path, "a", encoding="utf-8")
                    self._pid = os.getpid()
                self._fh.write(line)
                self._fh.flush()
            except OSError:
                self._dead = True

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and self._pid == os.getpid():
                try:
                    self._fh.close()
                except OSError:
                    pass
            self._fh = None


class Span:
    """One timed stage.  Created open, written to the sink when closed.

    Usable as a context manager; :meth:`event` attaches point-in-time
    annotations (retry, watchdog kill, degradation) that land inside
    the span record rather than as separate lines.
    """

    __slots__ = (
        "tracer", "trace_id", "span_id", "parent", "name",
        "t0", "t1", "attrs", "events", "_closed",
    )

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: str,
                 parent: Optional[str], name: str, attrs: dict):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent = parent
        self.name = name
        self.attrs = attrs
        self.events: list = []
        self.t0 = time.monotonic()
        self.t1 = None
        self._closed = False

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event at the current clock reading."""
        self.events.append({"name": name, "t": time.monotonic(), **attrs})

    def context(self) -> TraceContext:
        """Envelope for handing this span to a pool worker as parent."""
        return TraceContext(self.trace_id, self.span_id, self.tracer.path)

    def end(self) -> None:
        """Close the span (idempotent) and write it to the sink."""
        if self._closed:
            return
        self._closed = True
        self.t1 = time.monotonic()
        self.tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.event("error", type=exc_type.__name__)
        self.end()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name}, id={self.span_id})"


class _NullSpan:
    """Shared no-op standing in for a span when tracing is disabled.

    A single module-level instance: entering/exiting it allocates
    nothing, and every mutator is a pass.  ``context()`` returns
    ``None`` so task payloads carry no envelope when tracing is off.
    """

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        pass

    def context(self):
        return None

    def end(self):
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Mints spans into one trace and appends them to a JSONL sink.

    Span ids are hierarchical in the record (explicit ``parent``
    links) and collision-free across processes by construction: each
    id is ``"<pid hex>-<per-process counter hex>"``.  The per-thread
    span stack gives ``span()`` its implicit parent, which keeps
    instrumentation sites one-liners.
    """

    def __init__(self, path: str, *, trace_id: Optional[str] = None,
                 root_parent: Optional[str] = None):
        self.path = str(path)
        self.sink = _Sink(self.path)
        self.trace_id = trace_id or (
            f"{os.getpid():x}-{time.monotonic_ns():x}"
        )
        self.root_parent = root_parent
        self._counter = 0
        self._counter_lock = threading.Lock()
        self._local = threading.local()

    # -- span lifecycle -------------------------------------------------
    def _next_id(self) -> str:
        with self._counter_lock:
            self._counter += 1
            n = self._counter
        return f"{os.getpid():x}-{n:x}"

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start_span(self, name: str, attrs: Optional[dict] = None,
                   *, parent: Optional[str] = None,
                   detached: bool = False) -> Span:
        """Open a span (implicit stack parent unless ``parent`` given;
        ``detached`` skips the stack entirely — see
        :func:`detached_span`)."""
        stack = self._stack()
        if parent is None:
            parent = stack[-1].span_id if stack else self.root_parent
        sp = Span(self, self.trace_id, self._next_id(), parent, name,
                  dict(attrs) if attrs else {})
        if not detached:
            stack.append(sp)
        return sp

    def _finish(self, sp: Span) -> None:
        stack = self._stack()
        if sp in stack:
            # Pop through sp: tolerates a child left open by an
            # exception unwinding past its __exit__.
            while stack:
                top = stack.pop()
                if top is sp:
                    break
        self.sink.write({
            "trace": sp.trace_id,
            "span": sp.span_id,
            "parent": sp.parent,
            "name": sp.name,
            "t0": sp.t0,
            "t1": sp.t1,
            "pid": os.getpid(),
            "attrs": sp.attrs,
            "events": sp.events,
        })

    def current(self) -> Optional[Span]:
        """This thread's innermost open (non-detached) span."""
        stack = self._stack()
        return stack[-1] if stack else None

    def close(self) -> None:
        """Close the sink's file handle (reopened by a later write)."""
        self.sink.close()


# ---------------------------------------------------------------------
# Module-level switch.  ``TRACER is None`` *is* the disabled state;
# every helper below starts with that one check.
# ---------------------------------------------------------------------

TRACER: Optional[Tracer] = None


def enable(path: str, *, trace_id: Optional[str] = None,
           root_parent: Optional[str] = None) -> Tracer:
    """Install a module-level tracer writing to ``path``; returns it."""
    global TRACER
    TRACER = Tracer(path, trace_id=trace_id, root_parent=root_parent)
    return TRACER


def disable() -> None:
    """Tear down the module-level tracer (closing its sink)."""
    global TRACER
    if TRACER is not None:
        TRACER.close()
    TRACER = None


def span(name: str, **attrs: Any):
    """Open a span under the current one, or the shared no-op."""
    t = TRACER
    if t is None:
        return NULL_SPAN
    return t.start_span(name, attrs)


def detached_span(name: str, *, parent: Optional[str] = None,
                  **attrs: Any):
    """Open a span *off* the thread-local stack (explicit parentage).

    The asyncio serving tier needs this: many requests interleave on
    one event-loop thread, so implicit stack parentage would nest one
    request's span under another's.  Detached spans never touch the
    stack — children must be parented explicitly via
    ``parent=sp.span_id`` or handed across threads as a
    :class:`TraceContext`.
    """
    t = TRACER
    if t is None:
        return NULL_SPAN
    return t.start_span(name, attrs, parent=parent, detached=True)


def event(name: str, **attrs: Any) -> None:
    """Attach an event to the innermost open span, if tracing is on."""
    t = TRACER
    if t is None:
        return
    sp = t.current()
    if sp is not None:
        sp.event(name, **attrs)


def current_span():
    """The innermost open span, or the no-op singleton when disabled."""
    t = TRACER
    if t is None:
        return NULL_SPAN
    return t.current() or NULL_SPAN


def current_context() -> Optional[TraceContext]:
    """Envelope of the innermost open span — ``None`` when disabled.

    This is what call sites put on a task payload next to the
    ``Deadline``; ``None`` costs nothing to carry and tells the worker
    side to skip activation entirely.
    """
    t = TRACER
    if t is None:
        return None
    sp = t.current()
    if sp is None:
        return TraceContext(t.trace_id, t.root_parent or "", t.path)
    return sp.context()


class _Activation:
    """Context manager arming a worker-side tracer for one task.

    Pool workers are long-lived and serve many unrelated tasks, so the
    tracer is installed per-task and always torn down — a crashed task
    cannot leak one request's trace into the next.  If a tracer is
    already installed (in-process executor backends run the "worker"
    body inside the caller), the existing tracer is kept and the span
    is simply parented into it.
    """

    __slots__ = ("ctx", "name", "attrs", "_span", "_installed")

    def __init__(self, ctx: TraceContext, name: str, attrs: dict):
        self.ctx = ctx
        self.name = name
        self.attrs = attrs
        self._span = None
        self._installed = False

    def __enter__(self) -> Span:
        global TRACER
        if TRACER is None:
            TRACER = Tracer(
                self.ctx.path,
                trace_id=self.ctx.trace_id,
                root_parent=self.ctx.parent or None,
            )
            self._installed = True
        self._span = TRACER.start_span(
            self.name, self.attrs, parent=self.ctx.parent or None
        )
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        global TRACER
        if exc_type is not None and self._span is not None:
            self._span.event("error", type=exc_type.__name__)
        if self._span is not None:
            self._span.end()
        if self._installed:
            if TRACER is not None:
                TRACER.close()
            TRACER = None
        return False


def activate(ctx: Optional[TraceContext], name: str, **attrs: Any):
    """Adopt a cross-process :class:`TraceContext` around a task body.

    ``activate(None, ...)`` is the disabled path: one ``is None``
    check, then the shared no-op span.
    """
    if ctx is None:
        return NULL_SPAN
    return _Activation(ctx, name, attrs)
