"""Observability: tracing, metrics, and per-stage profiling.

The paper's headline claim is a *time* claim (medium-grain at a
fraction of fine-grain's cost), and the serving roadmap needs the same
per-stage attribution operationally.  ``repro.obs`` supplies both
halves:

* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.Tracer` /
  :class:`~repro.obs.trace.Span` core with monotonic timestamps (the
  same clock discipline as :class:`repro.utils.deadline.Deadline`),
  hierarchical span/trace IDs, a JSONL sink following the journal
  idiom (append + flush, torn-tail tolerant readers), and a picklable
  :class:`~repro.obs.trace.TraceContext` envelope so one request
  yields a single stitched span tree across process-pool workers.
* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges, and fixed-bucket histograms with Prometheus text rendering
  for the daemon's ``GET /metrics`` endpoint.
* :mod:`repro.obs.report` — trace-file aggregation into a self/total
  time-per-stage table (the ``trace-report`` CLI).

Tracing is **off by default** and the disabled path is a module-level
``is None`` check: no span objects are allocated, no clock is read,
and partition results stay bit-identical to the pinned goldens.
Metrics are plain in-process integer/float adds — never consulted by
any algorithm — so they, too, sit outside the bit-identity contract.
"""

from repro.obs import metrics, trace
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.report import (
    aggregate_trace,
    count_events,
    read_trace,
    render_report,
)
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    activate,
    current_context,
    current_span,
    detached_span,
    disable,
    enable,
    event,
    span,
)

__all__ = [
    "metrics",
    "trace",
    "REGISTRY",
    "MetricsRegistry",
    "Tracer",
    "Span",
    "TraceContext",
    "enable",
    "disable",
    "span",
    "detached_span",
    "event",
    "activate",
    "current_context",
    "current_span",
    "aggregate_trace",
    "count_events",
    "read_trace",
    "render_report",
]
