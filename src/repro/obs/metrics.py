"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A deliberately small subset of the Prometheus client model — exactly
what the daemon's ``GET /metrics`` endpoint and the CLI's trace dump
need, with zero dependencies:

* :class:`Counter` — monotonically increasing float, optional labels.
* :class:`Gauge` — settable float, optional labels.
* :class:`Histogram` — fixed upper-bound buckets (cumulative counts,
  ``+Inf`` implicit), plus ``_sum`` / ``_count``, optional labels.

Metrics are **process-local**: a pool worker's counters live in the
worker.  That is the honest scope — the daemon's endpoint reports the
daemon process, and per-run CLI dumps report the driver process —
and it keeps every increment a lock-guarded float add, cheap enough
to leave permanently on.  Nothing in the registry is ever consulted
by an algorithm, so metrics sit outside the bit-identity contract by
construction.

Rendering follows the Prometheus text exposition format 0.0.4
(``# HELP`` / ``# TYPE`` headers, ``{label="value"}`` sample lines,
histogram ``_bucket``/``_sum``/``_count`` series with a ``le`` label).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "LATENCY_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "render_prometheus",
    "snapshot",
]

# Log-ish spaced seconds buckets covering sub-millisecond FM passes
# through minute-scale sweeps; shared default for latency histograms.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_RESERVED = frozenset({"le"})


def _fmt_value(v: float) -> str:
    """Prometheus sample formatting: integers without a trailing .0."""
    if v == math.inf:
        return "+Inf"
    f = float(v)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _fmt_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in labels
    )
    return "{" + inner + "}"


class _Metric:
    """Shared machinery: name/help, label children, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        for ln in self.labelnames:
            if ln in _RESERVED:
                raise ValueError(f"reserved label name: {ln}")
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "_Metric"] = {}

    def labels(self, *values: object, **kv: object):
        """The child metric for one label combination (created lazily)."""
        if kv:
            if values:
                raise TypeError("pass label values or keywords, not both")
            values = tuple(str(kv[ln]) for ln in self.labelnames)
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {values}"
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child()
                self._children[values] = child
            return child

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _samples(self) -> Iterable[tuple]:
        """Yield ``(suffix, labelpairs, value)`` triples."""
        if self.labelnames:
            with self._lock:
                items = sorted(self._children.items())
            for values, child in items:
                pairs = tuple(zip(self.labelnames, values))
                for suffix, extra, v in child._own_samples():
                    yield suffix, pairs + extra, v
        else:
            yield from self._own_samples()

    def _own_samples(self) -> Iterable[tuple]:  # pragma: no cover
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing float; ``inc`` is the only mutator."""

    kind = "counter"

    def __init__(self, name, help, labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self):
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _own_samples(self):
        yield "", (), self._value


class Gauge(_Metric):
    """A settable level (inflight requests, pool size, readiness)."""

    kind = "gauge"

    def __init__(self, name, help, labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self):
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        """Replace the gauge's level."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the gauge by ``amount``."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the gauge by ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _own_samples(self):
        yield "", (), self._value


class Histogram(_Metric):
    """Fixed-upper-bound buckets; cumulative on render, like Prometheus.

    Buckets are chosen at construction and never resized — observing
    is a binary search plus two adds, safe to leave in serving paths.
    """

    kind = "histogram"

    def __init__(self, name, help, labelnames=(),
                 buckets: Sequence[float] = LATENCY_BUCKETS):
        super().__init__(name, help, labelnames)
        bs = tuple(sorted(float(b) for b in buckets))
        if not bs:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bs
        self._counts = [0] * (len(bs) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def _make_child(self):
        return Histogram(self.name, self.help, buckets=self.buckets)

    def observe(self, value: float) -> None:
        """Record one observation (binary search + two adds)."""
        v = float(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if v <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._sum += v
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def _own_samples(self):
        cumulative = 0
        for ub, c in zip(self.buckets, self._counts):
            cumulative += c
            yield "_bucket", (("le", _fmt_value(ub)),), cumulative
        yield "_bucket", (("le", "+Inf"),), self._count
        yield "_sum", (), self._sum
        yield "_count", (), self._count


class MetricsRegistry:
    """Name -> metric map with idempotent registration and rendering.

    ``counter``/``gauge``/``histogram`` return the existing metric on
    re-registration (same name + kind), so modules can declare their
    instruments at import time without ordering constraints; a name
    collision across kinds is a programming error and raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, cls, name, help, labelnames, **kw):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kw)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help, labelnames=()) -> Counter:
        """Register (or fetch the already-registered) counter."""
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name, help, labelnames=()) -> Gauge:
        """Register (or fetch the already-registered) gauge."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name, help, labelnames=(),
                  buckets: Sequence[float] = LATENCY_BUCKETS
                  ) -> Histogram:
        """Register (or fetch the already-registered) histogram."""
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def render(self) -> str:
        """Prometheus text exposition (format 0.0.4)."""
        out = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, m in metrics:
            out.append(f"# HELP {name} {m.help}")
            out.append(f"# TYPE {name} {m.kind}")
            for suffix, labels, value in m._samples():
                out.append(
                    f"{name}{suffix}{_fmt_labels(labels)} "
                    f"{_fmt_value(value)}"
                )
        return "\n".join(out) + "\n"

    def snapshot(self) -> dict:
        """JSON-friendly dump (the ``--trace`` file's metrics record)."""
        out = {}
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, m in metrics:
            samples = [
                {"suffix": suffix, "labels": dict(labels),
                 "value": value}
                for suffix, labels, value in m._samples()
            ]
            out[name] = {"kind": m.kind, "help": m.help,
                         "samples": samples}
        return out

    def reset(self) -> None:
        """Zero every metric **in place** (tests, forked-worker re-init).

        Registration survives — instrumented modules hold module-level
        references to their instruments, so dropping entries would
        silently disconnect them from rendering.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        stack = list(metrics)
        while stack:
            m = stack.pop()
            with m._lock:
                stack.extend(m._children.values())
                if isinstance(m, Histogram):
                    m._counts = [0] * (len(m.buckets) + 1)
                    m._sum = 0.0
                    m._count = 0
                elif isinstance(m, (Counter, Gauge)):
                    m._value = 0.0


REGISTRY = MetricsRegistry()


def counter(name, help, labelnames=()) -> Counter:
    """Register (or fetch) a counter on the default registry."""
    return REGISTRY.counter(name, help, labelnames)


def gauge(name, help, labelnames=()) -> Gauge:
    """Register (or fetch) a gauge on the default registry."""
    return REGISTRY.gauge(name, help, labelnames)


def histogram(name, help, labelnames=(),
              buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
    """Register (or fetch) a histogram on the default registry."""
    return REGISTRY.histogram(name, help, labelnames, buckets=buckets)


def render_prometheus() -> str:
    """Render the default registry in Prometheus text format."""
    return REGISTRY.render()


def snapshot() -> dict:
    """JSON-friendly dump of the default registry."""
    return REGISTRY.snapshot()
