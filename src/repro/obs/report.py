"""Trace-file aggregation: JSONL spans -> self/total time-per-stage.

The ``repro-partition trace-report`` command reads a trace written by
:mod:`repro.obs.trace` (possibly by several processes appending to the
same file) and renders the classic profiler table: for every span
*name*, how many spans ran, their **total** wall time, and their
**self** time — total minus the time covered by their direct children
— so an end-to-end number decomposes into attributable stages.

Readers follow the journal contract: a torn final line (a worker
killed mid-write) is skipped, unknown record kinds are ignored, and a
span whose parent record is missing is attributed to the trace root
rather than dropped, so a partial trace still aggregates.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, List, Optional

__all__ = [
    "read_trace",
    "aggregate_trace",
    "render_report",
    "count_events",
    "StageRow",
]


def read_trace(path: str) -> Iterator[dict]:
    """Yield span records from a trace JSONL file, tolerating torn
    lines and skipping non-span records (e.g. a metrics dump)."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if isinstance(rec, dict) and "span" in rec and "t0" in rec:
                yield rec


class StageRow:
    """Aggregate for one span name."""

    __slots__ = ("name", "count", "total", "self_time")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_time = 0.0


def aggregate_trace(records: Iterable[dict]) -> List[StageRow]:
    """Fold span records into per-name rows, sorted by self time.

    Self time is a span's duration minus the summed durations of its
    *direct* children.  Concurrent children (parallel subtree jobs)
    can overlap, so self time is clamped at zero rather than allowed
    to go negative — the table stays a decomposition, not a ledger.
    """
    spans = {}
    for rec in records:
        if rec.get("t1") is None:
            continue  # never closed (should not happen; be tolerant)
        spans[rec["span"]] = rec

    child_time = {}
    for rec in spans.values():
        parent = rec.get("parent")
        if parent in spans:
            dur = rec["t1"] - rec["t0"]
            child_time[parent] = child_time.get(parent, 0.0) + dur

    rows = {}
    for rec in spans.values():
        row = rows.get(rec["name"])
        if row is None:
            row = rows[rec["name"]] = StageRow(rec["name"])
        dur = rec["t1"] - rec["t0"]
        row.count += 1
        row.total += dur
        row.self_time += max(0.0, dur - child_time.get(rec["span"], 0.0))

    return sorted(rows.values(), key=lambda r: -r.self_time)


def render_report(rows: List[StageRow],
                  events: Optional[dict] = None) -> str:
    """Monospace table: stage, count, total s, self s, self %."""
    if not rows:
        return "trace is empty (no completed spans)\n"
    total_self = sum(r.self_time for r in rows) or 1.0
    name_w = max(5, max(len(r.name) for r in rows))
    lines = [
        f"{'stage':<{name_w}}  {'count':>7}  {'total s':>9}  "
        f"{'self s':>9}  {'self %':>6}",
        f"{'-' * name_w}  {'-' * 7}  {'-' * 9}  {'-' * 9}  {'-' * 6}",
    ]
    for r in rows:
        lines.append(
            f"{r.name:<{name_w}}  {r.count:>7}  {r.total:>9.3f}  "
            f"{r.self_time:>9.3f}  {100.0 * r.self_time / total_self:>5.1f}%"
        )
    if events:
        lines.append("")
        lines.append("events:")
        for name in sorted(events):
            lines.append(f"  {name}: {events[name]}")
    return "\n".join(lines) + "\n"


def count_events(records: Iterable[dict]) -> dict:
    """Tally span events by name (retries, kills, degradations)."""
    out: dict = {}
    for rec in records:
        for ev in rec.get("events", ()):
            name = ev.get("name")
            if name:
                out[name] = out.get(name, 0) + 1
    return out
