"""Deterministic, env-propagated fault injection for the execution layer.

Chaos testing the hardened executor needs failures that are *real* (a
worker genuinely SIGKILLed, a task genuinely hung past its deadline) yet
*deterministic* (the same plan fires the same faults at the same places
every run, in every process).  This module provides that harness:

Fault points
    Named locations inside the execution layer call
    :func:`fault_point` (``"executor.task"``, ``"shm.attach"``, ...).
    With no plan installed the call is a dictionary lookup — effectively
    free, so the points are compiled into production code permanently.
    The registry of valid names is :data:`FAULT_POINTS`; a typo'd name
    raises immediately rather than silently never firing.

Fault plans
    A plan is a tuple of :class:`FaultRule`; installing one (the
    :func:`install` context manager) serializes it into the
    ``REPRO_FAULTS`` environment variable, so worker *processes* forked
    or spawned afterwards inherit it without any plumbing through task
    payloads.  ``install`` retires the persistent pools on entry and
    exit so workers are always born under the intended plan.

Fault kinds
    ``"exception"`` raises :class:`~repro.errors.InjectedFault`;
    ``"crash"`` SIGKILLs the current process (downgraded to an
    exception in the installing process itself, so a serial run never
    kills the test runner); ``"hang"`` blocks for ``delay`` seconds on
    an interruptible event (killed workers never return; abandoned
    thread workers are released when the plan is uninstalled);
    ``"shm"`` raises :class:`FileNotFoundError`, emulating an
    evicted/unlinked shared-memory segment at the attach boundary;
    ``"poison"`` deterministically corrupts the payload passed through
    the fault point — the fault the result validator exists to catch;
    ``"disk"`` raises ``OSError(ENOSPC)``, emulating a full disk at a
    journal-append boundary (the fault the read-only degradation of the
    partition cache and sweep checkpoint exists to absorb).

Determinism
    A rule fires on explicit 1-based per-process hit indices (``hits``),
    or with a seeded pseudo-random ``rate`` keyed on ``(seed, point,
    hit)`` — a pure hash, identical in every process and on every
    platform.  A rule with a ``once_token`` path fires at most once
    *across all processes* (an ``O_CREAT | O_EXCL`` filesystem token),
    which is how chaos tests express "this task fails once, then its
    retry succeeds".
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from dataclasses import dataclass

from repro.errors import EvaluationError, InjectedFault

__all__ = [
    "ENV_VAR",
    "FAULT_POINTS",
    "FAULT_KINDS",
    "FaultRule",
    "fault_point",
    "install",
    "plan_to_env",
    "plan_from_env",
    "release_hangs",
    "reset",
]

#: Environment variable carrying the serialized plan across processes.
ENV_VAR = "REPRO_FAULTS"

#: Registry of named fault points compiled into the execution layer.
#: docs/robustness.md documents where each one sits.
FAULT_POINTS = frozenset({
    "executor.task",      # worker side, before a MatrixExecutor task runs
    "executor.result",    # worker side, after a task computed its result
    "sweep.chunk",        # worker side, before a sweep chunk executes
    "sweep.result",       # worker side, after a chunk computed its records
    "sweep.record",       # driver side, after each record is journaled
    "shm.attach",         # inside MatrixHandle.open, before the attach
    "recursive.bisect",   # inside every bisection of the recursion tree
    "kway.partition",     # inside the direct k-way partitioner
    "serve.request",      # daemon side, after a request is admitted
    "serve.cache",        # daemon side, before each cache journal write
    "serve.drain",        # daemon side, at the start of a graceful drain
    "cache.write",        # inside the partition cache's journal append
    "checkpoint.write",   # inside the sweep checkpoint's journal append
})

FAULT_KINDS = ("exception", "crash", "hang", "shm", "poison", "disk")


@dataclass(frozen=True)
class FaultRule:
    """One directive: fire ``kind`` at ``point`` on matching hits.

    ``hits`` are 1-based per-process invocation indices of the point
    (``(1,)`` = the first time each process reaches it; ``()`` = every
    time).  ``rate``/``seed`` instead fire pseudo-randomly but
    deterministically per hit.  ``scope="worker"`` restricts firing to
    the execution layer's own pool workers — the serial in-process
    fallback then genuinely succeeds, modelling "the pool environment
    is broken, the host is fine".  ``once_token`` (a filesystem path)
    caps total firings across every process at one.
    """

    point: str
    kind: str
    hits: tuple[int, ...] = (1,)
    rate: float = 0.0
    seed: int = 0
    scope: str = "worker"
    once_token: str | None = None
    delay: float = 30.0
    #: Pid of the installing process; ``crash`` downgrades to an
    #: exception there (never SIGKILL the driver/test runner itself).
    installer_pid: int = 0

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise EvaluationError(
                f"unknown fault point {self.point!r}; "
                f"expected one of {sorted(FAULT_POINTS)}"
            )
        if self.kind not in FAULT_KINDS:
            raise EvaluationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.scope not in ("worker", "any"):
            raise EvaluationError(
                f"fault scope must be 'worker' or 'any', got {self.scope!r}"
            )


# --------------------------------------------------------------------- #
# Process-local state
# --------------------------------------------------------------------- #
#: Per-process hit counters, one per fault point.
_HITS: dict[str, int] = {}

#: Parsed-plan cache keyed on the raw env string (parsing JSON on every
#: fault-point hit would tax the hot path for nothing).
_PLAN_CACHE: tuple[str, tuple[FaultRule, ...]] | None = None

#: Interruptible-hang release: uninstalling a plan sets this, waking any
#: abandoned thread workers still sleeping inside an injected hang.
_RELEASE = threading.Event()


def reset() -> None:
    """Clear per-process hit counters (installing a plan does this)."""
    _HITS.clear()


def release_hangs() -> None:
    """Wake every in-process injected hang (abandoned thread workers)."""
    _RELEASE.set()


def plan_to_env(rules) -> str:
    """Serialize rules for the ``REPRO_FAULTS`` environment variable."""
    return json.dumps([
        {
            "point": r.point, "kind": r.kind, "hits": list(r.hits),
            "rate": r.rate, "seed": r.seed, "scope": r.scope,
            "once_token": r.once_token, "delay": r.delay,
            "installer_pid": r.installer_pid,
        }
        for r in rules
    ])


def plan_from_env(raw: str) -> tuple[FaultRule, ...]:
    """Parse a serialized plan (the inverse of :func:`plan_to_env`)."""
    return tuple(
        FaultRule(
            point=d["point"], kind=d["kind"],
            hits=tuple(d.get("hits", (1,))),
            rate=float(d.get("rate", 0.0)),
            seed=int(d.get("seed", 0)),
            scope=d.get("scope", "worker"),
            once_token=d.get("once_token"),
            delay=float(d.get("delay", 30.0)),
            installer_pid=int(d.get("installer_pid", 0)),
        )
        for d in json.loads(raw)
    )


def active_plan() -> tuple[FaultRule, ...]:
    """The rules currently in force in this process (usually empty)."""
    global _PLAN_CACHE
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return ()
    if _PLAN_CACHE is not None and _PLAN_CACHE[0] == raw:
        return _PLAN_CACHE[1]
    plan = plan_from_env(raw)
    _PLAN_CACHE = (raw, plan)
    return plan


class install:
    """Context manager: put ``rules`` in force, here and in new workers.

    Sets ``REPRO_FAULTS`` (so processes forked/spawned inside the block
    inherit the plan), resets hit counters, and retires the persistent
    worker pools on entry *and* exit — existing workers carry a stale
    environment copy, so plans only ever apply to freshly-born pools.
    On exit the env var is restored, hung threads are released, and the
    pools are retired again so no faulted worker outlives the plan.
    """

    def __init__(self, rules) -> None:
        pid = os.getpid()
        self.rules = tuple(
            r if r.installer_pid else _with_installer(r, pid) for r in rules
        )
        self._saved: str | None = None

    def __enter__(self) -> "install":
        from repro.utils.executor import shutdown_pools

        shutdown_pools()
        reset()
        _RELEASE.clear()
        self._saved = os.environ.get(ENV_VAR)
        os.environ[ENV_VAR] = plan_to_env(self.rules)
        return self

    def __exit__(self, *exc) -> None:
        from repro.utils.executor import shutdown_pools

        if self._saved is None:
            os.environ.pop(ENV_VAR, None)
        else:  # pragma: no cover - nested plans are a test-only exotic
            os.environ[ENV_VAR] = self._saved
        release_hangs()
        shutdown_pools()


def _with_installer(rule: FaultRule, pid: int) -> FaultRule:
    import dataclasses

    return dataclasses.replace(rule, installer_pid=pid)


# --------------------------------------------------------------------- #
# Firing
# --------------------------------------------------------------------- #
def _in_worker() -> bool:
    """Whether this thread/process is one of the layer's pool workers."""
    from repro.utils import executor

    if executor._IS_POOL_WORKER:
        return True
    return bool(getattr(executor._TLS, "in_worker", False))


def _rate_hash(seed: int, point: str, hit: int) -> float:
    """Deterministic uniform-[0,1) draw keyed on (seed, point, hit)."""
    digest = hashlib.blake2b(
        f"{seed}:{point}:{hit}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


def _claim_once(token: str) -> bool:
    """Atomically claim a cross-process single-firing token."""
    try:
        fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _corrupt(payload):
    """Deterministically damage a worker result (the ``poison`` kind).

    Sign-flips the first element of the first numpy array found
    (recursing through tuples/lists) — the single-word damage
    shared-memory corruption produces, landing outside any valid part-id
    range so the partition-invariant validator *must* catch it.  A
    dataclass record with a ``volume`` field (a sweep ``RunRecord``) has
    that metric sign-flipped instead.
    """
    import dataclasses

    import numpy as np

    if isinstance(payload, np.ndarray) and payload.size:
        poisoned = payload.copy()
        poisoned[0] = -1 - poisoned[0]
        return poisoned
    if dataclasses.is_dataclass(payload) and hasattr(payload, "volume"):
        return dataclasses.replace(payload, volume=-1 - int(payload.volume))
    if isinstance(payload, (tuple, list)):
        out = []
        done = False
        for item in payload:
            if not done:
                damaged = _corrupt(item)
                if damaged is not item:
                    out.append(damaged)
                    done = True
                    continue
            out.append(item)
        return type(payload)(out) if done else payload
    return payload


def fault_point(name: str, payload=None):
    """Declare a named fault point; returns ``payload`` (possibly
    poisoned).

    Production cost with no plan installed: one ``os.environ`` lookup.
    Under a plan, each matching rule may raise, crash, hang, or corrupt
    the payload, as documented in the module docstring.
    """
    if name not in FAULT_POINTS:
        raise EvaluationError(
            f"unregistered fault point {name!r}; add it to "
            f"repro.utils.faults.FAULT_POINTS"
        )
    plan = active_plan()
    if not plan:
        return payload
    hit = _HITS.get(name, 0) + 1
    _HITS[name] = hit
    for rule in plan:
        if rule.point != name:
            continue
        if rule.scope == "worker" and not _in_worker():
            continue
        fire = (not rule.hits and rule.rate <= 0.0) or hit in rule.hits
        if not fire and rule.rate > 0.0:
            fire = _rate_hash(rule.seed, name, hit) < rule.rate
        if not fire:
            continue
        if rule.once_token is not None and not _claim_once(rule.once_token):
            continue
        payload = _fire(rule, name, payload)
    return payload


def _fire(rule: FaultRule, name: str, payload):
    if rule.kind == "poison":
        return _corrupt(payload)
    if rule.kind == "shm":
        raise FileNotFoundError(
            f"[injected fault] shared-memory segment gone at {name}"
        )
    if rule.kind == "disk":
        import errno

        raise OSError(
            errno.ENOSPC,
            f"[injected fault] no space left on device at {name}",
        )
    if rule.kind == "hang":
        _RELEASE.wait(rule.delay)
        raise InjectedFault(
            f"injected hang at {name} released after <= {rule.delay}s"
        )
    if rule.kind == "crash":
        if os.getpid() != rule.installer_pid:
            # Flush nothing, die like an OOM kill.  Never in the
            # installing process itself: a serial/thread run there must
            # see a failure, not lose the whole test runner.
            os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(60)  # pragma: no cover - the signal is fatal
        raise InjectedFault(
            f"injected crash at {name} (downgraded in installer process)"
        )
    raise InjectedFault(f"injected exception at {name}")
