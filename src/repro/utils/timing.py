"""Wall-clock timing helpers used by the experiment harness.

The paper reports *partitioning time* (Fig. 5, Table I); the evaluation
runner wraps each method call in a :class:`Timer`.  ``perf_counter`` is used
because it has the best resolution of the monotonic clocks and is unaffected
by system clock adjustments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer"]


@dataclass
class Timer:
    """A context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True

    A ``Timer`` can be reused; ``elapsed`` always refers to the most recent
    ``with`` block, and ``total`` accumulates across blocks.
    """

    elapsed: float = 0.0
    total: float = 0.0
    _t0: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._t0
        self.total += self.elapsed

    def reset(self) -> None:
        """Zero both ``elapsed`` and ``total``."""
        self.elapsed = 0.0
        self.total = 0.0
