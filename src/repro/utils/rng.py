"""Random-number-generator discipline.

Every stochastic routine in :mod:`repro` accepts a ``seed`` argument that may
be ``None``, an integer, or a :class:`numpy.random.Generator`, and converts it
through :func:`as_generator`.  Experiments that need many independent streams
derive child seeds with :func:`spawn_seeds` so that runs are reproducible and
independent of execution order.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["as_generator", "spawn_seeds", "SeedLike"]

SeedLike = Union[None, int, np.integer, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged, so state is shared with the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot interpret {type(seed).__name__} as a random seed")


def spawn_seeds(seed: SeedLike, n: int) -> list[int]:
    """Derive ``n`` independent 63-bit child seeds from ``seed``.

    The derivation is deterministic for integer seeds: the same ``(seed, n)``
    always yields the same list, and extending ``n`` keeps earlier entries
    stable (the children are drawn as a prefix of one stream).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = as_generator(seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)]
