"""Random-number-generator discipline.

Every stochastic routine in :mod:`repro` accepts a ``seed`` argument that may
be ``None``, an integer, or a :class:`numpy.random.Generator`, and converts it
through :func:`as_generator`.  Experiments that need many independent streams
derive child seeds with :func:`spawn_seeds` so that runs are reproducible and
independent of execution order.

Tree-structured computations (recursive bisection) need one independent
stream *per node* whose identity depends only on the node's position, never
on traversal order — otherwise a parallel traversal could not reproduce the
serial result.  :func:`as_seed_sequence` normalizes a seed into a root
:class:`numpy.random.SeedSequence` and :func:`child_sequence` derives the
child at any tree path statelessly: ``child_sequence(root, 0, 1)`` is the
right child of the left child of the root, identical to
``root.spawn(...)``'s spawn-key scheme but without mutating spawn counters.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "as_generator",
    "as_seed_sequence",
    "child_sequence",
    "spawn_seeds",
    "SeedLike",
]

SeedLike = Union[None, int, np.integer, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged, so state is shared with the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot interpret {type(seed).__name__} as a random seed")


def as_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Normalize ``seed`` into a root :class:`numpy.random.SeedSequence`.

    Integers and existing sequences map deterministically; ``None`` draws
    fresh OS entropy.  A live ``Generator`` is consumed *exactly once* (one
    63-bit draw seeds the root), so the caller's stream advances by a single
    value regardless of how many children are later derived from the root.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(
            int(seed.integers(0, 2**63 - 1, dtype=np.int64))
        )
    if seed is None:
        return np.random.SeedSequence()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.SeedSequence(int(seed))
    raise TypeError(f"cannot interpret {type(seed).__name__} as a random seed")


def child_sequence(
    parent: np.random.SeedSequence, *path: int
) -> np.random.SeedSequence:
    """The child sequence at ``path`` below ``parent``, statelessly.

    ``SeedSequence.spawn`` appends the child's index to the parent's
    ``spawn_key`` but tracks a mutable spawn counter; this reimplements the
    same derivation as a pure function of the position, so any process can
    reconstruct any node's stream from the root alone:

    >>> import numpy as np
    >>> root = np.random.SeedSequence(42)
    >>> spawned = np.random.SeedSequence(42).spawn(2)[1]
    >>> derived = child_sequence(root, 1)
    >>> bool((derived.generate_state(4) == spawned.generate_state(4)).all())
    True

    An empty path returns ``parent`` itself.
    """
    if not path:
        return parent
    return np.random.SeedSequence(
        entropy=parent.entropy,
        spawn_key=tuple(parent.spawn_key) + tuple(int(i) for i in path),
        pool_size=parent.pool_size,
    )


def spawn_seeds(seed: SeedLike, n: int) -> list[int]:
    """Derive ``n`` independent 63-bit child seeds from ``seed``.

    The derivation is deterministic for integer seeds: the same ``(seed, n)``
    always yields the same list, and extending ``n`` keeps earlier entries
    stable (the children are drawn as a prefix of one stream).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = as_generator(seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)]
