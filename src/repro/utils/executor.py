"""Unified zero-copy execution layer for every parallel subsystem.

Two subsystems run work concurrently — the sweep engine
(:mod:`repro.eval.sweep`, parallel *across* runs) and recursive bisection
(:mod:`repro.core.recursive`, parallel *within* one p-way partitioning).
Before this layer existed each owned a private
:class:`~concurrent.futures.ProcessPoolExecutor` and every bisection task
pickled a full submatrix (rows + cols + vals, 24 bytes per nonzero) into
its worker.  This module replaces both with one shared engine built from
three pieces:

Shared-memory matrix store
    :class:`SharedMatrixStore` publishes a matrix's canonical flat arrays
    **once** via :mod:`multiprocessing.shared_memory`; workers receive a
    :class:`MatrixHandle` (a name plus the shape — a few dozen bytes) and
    an index range instead of a pickled submatrix.  The handle attaches
    zero-copy: the worker-side :class:`~repro.sparse.matrix.SparseMatrix`
    views the shared segment directly through
    :meth:`~repro.sparse.matrix.SparseMatrix.from_canonical`.

Execution backends
    :class:`MatrixExecutor` delivers ``(submatrix, extra)`` tasks to
    workers under four interchangeable backends: ``"serial"`` (inline),
    ``"thread"`` (a shared :class:`~concurrent.futures.ThreadPoolExecutor`
    — zero-copy by construction; the numba kernels are compiled with
    ``nogil=True`` so threads genuinely overlap in the hot loops),
    ``"process"`` (process pool + shared-memory store), and
    ``"process-pickle"`` (the legacy pickled-payload pool, kept as the
    fallback and the benchmark baseline).  ``"auto"`` picks ``"thread"``
    when the numba JIT is importable and ``"process"`` otherwise.  All
    backends are bit-identical by construction: they only change how a
    task's inputs travel, never what the task computes.

Jobs budget
    :class:`JobsBudget` makes one ``--jobs N`` composable across nesting
    levels: ``budget.split(n_outer)`` divides the total between
    outer-level workers (sweep chunks) and inner-level workers (the
    recursion tree inside each run) so ``outer * inner <= total`` —
    nested pools can no longer oversubscribe the machine.

The worker pools are persistent (fork/spawn cost paid once per process,
not once per call) and shut down exactly once through exit hooks that
cover both plain interpreters (:mod:`atexit`) and multiprocessing
children (:class:`multiprocessing.util.Finalize` — children skip atexit),
so no live executor or shared-memory segment leaks at interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import (
    DegradedExecution,
    ExecutionError,
    ShmAttachError,
    TaskTimeout,
    WorkerCrash,
)
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sparse.matrix import SparseMatrix
from repro.utils import faults
from repro.utils.parallel import resolve_jobs

__all__ = [
    "EXEC_BACKEND_CHOICES",
    "STORE_CAP",
    "JobsBudget",
    "RetryPolicy",
    "MatrixHandle",
    "SharedMatrixStore",
    "MatrixExecutor",
    "resolve_exec_backend",
    "process_pool",
    "thread_pool",
    "pool_map",
    "pool_submit",
    "resilient_map",
    "resilient_call",
    "shutdown_pools",
    "close_matrix_stores",
    "payload_audit",
    "account_payload",
]

#: Valid values of ``PartitionerConfig.exec_backend`` / ``--exec-backend``.
EXEC_BACKEND_CHOICES = ("auto", "serial", "thread", "process", "process-pickle")

# Observability (see docs/observability.md): dispatch volume, hardened
# task latency, and the hardening events.  Plain process-local adds —
# never consulted by the execution layer itself.
_EXEC_TASKS = _metrics.counter(
    "repro_executor_tasks_total",
    "Tasks dispatched through the execution layer",
    ("backend",),
)
_EXEC_TASK_SECONDS = _metrics.histogram(
    "repro_executor_task_seconds",
    "Submit-to-completion latency of hardened (resilient) tasks",
)
_EXEC_RETRIES = _metrics.counter(
    "repro_executor_retries_total",
    "Task resubmissions (crash, timeout, invalid result)",
)
_EXEC_WATCHDOG_KILLS = _metrics.counter(
    "repro_executor_watchdog_kills_total",
    "Watchdog pool kills fired for tasks past their deadline",
)
_EXEC_DEGRADED = _metrics.counter(
    "repro_executor_degraded_total",
    "Tasks completed by the serial in-process last rung",
)
_PAYLOAD_BYTES = _metrics.counter(
    "repro_executor_payload_bytes_total",
    "Pickled task payload bytes shipped to workers "
    "(counted while a payload audit is active)",
)
_PAYLOAD_TASKS = _metrics.counter(
    "repro_executor_payload_tasks_total",
    "Tasks whose payloads were measured by a payload audit",
)


def resolve_exec_backend(spec: str = "auto") -> str:
    """Resolve an execution-backend spec to a concrete backend name.

    ``"auto"`` picks ``"thread"`` when the numba JIT is importable (the
    kernels are compiled ``nogil=True``, so threads overlap in the hot
    loops and share the address space for free) and ``"process"`` —
    worker processes over the shared-memory matrix store — otherwise.
    """
    if spec == "auto":
        from repro.kernels import numba_available

        return "thread" if numba_available() else "process"
    if spec not in EXEC_BACKEND_CHOICES:
        raise ValueError(
            f"unknown execution backend {spec!r}; "
            f"expected one of {EXEC_BACKEND_CHOICES}"
        )
    return spec


# --------------------------------------------------------------------- #
# Jobs budget
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class JobsBudget:
    """A global worker budget composable across nesting levels.

    One ``--jobs N`` request names the *total* number of workers the user
    wants busy; :meth:`split` divides it between an outer level (sweep
    chunks) and an inner level (the recursion tree inside each run) so
    that ``outer * inner <= total`` — the invariant that keeps nested
    parallelism from oversubscribing the machine.

    The split is a pure function of ``(total, outer_tasks)``, and every
    ``jobs`` value is a speed knob only (results are bit-identical by the
    position-keyed seed-stream contract), so budgets never change what a
    sweep or partitioning computes.
    """

    total: int

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ValueError(
                f"JobsBudget.total must be >= 1, got {self.total}"
            )

    @classmethod
    def resolve(cls, jobs: int | None) -> "JobsBudget":
        """Budget from a user ``jobs`` request (``None``/``0`` = CPUs)."""
        return cls(resolve_jobs(jobs))

    def split(self, outer_tasks: int) -> tuple[int, int]:
        """Divide the budget over ``outer_tasks`` independent outer items.

        Returns ``(outer_workers, inner_jobs)`` with ``outer_workers <=
        max(1, outer_tasks)`` and ``outer_workers * inner_jobs <= total``.
        The outer level is saturated first (outer items are fully
        independent, so they scale perfectly); whatever remains is handed
        down — e.g. a budget of 8 over 2 instances runs 2 sweep workers
        with 4 recursion workers each, while a budget of 8 over 16
        instances runs 8 sweep workers with serial recursion.
        """
        if outer_tasks < 0:
            raise ValueError(f"outer_tasks must be >= 0, got {outer_tasks}")
        if self.total <= 1 or outer_tasks <= 1:
            return (1, self.total)
        outer = min(self.total, outer_tasks)
        return outer, max(1, self.total // outer)


# --------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + retry budget for hardened task execution.

    ``timeout`` is the per-task deadline in seconds (``None``/``0`` = no
    deadline — exactly today's behaviour); ``retries`` is how many times
    a crashed / timed-out / invalid task is resubmitted before the
    degradation ladder's last rung (serial in-process execution) runs
    it.  Resubmissions back off exponentially — ``backoff * 2**(attempt
    - 1)`` seconds, capped at ``backoff_cap`` — with *no jitter*: the
    execution layer is deterministic by contract, and its failure
    handling is too.
    """

    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            # 0 is the CLI's "disabled" spelling.
            object.__setattr__(self, "timeout", None)
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")

    @property
    def active(self) -> bool:
        """Whether this policy changes anything at all (the fast chunked
        dispatch path is used whenever it does not)."""
        return self.timeout is not None or self.retries > 0

    def delay_for(self, attempt: int) -> float:
        """Capped exponential backoff before resubmission ``attempt``."""
        return min(self.backoff_cap, self.backoff * 2.0 ** max(0, attempt - 1))

    @classmethod
    def resolve(cls, timeout: float | None, retries: int | None) -> "RetryPolicy":
        """Policy from user knobs (``None``/``0`` each preserve today's
        behaviour exactly)."""
        return cls(timeout=timeout or None, retries=retries or 0)


# --------------------------------------------------------------------- #
# Persistent pools (shared by the sweep engine and recursive bisection)
# --------------------------------------------------------------------- #
#: ``(owner_pid, size, pool)`` — the pid guards against fork inheritance:
#: a worker process forked from a parent that held a live pool inherits
#: the pool *object* but not its management thread or worker processes,
#: so using it would hang forever.  Nested parallelism (a sweep worker
#: running parallel recursion under a :class:`JobsBudget`) therefore
#: creates its own pool on first use in each process.
_PROCESS_POOL: tuple[int, int, ProcessPoolExecutor] | None = None
_THREAD_POOL: tuple[int, int, ThreadPoolExecutor] | None = None

#: Guards every module-level singleton (the two pools, the store
#: registry): the thread backend makes concurrent calls into this module
#: a normal condition, and unguarded check-then-act would let two
#: threads each create (or worse, one retire while the other submits to)
#: the "shared" pool.
_LOCK = threading.RLock()

#: Thread-local nesting state.  ``in_worker`` is set (via the pool
#: initializer) in every thread the layer creates; a nested
#: ``thread_pool`` request from such a thread gets a *private*
#: per-thread pool instead of the shared one — handing a worker the very
#: pool it runs on would deadlock the moment all workers block on
#: futures only they could execute (the sweep x recursion composition
#: under the thread backend).
_TLS = threading.local()


def _mark_worker() -> None:
    _TLS.in_worker = True


#: True in processes that are workers of *this layer's* process pools
#: (set by the pool initializer in every child).  A worker creating its
#: own inner pool passes the flag down so grandchildren know they are
#: nested — the explicit marker the parent-death arming below keys on
#: (``multiprocessing.parent_process()`` would be wrong: a host
#: application may legitimately run this library inside its own mp
#: child, whose pools are top-level as far as this layer is concerned).
_IS_POOL_WORKER = False


def _process_worker_init(nested: bool) -> None:
    """Process-pool worker initializer: arm parent-death signalling.

    A worker running nested parallelism (a sweep chunk driving parallel
    recursion under a :class:`JobsBudget`) owns an *inner* pool whose
    grandchildren inherit every fd of the worker — including the
    sentinel write end the outer pool watches for worker death.  If the
    worker then dies abruptly (``os._exit``, OOM kill, signal), the
    orphaned grandchildren keep that sentinel open and the outer pool
    never detects the death: ``map()`` blocks forever instead of
    raising :class:`BrokenProcessPool`.  ``PR_SET_PDEATHSIG`` makes the
    kernel SIGTERM a worker's children the moment the worker dies,
    releasing the sentinel (and reaping the orphans).  Linux-only;
    elsewhere this is a no-op and abrupt-death detection simply relies
    on graceful shutdown, as before.

    Only *nested* pools (``nested=True`` — created inside one of this
    layer's own pool workers) arm this: the signal fires when the
    forking **thread** dies, not the process (prctl(2)), and a
    top-level pool may be lazily forked from a transient caller thread
    — arming there would SIGTERM healthy workers when that thread
    exits.  Inside a worker, pools are forked from the worker's task
    loop (its main thread), which lives exactly as long as the worker,
    so the signal means what we want.
    """
    global _IS_POOL_WORKER
    _IS_POOL_WORKER = True
    # A forked worker also inherits the parent's signal plumbing.  When
    # the parent runs an asyncio loop (the serving daemon), that
    # includes the C-level wakeup fd of ``loop.add_signal_handler`` —
    # which, after fork, still writes into the *parent's* self-pipe.  A
    # worker that then receives any handled signal (concurrent.futures
    # SIGTERMs the survivors of a broken pool) would deliver that byte
    # into the parent's loop, convincing the daemon *it* was signalled
    # and draining it mid-crash-recovery.  Detach the fd and restore
    # default dispositions before the worker can catch anything.
    import signal as _sig

    _sig.set_wakeup_fd(-1)
    for signum in (_sig.SIGTERM, _sig.SIGINT):
        try:
            _sig.signal(signum, _sig.SIG_DFL)
        except (OSError, ValueError):  # pragma: no cover - non-main thread
            pass
    # A forked worker inherits the parent's fault-injection hit counters
    # (and its hang-release flag); a worker's per-process hit indices
    # must start at 1 for fault plans to be deterministic.
    faults.reset()
    faults._RELEASE.clear()
    if not nested:
        return
    try:  # pragma: no cover - exercised via the nested crash test
        import ctypes
        import signal as _signal

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, _signal.SIGTERM, 0, 0, 0)  # 1 == PR_SET_PDEATHSIG
    except Exception:
        pass

#: Which process has exit hooks installed (fork resets the guard's
#: meaning, hence a pid, not a bool).
_EXIT_HOOK_PID: int | None = None


def _ensure_exit_hook() -> None:
    """Install the pool-shutdown exit hook in *this* process, once.

    Plain interpreters run :mod:`atexit` handlers, but multiprocessing
    children exit through ``os._exit`` after ``util._exit_function`` —
    which joins every non-daemon child process *without* running atexit.
    A sweep worker holding an inner recursion pool would therefore hang
    forever joining grandchildren nobody told to stop.  Registering the
    shutdown as a :class:`multiprocessing.util.Finalize` (exitpriority
    ``>= 0`` runs *before* the join) covers both worlds.
    """
    global _EXIT_HOOK_PID
    pid = os.getpid()
    if _EXIT_HOOK_PID == pid:
        return
    _EXIT_HOOK_PID = pid
    atexit.register(shutdown_pools)
    try:
        from multiprocessing import util

        util.Finalize(None, shutdown_pools, kwargs={"wait": True},
                      exitpriority=100)
    except Exception:  # pragma: no cover - exotic mp configurations
        pass


def process_pool(jobs: int) -> ProcessPoolExecutor:
    """The shared process pool for ``jobs`` workers (created/resized on
    use).  Workers are stateless between tasks — every payload is
    self-contained — so reuse cannot leak results across calls, and the
    fork/spawn cost is paid once per interpreter instead of once per
    call.  Requesting a different size retires the old pool first
    (``shutdown(wait=False)`` lets already-submitted work drain; use
    :func:`pool_map` to make fetch + submit atomic against a concurrent
    resize)."""
    global _PROCESS_POOL
    with _LOCK:
        pid = os.getpid()
        if _PROCESS_POOL is not None:
            if _PROCESS_POOL[:2] == (pid, jobs):
                return _PROCESS_POOL[2]
            if _PROCESS_POOL[0] == pid:
                _PROCESS_POOL[2].shutdown(wait=False)
        _ensure_exit_hook()
        try:
            # Spawn the (singleton) shared-memory resource tracker
            # *before* forking workers, so they inherit its pipe.  A
            # worker that attaches a segment with no inherited tracker
            # would spawn its own, which then mis-reports the
            # parent-owned segments as leaked when the worker exits.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - exotic mp configurations
            pass
        pool = ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_process_worker_init,
            initargs=(_IS_POOL_WORKER,),
        )
        _PROCESS_POOL = (pid, jobs, pool)
        return pool


def thread_pool(jobs: int) -> ThreadPoolExecutor:
    """The shared thread pool (grown to at least ``jobs``, never shrunk —
    idle threads are nearly free, unlike idle processes).

    Calls from *inside* one of the layer's own worker threads (a sweep
    chunk running parallel recursion under a :class:`JobsBudget`) get a
    private per-thread pool instead: the shared pool's workers are
    exactly the threads blocking on the nested futures, so handing it
    back would deadlock permanently.
    """
    if getattr(_TLS, "in_worker", False):
        cached = getattr(_TLS, "pool", None)
        if cached is not None and cached[0] >= jobs:
            return cached[1]
        if cached is not None:
            cached[1].shutdown(wait=False)
        pool = ThreadPoolExecutor(max_workers=jobs, initializer=_mark_worker)
        _TLS.pool = (jobs, pool)
        return pool
    global _THREAD_POOL
    with _LOCK:
        pid = os.getpid()
        if _THREAD_POOL is not None:
            if _THREAD_POOL[0] == pid and _THREAD_POOL[1] >= jobs:
                return _THREAD_POOL[2]
            if _THREAD_POOL[0] == pid:
                _THREAD_POOL[2].shutdown(wait=False)
        _ensure_exit_hook()
        pool = ThreadPoolExecutor(max_workers=jobs, initializer=_mark_worker)
        _THREAD_POOL = (pid, jobs, pool)
        return pool


def pool_map(kind: str, jobs: int, fn, items, chunksize: int = 1):
    """Fetch the shared pool and submit ``items`` atomically.

    Submission happens under the layer's lock so a concurrent resize
    cannot retire the pool between the fetch and the submit (executor
    ``map`` submits every item eagerly; only result consumption is
    lazy, and retired pools drain already-submitted work).
    """
    try:
        _EXEC_TASKS.labels(backend=kind).inc(len(items))
    except TypeError:  # pragma: no cover - generator payloads
        pass
    with _LOCK:
        if kind == "thread":
            return thread_pool(jobs).map(fn, items)
        return process_pool(jobs).map(fn, items, chunksize=chunksize)


def pool_submit(kind: str, jobs: int, fn, item):
    """Fetch the shared pool and submit one task atomically.

    The single-item counterpart of :func:`pool_map`, for callers that
    schedule work incrementally (the sweep engine submits chunks in a
    bounded window so each chunk's shared-memory store is published just
    before its worker needs it).  Returns the future.
    """
    _EXEC_TASKS.labels(backend=kind).inc()
    with _LOCK:
        if kind == "thread":
            return thread_pool(jobs).submit(fn, item)
        return process_pool(jobs).submit(fn, item)


def drop_process_pool() -> None:
    """Forget the shared process pool (it is broken or being replaced).

    Called after :class:`BrokenProcessPool` so the next parallel call
    starts a fresh pool instead of failing forever.
    """
    global _PROCESS_POOL
    with _LOCK:
        _PROCESS_POOL = None


def _watchdog_kill_pool() -> None:
    """SIGKILL every worker of the shared process pool and forget it.

    The watchdog's hammer: a task past its deadline is *hung* — it will
    never return, cooperative cancellation cannot reach it, and the
    futures API cannot cancel running work.  Killing the workers breaks
    the pool (in-flight siblings fail with :class:`BrokenProcessPool`
    and are resubmitted as collateral, without consuming their retry
    budget); the next submission builds a fresh pool.  Shared-memory
    segments are unaffected — they are owned and cleaned by this
    (parent) process, never by workers.
    """
    global _PROCESS_POOL
    with _LOCK:
        entry, _PROCESS_POOL = _PROCESS_POOL, None
    if entry is None or entry[0] != os.getpid():
        return
    pool = entry[2]
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - already-dead worker
            pass
    pool.shutdown(wait=False)


def resilient_map(
    kind: str,
    jobs: int,
    fn,
    items: list,
    *,
    policy: RetryPolicy,
    fallback,
    validate=None,
    labels=None,
) -> tuple[list, list[list[ExecutionError]]]:
    """Run ``fn(item)`` per item on the shared pool under ``policy``.

    The hardened counterpart of :func:`pool_map`: per-task deadlines
    (with the watchdog killing hung workers and rebuilding the pool),
    bounded retry with capped exponential backoff for crashed /
    timed-out / invalid results, and — after the retry budget is
    exhausted — serial in-process completion via ``fallback(index)``,
    so the map *always* returns a full result list.

    ``validate(index, value)`` (optional) is applied to every result at
    this boundary; a :class:`~repro.errors.ResultValidationError` it
    raises is treated exactly like a crash and the task retried.
    Returns ``(values, failures)`` with ``failures[i]`` the structured
    failure records (:class:`~repro.errors.ExecutionError` instances)
    task ``i`` accumulated on its way to completion; an untroubled task
    has an empty list.

    Thread-backend caveat: threads cannot be killed, so a timed-out
    thread task is *abandoned* (recorded as a timeout and resubmitted;
    the stale thread's result is discarded when it eventually lands).
    """
    n = len(items)
    values: list = [None] * n
    completed = [False] * n
    failures: list[list[ExecutionError]] = [[] for _ in range(n)]
    attempts = [0] * n
    ready = [0.0] * n
    queue: deque[int] = deque(range(n))
    degraded: list[int] = []
    pending: dict = {}
    collateral: set[int] = set()
    is_process = kind != "thread"

    def _label(i: int) -> str:
        return labels[i] if labels is not None else f"task{i}"

    def _submit(i: int) -> None:
        try:
            fut = pool_submit(kind, jobs, fn, items[i])
        except BrokenProcessPool:
            # The shared pool broke between our calls; start fresh.
            drop_process_pool()
            fut = pool_submit(kind, jobs, fn, items[i])
        now = time.monotonic()
        deadline = now + policy.timeout if policy.timeout is not None else None
        pending[fut] = (i, deadline, now)

    def _fail(i: int, exc: ExecutionError) -> None:
        failures[i].append(exc)
        _EXEC_RETRIES.inc()
        _trace.event("task_failure", task=_label(i),
                     kind=type(exc).__name__, attempt=attempts[i])
        if attempts[i] > policy.retries:
            degraded.append(i)
        else:
            ready[i] = time.monotonic() + policy.delay_for(attempts[i])
            queue.append(i)

    def _accept(i: int, value) -> None:
        if validate is not None:
            from repro.errors import ResultValidationError

            try:
                validate(i, value)
            except ResultValidationError as exc:
                attempts[i] += 1
                exc.task = exc.task or _label(i)
                exc.attempt = attempts[i]
                _fail(i, exc)
                return
        values[i] = value
        completed[i] = True

    while queue or pending:
        now = time.monotonic()
        deferred: list[int] = []
        while queue:
            i = queue.popleft()
            if ready[i] > now:
                deferred.append(i)
            else:
                _submit(i)
        queue.extend(deferred)
        if not pending:
            if queue:  # everything is backing off; sleep to the earliest
                time.sleep(
                    max(0.0, min(ready[i] for i in queue) - time.monotonic())
                )
            continue
        wake = min(
            (d for (_, d, _t) in pending.values() if d is not None),
            default=None,
        )
        if queue:
            nxt = min(ready[i] for i in queue)
            wake = nxt if wake is None else min(wake, nxt)
        wait_s = None if wake is None else max(0.0, wake - time.monotonic())
        done, _ = futures_wait(
            set(pending), timeout=wait_s, return_when=FIRST_COMPLETED
        )
        for fut in done:
            i, _deadline, t_submit = pending.pop(fut)
            _EXEC_TASK_SECONDS.observe(time.monotonic() - t_submit)
            try:
                value = fut.result()
            except BrokenProcessPool:
                if i in collateral:
                    # An innocent victim of a watchdog kill or a sibling
                    # crash: resubmit without touching its retry budget.
                    collateral.discard(i)
                    queue.append(i)
                else:
                    attempts[i] += 1
                    _fail(i, WorkerCrash(
                        "worker process died while the task was in "
                        "flight", task=_label(i), attempt=attempts[i],
                    ))
                continue
            except Exception as exc:
                attempts[i] += 1
                _fail(i, ExecutionError(
                    f"task raised {type(exc).__name__}: {exc}",
                    task=_label(i), attempt=attempts[i],
                ))
                continue
            collateral.discard(i)
            _accept(i, value)
        # Watchdog sweep: anything past its deadline is hung.
        now = time.monotonic()
        expired = [
            (fut, i)
            for fut, (i, d, _t) in pending.items()
            if d is not None and d <= now
        ]
        if expired:
            for fut, i in expired:
                # Thread backend: the future cannot be cancelled — the
                # stale thread is simply abandoned (it is released when
                # a fault plan is uninstalled) and its result discarded.
                # Process backend: the worker is about to be killed.
                del pending[fut]
                attempts[i] += 1
                _fail(i, TaskTimeout(
                    f"task exceeded its {policy.timeout:.3g}s deadline",
                    task=_label(i), attempt=attempts[i],
                    timeout=policy.timeout,
                ))
            if is_process:
                # Kill the hung workers; siblings still in flight become
                # collateral and are resubmitted on the rebuilt pool.
                for _fut, (i, _d, _t) in pending.items():
                    collateral.add(i)
                _EXEC_WATCHDOG_KILLS.inc()
                _trace.event(
                    "watchdog_kill", expired=len(expired),
                    collateral=len(pending),
                )
                _watchdog_kill_pool()
    # Degradation ladder's last rung: whatever the pool could not
    # deliver is computed serially in-process, so the map always
    # completes.  A validation failure here is terminal — there is no
    # further fallback that could produce a trustworthy result.
    for i in degraded:
        if completed[i]:  # pragma: no cover - defensive
            continue
        _EXEC_DEGRADED.inc()
        _trace.event("degraded_execution", task=_label(i))
        value = fallback(i)
        if validate is not None:
            validate(i, value)
        values[i] = value
        completed[i] = True
        failures[i].append(DegradedExecution(
            "retry budget exhausted on the worker pool; completed by "
            "serial in-process execution", task=_label(i),
            attempt=attempts[i],
        ))
    return values, failures


def resilient_call(
    kind: str,
    jobs: int,
    fn,
    item,
    *,
    policy: RetryPolicy,
    fallback=None,
    validate=None,
    label: str = "",
) -> tuple[object, list[ExecutionError]]:
    """Run one ``fn(item)`` task on the shared pool under ``policy``.

    The single-item counterpart of :func:`resilient_map`, for callers
    that dispatch work one request at a time (the serving daemon): same
    deadline/watchdog/retry semantics, returning ``(value, failures)``.

    ``fallback`` defaults to *refusing* inline completion: a serving
    process must never run a request that repeatedly killed its workers
    inside its own address space, so with the retry budget exhausted a
    :class:`~repro.errors.DegradedExecution` is raised (carrying every
    accumulated failure record on its ``failures`` attribute) instead of
    degrading — the caller turns it into a structured per-request error.
    Pass an explicit ``fallback(index)`` to opt back into the batch
    layer's degrade-to-inline ladder.
    """
    refused = object()
    refusing = fallback is None
    if refusing:
        fallback = lambda _i: refused  # noqa: E731

        if validate is not None:
            inner_validate = validate

            def validate(i, value):  # noqa: F811 - deliberate wrap
                if value is not refused:
                    inner_validate(i, value)

    values, failures = resilient_map(
        kind, jobs, fn, [item],
        policy=policy, fallback=fallback, validate=validate,
        labels=[label] if label else None,
    )
    if refusing and values[0] is refused:
        exc = DegradedExecution(
            "retry budget exhausted on the worker pool; inline fallback "
            "is disabled for isolated requests", task=label,
        )
        # The pre-degradation records: the request's full failure story.
        exc.failures = [f for f in failures[0]
                        if not isinstance(f, DegradedExecution)]
        raise exc
    return values[0], failures[0]


def shutdown_pools(wait: bool = False) -> None:
    """Shut down every shared pool (idempotent; registered with atexit).

    Before this layer, :mod:`repro.core.recursive` kept a module-level
    pool alive at interpreter exit; the atexit hook guarantees worker
    processes are reaped no matter which subsystem created them.
    """
    global _PROCESS_POOL, _THREAD_POOL
    # Detach the singletons under the lock, but run the (possibly
    # blocking, wait=True) shutdowns outside it: a still-running worker
    # that needs the lock must not deadlock against the join.
    pools = []
    with _LOCK:
        pid = os.getpid()
        if _PROCESS_POOL is not None:
            if _PROCESS_POOL[0] == pid:
                pools.append(_PROCESS_POOL[2])
            _PROCESS_POOL = None
        if _THREAD_POOL is not None:
            if _THREAD_POOL[0] == pid:
                pools.append(_THREAD_POOL[2])
            _THREAD_POOL = None
    for pool in pools:
        pool.shutdown(wait=wait)
    close_matrix_stores()


# --------------------------------------------------------------------- #
# Shared-memory matrix store
# --------------------------------------------------------------------- #
#: Per-process cache of attached segments: name -> (shm, matrix).  A
#: worker typically serves many tasks of the same partitioning call, so
#: the attach (open + mmap + view construction) is paid once per matrix
#: per worker.  Bounded: entries beyond the cap are closed oldest-first
#: (a worker only ever needs the segments of the calls in flight).
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, SparseMatrix]] = {}
_ATTACH_CAP = 4


@dataclass(frozen=True)
class MatrixHandle:
    """A picklable, few-dozen-byte reference to a published matrix.

    ``open()`` reconstructs the matrix zero-copy in any process on the
    same machine: the arrays are read-only views of the shared segment,
    so *no* nonzero data crosses the pickle boundary.  ``label`` names
    the matrix for humans (e.g. the collection-instance name) so attach
    failures can say *which* matrix vanished, not just which segment.
    """

    name: str
    shape: tuple[int, int]
    nnz: int
    label: str = ""

    def open(self) -> SparseMatrix:
        """Attach (cached per process) and view the published matrix.

        Raises :class:`~repro.errors.ShmAttachError` when the segment no
        longer exists (evicted past ``STORE_CAP``, or unlinked by an
        exiting owner) — a clear, catchable signal that callers holding
        the instance name should rebuild the matrix by name instead
        (the sweep engine's fallback path).
        """
        cached = _ATTACHED.get(self.name)
        if cached is not None:
            return cached[1]
        try:
            faults.fault_point("shm.attach")
            # NOTE: attaching re-registers the name with the (single,
            # shared) resource tracker; that is a set-add no-op, and the
            # creator's unlink unregisters it exactly once — so no
            # explicit untracking here (an attach-side unregister would
            # *steal* the creator's entry and make its unlink-time
            # unregister fail).
            shm = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError as exc:
            what = self.label or f"{self.shape[0]}x{self.shape[1]} matrix"
            raise ShmAttachError(
                f"shared-memory segment {self.name!r} for {what} "
                f"(nnz={self.nnz}) is gone — evicted or unlinked; "
                f"rebuild the matrix by name to recover",
                task=self.label,
            ) from exc
        matrix = _matrix_from_buffer(shm.buf, self.shape, self.nnz)
        while len(_ATTACHED) >= _ATTACH_CAP:
            stale = next(iter(_ATTACHED))
            _close_attachment(*_ATTACHED.pop(stale))
        _ATTACHED[self.name] = (shm, matrix)
        return matrix


def _close_attachment(shm: shared_memory.SharedMemory, matrix) -> None:
    """Close a cached attachment, tolerating still-live array views.

    ``mmap`` refuses to close while NumPy views of the buffer exist
    (callers may legitimately hold the matrix a little longer); the
    mapping is then reclaimed when the views die or the process exits —
    the *segment* itself is owned and unlinked by the creating process
    either way.
    """
    del matrix
    try:
        shm.close()
    except BufferError:  # pragma: no cover - caller still holds views
        pass


def _matrix_from_buffer(
    buf, shape: tuple[int, int], nnz: int
) -> SparseMatrix:
    """Zero-copy matrix over a packed ``rows | cols | vals`` buffer."""
    nb = 8 * nnz
    rows = np.ndarray(nnz, dtype=np.int64, buffer=buf, offset=0)
    cols = np.ndarray(nnz, dtype=np.int64, buffer=buf, offset=nb)
    vals = np.ndarray(nnz, dtype=np.float64, buffer=buf, offset=2 * nb)
    return SparseMatrix.from_canonical(shape, rows, cols, vals)


#: How many published matrices stay alive at once (LRU past this).  A
#: long-running service partitioning many matrices keeps at most this
#: many segments; evicted stores are closed (and lazily re-published if
#: their matrix comes back).  Public so producers pacing their
#: publications (the sweep engine's submission window) can stay inside
#: the cap instead of racing their own evictions.
STORE_CAP = 8

#: Live stores in creation order, for exit cleanup and the LRU cap.
_STORES: list["SharedMatrixStore"] = []
_STORE_KEY = "shm_store"


class SharedMatrixStore:
    """Publish one matrix's flat arrays in shared memory, once.

    The segment packs the canonical ``rows``/``cols``/``vals`` arrays
    back to back (all 8-byte dtypes, so the layout is three contiguous
    blocks of ``8 * nnz`` bytes).  Use :meth:`for_matrix` in preference
    to the constructor: the store is then cached on the (immutable)
    matrix like ``SpMVState``, so the 24-bytes-per-nonzero publication
    is paid once per matrix per process — repeated partitionings of one
    matrix (a sweep, a service loop, the benchmark's repeats) reuse the
    live segment.

    The creating process owns the segment's lifetime: :meth:`close`
    detaches and unlinks it, cached stores are closed at interpreter
    exit (and on LRU eviction past ``STORE_CAP`` matrices) via
    :func:`close_matrix_stores`, and a forked child that inherits the
    object can never unlink the parent's segment (pid-guarded).  Worker
    crashes therefore cannot leak ``/dev/shm`` space — cleanup always
    runs in the owning parent.
    """

    def __init__(self, matrix: SparseMatrix, label: str = "") -> None:
        nnz = matrix.nnz
        self._owner_pid = os.getpid()
        self._shm: shared_memory.SharedMemory | None = (
            shared_memory.SharedMemory(create=True, size=max(1, 24 * nnz))
        )
        buf = self._shm.buf
        nb = 8 * nnz
        np.ndarray(nnz, dtype=np.int64, buffer=buf)[:] = matrix.rows
        np.ndarray(nnz, dtype=np.int64, buffer=buf, offset=nb)[:] = matrix.cols
        np.ndarray(nnz, dtype=np.float64, buffer=buf, offset=2 * nb)[:] = (
            matrix.vals
        )
        self.handle = MatrixHandle(self._shm.name, matrix.shape, nnz, label)

    @classmethod
    def for_matrix(
        cls, matrix: SparseMatrix, label: str = ""
    ) -> "SharedMatrixStore":
        """The cached live store for ``matrix`` (published on first use,
        re-published transparently if a previous store was evicted)."""
        with _LOCK:
            _ensure_exit_hook()
            store = matrix._cache.get(_STORE_KEY)
            if store is not None and store._shm is not None \
                    and store._owner_pid == os.getpid():
                return store
            store = cls(matrix, label)
            matrix._cache[_STORE_KEY] = store
            _STORES.append(store)
            while len(_STORES) > STORE_CAP:
                _STORES.pop(0).close()
            return store

    def close(self) -> None:
        """Detach — and, in the owning process, unlink — the segment.

        Idempotent *and* thread-safe: the double-close guard swaps the
        segment reference out under the layer's lock, so two concurrent
        closers (exit hook racing an LRU eviction, or a user ``close``
        racing the GC safety net) cannot both reach the unlink — the
        second call returns immediately.
        """
        with _LOCK:
            if self._shm is None:
                return
            shm, self._shm = self._shm, None
        # The creator may also appear in its own attach cache (tests and
        # the serial fallback open handles in-process).
        cached = _ATTACHED.pop(self.handle.name, None)
        if cached is not None:
            _close_attachment(*cached)
        try:
            shm.close()
        except BufferError:  # pragma: no cover - live in-process views
            pass
        if self._owner_pid != os.getpid():
            # A forked child inherited the object; the parent still owns
            # the segment and will unlink it.
            return
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedMatrixStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def close_matrix_stores() -> None:
    """Close every cached store this process owns (idempotent; part of
    the exit hook alongside :func:`shutdown_pools`)."""
    with _LOCK:
        while _STORES:
            _STORES.pop().close()


# --------------------------------------------------------------------- #
# Payload accounting
# --------------------------------------------------------------------- #
#: When active (see :func:`payload_audit`), every dispatched task's
#: pickled size is folded in here.  Off by default — the accounting
#: itself costs a pickle pass, so timed runs never pay it.
_AUDIT: dict | None = None


@contextmanager
def payload_audit():
    """Record the bytes each executor task ships to its worker.

    Yields a dict with running ``bytes`` and ``tasks`` counters; inline
    (serial/thread) execution ships nothing and counts zero.  The
    end-to-end benchmark uses this to demonstrate the pickling cut of
    the shared-memory store without taxing the timed runs.
    """
    global _AUDIT
    prev, _AUDIT = _AUDIT, {"bytes": 0, "tasks": 0}
    try:
        yield _AUDIT
    finally:
        _AUDIT = prev


def _account(items: list) -> None:
    if _AUDIT is not None:
        nbytes = sum(
            len(pickle.dumps(it, protocol=pickle.HIGHEST_PROTOCOL))
            for it in items
        )
        _AUDIT["tasks"] += len(items)
        _AUDIT["bytes"] += nbytes
        # Fold into the metrics registry too, so an audited run's
        # payload traffic shows up in `/metrics` and trace dumps
        # without a second pickling pass.
        _PAYLOAD_TASKS.inc(len(items))
        _PAYLOAD_BYTES.inc(nbytes)


def account_payload(items: list) -> None:
    """Fold dispatched task payloads into an active :func:`payload_audit`.

    No-op when no audit is active.  Exposed for subsystems that dispatch
    through the shared pools directly rather than via
    :class:`MatrixExecutor` (the sweep engine audits its chunk payloads
    this way).
    """
    _account(items)


# --------------------------------------------------------------------- #
# The matrix executor
# --------------------------------------------------------------------- #
def _shm_task(arg):
    """Process worker: attach the published matrix, select, run."""
    handle, fn, indices, extra = arg
    faults.fault_point("executor.task")
    matrix = handle.open()
    sub = matrix if indices is None else matrix.select(indices)
    return faults.fault_point("executor.result", fn(sub, extra))


def _pickle_task(arg):
    """Process worker (legacy path): the submatrix arrived pickled."""
    fn, sub, extra = arg
    faults.fault_point("executor.task")
    return faults.fault_point("executor.result", fn(sub, extra))


def _thread_task(arg):
    """Thread worker: select *inside* the worker so the nogil kernels and
    the NumPy select of sibling tasks overlap."""
    matrix, fn, indices, extra = arg
    faults.fault_point("executor.task")
    sub = matrix if indices is None else matrix.select(indices)
    return faults.fault_point("executor.result", fn(sub, extra))


def _inline_task(matrix: SparseMatrix, fn, indices, extra):
    """Inline (driver-process) execution of one executor task.

    The serial backend and the degradation ladder's last rung both run
    through here; the same fault points fire as in pool workers so
    serial chaos runs exercise identical code paths (``scope="worker"``
    rules deliberately stay silent — that is what models "the pool is
    broken, the host is fine").
    """
    faults.fault_point("executor.task")
    sub = matrix if indices is None else matrix.select(indices)
    return faults.fault_point("executor.result", fn(sub, extra))


class MatrixExecutor:
    """Run ``fn(submatrix, extra)`` tasks against one matrix.

    Tasks are ``(indices, extra)`` pairs: ``indices`` selects the
    submatrix (``None`` = the whole matrix), ``extra`` is a small
    picklable payload.  ``fn`` must be a module-level function (process
    backends pickle it by reference).  :meth:`map` returns results in
    task order for every backend, which is what lets callers treat the
    backend purely as a speed knob.

    Backend delivery semantics:

    ``"serial"``
        Everything inline, zero copies.
    ``"thread"``
        Workers share the address space; each worker thread selects its
        own submatrix from the live matrix (no serialization at all).
    ``"process"``
        The matrix is published once to a :class:`SharedMatrixStore`
        (lazily, on the first ``map``); each task ships a handle plus
        its index array — 8 bytes per selected nonzero instead of the
        24-plus of a pickled submatrix, and nothing at all for the
        nonzero values.
    ``"process-pickle"``
        The legacy path: the parent selects and pickles each submatrix.
        Kept as the portable fallback and as the benchmark baseline the
        shared-memory path is measured against.
    """

    def __init__(
        self,
        matrix: SparseMatrix,
        jobs: int,
        backend: str = "auto",
        policy: RetryPolicy | None = None,
    ) -> None:
        self.matrix = matrix
        self.jobs = resolve_jobs(jobs)
        self.backend = resolve_exec_backend(backend)
        if self.jobs <= 1:
            self.backend = "serial"
        self._store: SharedMatrixStore | None = None
        self.policy = policy if policy is not None else RetryPolicy()
        #: Structured failure records (:class:`repro.errors.ExecutionError`
        #: subclasses) accumulated across every :meth:`map` call — retries
        #: that eventually succeeded, watchdog kills, degraded completions.
        self.failures: list = []

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "MatrixExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release executor-held references.

        The store itself is cached on the matrix (published once, see
        :meth:`SharedMatrixStore.for_matrix`) and the pools are shared —
        :func:`shutdown_pools` / :func:`close_matrix_stores` own both
        lifetimes, so closing an executor is free and repeated calls
        against one matrix never republish.
        """
        self._store = None

    def _handle(self) -> MatrixHandle:
        if self._store is None:
            self._store = SharedMatrixStore.for_matrix(self.matrix)
        return self._store.handle

    def _sub(self, indices) -> SparseMatrix:
        if indices is None:
            return self.matrix
        return self.matrix.select(indices)

    # ------------------------------------------------------------------ #
    def map(self, fn, tasks: list, validate=None) -> list:
        """Execute ``fn(submatrix, extra)`` per task; ordered results.

        ``validate(index, value)`` — when given — is applied to every
        result at this boundary regardless of backend; it must raise
        :class:`~repro.errors.ResultValidationError` on violation.  On
        the fast (policy-inactive) path a validation failure propagates;
        under an active :class:`RetryPolicy` it is treated like a crash:
        retried, then recomputed serially in-process.
        """
        if not tasks:
            return []
        if self.backend == "serial" or len(tasks) == 1:
            # A single task gains nothing from any pool; run it inline
            # and skip the payload round-trip entirely.
            return self._map_inline(fn, tasks, validate)
        if self.policy.active:
            return self._map_resilient(fn, tasks, validate)
        if self.backend == "thread":
            items = [
                (self.matrix, fn, idx, extra) for idx, extra in tasks
            ]
            values = list(pool_map("thread", self.jobs, _thread_task, items))
            return self._validated(values, validate)
        if self.backend == "process":
            handle = self._handle()
            items = [
                (handle, fn, idx, extra) for idx, extra in tasks
            ]
        else:  # process-pickle
            items = [(fn, self._sub(idx), extra) for idx, extra in tasks]
        _account(items)
        worker = _shm_task if self.backend == "process" else _pickle_task
        # Batch small tasks per pipe round-trip (map preserves order for
        # any chunksize): a p = 64 schedule on 2 workers would otherwise
        # pay 64 dispatch round-trips of per-task fixed cost.
        chunksize = max(1, len(items) // (4 * self.jobs))
        try:
            values = list(
                pool_map("process", self.jobs, worker, items, chunksize)
            )
        except BrokenProcessPool:
            # A worker died (OOM, signal): drop the poisoned pool so the
            # next call starts fresh.  The store is unaffected — it is
            # owned by this process and cleaned by close_matrix_stores().
            drop_process_pool()
            raise
        return self._validated(values, validate)

    @staticmethod
    def _validated(values: list, validate) -> list:
        if validate is not None:
            for i, value in enumerate(values):
                validate(i, value)
        return values

    def _map_inline(self, fn, tasks: list, validate) -> list:
        """Serial path with the same fault points and retry semantics.

        Timeouts cannot apply inline (there is no worker to kill), but
        ``retries`` do: an exception is retried with the same backoff
        schedule, so ``--retries`` means the same thing on every
        backend.
        """
        out = []
        for i, (idx, extra) in enumerate(tasks):
            attempt = 0
            while True:
                try:
                    value = _inline_task(self.matrix, fn, idx, extra)
                    if validate is not None:
                        validate(i, value)
                    out.append(value)
                    break
                except Exception as exc:
                    attempt += 1
                    if attempt > self.policy.retries:
                        raise
                    self.failures.append(ExecutionError(
                        f"inline task raised {type(exc).__name__}: {exc}",
                        task=f"task{i}", attempt=attempt,
                    ))
                    time.sleep(self.policy.delay_for(attempt))
        return out

    def _map_resilient(self, fn, tasks: list, validate) -> list:
        """Per-task dispatch under deadlines/retries (the hardened path).

        Tasks are submitted individually (no chunking — the watchdog
        needs per-task deadlines), retried per :attr:`policy`, and — with
        the budget exhausted — recomputed inline from the parent-held
        matrix, so ``map`` always returns a full, validated result list.
        """
        if self.backend == "thread":
            kind, worker = "thread", _thread_task
            items = [(self.matrix, fn, idx, extra) for idx, extra in tasks]
        elif self.backend == "process":
            kind, worker = "process", _shm_task
            handle = self._handle()
            items = [(handle, fn, idx, extra) for idx, extra in tasks]
            _account(items)
        else:  # process-pickle
            kind, worker = "process", _pickle_task
            items = [(fn, self._sub(idx), extra) for idx, extra in tasks]
            _account(items)

        def fallback(i: int):
            idx, extra = tasks[i]
            return _inline_task(self.matrix, fn, idx, extra)

        values, failures = resilient_map(
            kind, self.jobs, worker, items,
            policy=self.policy, fallback=fallback, validate=validate,
        )
        for records in failures:
            self.failures.extend(records)
        return values

    def payload_nbytes(self, tasks: list) -> int:
        """Bytes :meth:`map` would ship for ``tasks`` (without running).

        Zero for inline backends; for process backends, the pickled size
        of the exact task tuples ``map`` dispatches.
        """
        if not tasks or self.backend in ("serial", "thread") or len(tasks) == 1:
            return 0
        if self.backend == "process":
            items = [(self._handle(), None, idx, extra) for idx, extra in tasks]
        else:
            items = [(None, self._sub(idx), extra) for idx, extra in tasks]
        return sum(
            len(pickle.dumps(it, protocol=pickle.HIGHEST_PROTOCOL))
            for it in items
        )
