"""Shared helpers for process-parallel execution.

Two subsystems run work on a :class:`~concurrent.futures.ProcessPoolExecutor`
— the sweep engine (:mod:`repro.eval.sweep`, parallel *across* runs) and
recursive bisection (:mod:`repro.core.recursive`, parallel *within* one
p-way partitioning).  Both accept the same ``jobs`` convention, normalized
here: ``1`` is serial, ``N >= 2`` uses ``N`` worker processes, and
``None``/``0`` means "one worker per CPU".
"""

from __future__ import annotations

import os

__all__ = ["resolve_jobs"]


def resolve_jobs(jobs: int | None, *, error: type = ValueError) -> int:
    """Normalize a ``jobs`` request: ``None``/``0`` means the CPU count.

    ``error`` is the exception type raised on a negative request, so each
    subsystem reports the failure in its own error family.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise error(
            f"jobs must be non-negative (0 = one worker per CPU), got {jobs}"
        )
    return int(jobs)
