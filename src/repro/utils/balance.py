"""Load-balance ceiling arithmetic (paper eqn (1)).

Lives in :mod:`repro.utils` because both the hypergraph partitioner and the
matrix-level core need it; keeping it here avoids an import cycle between
those packages.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_eps, check_pos_int

__all__ = ["max_allowed_part_size"]


def max_allowed_part_size(total: int, nparts: int, eps: float) -> int:
    """The integer load ceiling implied by ``max_k w_k <= (1+eps) * W / p``.

    ``floor((1 + eps) * W / p)``, clamped from below by ``ceil(W / p)`` so
    the constraint is always satisfiable — a perfectly balanced integer
    partitioning must be legal (the same clamp Mondriaan applies).
    """
    total = int(total)
    nparts = check_pos_int(nparts, "nparts")
    eps = check_eps(eps)
    ceiling = int(np.floor((1.0 + eps) * total / nparts + 1e-9))
    perfect = -(-total // nparts)  # ceil division
    return max(ceiling, perfect)
