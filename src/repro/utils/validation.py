"""Lightweight argument validation shared across the package.

These helpers centralize the error messages so tests can assert on them and
the public API fails fast with actionable diagnostics instead of deep NumPy
index errors.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["check_pos_int", "check_nonneg_int", "check_eps", "check_axis_pair"]


def check_pos_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_nonneg_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_eps(eps: Any, name: str = "eps") -> float:
    """Validate a load-imbalance fraction (``eps >= 0``), returning a float.

    The paper uses ``eps = 0.03`` throughout; any non-negative value is
    accepted (``eps = 0`` demands perfect balance, which may be infeasible
    for odd total weights and is handled by the ceiling in the constraint).
    """
    try:
        eps = float(eps)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a float, got {eps!r}") from exc
    if not np.isfinite(eps) or eps < 0.0:
        raise ValueError(f"{name} must be finite and >= 0, got {eps}")
    return eps


def check_axis_pair(shape: Any) -> tuple[int, int]:
    """Validate a matrix ``shape`` as a pair of positive integers."""
    try:
        m, n = shape
    except (TypeError, ValueError) as exc:
        raise TypeError(f"shape must be a pair (m, n), got {shape!r}") from exc
    return check_pos_int(m, "m"), check_pos_int(n, "n")
