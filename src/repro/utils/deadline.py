"""Cooperative deadlines for anytime partitioning.

The paper's method is naturally *anytime*: Algorithm 2's keep-best
iterate loop and the V-cycle's ``(feasible, -cut)`` contract hold a
valid incumbent at every pass boundary.  This module supplies the small
substrate that lets a caller say "stop at the next boundary": a
:class:`Deadline` with a monotonic expiry, a :class:`SoftBudget` that
expires after a fixed number of checks (deterministic — the testing
twin of a wall-clock deadline), and the structured :class:`Degraded`
record a cut-short loop attaches to its result.

Deadlines are **cooperative and boundary-checked only**: a loop asks
``deadline.expired()`` between passes/levels/cycles, never inside a
kernel, so the no-deadline path executes byte-for-byte the same
instructions as before (one ``is not None`` test per boundary) and
stays bit-identical to the pinned goldens.

A :class:`Deadline` carries an *absolute* ``time.monotonic`` expiry and
is picklable; on Linux ``CLOCK_MONOTONIC`` is system-wide, so a
deadline minted in the serving daemon keeps its meaning inside a forked
pool worker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["Deadline", "SoftBudget", "Degraded"]


class Deadline:
    """A monotonic-clock expiry shared by every long-running loop.

    ``Deadline(seconds)`` expires ``seconds`` from now;
    ``Deadline(None)`` never expires (so threading an optional deadline
    needs no branching at the call sites that build one).
    """

    __slots__ = ("_expiry",)

    def __init__(self, seconds: float | None):
        if seconds is None:
            self._expiry = None
        else:
            seconds = float(seconds)
            if seconds < 0:
                seconds = 0.0
            self._expiry = time.monotonic() + seconds

    def expired(self) -> bool:
        """Has the deadline passed?  Never true for ``Deadline(None)``."""
        return self._expiry is not None and time.monotonic() >= self._expiry

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or ``None`` when unbounded."""
        if self._expiry is None:
            return None
        return max(0.0, self._expiry - time.monotonic())

    # Explicit state methods: __slots__ classes have no __dict__, and
    # the absolute monotonic expiry is exactly what must cross a fork.
    def __getstate__(self):
        return self._expiry

    def __setstate__(self, state):
        self._expiry = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._expiry is None:
            return "Deadline(None)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


class SoftBudget:
    """A deadline that expires after a fixed number of checks.

    The first ``checks`` calls to :meth:`expired` return ``False``, every
    later one ``True``.  Sharing the ``expired()`` protocol with
    :class:`Deadline` makes degradation *deterministic* in tests: a
    budget of N lets exactly N boundaries through regardless of host
    speed, so the cut-short result is pinned, not racy.
    """

    __slots__ = ("_left",)

    def __init__(self, checks: int):
        self._left = max(0, int(checks))

    def expired(self) -> bool:
        """Consume one check; ``True`` once the budget is spent."""
        if self._left <= 0:
            return True
        self._left -= 1
        return False

    def remaining(self) -> float | None:
        """Checks left — the countdown analogue of seconds left."""
        return float(self._left)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SoftBudget(checks={self._left})"


@dataclass(frozen=True)
class Degraded:
    """Where an anytime loop stopped short, and by how much.

    Attributes
    ----------
    where:
        The boundary that observed the expiry (``"fm"``, ``"kway-fm"``,
        ``"iterate"``, ``"multilevel"``, ``"vcycle"``, ``"recursive"``,
        ...).
    completed:
        Passes / cycles / nodes finished before the stop.
    skipped:
        Work the loop would have attempted but did not.
    """

    where: str
    completed: int = 0
    skipped: int = 0

    def brief(self) -> str:
        """Compact one-line form, e.g. ``Degraded[vcycle]@2done+1skipped``.

        The same shape as ``repro.errors.ExecutionError.brief`` so both
        kinds of record read uniformly in a ``failures`` tuple.
        """
        return (
            f"Degraded[{self.where}]@{self.completed}done"
            f"+{self.skipped}skipped"
        )
