"""Shared utilities: RNG discipline, timing, balance math, validation."""

from repro.utils.balance import max_allowed_part_size
from repro.utils.rng import as_generator, spawn_seeds
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_axis_pair,
    check_eps,
    check_nonneg_int,
    check_pos_int,
)

__all__ = [
    "as_generator",
    "spawn_seeds",
    "Timer",
    "max_allowed_part_size",
    "check_axis_pair",
    "check_eps",
    "check_nonneg_int",
    "check_pos_int",
]
