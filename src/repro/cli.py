"""Command-line interface.

Five subcommands:

``partition``
    Partition a MatrixMarket file (or a named collection instance) with
    any of the paper's methods and print volume / balance / timing —
    the Mondriaan-binary-style workflow.  ``--nparts p`` (p > 2) runs
    recursive bisection; ``--jobs N`` solves independent subtrees of the
    recursion on N worker processes, bit-identically to serial.

``experiment``
    Regenerate a paper artifact (fig3, fig4, fig5, table1, fig6, table2,
    or ``all``) and write text + CSV reports to an output directory.
    ``--jobs N`` runs the underlying sweep on N worker processes
    (``--jobs 0`` = CPU count); results are bit-identical to the serial
    sweep.  ``--backend`` picks the kernel backend inside every run.

``serve``
    Run the always-available partitioning daemon (:mod:`repro.serve`):
    matrices stay resident and JIT-warm, requests execute through the
    hardened worker path with admission control and a crash-safe
    partition cache.  See ``docs/serving.md``.

``submit``
    Submit one request to a running daemon through the resilient client
    (capped-exponential retry honouring ``Retry-After``, circuit
    breaker) and print the result.

``trace-report``
    Aggregate a span trace (written with ``--trace out.jsonl`` on
    ``partition``/``experiment``/``serve``) into the classic profiler
    table: per-stage counts, total and self wall time.  See
    ``docs/observability.md``.

Examples
--------
.. code-block:: shell

    repro-partition partition --instance sym_grid2d_m --method mediumgrain \
        --refine --nparts 64 --jobs 4 --seed 7
    repro-partition experiment fig4 --max-tier small --nruns 1 --out results/
    repro-partition experiment all --jobs 4 --backend auto --out results/
    repro-partition serve --port 8642 --cache /tmp/parts.cache &
    repro-partition submit --port 8642 --instance sym_grid2d_s --nparts 4
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path

import dataclasses

from repro.core.methods import ALGO_NAMES, METHOD_NAMES, bipartition
from repro.core.recursive import partition
from repro.eval import experiments as exp
from repro.kernels import BACKEND_CHOICES, resolve_backend
from repro.utils.executor import EXEC_BACKEND_CHOICES, JobsBudget
from repro.partitioner.config import get_config
from repro.sparse.collection import collection_names, load_instance
from repro.sparse.io_mm import read_matrix_market

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-partition",
        description=(
            "Medium-grain sparse matrix partitioning "
            "(reproduction of Pelt & Bisseling, IPDPS 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_part = sub.add_parser("partition", help="partition one matrix")
    src = p_part.add_mutually_exclusive_group(required=True)
    src.add_argument("--file", help="MatrixMarket file to partition")
    src.add_argument(
        "--instance",
        help=f"named collection instance (one of {len(collection_names())})",
    )
    p_part.add_argument(
        "--method",
        default="mediumgrain",
        choices=METHOD_NAMES,
    )
    p_part.add_argument("--nparts", type=int, default=2)
    p_part.add_argument(
        "--algo",
        default="recursive",
        choices=ALGO_NAMES,
        help=(
            "p-way scheme when --nparts > 2: recursive bisection "
            "(the paper's), or the direct k-way partitioner optimizing "
            "the connectivity-(lambda-1) volume in one shot"
        ),
    )
    p_part.add_argument(
        "--kway-vcycles",
        type=int,
        default=0,
        metavar="N",
        help=(
            "multilevel V-cycles for --algo kway (0 = flat direct "
            "k-way; N >= 1 = multilevel construction plus N-1 "
            "restricted V-cycles); ignored for recursive bisection"
        ),
    )
    p_part.add_argument("--eps", type=float, default=0.03)
    p_part.add_argument("--refine", action="store_true",
                        help="apply Algorithm-2 iterative refinement")
    p_part.add_argument("--config", default="mondriaan",
                        choices=("mondriaan", "patoh"))
    p_part.add_argument(
        "--backend",
        default="auto",
        choices=BACKEND_CHOICES,
        help=(
            "kernel backend for the hot loops (auto = numba when "
            "installed, pure Python otherwise; results are identical)"
        ),
    )
    p_part.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "workers for recursive bisection when --nparts > 2 "
            "(1 = serial, 0 = CPU count); the partition is bit-identical "
            "to the serial one, only faster"
        ),
    )
    p_part.add_argument(
        "--exec-backend",
        default="auto",
        choices=EXEC_BACKEND_CHOICES,
        help=(
            "how parallel bisection workers run and receive submatrices: "
            "threads over the nogil kernels, shared-memory worker "
            "processes, or the legacy pickled-payload pool (auto picks "
            "per environment; results are identical)"
        ),
    )
    _add_hardening_flags(p_part)
    p_part.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "anytime soft deadline: every refinement loop stops at its "
            "next pass/level boundary once it expires and the best "
            "partition found so far is returned (marked degraded); "
            "omitted = run to completion, bit-identically"
        ),
    )
    p_part.add_argument("--seed", type=int, default=None)
    p_part.add_argument(
        "--save-parts",
        help="write the nonzero part vector to this file (one id per line)",
    )
    p_part.add_argument(
        "--save-dist",
        metavar="PREFIX",
        help=(
            "write Mondriaan-style artifacts: PREFIX-P<p>.mtx "
            "(distributed matrix), PREFIX-v<p>.mtx / PREFIX-u<p>.mtx "
            "(input/output vector distributions)"
        ),
    )
    _add_trace_flag(p_part)

    p_exp = sub.add_parser("experiment", help="regenerate a paper artifact")
    p_exp.add_argument(
        "artifact",
        choices=("fig3", "fig4", "fig5", "table1", "fig6", "table2", "all"),
    )
    p_exp.add_argument("--max-tier", default="medium",
                       choices=("small", "medium", "large"))
    p_exp.add_argument("--nruns", type=int, default=2)
    p_exp.add_argument("--seed", type=int, default=2014)
    p_exp.add_argument("--out", default="results")
    p_exp.add_argument("--progress", action="store_true")
    p_exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "total worker budget for the sweep (1 = serial, 0 = CPU "
            "count), split automatically between sweep-level and "
            "recursion-level parallelism for p-way artifacts; results "
            "are bit-identical to the serial sweep, only faster"
        ),
    )
    p_exp.add_argument(
        "--backend",
        default="auto",
        choices=BACKEND_CHOICES,
        help=(
            "kernel backend for the hot loops in every run (combines "
            "freely with --jobs: each worker process resolves it "
            "independently, so numba JIT warm-up is paid once per worker)"
        ),
    )
    p_exp.add_argument(
        "--algo",
        default="recursive",
        choices=ALGO_NAMES,
        help=(
            "p-way scheme for the p = 64 artifacts (fig6/table2): "
            "recursive bisection or the direct k-way partitioner; "
            "bipartition artifacts are unaffected"
        ),
    )
    p_exp.add_argument(
        "--kway-vcycles",
        type=int,
        default=0,
        metavar="N",
        help=(
            "multilevel V-cycles for --algo kway runs (0 = flat "
            "direct k-way); ignored for recursive bisection"
        ),
    )
    _add_hardening_flags(p_exp)
    _add_trace_flag(p_exp)

    p_srv = sub.add_parser(
        "serve", help="run the always-available partitioning daemon"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=0,
        help="listening port (0 = ephemeral, announced on stdout)",
    )
    p_srv.add_argument(
        "--port-file",
        help="write the bound port to this file once listening",
    )
    p_srv.add_argument(
        "--max-inflight", type=int, default=2,
        help="concurrently executing requests",
    )
    p_srv.add_argument(
        "--queue-cap", type=int, default=8,
        help=(
            "admitted-but-waiting requests beyond --max-inflight; "
            "everything past the sum is shed as 503 + Retry-After"
        ),
    )
    p_srv.add_argument(
        "--timeout", type=float, default=60.0,
        help=(
            "default per-request soft deadline in seconds (the anytime "
            "budget handed to the partitioner)"
        ),
    )
    p_srv.add_argument(
        "--deadline-grace", type=float, default=5.0,
        help=(
            "headroom between a request's soft deadline and the "
            "watchdog's hard worker kill — the window in which an "
            "expiring request still answers 200 with its incumbent"
        ),
    )
    p_srv.add_argument(
        "--overload-deadline-factor", type=float, default=0.5,
        help=(
            "soft-deadline multiplier once the admission queue is more "
            "than half full (1.0 = disabled): degrade everyone a bit "
            "before shedding anyone"
        ),
    )
    p_srv.add_argument(
        "--retries", type=int, default=1,
        help="worker-attempt retry budget per request",
    )
    p_srv.add_argument(
        "--jobs", type=int, default=2,
        help="worker-pool size backing request execution",
    )
    p_srv.add_argument(
        "--serve-backend", default="process", choices=("process", "thread"),
        help=(
            "process = crash-isolated pool workers (the point); thread "
            "exists for constrained environments"
        ),
    )
    p_srv.add_argument(
        "--cache", default="",
        help=(
            "partition-cache journal path (crash-safe, fsynced; empty = "
            "in-memory cache only)"
        ),
    )
    p_srv.add_argument("--cache-cap", type=int, default=512)
    p_srv.add_argument(
        "--no-warmup", action="store_true",
        help="skip the startup warmup partition",
    )
    _add_trace_flag(p_srv)

    p_sub = sub.add_parser(
        "submit", help="submit one request to a running daemon"
    )
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, required=True)
    src2 = p_sub.add_mutually_exclusive_group(required=True)
    src2.add_argument("--file", help="MatrixMarket file to upload")
    src2.add_argument("--instance", help="named collection instance")
    p_sub.add_argument("--nparts", type=int, default=2)
    p_sub.add_argument("--method", default="mediumgrain",
                       choices=METHOD_NAMES)
    p_sub.add_argument("--algo", default="recursive", choices=ALGO_NAMES)
    p_sub.add_argument(
        "--kway-vcycles", type=int, default=0, metavar="N",
        help="multilevel V-cycles for --algo kway (0 = flat)",
    )
    p_sub.add_argument("--eps", type=float, default=0.03)
    p_sub.add_argument("--refine", action="store_true")
    p_sub.add_argument("--config", default="mondriaan",
                       choices=("mondriaan", "patoh"))
    p_sub.add_argument(
        "--seed", type=int, default=None,
        help="request seed (default: the service's well-known seed)",
    )
    p_sub.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline override in seconds",
    )
    p_sub.add_argument(
        "--retries", type=int, default=4,
        help="client-side retry budget for shed (503) / transport errors",
    )
    p_sub.add_argument(
        "--save-parts",
        help="write the nonzero part vector to this file (one id per line)",
    )

    p_rep = sub.add_parser(
        "trace-report",
        help="aggregate a span trace into a time-per-stage table",
    )
    p_rep.add_argument(
        "trace",
        help="JSONL trace file written with --trace",
    )
    return parser


def _add_hardening_flags(sub: argparse.ArgumentParser) -> None:
    """The hardened-execution knobs, identical on both subcommands.

    The defaults (``0``) preserve the unhardened dispatch exactly — no
    deadlines, no retries, no watchdog (see docs/robustness.md).
    """
    sub.add_argument(
        "--task-timeout",
        type=float,
        default=0,
        metavar="SECONDS",
        help=(
            "per-task deadline for pool-executed work: a task still "
            "running past it is killed by the watchdog and retried per "
            "--retries (0 = no deadline, today's behavior; results are "
            "bit-identical either way)"
        ),
    )
    sub.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "retry budget for crashed/timed-out/invalid pool tasks, with "
            "capped exponential backoff; an exhausted task is completed "
            "serially in-process so the run always finishes (0 = no "
            "retry, today's behavior)"
        ),
    )


def _add_trace_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "write a JSONL span trace of the run to FILE, with a final "
            "metrics-snapshot record (render it with `repro-partition "
            "trace-report FILE`); omitted = tracing disabled, the "
            "zero-overhead default — results are bit-identical either way"
        ),
    )


@contextlib.contextmanager
def _tracing(path: str | None):
    """Arm the module tracer around a command, then dump metrics.

    The final record in the trace file is ``{"metrics": ...}`` — the
    full registry snapshot at exit — which ``read_trace`` skips and
    humans/scripts can pick up with one ``tail -1``.
    """
    if not path:
        yield
        return
    from repro.obs import metrics as _metrics
    from repro.obs import trace as _trace

    tracer = _trace.enable(path)
    try:
        yield
    finally:
        tracer.sink.write({"metrics": _metrics.snapshot()})
        _trace.disable()
        print(f"trace written     : {path}")


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.utils.deadline import Deadline

    deadline = Deadline(args.deadline) if args.deadline else None
    if args.instance:
        matrix = load_instance(args.instance)
        name = args.instance
    else:
        matrix = read_matrix_market(args.file)
        name = Path(args.file).name
    print(f"matrix {name}: {matrix.nrows} x {matrix.ncols}, "
          f"nnz = {matrix.nnz}")
    cfg = dataclasses.replace(
        get_config(args.config),
        kernel_backend=args.backend,
        jobs=args.jobs,
        exec_backend=args.exec_backend,
        algo=args.algo,
        kway_vcycles=args.kway_vcycles,
        task_timeout=args.task_timeout or None,
        retries=args.retries,
    )
    print(f"kernel backend    : {resolve_backend(args.backend).name} "
          f"(requested: {args.backend})")
    if args.nparts == 2:
        res = bipartition(
            matrix,
            method=args.method,
            eps=args.eps,
            refine=args.refine,
            config=cfg,
            seed=args.seed,
            deadline=deadline,
        )
        parts = res.parts
        print(f"method            : {res.method}")
        print(f"communication vol : {res.volume}")
        print(f"max part size     : {res.max_part}")
        print(f"imbalance         : {res.imbalance:.4f} (eps = {args.eps})")
        print(f"feasible          : {res.feasible}")
        print(f"time              : {res.seconds:.3f} s")
        if res.refinement is not None:
            print(f"IR volume trace   : {res.refinement.volumes}")
            if res.refinement.degraded is not None:
                print(f"degraded          : "
                      f"{res.refinement.degraded.brief()} (deadline hit; "
                      f"best partition so far returned)")
    else:
        res = partition(
            matrix,
            args.nparts,
            method=args.method,
            eps=args.eps,
            refine=args.refine,
            config=cfg,
            seed=args.seed,
            deadline=deadline,
        )
        parts = res.parts
        scheme = (
            "direct k-way" if args.algo == "kway" else "recursive bisection"
        )
        print(f"method            : {res.method} ({scheme})")
        print(f"nparts            : {res.nparts} (jobs = {cfg.jobs})")
        print(f"communication vol : {res.volume}")
        print(f"max part size     : {res.max_part}")
        print(f"imbalance         : {res.imbalance:.4f} (eps = {args.eps})")
        print(f"feasible          : {res.feasible}")
        print(f"time              : {res.seconds:.3f} s")
        cut_short = [b for b in res.failures if b.startswith("Degraded")]
        recovered = [
            b for b in res.failures if not b.startswith("Degraded")
        ]
        if cut_short:
            print(f"degraded          : {', '.join(cut_short)} "
                  f"(deadline hit; best partition so far returned)")
        if recovered:
            print(f"recovered faults  : {', '.join(recovered)}")
    if args.save_parts:
        Path(args.save_parts).write_text(
            "\n".join(str(int(p)) for p in parts) + "\n", encoding="utf-8"
        )
        print(f"part vector saved : {args.save_parts}")
    if args.save_dist:
        from repro.sparse.io_dist import (
            write_distributed_matrix_market,
            write_vector_distribution,
        )
        from repro.spmv.vector_dist import distribute_vectors

        p = args.nparts
        dist = distribute_vectors(matrix, parts, p)
        prefix = Path(args.save_dist)
        prefix.parent.mkdir(parents=True, exist_ok=True)
        mpath = Path(f"{prefix}-P{p}.mtx")
        write_distributed_matrix_market(matrix, parts, p, mpath)
        write_vector_distribution(
            dist.input_owner, p, Path(f"{prefix}-v{p}.mtx")
        )
        write_vector_distribution(
            dist.output_owner, p, Path(f"{prefix}-u{p}.mtx")
        )
        print(f"distributed output: {mpath} (+ -v{p}/-u{p} vectors)")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    out = Path(args.out)
    wanted = args.artifact
    # One composable budget for the whole run: the sweep engine splits it
    # between sweep-level workers and the recursion workers inside the
    # p = 64 artifacts, so nested parallelism never oversubscribes.
    args.jobs = JobsBudget.resolve(args.jobs) if args.jobs != 1 else 1
    reports: list[exp.ExperimentReport] = []
    if wanted in ("fig3", "all"):
        reports.append(exp.run_fig3_demo())
    if wanted in ("fig4", "fig5", "table1", "all"):
        data = exp.collect_paper_runs(
            max_tier=args.max_tier,
            nruns=args.nruns,
            base_seed=args.seed,
            progress=args.progress,
            jobs=args.jobs,
            backend=args.backend,
            task_timeout=args.task_timeout or None,
            retries=args.retries,
        )
        if wanted in ("fig4", "all"):
            reports.append(exp.run_fig4_profiles(data))
        if wanted in ("fig5", "all"):
            reports.append(exp.run_fig5_time_profile(data))
        if wanted in ("table1", "all"):
            reports.append(exp.run_table1_geomeans(data))
    if wanted in ("fig6", "table2", "all"):
        data_p2 = exp.collect_paper_runs(
            max_tier=args.max_tier,
            nruns=args.nruns,
            config="patoh",
            base_seed=args.seed,
            with_bsp=True,
            progress=args.progress,
            jobs=args.jobs,
            backend=args.backend,
            task_timeout=args.task_timeout or None,
            retries=args.retries,
        )
        data_p64 = exp.collect_paper_runs(
            max_tier=args.max_tier,
            nruns=1,
            nparts=64,
            config="patoh",
            base_seed=args.seed,
            with_bsp=True,
            min_nnz=6400,
            progress=args.progress,
            jobs=args.jobs,
            backend=args.backend,
            algo=args.algo,
            kway_vcycles=args.kway_vcycles,
            task_timeout=args.task_timeout or None,
            retries=args.retries,
        )
        if wanted in ("fig6", "all"):
            reports.append(exp.run_fig6_profiles(data_p2, data_p64))
        if wanted in ("table2", "all"):
            data_kway = None
            if args.algo == "recursive":
                # The k-way / kway+ml method-family columns need the
                # recursive MG baseline in ``data_p64`` to normalize
                # against; under --algo kway that baseline IS k-way
                # already, so the extra sweeps would compare an engine
                # with itself.
                data_kway = exp.collect_kway_runs(
                    max_tier=args.max_tier,
                    base_seed=args.seed,
                    progress=args.progress,
                    jobs=args.jobs,
                    backend=args.backend,
                    task_timeout=args.task_timeout or None,
                    retries=args.retries,
                )
            reports.append(
                exp.run_table2_geomeans(data_p2, data_p64, data_kway)
            )
    for report in reports:
        report.write(out)
        print(report.text)
        print()
        print(f"[written to {out / (report.name + '.txt')}]")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import ServeConfig, run_daemon

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_cap=args.queue_cap,
        timeout=args.timeout,
        deadline_grace=args.deadline_grace,
        overload_deadline_factor=args.overload_deadline_factor,
        retries=args.retries,
        jobs=args.jobs,
        backend=args.serve_backend,
        cache_path=args.cache or None,
        cache_cap=args.cache_cap,
        port_file=args.port_file,
        warmup=not args.no_warmup,
        trace_path=args.trace,
    )
    return run_daemon(config)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import ServeError
    from repro.serve.client import ServeClient
    from repro.serve.protocol import DEFAULT_SEED

    client = ServeClient(args.host, args.port, retries=args.retries)
    fields: dict = {
        "nparts": args.nparts,
        "method": args.method,
        "algo": args.algo,
        "kway_vcycles": args.kway_vcycles,
        "eps": args.eps,
        "refine": args.refine,
        "config": args.config,
        "seed": DEFAULT_SEED if args.seed is None else args.seed,
    }
    if args.instance:
        fields["instance"] = args.instance
    else:
        fields["matrix_market"] = Path(args.file).read_text(encoding="utf-8")
    if args.timeout is not None:
        fields["timeout"] = args.timeout
    try:
        result = client.partition(**fields)
    except ServeError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        for brief in getattr(exc, "briefs", ()):
            print(f"  failure: {brief}", file=sys.stderr)
        return 1
    origin = "cache" if result.get("cached") else "computed"
    print(f"matrix            : {args.instance or Path(args.file).name} "
          f"(digest {result['digest']})")
    print(f"served from       : {origin}")
    if result.get("degraded"):
        briefs = [
            b for b in result.get("failures", ())
            if isinstance(b, str) and b.startswith("Degraded")
        ]
        print(f"degraded          : yes — deadline hit, best partition "
              f"found so far ({', '.join(briefs) or 'no brief'})")
    print(f"nparts            : {result['nparts']} ({result['algo']})")
    print(f"communication vol : {result['volume']}")
    print(f"max part size     : {result['max_part']}")
    print(f"imbalance         : {result['imbalance']:.4f} "
          f"(eps = {result['eps']})")
    print(f"feasible          : {result['feasible']}")
    print(f"time              : {result['seconds']:.3f} s")
    recovered = [
        b for b in result.get("failures", ())
        if not b.startswith("Degraded")
    ]
    if recovered:
        print(f"recovered faults  : {', '.join(recovered)}")
    if args.save_parts and "parts" in result:
        Path(args.save_parts).write_text(
            "\n".join(str(int(p)) for p in result["parts"]) + "\n",
            encoding="utf-8",
        )
        print(f"part vector saved : {args.save_parts}")
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        aggregate_trace,
        count_events,
        read_trace,
        render_report,
    )

    records = list(read_trace(args.trace))
    print(render_report(aggregate_trace(records),
                        events=count_events(records)), end="")
    return 0 if records else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (also exposed as the ``repro-partition`` script)."""
    args = build_parser().parse_args(argv)
    if args.command == "partition":
        with _tracing(args.trace):
            return _cmd_partition(args)
    if args.command == "experiment":
        with _tracing(args.trace):
            return _cmd_experiment(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "trace-report":
        return _cmd_trace_report(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
