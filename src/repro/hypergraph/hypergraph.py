"""Compressed hypergraph data structure.

:class:`Hypergraph` stores the net→pin incidence in CSR form (``xpins`` /
``pins``) together with integer vertex weights and net costs, mirroring the
layouts used by PaToH and Mondriaan.  The transposed vertex→net incidence
(``xnets`` / ``vnets``) is built lazily with a vectorized counting sort and
cached — the partitioner traverses both directions constantly.

Structural invariants (enforced at construction):

* ``xpins`` is non-decreasing with ``xpins[0] == 0`` and
  ``xpins[-1] == len(pins)``;
* every pin is a valid vertex id;
* no net contains the same vertex twice (pin-count bookkeeping in FM relies
  on this);
* vertex weights and net costs are non-negative.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import HypergraphError

__all__ = ["Hypergraph"]


def _readonly(a: np.ndarray) -> np.ndarray:
    a = np.ascontiguousarray(a)
    a.flags.writeable = False
    return a


class Hypergraph:
    """An immutable hypergraph in CSR (net→pins) representation.

    Parameters
    ----------
    nverts:
        Number of vertices ``|V|`` (vertices are ``0 .. nverts-1``; isolated
        vertices — in no net — are allowed).
    xpins:
        Net pointer array of length ``nnets + 1``.
    pins:
        Concatenated pin (vertex id) lists of all nets.
    vwgt:
        Vertex weights (``int64``, length ``nverts``).  Defaults to ones.
    ncost:
        Net costs (``int64``, length ``nnets``).  Defaults to ones.
    validate:
        Skip the structural validation when false (used internally by the
        coarsener whose outputs are valid by construction).
    """

    __slots__ = ("nverts", "nnets", "xpins", "pins", "vwgt", "ncost", "_cache")

    def __init__(
        self,
        nverts: int,
        xpins: np.ndarray,
        pins: np.ndarray,
        vwgt: Optional[np.ndarray] = None,
        ncost: Optional[np.ndarray] = None,
        *,
        validate: bool = True,
    ) -> None:
        if nverts < 0:
            raise HypergraphError(f"nverts must be >= 0, got {nverts}")
        xpins = np.asarray(xpins, dtype=np.int64).ravel()
        pins = np.asarray(pins, dtype=np.int64).ravel()
        if xpins.size == 0:
            raise HypergraphError("xpins must have length nnets + 1 >= 1")
        nnets = xpins.size - 1
        if vwgt is None:
            vwgt = np.ones(nverts, dtype=np.int64)
        else:
            vwgt = np.asarray(vwgt, dtype=np.int64).ravel()
        if ncost is None:
            ncost = np.ones(nnets, dtype=np.int64)
        else:
            ncost = np.asarray(ncost, dtype=np.int64).ravel()

        if validate:
            if xpins[0] != 0 or xpins[-1] != pins.size:
                raise HypergraphError(
                    "xpins must start at 0 and end at len(pins) "
                    f"(got {xpins[0]}..{xpins[-1]}, pins={pins.size})"
                )
            if np.any(np.diff(xpins) < 0):
                raise HypergraphError("xpins must be non-decreasing")
            if pins.size and (pins.min() < 0 or pins.max() >= nverts):
                raise HypergraphError("pin vertex ids out of range")
            if vwgt.size != nverts:
                raise HypergraphError(
                    f"vwgt length {vwgt.size} != nverts {nverts}"
                )
            if ncost.size != nnets:
                raise HypergraphError(
                    f"ncost length {ncost.size} != nnets {nnets}"
                )
            if vwgt.size and vwgt.min() < 0:
                raise HypergraphError("vertex weights must be non-negative")
            if ncost.size and ncost.min() < 0:
                raise HypergraphError("net costs must be non-negative")
            # Duplicate pins within a net break FM pin-count bookkeeping.
            if pins.size:
                net_ids = np.repeat(np.arange(nnets), np.diff(xpins))
                order = np.lexsort((pins, net_ids))
                sn, sp = net_ids[order], pins[order]
                dup = (sn[1:] == sn[:-1]) & (sp[1:] == sp[:-1])
                if dup.any():
                    bad = int(sn[1:][dup][0])
                    raise HypergraphError(
                        f"net {bad} contains a duplicate pin"
                    )

        self.nverts = int(nverts)
        self.nnets = int(nnets)
        self.xpins = _readonly(xpins)
        self.pins = _readonly(pins)
        self.vwgt = _readonly(vwgt)
        self.ncost = _readonly(ncost)
        self._cache: dict = {}

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_net_lists(
        cls,
        nverts: int,
        nets: Sequence[Iterable[int]],
        vwgt: Optional[np.ndarray] = None,
        ncost: Optional[np.ndarray] = None,
    ) -> "Hypergraph":
        """Build from an explicit list of pin lists (small graphs / tests)."""
        net_lists = [list(n) for n in nets]
        sizes = np.array([len(n) for n in net_lists], dtype=np.int64)
        xpins = np.zeros(len(net_lists) + 1, dtype=np.int64)
        np.cumsum(sizes, out=xpins[1:])
        pins = (
            np.concatenate([np.asarray(n, dtype=np.int64) for n in net_lists])
            if net_lists and xpins[-1] > 0
            else np.empty(0, dtype=np.int64)
        )
        return cls(nverts, xpins, pins, vwgt, ncost)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def npins(self) -> int:
        """Total number of pins (sum of net sizes)."""
        return self.pins.size

    def net_sizes(self) -> np.ndarray:
        """Size of each net (vectorized ``diff`` of the pointer array)."""
        out = self._cache.get("net_sizes")
        if out is None:
            out = _readonly(np.diff(self.xpins))
            self._cache["net_sizes"] = out
        return out

    def net_ids(self) -> np.ndarray:
        """Net id of every pin, aligned with :attr:`pins` (cached).

        Equivalent to ``np.repeat(np.arange(nnets), net_sizes())``; FM
        setup, the transpose builder, the gain bound, the connectivity
        metric, and contraction all need this expansion, so it is computed
        once per hypergraph (hypergraphs are immutable).
        """
        out = self._cache.get("net_ids")
        if out is None:
            out = _readonly(
                np.repeat(
                    np.arange(self.nnets, dtype=np.int64), self.net_sizes()
                )
            )
            self._cache["net_ids"] = out
        return out

    def net_pins(self, net: int) -> np.ndarray:
        """Pins of one net as a read-only view."""
        return self.pins[self.xpins[net] : self.xpins[net + 1]]

    def total_weight(self) -> int:
        """Sum of all vertex weights."""
        return int(self.vwgt.sum())

    # ------------------------------------------------------------------ #
    # Transposed incidence (vertex -> nets), built lazily
    # ------------------------------------------------------------------ #
    def _build_transpose(self) -> tuple[np.ndarray, np.ndarray]:
        cached = self._cache.get("transpose")
        if cached is None:
            deg = np.bincount(self.pins, minlength=self.nverts)
            xnets = np.zeros(self.nverts + 1, dtype=np.int64)
            np.cumsum(deg, out=xnets[1:])
            # Sort (pin -> net) pairs by pin id, net id as tie-break.
            # The pairs are unique (no duplicate pins within a net), so
            # an unstable sort of the combined key pin * nnets + net
            # equals the stable sort of pins alone — and quicksort on
            # one int64 key is ~3x faster than a stable argsort here.
            net_ids = self.net_ids()
            if self.nnets > 0 and self.nverts < 2**62 // self.nnets:
                order = np.argsort(self.pins * np.int64(self.nnets) + net_ids)
            else:  # combined key could overflow: keep the stable sort
                order = np.argsort(self.pins, kind="stable")
            vnets = net_ids[order]
            cached = (_readonly(xnets), _readonly(vnets))
            self._cache["transpose"] = cached
        return cached

    @property
    def xnets(self) -> np.ndarray:
        """Vertex pointer array of the transposed incidence (length nverts+1)."""
        return self._build_transpose()[0]

    @property
    def vnets(self) -> np.ndarray:
        """Concatenated net lists per vertex (aligned with :attr:`xnets`)."""
        return self._build_transpose()[1]

    def vertex_nets(self, v: int) -> np.ndarray:
        """Nets containing vertex ``v`` as a read-only view."""
        xnets, vnets = self._build_transpose()
        return vnets[xnets[v] : xnets[v + 1]]

    def vertex_degrees(self) -> np.ndarray:
        """Number of nets incident to each vertex."""
        out = self._cache.get("degrees")
        if out is None:
            out = _readonly(np.bincount(self.pins, minlength=self.nverts))
            self._cache["degrees"] = out
        return out

    def max_vertex_net_cost(self) -> int:
        """``max_v sum(ncost[n] for n containing v)`` — the FM gain bound."""
        out = self._cache.get("max_net_cost")
        if out is None:
            if self.npins == 0:
                out = 0
            else:
                costs = self.ncost[self.net_ids()]
                tot = np.zeros(self.nverts, dtype=np.int64)
                np.add.at(tot, self.pins, costs)
                out = int(tot.max(initial=0))
            self._cache["max_net_cost"] = out
        return out

    # ------------------------------------------------------------------ #
    # Induced sub-hypergraphs
    # ------------------------------------------------------------------ #
    def induce(self, vertices: np.ndarray) -> "Hypergraph":
        """Sub-hypergraph induced by a vertex subset.

        ``vertices`` is an array of distinct vertex ids; vertex ``i`` of
        the result corresponds to ``vertices[i]`` (weights follow).
        Nets are restricted to their kept pins; nets left with fewer
        than two pins are dropped (they can never be cut).  Fully
        vectorized — used by the recursive-bisection construction of
        initial k-way partitionings, where sub-hypergraphs of the
        coarsest level are bipartitioned independently.
        """
        vertices = np.asarray(vertices, dtype=np.int64).ravel()
        new_id = np.full(self.nverts, -1, dtype=np.int64)
        new_id[vertices] = np.arange(vertices.size, dtype=np.int64)
        keep_pin = new_id[self.pins] >= 0
        net_ids = self.net_ids()
        kept_counts = np.bincount(
            net_ids[keep_pin], minlength=self.nnets
        )
        keep_net = kept_counts >= 2
        keep = keep_pin & keep_net[net_ids]
        sizes = kept_counts[keep_net]
        xpins = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=xpins[1:])
        return Hypergraph(
            vertices.size,
            xpins,
            new_id[self.pins[keep]],
            vwgt=self.vwgt[vertices],
            ncost=self.ncost[keep_net],
            validate=False,
        )

    # ------------------------------------------------------------------ #
    # Cosmetics
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hypergraph(nverts={self.nverts}, nnets={self.nnets}, "
            f"npins={self.npins})"
        )
