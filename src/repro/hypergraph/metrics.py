"""Hypergraph partition quality metrics.

The sparse-matrix partitioning objective is the *connectivity-1* metric
(paper eqns (2)–(3)): each net ``n`` spanning ``lambda_n`` distinct parts
contributes ``cost_n * (lambda_n - 1)``.  For bipartitioning this coincides
with the cut-net metric, but the functions here support any number of parts
because the recursive-bisection harness and the ``p = 64`` experiments
evaluate k-way partitionings directly.

All functions are fully vectorized over the pin array.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels.spmv import axis_lambdas

__all__ = [
    "net_lambdas",
    "connectivity_volume",
    "cut_net_count",
    "part_weights",
    "check_parts",
]


def check_parts(h: Hypergraph, parts: np.ndarray, nparts: int | None = None) -> np.ndarray:
    """Validate a part vector against ``h`` and return it as ``int64``.

    ``parts`` must assign every vertex a part id in ``[0, nparts)``; if
    ``nparts`` is ``None`` it is inferred as ``max(parts) + 1``.
    """
    parts = np.asarray(parts)
    if parts.shape != (h.nverts,):
        raise PartitioningError(
            f"parts must have shape ({h.nverts},), got {parts.shape}"
        )
    parts = parts.astype(np.int64, copy=False)
    if h.nverts:
        pmin = int(parts.min())
        pmax = int(parts.max())
        if pmin < 0:
            raise PartitioningError(f"negative part id {pmin}")
        if nparts is not None and pmax >= nparts:
            raise PartitioningError(
                f"part id {pmax} out of range for nparts={nparts}"
            )
    return parts


def net_lambdas(h: Hypergraph, parts: np.ndarray) -> np.ndarray:
    """Connectivity ``lambda_n`` of every net: number of distinct parts
    among its pins (0 for empty nets)."""
    parts = check_parts(h, parts)
    if h.npins == 0:
        return np.zeros(h.nnets, dtype=np.int64)
    # Count unique (net, part) pairs per net — same group-by kernel as the
    # matrix-side connectivity counts (nets are the "lines" here).
    return axis_lambdas(h.net_ids(), parts[h.pins], h.nnets)


def connectivity_volume(h: Hypergraph, parts: np.ndarray) -> int:
    """Connectivity-1 cut: ``sum_n cost_n * (lambda_n - 1)``.

    Empty nets (``lambda = 0``) contribute zero.
    """
    lambdas = net_lambdas(h, parts)
    contrib = np.maximum(lambdas - 1, 0)
    return int(np.dot(h.ncost, contrib))


def cut_net_count(h: Hypergraph, parts: np.ndarray) -> int:
    """Number of nets spanning more than one part (unweighted)."""
    return int(np.count_nonzero(net_lambdas(h, parts) > 1))


def part_weights(h: Hypergraph, parts: np.ndarray, nparts: int) -> np.ndarray:
    """Total vertex weight per part (length ``nparts``)."""
    parts = check_parts(h, parts, nparts)
    return np.bincount(parts, weights=h.vwgt, minlength=nparts).astype(np.int64)
