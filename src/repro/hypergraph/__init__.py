"""Hypergraph substrate: data structure, sparse-matrix models, cut metrics.

A hypergraph ``H = (V, N)`` generalizes a graph by letting each *net*
(hyperedge) connect any number of vertices.  The sparse-matrix partitioning
literature (and this paper) works with three classic translations of a
matrix into a hypergraph — row-net, column-net, and fine-grain — plus the
paper's composite medium-grain model built in :mod:`repro.core.medium_grain`.
"""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.models import (
    HypergraphModel,
    column_net_model,
    fine_grain_model,
    row_net_model,
)
from repro.hypergraph.metrics import (
    connectivity_volume,
    cut_net_count,
    net_lambdas,
    part_weights,
)

__all__ = [
    "Hypergraph",
    "HypergraphModel",
    "row_net_model",
    "column_net_model",
    "fine_grain_model",
    "net_lambdas",
    "connectivity_volume",
    "cut_net_count",
    "part_weights",
]
