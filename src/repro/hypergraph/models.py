"""The classic hypergraph models for sparse matrices.

Section II of the paper describes three translations of an ``m x n`` matrix
``A`` into a hypergraph (all due to Catalyurek & Aykanat):

* **row-net model** — vertices are the columns of ``A``, nets are its rows;
  partitioning the vertices yields a 1D *column* distribution of the
  nonzeros, and the connectivity-1 cut equals the fan-in volume (rows may be
  cut, columns never are).
* **column-net model** — the transpose: vertices are rows, nets are columns,
  yielding a 1D *row* distribution.
* **fine-grain model** — one vertex per nonzero, one net per non-empty row
  and per non-empty column; fully general 2D distributions.

Each builder returns a :class:`HypergraphModel` bundling the hypergraph with
the mapping from a vertex part vector back to a *nonzero* part vector (in
the matrix's canonical nonzero order), so every model plugs into the same
volume calculator and SpMV simulator.

The medium-grain composite model lives in :mod:`repro.core.medium_grain`
since it is the paper's contribution, not prior work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.sparse.matrix import SparseMatrix

__all__ = [
    "HypergraphModel",
    "row_net_model",
    "column_net_model",
    "fine_grain_model",
]


@dataclass(frozen=True)
class HypergraphModel:
    """A hypergraph together with its nonzero-partition semantics.

    Attributes
    ----------
    name:
        Model identifier (``"row-net"``, ``"column-net"``, ``"fine-grain"``,
        ``"medium-grain"``).
    hypergraph:
        The translated hypergraph.
    matrix:
        The source matrix (canonical nonzero order defines the output
        indexing of :meth:`nonzero_parts`).
    _mapper:
        Internal function mapping vertex parts to nonzero parts.
    """

    name: str
    hypergraph: Hypergraph
    matrix: SparseMatrix
    _mapper: Callable[[np.ndarray], np.ndarray] = field(repr=False)

    def nonzero_parts(self, vertex_parts: np.ndarray) -> np.ndarray:
        """Map a vertex part vector to a part per canonical nonzero of
        the source matrix."""
        vertex_parts = np.asarray(vertex_parts)
        if vertex_parts.shape != (self.hypergraph.nverts,):
            raise PartitioningError(
                f"vertex_parts must have shape ({self.hypergraph.nverts},), "
                f"got {vertex_parts.shape}"
            )
        return self._mapper(vertex_parts.astype(np.int64, copy=False))


def _csr_from_groups(
    group_of_pin: np.ndarray, ngroups: int, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Group ``values`` by ``group_of_pin`` into CSR arrays (stable order)."""
    counts = np.bincount(group_of_pin, minlength=ngroups)
    xpins = np.zeros(ngroups + 1, dtype=np.int64)
    np.cumsum(counts, out=xpins[1:])
    order = np.argsort(group_of_pin, kind="stable")
    return xpins, values[order]


def row_net_model(matrix: SparseMatrix) -> HypergraphModel:
    """Row-net model: vertices = columns, nets = rows.

    Vertex ``j`` weighs ``nzc(j)`` (nonzeros in column ``j``); net ``i``
    contains every column with a nonzero in row ``i``.  Empty rows become
    empty nets (zero cut contribution); empty columns become isolated
    zero-weight vertices.  The hypergraph thus has exactly ``n`` vertices
    and ``m`` nets, as in the paper.
    """
    m, n = matrix.shape
    xpins, pins = _csr_from_groups(matrix.rows, m, matrix.cols)
    h = Hypergraph(n, xpins, pins, vwgt=matrix.nnz_per_col())
    cols = matrix.cols

    def mapper(vertex_parts: np.ndarray) -> np.ndarray:
        return vertex_parts[cols]

    return HypergraphModel("row-net", h, matrix, mapper)


def column_net_model(matrix: SparseMatrix) -> HypergraphModel:
    """Column-net model: vertices = rows, nets = columns (transpose of
    :func:`row_net_model`)."""
    m, n = matrix.shape
    xpins, pins = _csr_from_groups(matrix.cols, n, matrix.rows)
    h = Hypergraph(m, xpins, pins, vwgt=matrix.nnz_per_row())
    rows = matrix.rows

    def mapper(vertex_parts: np.ndarray) -> np.ndarray:
        return vertex_parts[rows]

    return HypergraphModel("column-net", h, matrix, mapper)


def fine_grain_model(matrix: SparseMatrix) -> HypergraphModel:
    """Fine-grain model: one unit-weight vertex per nonzero; one net per
    row and per column (rows first: net ``i`` is row ``i``, net ``m + j``
    is column ``j``).

    The hypergraph has ``N`` vertices and ``m + n`` nets; its connectivity-1
    cut equals the communication volume of the corresponding nonzero
    partitioning exactly.
    """
    m, n = matrix.shape
    nnz = matrix.nnz
    ids = np.arange(nnz, dtype=np.int64)
    # Row nets: canonical order is already row-major.
    row_xpins = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(matrix.nnz_per_row(), out=row_xpins[1:])
    # Column nets: group nonzero ids by column.
    col_xpins, col_pins = _csr_from_groups(matrix.cols, n, ids)
    xpins = np.concatenate([row_xpins, row_xpins[-1] + col_xpins[1:]])
    pins = np.concatenate([ids, col_pins])
    h = Hypergraph(nnz, xpins, pins, vwgt=np.ones(nnz, dtype=np.int64))

    def mapper(vertex_parts: np.ndarray) -> np.ndarray:
        return vertex_parts.copy()

    return HypergraphModel("fine-grain", h, matrix, mapper)
