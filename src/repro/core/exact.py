"""Exact minimum-volume bipartitioning by branch and bound.

The paper's Fig. 3 states the optimal volume of ``gd97_b`` (11) citing
Pelt's thesis on *optimal* bipartitioning (ref. [19]; later released as
the MondriaanOpt tool).  This module provides that capability at small
scale: an exhaustive branch-and-bound search over nonzero assignments that
returns a provably optimal bipartitioning under the eqn-(1) balance
constraint.

It exists for the same reasons the authors built theirs — ground truth.
The test suite uses it to measure how far the heuristics land from the
optimum on small instances, and the Fig. 3 demo can report a true optimal
volume for the stand-in matrix.

Algorithm
---------
Nonzeros are assigned one at a time to part 0 or 1 (DFS).  The state
keeps, per row and per column, the set of parts already present (2-bit
masks); the accumulated ``sum (|mask| - 1)`` is the volume so far and —
since connectivity only ever grows — an admissible lower bound, so any
branch whose bound reaches the incumbent is cut.  Additional pruning:

* **balance**: a part that would exceed its ceiling is not extended, and
  a branch dies when the *other* part cannot absorb all remaining
  nonzeros;
* **symmetry**: the first nonzero is pinned to part 0 (volume is
  invariant under part relabelling);
* **ordering**: nonzeros are processed in decreasing ``nzr + nzc`` of
  their lines, so expensive decisions happen high in the tree and the
  bound bites early;
* **line-closure lookahead**: when a nonzero's row and column are both
  already bi-chromatic, its assignment is volume-neutral either way — the
  search still branches (balance may differ) but inherits the bound
  unchanged.

Complexity is exponential; the entry point refuses instances above
``max_nonzeros`` (default 48) to keep runtimes sane.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.volume import communication_volume
from repro.errors import PartitioningError
from repro.sparse.matrix import SparseMatrix
from repro.utils.balance import max_allowed_part_size
from repro.utils.validation import check_eps

__all__ = ["ExactResult", "exact_bipartition"]


@dataclass(frozen=True)
class ExactResult:
    """Outcome of the branch-and-bound search.

    Attributes
    ----------
    parts:
        An optimal bipartitioning (0/1 per canonical nonzero).
    volume:
        Its communication volume — provably minimal when ``optimal``.
    optimal:
        False only when a ``time_limit`` stopped the search early; the
        result is then the best incumbent.
    nodes:
        Search-tree nodes expanded.
    seconds:
        Wall-clock search time.
    """

    parts: np.ndarray
    volume: int
    optimal: bool
    nodes: int
    seconds: float


def exact_bipartition(
    matrix: SparseMatrix,
    eps: float = 0.03,
    *,
    max_nonzeros: int = 48,
    time_limit: Optional[float] = None,
    initial_incumbent: Optional[np.ndarray] = None,
) -> ExactResult:
    """Find a minimum-volume bipartitioning of ``matrix`` (exact).

    Parameters
    ----------
    matrix:
        Matrix to bipartition; must have at most ``max_nonzeros``
        nonzeros.
    eps:
        Load-imbalance fraction of eqn (1).
    max_nonzeros:
        Safety cap on instance size (the search is exponential).
    time_limit:
        Optional wall-clock budget in seconds; on expiry the incumbent is
        returned with ``optimal=False``.
    initial_incumbent:
        Optional known-feasible part vector (e.g. a medium-grain result)
        used to seed the upper bound, often cutting the search
        dramatically.

    Raises
    ------
    PartitioningError
        If the instance exceeds ``max_nonzeros`` or no feasible
        bipartitioning exists under the balance constraint.
    """
    check_eps(eps)
    n = matrix.nnz
    if n == 0:
        return ExactResult(
            parts=np.zeros(0, dtype=np.int64),
            volume=0,
            optimal=True,
            nodes=0,
            seconds=0.0,
        )
    if n > max_nonzeros:
        raise PartitioningError(
            f"exact search refuses {n} nonzeros (cap {max_nonzeros}); "
            "raise max_nonzeros explicitly if you accept the cost"
        )
    ceiling = max_allowed_part_size(n, 2, eps)

    # Order nonzeros by decreasing line sizes so volume accrues early.
    nzr = matrix.nnz_per_row()
    nzc = matrix.nnz_per_col()
    weight = nzr[matrix.rows] + nzc[matrix.cols]
    order = np.argsort(-weight, kind="stable")
    rows = matrix.rows[order].tolist()
    cols = matrix.cols[order].tolist()

    # Incumbent.
    best_parts_ordered: Optional[list[int]] = None
    best_vol = n * 4  # above any possible volume
    if initial_incumbent is not None:
        inc = np.asarray(initial_incumbent)
        if inc.shape != (n,):
            raise PartitioningError(
                f"initial_incumbent must have shape ({n},)"
            )
        counts = np.bincount(inc.astype(np.int64), minlength=2)
        if counts.max() <= ceiling and inc.max(initial=0) <= 1:
            best_vol = communication_volume(matrix, inc)
            best_parts_ordered = inc[order].astype(int).tolist()

    row_mask = [0] * matrix.nrows
    col_mask = [0] * matrix.ncols
    assign = [0] * n
    counts = [0, 0]
    nodes = 0
    deadline = time.perf_counter() + time_limit if time_limit else None
    timed_out = False
    t0 = time.perf_counter()

    # Iterative DFS with explicit undo stack, two children per level.
    # stack entries: (depth, part, phase) where phase 0 = apply, 1 = undo.
    def search(depth: int, vol: int) -> None:
        nonlocal best_vol, best_parts_ordered, nodes, timed_out
        if timed_out:
            return
        if deadline is not None and nodes % 1024 == 0:
            if time.perf_counter() > deadline:
                timed_out = True
                return
        if vol >= best_vol:
            return
        if depth == n:
            best_vol = vol
            best_parts_ordered = assign.copy()
            return
        remaining = n - depth
        r = rows[depth]
        c = cols[depth]
        choices = (0, 1) if depth > 0 else (0,)  # symmetry breaking
        for part in choices:
            other = 1 - part
            if counts[part] + 1 > ceiling:
                continue
            # Completion feasibility: the remaining - 1 nonzeros must fit
            # in the head-room of both sides combined.
            headroom = (ceiling - counts[part] - 1) + (
                ceiling - counts[other]
            )
            if remaining - 1 > headroom:
                continue
            bit = 1 << part
            dr = 0 if row_mask[r] & bit else (1 if row_mask[r] else 0)
            dc = 0 if col_mask[c] & bit else (1 if col_mask[c] else 0)
            old_r, old_c = row_mask[r], col_mask[c]
            row_mask[r] = old_r | bit
            col_mask[c] = old_c | bit
            counts[part] += 1
            assign[depth] = part
            nodes += 1
            search(depth + 1, vol + dr + dc)
            row_mask[r] = old_r
            col_mask[c] = old_c
            counts[part] -= 1
            if timed_out:
                return

    search(0, 0)
    seconds = time.perf_counter() - t0

    if best_parts_ordered is None:
        raise PartitioningError(
            "no feasible bipartitioning under the balance constraint"
        )
    parts = np.empty(n, dtype=np.int64)
    parts[order] = np.array(best_parts_ordered, dtype=np.int64)
    final_vol = communication_volume(matrix, parts)
    if final_vol != best_vol:  # pragma: no cover - internal consistency
        raise PartitioningError(
            f"internal error: incremental volume {best_vol} != recomputed "
            f"{final_vol}"
        )
    return ExactResult(
        parts=parts,
        volume=final_vol,
        optimal=not timed_out,
        nodes=nodes,
        seconds=seconds,
    )
