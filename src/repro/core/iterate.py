"""The full iterative method (paper Section V, future work).

Algorithm 2 exploits the medium-grain encoding freedom only for *local*
refinement (one single-level KL run per iteration).  The paper's closing
section sketches the natural escalation:

    "Instead of using this idea for iterative refinement only, [...] one
    can also design a full iterative method, where a full multi-level
    partitioning is performed in each iteration.  This would present an
    entirely new method [...] where one could trade computation time for
    solution quality, by using more or less iterations."

This module implements that method.  Iteration 0 is a standard
medium-grain run (Algorithm-1 split).  Iteration ``k`` re-encodes the best
bipartitioning found so far as a split (alternating the direction like
Algorithm 2), builds the composite hypergraph, and runs the *entire
multilevel partitioner* on it from scratch — coarsening included — which
can escape local optima that single-level FM cannot.  The best result is
kept, so quality is monotone in the iteration count; each iteration costs
roughly one full medium-grain partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.medium_grain import build_medium_grain
from repro.core.refine import iterative_refine
from repro.core.split import initial_split, split_from_bipartition
from repro.errors import PartitioningError
from repro.kernels import KernelBackend, resolve_backend
from repro.partitioner.bipartition import bipartition_hypergraph
from repro.partitioner.config import PartitionerConfig, get_config
from repro.sparse.matrix import SparseMatrix
from repro.utils.balance import max_allowed_part_size
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer
from repro.utils.validation import check_eps

__all__ = ["FullIterativeResult", "full_iterative_bipartition"]


@dataclass
class FullIterativeResult:
    """Outcome of the full iterative method.

    Attributes
    ----------
    parts:
        Best bipartitioning found (0/1 per canonical nonzero).
    volume:
        Its communication volume.
    volumes:
        Best-so-far volume after each iteration (length ``iterations+1``;
        index 0 is the initial medium-grain run).  Non-increasing.
    attempt_volumes:
        The raw volume produced by each re-partitioning attempt (not
        monotone — attempts may regress and are then discarded).
    seconds:
        Total wall-clock time.
    feasible:
        Whether the best partitioning satisfies the ceilings.
    """

    parts: np.ndarray
    volume: int
    volumes: list[int] = field(default_factory=list)
    attempt_volumes: list[int] = field(default_factory=list)
    seconds: float = 0.0
    feasible: bool = True


def full_iterative_bipartition(
    matrix: SparseMatrix,
    iterations: int = 4,
    eps: float = 0.03,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    *,
    refine_each: bool = True,
    max_weights: tuple[int, int] | None = None,
) -> FullIterativeResult:
    """Bipartition by repeated full multilevel medium-grain runs.

    Parameters
    ----------
    matrix:
        Matrix to bipartition.
    iterations:
        Number of re-partitioning iterations *after* the initial run.
        ``iterations=0`` reduces to plain medium-grain (+IR when
        ``refine_each``).
    eps, config, seed:
        As for :func:`repro.core.methods.bipartition`.
    refine_each:
        Run Algorithm-2 iterative refinement after every multilevel run
        (the strongest configuration; the paper's suggestion composes both
        mechanisms).
    max_weights:
        Optional explicit per-side ceilings overriding ``eps``.

    Returns
    -------
    FullIterativeResult
    """
    if iterations < 0:
        raise PartitioningError(
            f"iterations must be non-negative, got {iterations}"
        )
    cfg = get_config(config)
    rng = as_generator(seed)
    # One backend resolution for the whole run; every multilevel pass and
    # Algorithm-2 KL run below shares it (and each hypergraph's pass
    # state is cached, so repeated refinement on a level is setup-free).
    backend = resolve_backend(cfg.kernel_backend)
    if max_weights is None:
        check_eps(eps)
        ceiling = max_allowed_part_size(matrix.nnz, 2, eps)
        max_weights = (ceiling, ceiling)

    timer = Timer()
    with timer:
        # Iteration 0: the standard medium-grain pipeline.
        split = initial_split(matrix, rng)
        best_parts, best_vol = _partition_split(
            matrix, split, cfg, rng, max_weights, refine_each, eps, backend
        )
        volumes = [best_vol]
        attempts = [best_vol]

        direction = 0
        for _ in range(iterations):
            split = split_from_bipartition(matrix, best_parts, direction)
            direction = 1 - direction
            parts, vol = _partition_split(
                matrix, split, cfg, rng, max_weights, refine_each, eps,
                backend,
            )
            attempts.append(vol)
            if vol < best_vol:
                best_parts, best_vol = parts, vol
            volumes.append(best_vol)

    sizes = np.bincount(best_parts, minlength=2)
    return FullIterativeResult(
        parts=best_parts,
        volume=best_vol,
        volumes=volumes,
        attempt_volumes=attempts,
        seconds=timer.elapsed,
        feasible=bool(
            sizes[0] <= max_weights[0] and sizes[1] <= max_weights[1]
        ),
    )


def _partition_split(
    matrix: SparseMatrix,
    split,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    max_weights: tuple[int, int],
    refine_each: bool,
    eps: float,
    backend: KernelBackend,
) -> tuple[np.ndarray, int]:
    """One full multilevel run on a given split (+ optional Algorithm 2).

    The per-iteration volume evaluations are hoisted away: the medium-
    grain connectivity-1 cut *is* the matrix volume (eqn (6)), so the
    multilevel result's cut seeds Algorithm 2's ``initial_volume`` and
    the refinement trace's final entry is the returned volume — no
    :func:`~repro.core.volume.communication_volume` call per iteration.
    """
    instance = build_medium_grain(split)
    hres = bipartition_hypergraph(
        instance.hypergraph, eps, cfg, rng, max_weights=max_weights,
        backend=backend,
    )
    parts = instance.nonzero_parts(hres.parts)
    if not refine_each:
        return parts, hres.cut
    parts, trace = iterative_refine(
        matrix, parts, eps, cfg, rng, max_weights=max_weights,
        backend=backend, initial_volume=hres.cut,
    )
    return parts, trace.final_volume
