"""Direct k-way partitioning over the paper's hypergraph models.

Every ``p``-way result elsewhere in this repository comes from recursive
bisection (:mod:`repro.core.recursive`): each cut optimizes a two-sided
objective blind to the final k-way connectivity-(λ−1) volume.  This
module is the head-to-head alternative the literature frames against it
(Knigge & Bisseling, arXiv:1811.02043; Fagginger Auer & Bisseling,
arXiv:1105.4490): partition the hypergraph into ``p`` parts *directly*,
optimizing the k-way metric itself.

Pipeline (``method="mediumgrain"``):

1. Algorithm-1 split of the full matrix, composite hypergraph
   (:mod:`repro.core.medium_grain`) — one build, no recursion tree;
2. balanced greedy initial assignment of the group vertices, heaviest
   vertex first into the lightest part *with room* under the eqn-(1)
   ceiling (:func:`greedy_kway_vertex_parts`);
3. k-way FM refinement (:func:`repro.partitioner.fm.kway_refine`) whose
   move loop maintains per-net part-occupancy counts and exact
   connectivity-λ gains through the kernel backends;
4. eqn-(5) mapping back to the nonzeros; by eqn (6) the hypergraph's
   connectivity-(λ−1) cut *is* the matrix communication volume.
5. optionally (``refine=True``) the k-way iterate loop: re-encode the
   partitioning with majority splits and refine again, keeping the best
   (:func:`repro.core.refine.iterative_refine` with ``nparts > 2``).

The 1D models and the fine-grain model plug into the same engine (their
vertex weights are nonzero counts too), so every method label of
:data:`repro.core.methods.METHOD_NAMES` works under ``algo="kway"``.

``PartitionerConfig.kway_vcycles`` (or the explicit ``vcycles``
argument) upgrades step 2–3 to the *multilevel* k-way engine: a full
multilevel construction
(:func:`repro.partitioner.multilevel.multilevel_kway`) followed by
hMetis-style restricted V-cycles
(:func:`repro.partitioner.vcycle.kway_vcycle_refine`) that can move
whole clusters between parts — the quality lever the flat pipeline
lacks.  ``kway_vcycles=0`` keeps the flat path bit-for-bit.

Determinism: the result is a pure function of ``(matrix, arguments,
seed)``.  There is no recursion tree to schedule, so ``jobs`` and
``exec_backend`` do not apply — the partition is trivially bit-identical
across every parallelism knob, and across kernel backends by the usual
bit-compatibility contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.medium_grain import build_medium_grain
from repro.core.methods import METHOD_NAMES, _build_model
from repro.core.recursive import PartitionResult
from repro.core.refine import iterative_refine
from repro.core.split import initial_split
from repro.core.validate import validate_parts
from repro.core.volume import (
    communication_volume,
    imbalance,
    max_part_size,
)
from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import KernelBackend, resolve_backend
from repro.obs import trace as _obs
from repro.partitioner.config import PartitionerConfig, get_config
from repro.partitioner.fm import kway_refine
from repro.partitioner.initial import (
    greedy_kway_vertex_parts,
    initial_kway_parts,
)
from repro.partitioner.multilevel import multilevel_kway
from repro.partitioner.vcycle import kway_vcycle_refine
from repro.sparse.matrix import SparseMatrix
from repro.utils import faults
from repro.utils.balance import max_allowed_part_size
from repro.utils.deadline import Deadline, Degraded
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer
from repro.utils.validation import check_eps, check_pos_int

__all__ = ["partition_kway", "greedy_kway_vertex_parts"]


def _kway_vertex_partition(
    h: Hypergraph,
    nparts: int,
    ceilings: np.ndarray,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    backend: KernelBackend,
    vcycles: int = 0,
    deadline: Deadline | None = None,
) -> tuple[np.ndarray, tuple[Degraded, ...]]:
    """Partition the vertices of one hypergraph into ``nparts`` parts.

    ``vcycles=0`` (the default) is the original *flat* path — greedy
    best-of-restarts assignment (see
    :func:`repro.partitioner.initial.initial_kway_parts`) followed by
    k-way FM on the full hypergraph, bit-identical to the pre-multilevel
    pipeline.  ``vcycles >= 1`` runs the multilevel engine instead:
    cycle 1 is a full multilevel construction
    (:func:`repro.partitioner.multilevel.multilevel_kway`), and cycles
    ``2..vcycles`` are hMetis-style restricted V-cycles
    (:func:`repro.partitioner.vcycle.kway_vcycle_refine`).

    Returns the part vector and the tuple of
    :class:`~repro.utils.deadline.Degraded` records the engines reported
    (empty unless a ``deadline`` expired mid-run).
    """
    if vcycles <= 0:
        best = initial_kway_parts(h, nparts, ceilings, cfg, rng)
        result = kway_refine(
            h, best, nparts, ceilings, cfg, rng, backend=backend,
            deadline=deadline,
        )
        degraded = (result.degraded,) if result.degraded else ()
        return result.parts, degraded
    result = multilevel_kway(
        h, nparts, ceilings, cfg, rng, backend=backend, deadline=deadline
    )
    degraded = (result.degraded,) if result.degraded else ()
    parts = result.parts
    if vcycles > 1:
        vres = kway_vcycle_refine(
            h, parts, nparts, ceilings, cfg, rng,
            max_cycles=vcycles - 1, backend=backend, deadline=deadline,
        )
        parts = vres.parts
        if vres.degraded:
            degraded += (vres.degraded,)
    return parts, degraded


def partition_kway(
    matrix: SparseMatrix,
    nparts: int,
    method: str = "mediumgrain",
    eps: float = 0.03,
    refine: bool = False,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    vcycles: int | None = None,
    deadline: Deadline | None = None,
) -> PartitionResult:
    """Partition the nonzeros of ``matrix`` into ``nparts`` parts directly.

    The k-way counterpart of recursive bisection — same signature core,
    same :class:`~repro.core.recursive.PartitionResult`, reached through
    :func:`repro.core.recursive.partition` with ``algo="kway"``.  Every
    part shares the single eqn-(1) ceiling
    ``max_allowed_part_size(nnz, nparts, eps)``.

    ``vcycles`` selects the engine (``None`` defers to
    ``config.kway_vcycles``): ``0`` refines the flat hypergraph — the
    original direct k-way path, exactly; ``N >= 1`` runs the multilevel
    engine (full multilevel construction, then ``N - 1`` restricted
    V-cycles — see :func:`_kway_vertex_partition`).  Multilevel results
    carry a ``"+ml"`` method suffix.

    ``refine=True`` runs the generalized Algorithm-2 iterate loop after
    the direct partitioning (alternating majority re-encodings, keeping
    the best — see :func:`repro.core.refine.iterative_refine`).

    ``bisection_volumes`` of the result stays empty: there are no
    bisections.

    An optional ``deadline`` (:class:`~repro.utils.deadline.Deadline` or
    the deterministic :class:`~repro.utils.deadline.SoftBudget`) makes
    the run *anytime*: every engine stops at its next pass/level/cycle
    boundary once it expires, the incumbent is returned, and each
    cut-short loop contributes a ``Degraded[...]`` brief to the result's
    ``failures`` tuple.  With ``deadline=None`` the run is byte-for-byte
    the pre-deadline pipeline.
    """
    nparts = check_pos_int(nparts, "nparts")
    check_eps(eps)
    if method not in METHOD_NAMES:
        raise PartitioningError(
            f"unknown method {method!r}; expected one of {METHOD_NAMES}"
        )
    cfg = get_config(config)
    vcycles = cfg.kway_vcycles if vcycles is None else int(vcycles)
    if vcycles < 0:
        raise PartitioningError(
            "vcycles must be non-negative (0 = flat direct k-way)"
        )
    rng = as_generator(seed)
    backend = resolve_backend(cfg.kernel_backend)
    n = matrix.nnz
    if nparts > max(n, 1):
        raise PartitioningError(
            f"cannot split {n} nonzeros into {nparts} non-trivial parts"
        )
    ceiling = max_allowed_part_size(n, nparts, eps)
    ceilings = np.full(nparts, ceiling, dtype=np.int64)

    timer = Timer()
    degraded: tuple[Degraded, ...] = ()
    with timer, _obs.span(
        "partition", method=method, nparts=nparts, algo="kway",
        vcycles=vcycles,
    ):
        faults.fault_point("kway.partition")
        if nparts == 1:
            parts = np.zeros(n, dtype=np.int64)
        elif method == "localbest":
            parts, degraded = _run_localbest_kway(
                matrix, nparts, ceilings, cfg, rng, backend, vcycles,
                deadline,
            )
        elif method == "mediumgrain":
            split = initial_split(matrix, rng)
            instance = build_medium_grain(split)
            vparts, degraded = _kway_vertex_partition(
                instance.hypergraph, nparts, ceilings, cfg, rng, backend,
                vcycles, deadline,
            )
            parts = instance.nonzero_parts(vparts)
        else:
            model = _build_model(matrix, method)
            vparts, degraded = _kway_vertex_partition(
                model.hypergraph, nparts, ceilings, cfg, rng, backend,
                vcycles, deadline,
            )
            parts = model.nonzero_parts(vparts)
        if refine and nparts > 1:
            iterate_span = _obs.span("kway.iterate")
            parts, _trace = iterative_refine(
                matrix,
                parts,
                eps,
                cfg,
                rng,
                nparts=nparts,
                max_weights=ceilings if nparts > 2 else (ceiling, ceiling),
                backend=backend,
                deadline=deadline,
            )
            iterate_span.end()
            if _trace.degraded is not None:
                degraded += (_trace.degraded,)

    # The k-way kernels are trusted the same amount as every other
    # partitioning producer: not at all.  Structural invariants are
    # checked before the result is wrapped (the volume/balance metrics
    # below are recomputed from ``parts`` here, so they cannot lie).
    validate_parts(parts, n, nparts, context=f"kway:{method}")
    biggest = max_part_size(matrix, parts, nparts)
    return PartitionResult(
        parts=parts,
        nparts=nparts,
        volume=communication_volume(matrix, parts),
        max_part=biggest,
        feasible=biggest <= ceiling,
        imbalance=imbalance(matrix, parts, nparts),
        seconds=timer.elapsed,
        method=method
        + ("+ml" if vcycles and nparts > 1 else "")
        + ("+ir" if refine else ""),
        bisection_volumes=[],
        failures=tuple(d.brief() for d in degraded),
    )


def _run_localbest_kway(
    matrix: SparseMatrix,
    nparts: int,
    ceilings: np.ndarray,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    backend: KernelBackend,
    vcycles: int = 0,
    deadline: Deadline | None = None,
) -> tuple[np.ndarray, tuple[Degraded, ...]]:
    """Row-net and column-net k-way runs, keep the lower volume (ties:
    better balance, then row-net) — the k-way mirror of ``localbest``."""
    best_parts: np.ndarray | None = None
    best_key: tuple | None = None
    all_degraded: tuple[Degraded, ...] = ()
    for name in ("rownet", "colnet"):
        model = _build_model(matrix, name)
        vparts, degraded = _kway_vertex_partition(
            model.hypergraph, nparts, ceilings, cfg, rng, backend, vcycles,
            deadline,
        )
        all_degraded += degraded
        parts = model.nonzero_parts(vparts)
        key = (
            communication_volume(matrix, parts),
            max_part_size(matrix, parts, nparts),
        )
        if best_key is None or key < best_key:
            best_parts, best_key = parts, key
    assert best_parts is not None
    return best_parts, all_degraded
