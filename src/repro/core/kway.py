"""Direct k-way partitioning over the paper's hypergraph models.

Every ``p``-way result elsewhere in this repository comes from recursive
bisection (:mod:`repro.core.recursive`): each cut optimizes a two-sided
objective blind to the final k-way connectivity-(λ−1) volume.  This
module is the head-to-head alternative the literature frames against it
(Knigge & Bisseling, arXiv:1811.02043; Fagginger Auer & Bisseling,
arXiv:1105.4490): partition the hypergraph into ``p`` parts *directly*,
optimizing the k-way metric itself.

Pipeline (``method="mediumgrain"``):

1. Algorithm-1 split of the full matrix, composite hypergraph
   (:mod:`repro.core.medium_grain`) — one build, no recursion tree;
2. balanced greedy initial assignment of the group vertices, heaviest
   vertex first into the lightest part *with room* under the eqn-(1)
   ceiling (:func:`greedy_kway_vertex_parts`);
3. k-way FM refinement (:func:`repro.partitioner.fm.kway_refine`) whose
   move loop maintains per-net part-occupancy counts and exact
   connectivity-λ gains through the kernel backends;
4. eqn-(5) mapping back to the nonzeros; by eqn (6) the hypergraph's
   connectivity-(λ−1) cut *is* the matrix communication volume.
5. optionally (``refine=True``) the k-way iterate loop: re-encode the
   partitioning with majority splits and refine again, keeping the best
   (:func:`repro.core.refine.iterative_refine` with ``nparts > 2``).

The 1D models and the fine-grain model plug into the same engine (their
vertex weights are nonzero counts too), so every method label of
:data:`repro.core.methods.METHOD_NAMES` works under ``algo="kway"``.

Determinism: the result is a pure function of ``(matrix, arguments,
seed)``.  There is no recursion tree to schedule, so ``jobs`` and
``exec_backend`` do not apply — the partition is trivially bit-identical
across every parallelism knob, and across kernel backends by the usual
bit-compatibility contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.medium_grain import build_medium_grain
from repro.core.methods import METHOD_NAMES, _build_model
from repro.core.recursive import PartitionResult
from repro.core.refine import iterative_refine
from repro.core.split import initial_split
from repro.core.validate import validate_parts
from repro.core.volume import (
    communication_volume,
    imbalance,
    max_part_size,
)
from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import KernelBackend, resolve_backend
from repro.partitioner.config import PartitionerConfig, get_config
from repro.partitioner.fm import kway_refine
from repro.sparse.matrix import SparseMatrix
from repro.utils import faults
from repro.utils.balance import max_allowed_part_size
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer
from repro.utils.validation import check_eps, check_pos_int

__all__ = ["partition_kway", "greedy_kway_vertex_parts"]


def greedy_kway_vertex_parts(
    h: Hypergraph,
    nparts: int,
    ceilings: np.ndarray,
    rng: np.random.Generator,
    strategy: str = "balance",
) -> np.ndarray:
    """Balanced greedy initial k-way assignment of the vertices.

    Heaviest vertex first (ties shuffled by ``rng`` so restarts differ);
    when no part has room the lightest part overall takes the vertex —
    the start is then infeasible and the k-way FM pass drives it
    feasible with forced moves.  Two placement disciplines:

    ``"balance"``
        Each vertex into the lightest part with room (ties to the lowest
        part id) — longest-processing-time, keeping ``max_k w_k`` near
        the eqn-(1) ceiling and the start maximally even.
    ``"pack"``
        First-fit decreasing: each vertex into the lowest-id part with
        room.  Packs early parts tight and leaves the tail parts slack —
        worse spread, but it fits tight instances (nearly uniform heavy
        weights against a snug ceiling) that defeat the even spread.
    """
    if strategy not in ("balance", "pack"):
        raise PartitioningError(
            f"unknown initial-assignment strategy {strategy!r}"
        )
    pack = strategy == "pack"
    k = int(nparts)
    nverts = h.nverts
    perm = rng.permutation(nverts)
    order = perm[np.argsort(-h.vwgt[perm], kind="stable")]
    ceil_l = [int(c) for c in ceilings]
    vw_l = h.vwgt.tolist()
    pw = [0] * k
    out = np.empty(nverts, dtype=np.int64)
    for v in order.tolist():
        wv = vw_l[v]
        best = -1
        best_w = -1
        any_p = 0
        any_w = pw[0]
        for p in range(k):
            w = pw[p]
            if w < any_w:
                any_w = w
                any_p = p
            if w + wv <= ceil_l[p]:
                if pack:
                    best = p
                    break
                if best == -1 or w < best_w:
                    best = p
                    best_w = w
        if best == -1:
            best = any_p
        out[v] = best
        pw[best] += wv
    return out


def _kway_vertex_partition(
    h: Hypergraph,
    nparts: int,
    ceilings: np.ndarray,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    backend: KernelBackend,
) -> np.ndarray:
    """Greedy initial assignment + k-way FM on one hypergraph.

    A feasible start provably stays feasible through the FM passes (the
    best-prefix bookkeeping never records an infeasible state once one
    feasible state exists), so the initial assignment is retried with
    fresh tie-break orders — up to ``cfg.n_initial`` times, mirroring
    the coarsest-level restarts of the 2-way engine — until the packing
    fits, alternating the even-spread and first-fit disciplines (an
    instance of nearly uniform heavy weights against a snug ceiling
    defeats the even spread on *every* order, but first-fit packs it);
    the least-overweight attempt is kept otherwise and the FM
    rebalancing pass gets to repair it.
    """
    best: np.ndarray | None = None
    best_over: int | None = None
    for attempt in range(max(1, cfg.n_initial)):
        vparts = greedy_kway_vertex_parts(
            h, nparts, ceilings, rng,
            strategy="balance" if attempt % 2 == 0 else "pack",
        )
        pw = np.bincount(vparts, weights=h.vwgt, minlength=nparts)
        over = int((pw - ceilings).max(initial=0))
        if best_over is None or over < best_over:
            best, best_over = vparts, over
        if over <= 0:
            break
    assert best is not None
    result = kway_refine(
        h, best, nparts, ceilings, cfg, rng, backend=backend
    )
    return result.parts


def partition_kway(
    matrix: SparseMatrix,
    nparts: int,
    method: str = "mediumgrain",
    eps: float = 0.03,
    refine: bool = False,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
) -> PartitionResult:
    """Partition the nonzeros of ``matrix`` into ``nparts`` parts directly.

    The k-way counterpart of recursive bisection — same signature core,
    same :class:`~repro.core.recursive.PartitionResult`, reached through
    :func:`repro.core.recursive.partition` with ``algo="kway"``.  Every
    part shares the single eqn-(1) ceiling
    ``max_allowed_part_size(nnz, nparts, eps)``.

    ``refine=True`` runs the generalized Algorithm-2 iterate loop after
    the direct partitioning (alternating majority re-encodings, keeping
    the best — see :func:`repro.core.refine.iterative_refine`).

    ``bisection_volumes`` of the result stays empty: there are no
    bisections.
    """
    nparts = check_pos_int(nparts, "nparts")
    check_eps(eps)
    if method not in METHOD_NAMES:
        raise PartitioningError(
            f"unknown method {method!r}; expected one of {METHOD_NAMES}"
        )
    cfg = get_config(config)
    rng = as_generator(seed)
    backend = resolve_backend(cfg.kernel_backend)
    n = matrix.nnz
    if nparts > max(n, 1):
        raise PartitioningError(
            f"cannot split {n} nonzeros into {nparts} non-trivial parts"
        )
    ceiling = max_allowed_part_size(n, nparts, eps)
    ceilings = np.full(nparts, ceiling, dtype=np.int64)

    timer = Timer()
    with timer:
        faults.fault_point("kway.partition")
        if nparts == 1:
            parts = np.zeros(n, dtype=np.int64)
        elif method == "localbest":
            parts = _run_localbest_kway(
                matrix, nparts, ceilings, cfg, rng, backend
            )
        elif method == "mediumgrain":
            split = initial_split(matrix, rng)
            instance = build_medium_grain(split)
            vparts = _kway_vertex_partition(
                instance.hypergraph, nparts, ceilings, cfg, rng, backend
            )
            parts = instance.nonzero_parts(vparts)
        else:
            model = _build_model(matrix, method)
            vparts = _kway_vertex_partition(
                model.hypergraph, nparts, ceilings, cfg, rng, backend
            )
            parts = model.nonzero_parts(vparts)
        if refine and nparts > 1:
            parts, _trace = iterative_refine(
                matrix,
                parts,
                eps,
                cfg,
                rng,
                nparts=nparts,
                max_weights=ceilings if nparts > 2 else (ceiling, ceiling),
                backend=backend,
            )

    # The k-way kernels are trusted the same amount as every other
    # partitioning producer: not at all.  Structural invariants are
    # checked before the result is wrapped (the volume/balance metrics
    # below are recomputed from ``parts`` here, so they cannot lie).
    validate_parts(parts, n, nparts, context=f"kway:{method}")
    biggest = max_part_size(matrix, parts, nparts)
    return PartitionResult(
        parts=parts,
        nparts=nparts,
        volume=communication_volume(matrix, parts),
        max_part=biggest,
        feasible=biggest <= ceiling,
        imbalance=imbalance(matrix, parts, nparts),
        seconds=timer.elapsed,
        method=method + ("+ir" if refine else ""),
        bisection_volumes=[],
    )


def _run_localbest_kway(
    matrix: SparseMatrix,
    nparts: int,
    ceilings: np.ndarray,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    backend: KernelBackend,
) -> np.ndarray:
    """Row-net and column-net k-way runs, keep the lower volume (ties:
    better balance, then row-net) — the k-way mirror of ``localbest``."""
    best_parts: np.ndarray | None = None
    best_key: tuple | None = None
    for name in ("rownet", "colnet"):
        model = _build_model(matrix, name)
        vparts = _kway_vertex_partition(
            model.hypergraph, nparts, ceilings, cfg, rng, backend
        )
        parts = model.nonzero_parts(vparts)
        key = (
            communication_volume(matrix, parts),
            max_part_size(matrix, parts, nparts),
        )
        if best_key is None or key < best_key:
            best_parts, best_key = parts, key
    assert best_parts is not None
    return best_parts
