"""Communication volume and load-balance metrics (paper eqns (1)–(3)).

A *nonzero partitioning* assigns every canonical nonzero of a matrix to one
of ``p`` parts.  During parallel SpMV, a row or column touched by
``lambda`` distinct parts costs ``lambda - 1`` communicated words (eqn (2));
the total communication volume is the sum over all rows and columns
(eqn (3)).  The load-imbalance constraint is
``max_k |A_k| <= (1 + eps) * N / p`` (eqn (1)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.kernels.spmv import axis_lambdas
from repro.sparse.matrix import SparseMatrix
from repro.utils.balance import max_allowed_part_size as _max_allowed
from repro.utils.validation import check_pos_int

__all__ = [
    "check_nonzero_parts",
    "row_col_lambdas",
    "communication_volume",
    "volume_breakdown",
    "part_sizes",
    "max_part_size",
    "imbalance",
    "max_allowed_part_size",
    "satisfies_balance",
]


def check_nonzero_parts(
    matrix: SparseMatrix, parts: np.ndarray, nparts: int | None = None
) -> np.ndarray:
    """Validate a nonzero part vector and return it as ``int64``."""
    parts = np.asarray(parts)
    if parts.shape != (matrix.nnz,):
        raise PartitioningError(
            f"parts must have shape ({matrix.nnz},), got {parts.shape}"
        )
    parts = parts.astype(np.int64, copy=False)
    if parts.size:
        if int(parts.min()) < 0:
            raise PartitioningError("negative part id in nonzero partitioning")
        if nparts is not None and int(parts.max()) >= nparts:
            raise PartitioningError(
                f"part id {int(parts.max())} out of range for nparts={nparts}"
            )
    return parts


def _axis_lambdas(index: np.ndarray, parts: np.ndarray, extent: int) -> np.ndarray:
    """Number of distinct parts touching each row (or column) index.

    Delegates to the flat-array group-by kernel (boolean scatter — no
    per-call sorting; see :func:`repro.kernels.spmv.axis_lambdas`).
    """
    return axis_lambdas(index, parts, extent)


def row_col_lambdas(
    matrix: SparseMatrix, parts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row and per-column connectivity ``lambda`` (0 for empty lines)."""
    parts = check_nonzero_parts(matrix, parts)
    m, n = matrix.shape
    return (
        _axis_lambdas(matrix.rows, parts, m),
        _axis_lambdas(matrix.cols, parts, n),
    )


def communication_volume(matrix: SparseMatrix, parts: np.ndarray) -> int:
    """Total SpMV communication volume ``V`` of a nonzero partitioning
    (paper eqn (3)): ``sum_i (lambda_row_i - 1) + sum_j (lambda_col_j - 1)``
    over non-empty rows and columns."""
    row_l, col_l = row_col_lambdas(matrix, parts)
    return int(
        np.maximum(row_l - 1, 0).sum() + np.maximum(col_l - 1, 0).sum()
    )


@dataclass(frozen=True)
class VolumeBreakdown:
    """Communication volume split by phase.

    ``fanin`` is the row contribution (partial sums), ``fanout`` the column
    contribution (input vector words); ``total = fanin + fanout``.
    """

    fanin: int
    fanout: int

    @property
    def total(self) -> int:
        return self.fanin + self.fanout


def volume_breakdown(matrix: SparseMatrix, parts: np.ndarray) -> VolumeBreakdown:
    """Fan-in (rows) / fan-out (columns) decomposition of the volume."""
    row_l, col_l = row_col_lambdas(matrix, parts)
    return VolumeBreakdown(
        fanin=int(np.maximum(row_l - 1, 0).sum()),
        fanout=int(np.maximum(col_l - 1, 0).sum()),
    )


def part_sizes(matrix: SparseMatrix, parts: np.ndarray, nparts: int) -> np.ndarray:
    """Nonzeros assigned to each part (length ``nparts``)."""
    nparts = check_pos_int(nparts, "nparts")
    parts = check_nonzero_parts(matrix, parts, nparts)
    return np.bincount(parts, minlength=nparts).astype(np.int64)


def max_part_size(matrix: SparseMatrix, parts: np.ndarray, nparts: int) -> int:
    """``max_k |A_k|``, the parallel multiplication bottleneck."""
    return int(part_sizes(matrix, parts, nparts).max(initial=0))


def imbalance(matrix: SparseMatrix, parts: np.ndarray, nparts: int) -> float:
    """Achieved load imbalance ``max_k |A_k| / (N / p) - 1``.

    Zero means perfect balance; the constraint of eqn (1) is
    ``imbalance <= eps``.
    """
    if matrix.nnz == 0:
        return 0.0
    return max_part_size(matrix, parts, nparts) / (matrix.nnz / nparts) - 1.0


def max_allowed_part_size(nnz: int, nparts: int, eps: float) -> int:
    """The integer load ceiling implied by eqn (1).

    ``floor((1 + eps) * N / p)``, clamped from below by ``ceil(N / p)`` so
    the constraint is always satisfiable (a perfectly balanced integer
    partitioning must be legal — the same clamp Mondriaan applies).

    Thin alias of :func:`repro.utils.balance.max_allowed_part_size`,
    re-exported here because eqn (1) is a matrix-level concept.
    """
    return _max_allowed(nnz, nparts, eps)


def satisfies_balance(
    matrix: SparseMatrix, parts: np.ndarray, nparts: int, eps: float
) -> bool:
    """Whether the partitioning satisfies the eqn-(1) constraint (with the
    integer clamp of :func:`max_allowed_part_size`)."""
    return max_part_size(matrix, parts, nparts) <= max_allowed_part_size(
        matrix.nnz, nparts, eps
    )
