"""Always-on partition-invariant validation at the executor boundary.

Results computed in worker processes cross a trust boundary on their way
back to the driver: a corrupted shared-memory segment, a buggy kernel
backend, or a half-dead worker can hand back an array that *looks* like
a partitioning but isn't one.  Every worker-returned result is therefore
checked against the invariants a partitioning cannot violate before it
is accepted:

* **assignment completeness** — one part id per nonzero, the exact
  expected length, an integer dtype;
* **part-id range** — every id in ``[0, nparts)`` (eqn-(1) speaks about
  parts that exist);
* **volume consistency** — the worker-reported communication volume
  must equal the volume recomputed from the parts it returned (eqn (3));
* **balance consistency** — a reported ``max_part`` / ``feasible`` /
  eqn-(1) ceiling claim must match what the parts actually imply.

A violation raises :class:`~repro.errors.ResultValidationError`, which
the hardened executor treats like a crash: the task is retried (the
usual cure for transient corruption) and, with retries exhausted,
recomputed serially in-process — a poisoned result is *never* silently
kept.  The checks are vectorized single passes over the parts array,
orders of magnitude cheaper than the partitioning that produced it, so
they are always on rather than gated behind a debug flag.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ResultValidationError

__all__ = [
    "validate_parts",
    "validate_partition",
    "validate_run_record",
]


def validate_parts(
    parts, size: int, nparts: int, *, context: str = ""
) -> np.ndarray:
    """Structural invariants: completeness, dtype, and part-id range.

    Returns the validated array (as received — no copy).  ``context``
    names the task for the error message (e.g. the recursion path).
    """
    where = f" ({context})" if context else ""
    if not isinstance(parts, np.ndarray):
        raise ResultValidationError(
            f"worker returned {type(parts).__name__}, not a parts "
            f"array{where}", task=context,
        )
    if parts.shape != (size,):
        raise ResultValidationError(
            f"parts shape {parts.shape} != ({size},): assignment is "
            f"incomplete{where}", task=context,
        )
    if not np.issubdtype(parts.dtype, np.integer):
        raise ResultValidationError(
            f"parts dtype {parts.dtype} is not integral{where}",
            task=context,
        )
    if size:
        lo, hi = int(parts.min()), int(parts.max())
        if lo < 0 or hi >= nparts:
            raise ResultValidationError(
                f"part id out of range [{lo}, {hi}] for nparts="
                f"{nparts}{where}", task=context,
            )
    return parts


def validate_partition(
    matrix,
    parts,
    nparts: int,
    *,
    volume: int | None = None,
    max_part: int | None = None,
    feasible: bool | None = None,
    ceiling: int | None = None,
    context: str = "",
) -> np.ndarray:
    """Full boundary check of a worker-returned partitioning.

    Beyond :func:`validate_parts`, every *reported* metric handed back
    alongside the parts must agree with a recomputation from the parts
    themselves: ``volume`` against eqn (3), ``max_part`` against the
    bincount, and ``feasible`` against the eqn-(1) ``ceiling``.  Only
    the metrics actually supplied are checked, so callers pay exactly
    for what they assert.
    """
    from repro.core.volume import communication_volume, part_sizes

    parts = validate_parts(parts, matrix.nnz, nparts, context=context)
    where = f" ({context})" if context else ""
    if volume is not None:
        actual = communication_volume(matrix, parts)
        if int(volume) != actual:
            raise ResultValidationError(
                f"reported volume {volume} != recomputed {actual}: "
                f"result corrupted in transit{where}", task=context,
            )
    if max_part is not None or feasible is not None:
        biggest = int(part_sizes(matrix, parts, nparts).max(initial=0))
        if max_part is not None and int(max_part) != biggest:
            raise ResultValidationError(
                f"reported max_part {max_part} != recomputed "
                f"{biggest}{where}", task=context,
            )
        if feasible is not None and ceiling is not None:
            if bool(feasible) != (biggest <= ceiling):
                raise ResultValidationError(
                    f"reported feasible={feasible} contradicts max_part "
                    f"{biggest} vs eqn-(1) ceiling {ceiling}{where}",
                    task=context,
                )
    return parts


def validate_run_record(spec, record) -> None:
    """Boundary check of a sweep worker's :class:`RunRecord`.

    The record does not carry the parts array (by design — sweeps stream
    thousands of records), so the invariant here is *spec-echo
    consistency*: the record must describe exactly the work item it was
    computed for, with sane metric types.  Crossed wires between chunk
    payloads and results — the sweep-level analogue of a corrupted
    segment — cannot survive this.
    """
    label = f"{spec.instance}/{spec.label}/seed{spec.seed}"
    checks = (
        ("instance", record.instance, spec.instance),
        ("seed", record.seed, spec.seed),
        ("nparts", record.nparts, spec.nparts),
        ("method", record.method, spec.label),
    )
    for name, got, expected in checks:
        if got != expected:
            raise ResultValidationError(
                f"record {name}={got!r} does not echo spec "
                f"{expected!r}: results crossed wires", task=label,
            )
    if not isinstance(record.volume, (int, np.integer)) or record.volume < 0:
        raise ResultValidationError(
            f"record volume {record.volume!r} is not a non-negative "
            f"integer", task=label,
        )
    if record.max_part is not None and record.max_part <= 0:
        raise ResultValidationError(
            f"record max_part {record.max_part!r} is not positive",
            task=label,
        )
