"""Recursive bisection into ``p`` parts, serially or on a process pool.

The paper's ``p = 64`` experiments (Fig. 6b, Table II) use the
medium-grain method "in a recursive bisection scheme": the nonzeros are
split in two, each half is split again, and so on, until ``p`` parts
exist.  The load budget is handed down Mondriaan-style: with the global
ceiling ``L = max_allowed_part_size(N, p, eps)``, a subproblem that will
eventually hold ``q`` parts may keep at most ``L * q`` nonzeros, so a
bisection into ``q0 + q1`` parts runs with the *asymmetric* per-side
ceilings ``(L * q0, L * q1)``.  Satisfying every local constraint
guarantees the global eqn-(1) constraint.

Each bisection is a full method run (any of the paper's six variants,
including iterative refinement per step); sub-splits see the submatrix of
their nonzeros with the original shape, so empty rows/columns are handled
by the hypergraph models naturally.

Seed discipline
---------------
After the first split, the two subproblems are completely independent, so
the recursion tree is a natural source of parallelism — *if* randomness
does not couple the nodes.  Every node therefore draws its RNG from a
:class:`~numpy.random.SeedSequence` keyed on the node's *position* in the
tree (:func:`~repro.utils.rng.child_sequence` of the run's root sequence
at the node's left/right path), never from a stream shared along the
traversal.  Results are then a pure function of ``(matrix, arguments,
seed)`` — identical whether the tree is walked depth-first in one process
or scheduled across a worker pool in any order.

Parallel execution
------------------
``partition(..., jobs=N)`` (or :attr:`PartitionerConfig.jobs`) runs the
tree on the shared execution layer (:mod:`repro.utils.executor`),
mirroring the sweep engine's knob (``jobs=1`` serial, ``0``/``None`` =
CPU count).  The scheduler widens the frontier with rounds of concurrent
bisections until there are at least ``jobs`` independent subtrees, then
hands each worker a whole subtree to solve serially — within a worker
the usual per-object caches (``FMPassState`` per hypergraph,
``SpMVState`` per matrix) are reused across that subtree's bisections
exactly as in a serial run.  How a worker *receives* its subproblem is
the ``exec_backend`` knob: threads share the matrix in-process (the
numba kernels run ``nogil``), the default process backend publishes the
matrix once to a shared-memory store and ships only index ranges, and
the legacy ``"process-pickle"`` backend pickles whole submatrices.  The
partition returned is **bit-identical** for every ``jobs`` value and
every backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.core.methods import bipartition
from repro.core.validate import validate_parts
from repro.core.volume import (
    communication_volume,
    imbalance,
    max_part_size,
)
from repro.errors import PartitioningError, ResultValidationError
from repro.obs import trace as _trace
from repro.partitioner.config import PartitionerConfig, get_config
from repro.sparse.matrix import SparseMatrix
from repro.utils import faults
from repro.utils.balance import max_allowed_part_size
from repro.utils.deadline import Deadline, Degraded
from repro.utils.executor import (
    MatrixExecutor,
    RetryPolicy,
    resolve_exec_backend,
)
from repro.utils.parallel import resolve_jobs
from repro.utils.rng import (
    SeedLike,
    as_generator,
    as_seed_sequence,
    child_sequence,
)
from repro.utils.timing import Timer
from repro.utils.validation import check_eps, check_pos_int

__all__ = ["PartitionResult", "partition"]


@dataclass
class PartitionResult:
    """Outcome of a ``p``-way partitioning.

    Attributes
    ----------
    parts:
        Part id in ``[0, nparts)`` per canonical nonzero.
    nparts:
        Requested number of parts.
    volume:
        Communication volume of the p-way partitioning (eqn (3)).
    max_part:
        ``max_k |A_k|``.
    feasible:
        Whether ``max_part <= max_allowed_part_size(N, p, eps)``.
    imbalance:
        ``max_k |A_k| / (N/p) - 1``.
    seconds:
        Total wall-clock time over all bisections.
    method:
        The method label used for every bisection.
    bisection_volumes:
        The per-bisection volumes in recursion (depth-first pre-)order
        (diagnostics; their sum generally differs from ``volume``, which
        is measured on the final p-way partitioning of the full matrix).
    failures:
        Structured failure briefs (``"TaskTimeout[...]@attempt1"``-style
        strings, see :meth:`repro.errors.ExecutionError.brief`) the
        hardened execution layer recorded on the way to this result —
        retries that eventually succeeded, watchdog kills, degraded
        serial completions.  Empty on an untroubled run.
    """

    parts: np.ndarray
    nparts: int
    volume: int
    max_part: int
    feasible: bool
    imbalance: float
    seconds: float
    method: str
    bisection_volumes: list[int] = field(default_factory=list)
    failures: tuple = ()


@dataclass(frozen=True)
class _Node:
    """One subproblem of the recursion tree.

    ``path`` identifies the node's position — ``()`` is the root, and each
    element descends to the left (``0``, lower part ids) or right (``1``)
    child.  The node's RNG is ``child_sequence(root, *path)``, so the
    stream depends on the position alone.  ``indices`` are canonical
    nonzero indices into the node's matrix (always sorted ascending, so a
    submatrix built from them aligns positionally).
    """

    path: tuple[int, ...]
    indices: np.ndarray
    first_part: int
    nparts: int

    def children(self, parts01: np.ndarray) -> tuple["_Node", "_Node"]:
        """Split this node by a 0/1 bisection of its nonzeros."""
        q0 = self.nparts // 2
        q1 = self.nparts - q0
        return (
            _Node(
                self.path + (0,), self.indices[parts01 == 0],
                self.first_part, q0,
            ),
            _Node(
                self.path + (1,), self.indices[parts01 == 1],
                self.first_part + q0, q1,
            ),
        )


def partition(
    matrix: SparseMatrix,
    nparts: int,
    method: str = "mediumgrain",
    eps: float = 0.03,
    refine: bool = False,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    jobs: int | None = None,
    exec_backend: str | None = None,
    algo: str | None = None,
    deadline: Deadline | None = None,
) -> PartitionResult:
    """Partition the nonzeros of ``matrix`` into ``nparts`` parts.

    Parameters mirror :func:`repro.core.methods.bipartition`; ``refine``
    applies Algorithm-2 iterative refinement inside every bisection step
    (or, under ``algo="kway"``, the generalized k-way iterate loop after
    the direct partitioning).  ``nparts`` may be any positive integer
    (not only powers of two): an uneven split hands ``floor(q/2)`` parts
    to one side and the rest to the other, with proportional ceilings.

    ``algo`` selects the p-way scheme (``None`` = the config's
    :attr:`~repro.partitioner.config.PartitionerConfig.algo`):
    ``"recursive"`` — the paper's recursive bisection, implemented here —
    or ``"kway"`` — the direct k-way partitioner of
    :mod:`repro.core.kway`, which optimizes the connectivity-(λ−1)
    volume in one shot and is delegated to after validation.

    ``jobs`` schedules independent subtrees of the recursion on a process
    pool (``1`` = serial, ``0`` = CPU count, ``None`` = the config's
    :attr:`~repro.partitioner.config.PartitionerConfig.jobs`).  The result
    is bit-identical for every ``jobs`` value: each bisection's randomness
    is keyed on its tree position, not on traversal order.  The direct
    k-way partitioner has no tree to schedule, so ``jobs`` and
    ``exec_backend`` are validated but do not apply there.

    ``exec_backend`` picks how those workers run and receive their
    submatrices (threads / shared-memory processes / pickled-payload
    processes; ``None`` = the config's
    :attr:`~repro.partitioner.config.PartitionerConfig.exec_backend`,
    whose ``"auto"`` default resolves per environment).  Also a pure
    speed knob — every backend returns the identical partition.

    ``deadline`` (a :class:`~repro.utils.deadline.Deadline` or the
    deterministic :class:`~repro.utils.deadline.SoftBudget`) makes the
    run *anytime*: the recursion checks it before each bisection and,
    once expired, finishes the remaining subtrees with an even
    contiguous fallback split instead of further method runs — every
    nonzero still gets a part in ``[0, nparts)`` and per-part sizes stay
    within one of each other, so the result passes validation, just at
    degraded quality.  The cut-short run reports a
    ``Degraded[recursive]`` brief in ``failures``; under
    ``algo="kway"`` the deadline is threaded into every engine loop
    instead (see :func:`repro.core.kway.partition_kway`).  With
    ``deadline=None`` nothing changes, bit for bit.
    """
    nparts = check_pos_int(nparts, "nparts")
    check_eps(eps)
    cfg = get_config(config)
    if algo is None:
        algo = cfg.algo
    if jobs is None:
        jobs = cfg.jobs
    jobs = resolve_jobs(jobs, error=PartitioningError)
    if exec_backend is None:
        exec_backend = cfg.exec_backend
    try:
        # Validate (and resolve "auto") up front, on every path — a typo
        # must fail loudly even when jobs=1 never reaches the pool, and
        # in this module's error family.
        exec_backend = resolve_exec_backend(exec_backend)
    except ValueError as exc:
        raise PartitioningError(str(exc)) from None
    if algo == "kway":
        from repro.core.kway import partition_kway

        return partition_kway(
            matrix, nparts, method=method, eps=eps, refine=refine,
            config=cfg, seed=seed, deadline=deadline,
        )
    if algo != "recursive":
        from repro.partitioner.config import ALGO_CHOICES

        raise PartitioningError(
            f"unknown partitioning algorithm {algo!r}; "
            f"expected one of {ALGO_CHOICES}"
        )
    root_seed = as_seed_sequence(seed)
    n = matrix.nnz
    if nparts > max(n, 1):
        raise PartitioningError(
            f"cannot split {n} nonzeros into {nparts} non-trivial parts"
        )

    parts = np.zeros(n, dtype=np.int64)
    ceiling = max_allowed_part_size(n, nparts, eps)
    volumes: dict[tuple[int, ...], int] = {}
    failures: tuple = ()
    skipped = 0
    policy = RetryPolicy.resolve(cfg.task_timeout, cfg.retries)
    timer = Timer()
    with timer, _trace.span(
        "partition", method=method, nparts=nparts, algo="recursive",
        jobs=jobs,
    ):
        if nparts > 1:
            root = _Node((), np.arange(n, dtype=np.int64), 0, nparts)
            job = _TreeJob(
                ceiling=ceiling, eps=eps, method=method, refine=refine,
                cfg=cfg, root_seed=root_seed,
                trace=_trace.current_context(),
            )
            # With fewer than 4 parts at most one bisection can ever be
            # in flight, so a pool would only add process overhead.
            if jobs >= 2 and nparts >= 4:
                failures, skipped = _solve_parallel(
                    matrix, root, job, jobs, exec_backend, parts, volumes,
                    policy, deadline,
                )
            else:
                skipped = _solve_serial(
                    matrix, root, job, parts, volumes, deadline
                )
    if skipped:
        failures = failures + (
            Degraded(
                "recursive", completed=len(volumes), skipped=skipped
            ).brief(),
        )

    biggest = max_part_size(matrix, parts, nparts)
    return PartitionResult(
        parts=parts,
        nparts=nparts,
        volume=communication_volume(matrix, parts),
        max_part=biggest,
        feasible=biggest <= ceiling,
        imbalance=imbalance(matrix, parts, nparts),
        seconds=timer.elapsed,
        method=method + ("+ir" if refine else ""),
        bisection_volumes=[volumes[p] for p in sorted(volumes)],
        failures=failures,
    )


@dataclass(frozen=True)
class _TreeJob:
    """The per-run constants every tree node shares (picklable, so one
    object describes the job to pool workers as well)."""

    ceiling: int
    eps: float
    method: str
    refine: bool
    cfg: PartitionerConfig
    root_seed: np.random.SeedSequence
    # Cross-process trace envelope (None when tracing is disabled) —
    # rides the job like the deadline does, never influences results.
    trace: object = None


def _bisect_node(
    matrix: SparseMatrix, node: _Node, job: _TreeJob
) -> tuple[np.ndarray, int]:
    """Run one bisection; returns the 0/1 parts (aligned with
    ``node.indices``) and its communication volume."""
    faults.fault_point("recursive.bisect")
    q0 = node.nparts // 2
    q1 = node.nparts - q0
    sub = (
        matrix
        if node.indices.size == matrix.nnz
        else matrix.select(node.indices)
    )
    cap0, cap1 = job.ceiling * q0, job.ceiling * q1
    if node.indices.size > cap0 + cap1:
        # An ancestor bisection could not satisfy its ceilings (e.g. a 1D
        # model facing an unsplittable dense line) and overloaded this
        # subproblem.  Proceed best-effort with proportionally relaxed
        # ceilings — the global constraint is already lost, which
        # ``partition`` reports via ``feasible=False``; aborting here
        # would be worse than finishing with the smallest achievable
        # imbalance (Mondriaan behaves the same way).
        relaxed = max_allowed_part_size(node.indices.size, node.nparts, job.eps)
        cap0 = max(cap0, relaxed * q0)
        cap1 = max(cap1, relaxed * q1)
    with _trace.span(
        "recursive.bisect",
        path="".join(map(str, node.path)) or "root",
        nnz=int(node.indices.size),
    ):
        result = bipartition(
            sub,
            method=job.method,
            refine=job.refine,
            config=job.cfg,
            seed=as_generator(child_sequence(job.root_seed, *node.path)),
            max_weights=(cap0, cap1),
        )
    return result.parts, result.volume


def _fallback_split(node: _Node, out: np.ndarray) -> None:
    """Assign ``node``'s nonzeros to its part range without bisecting.

    Contiguous even chunks: sizes differ by at most one, and since a
    subtree holding ``q`` parts has at most ``L * q`` nonzeros,
    ``ceil(n/q) <= L`` — the fallback respects the global eqn-(1)
    ceiling whenever the ancestors did.  Quality is sacrificed (the
    split ignores the matrix structure entirely); validity is not.
    """
    for offset, chunk in enumerate(
        np.array_split(node.indices, node.nparts)
    ):
        out[chunk] = node.first_part + offset


def _solve_serial(
    matrix: SparseMatrix,
    node: _Node,
    job: _TreeJob,
    out: np.ndarray,
    volumes: dict,
    deadline: Deadline | None = None,
) -> int:
    """Depth-first reference traversal; assigns parts ``node.first_part ..
    first_part + nparts - 1`` to the nonzeros in ``node.indices``.

    Returns the number of subtrees an expired ``deadline`` finished with
    the fallback split instead of bisections (0 on a normal run).
    """
    if node.nparts == 1:
        out[node.indices] = node.first_part
        return 0
    if deadline is not None and deadline.expired():
        _fallback_split(node, out)
        return 1
    parts01, volume = _bisect_node(matrix, node, job)
    volumes[node.path] = volume
    left, right = node.children(parts01)
    skipped = _solve_serial(matrix, left, job, out, volumes, deadline)
    skipped += _solve_serial(matrix, right, job, out, volumes, deadline)
    return skipped


def _bisect_task(sub: SparseMatrix, extra) -> tuple[np.ndarray, int]:
    """Executor task: one bisection of a delivered submatrix (the node
    arrives index-free; the worker addresses the submatrix positionally).
    """
    path, nparts, job = extra
    local = _Node(path, np.arange(sub.nnz, dtype=np.int64), 0, nparts)
    with _trace.activate(
        job.trace, "worker.bisect",
        path="".join(map(str, path)) or "root",
    ):
        return _bisect_node(sub, local, job)


def _subtree_task(sub: SparseMatrix, extra) -> tuple[np.ndarray, dict]:
    """Executor task: solve a whole subtree serially on a delivered
    submatrix.

    ``path`` stays absolute so every descendant derives the same seed
    stream it would in a single-process run; the returned parts are
    relative (``0 .. nparts - 1``), the caller re-offsets them.
    """
    path, nparts, job = extra
    local = _Node(path, np.arange(sub.nnz, dtype=np.int64), 0, nparts)
    out = np.zeros(sub.nnz, dtype=np.int64)
    volumes: dict = {}
    with _trace.activate(
        job.trace, "worker.subtree",
        path="".join(map(str, path)) or "root", nparts=nparts,
    ):
        _solve_serial(sub, local, job, out, volumes)
    return out, volumes


def _node_task(matrix: SparseMatrix, nd: _Node, job: _TreeJob):
    """The executor ``(indices, extra)`` item for one node.

    The root node (all nonzeros) ships ``None`` so no index array — and
    under the shared-memory backend no nonzero data at all — crosses the
    worker boundary.
    """
    indices = None if nd.indices.size == matrix.nnz else nd.indices
    return (indices, (nd.path, nd.nparts, job))


def _path_label(path: tuple[int, ...]) -> str:
    return "node:" + ("".join(map(str, path)) or "root")


def _node_submatrix(matrix: SparseMatrix, nd: _Node) -> SparseMatrix:
    return (
        matrix
        if nd.indices.size == matrix.nnz
        else matrix.select(nd.indices)
    )


def _check_bisect_result(matrix: SparseMatrix, nd: _Node, value) -> None:
    """Boundary validation of one worker-returned bisection.

    Structural invariants via :func:`validate_parts` plus eqn-(3) volume
    consistency: the reported volume must equal the volume recomputed in
    the driver from the parts the worker handed back.
    """
    label = _path_label(nd.path)
    try:
        parts01, volume = value
    except Exception:
        raise ResultValidationError(
            f"bisect task returned {type(value).__name__}, not "
            f"(parts, volume)", task=label,
        ) from None
    validate_parts(parts01, nd.indices.size, 2, context=label)
    actual = communication_volume(_node_submatrix(matrix, nd), parts01)
    if int(volume) != actual:
        raise ResultValidationError(
            f"reported bisection volume {volume} != recomputed {actual} "
            f"({label}): result corrupted in transit", task=label,
        )


def _check_subtree_result(matrix: SparseMatrix, nd: _Node, value) -> None:
    """Boundary validation of one worker-returned subtree solution.

    The relative parts must be a complete in-range assignment, and the
    subtree's *root* bisection — reconstructible from the parts alone,
    since part ranges are deterministic — must recompute to the volume
    the worker reported for it.
    """
    label = _path_label(nd.path)
    try:
        local, vols = value
    except Exception:
        raise ResultValidationError(
            f"subtree task returned {type(value).__name__}, not "
            f"(parts, volumes)", task=label,
        ) from None
    validate_parts(local, nd.indices.size, nd.nparts, context=label)
    q0 = nd.nparts // 2
    parts01 = (local >= q0).astype(np.int64)
    actual = communication_volume(_node_submatrix(matrix, nd), parts01)
    reported = vols.get(nd.path) if isinstance(vols, dict) else None
    if reported is None or int(reported) != actual:
        raise ResultValidationError(
            f"reported subtree root volume {reported} != recomputed "
            f"{actual} ({label}): result corrupted in transit", task=label,
        )


def _solve_parallel(
    matrix: SparseMatrix,
    root: _Node,
    job: _TreeJob,
    jobs: int,
    exec_backend: str,
    out: np.ndarray,
    volumes: dict,
    policy: RetryPolicy | None = None,
    deadline: Deadline | None = None,
) -> tuple[tuple, int]:
    """Scheduler for ``jobs >= 2``: frontier-widening rounds of concurrent
    bisections, then one serial subtree per worker.

    Because every node's randomness is position-keyed, the schedule has no
    influence on the result — this produces exactly the partition of
    :func:`_solve_serial` under every execution backend.  Returns the
    failure briefs the hardened executor accumulated (empty when nothing
    went wrong) and the number of subtrees an expired ``deadline``
    finished via the fallback split.
    """
    with MatrixExecutor(matrix, jobs, exec_backend, policy=policy) as ex:
        skipped = _schedule_tree(ex, root, job, jobs, out, volumes, deadline)
        return tuple(f.brief() for f in ex.failures), skipped


def _schedule_tree(
    ex: MatrixExecutor,
    root: _Node,
    job: _TreeJob,
    jobs: int,
    out: np.ndarray,
    volumes: dict,
    deadline: Deadline | None = None,
) -> int:
    """Widen the frontier until every worker has a subtree, then dispatch.

    The deadline is checked at round boundaries (between frontier rounds
    and before the subtree dispatch) — the driver-side counterpart of
    :func:`_solve_serial`'s per-node check.  Workers never see it: a
    dispatched subtree always completes, so worker results keep their
    deterministic ``(parts, volumes)`` contract.
    """
    matrix = ex.matrix
    frontier: list[_Node] = [root]
    while True:
        splittable = [nd for nd in frontier if nd.nparts > 1]
        if not splittable or len(splittable) >= jobs:
            break
        if deadline is not None and deadline.expired():
            break  # stop widening; the dispatch check below degrades
        # (A single bisection runs inline — the executor short-circuits
        # one-task maps — so the round-trip is skipped automatically.)
        results = ex.map(
            _bisect_task,
            [_node_task(matrix, nd, job) for nd in splittable],
            validate=lambda i, v, nodes=splittable: _check_bisect_result(
                matrix, nodes[i], v
            ),
        )
        results_iter = iter(results)
        widened: list[_Node] = []
        for nd in frontier:
            if nd.nparts == 1:
                widened.append(nd)
                continue
            parts01, volume = next(results_iter)
            volumes[nd.path] = volume
            widened.extend(nd.children(parts01))
        frontier = widened
    subtrees = [nd for nd in frontier if nd.nparts > 1]
    for nd in frontier:
        if nd.nparts == 1:
            out[nd.indices] = nd.first_part
    if subtrees:
        if deadline is not None and deadline.expired():
            for nd in subtrees:
                _fallback_split(nd, out)
            return len(subtrees)
        results = ex.map(
            _subtree_task,
            [_node_task(matrix, nd, job) for nd in subtrees],
            validate=lambda i, v: _check_subtree_result(
                matrix, subtrees[i], v
            ),
        )
        for nd, (local, vols) in zip(subtrees, results):
            out[nd.indices] = nd.first_part + local
            volumes.update(vols)
    return 0
