"""Recursive bisection into ``p`` parts.

The paper's ``p = 64`` experiments (Fig. 6b, Table II) use the
medium-grain method "in a recursive bisection scheme": the nonzeros are
split in two, each half is split again, and so on, until ``p`` parts
exist.  The load budget is handed down Mondriaan-style: with the global
ceiling ``L = max_allowed_part_size(N, p, eps)``, a subproblem that will
eventually hold ``q`` parts may keep at most ``L * q`` nonzeros, so a
bisection into ``q0 + q1`` parts runs with the *asymmetric* per-side
ceilings ``(L * q0, L * q1)``.  Satisfying every local constraint
guarantees the global eqn-(1) constraint.

Each bisection is a full method run (any of the paper's six variants,
including iterative refinement per step); sub-splits see the submatrix of
their nonzeros with the original shape, so empty rows/columns are handled
by the hypergraph models naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.core.methods import bipartition
from repro.core.volume import (
    communication_volume,
    imbalance,
    max_part_size,
)
from repro.errors import PartitioningError
from repro.partitioner.config import PartitionerConfig, get_config
from repro.sparse.matrix import SparseMatrix
from repro.utils.balance import max_allowed_part_size
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer
from repro.utils.validation import check_eps, check_pos_int

__all__ = ["PartitionResult", "partition"]


@dataclass
class PartitionResult:
    """Outcome of a ``p``-way partitioning.

    Attributes
    ----------
    parts:
        Part id in ``[0, nparts)`` per canonical nonzero.
    nparts:
        Requested number of parts.
    volume:
        Communication volume of the p-way partitioning (eqn (3)).
    max_part:
        ``max_k |A_k|``.
    feasible:
        Whether ``max_part <= max_allowed_part_size(N, p, eps)``.
    imbalance:
        ``max_k |A_k| / (N/p) - 1``.
    seconds:
        Total wall-clock time over all bisections.
    method:
        The method label used for every bisection.
    bisection_volumes:
        The per-bisection volumes in recursion order (diagnostics; their
        sum generally differs from ``volume``, which is measured on the
        final p-way partitioning of the full matrix).
    """

    parts: np.ndarray
    nparts: int
    volume: int
    max_part: int
    feasible: bool
    imbalance: float
    seconds: float
    method: str
    bisection_volumes: list[int] = field(default_factory=list)


def partition(
    matrix: SparseMatrix,
    nparts: int,
    method: str = "mediumgrain",
    eps: float = 0.03,
    refine: bool = False,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
) -> PartitionResult:
    """Partition the nonzeros of ``matrix`` into ``nparts`` parts by
    recursive bisection.

    Parameters mirror :func:`repro.core.methods.bipartition`; ``refine``
    applies Algorithm-2 iterative refinement inside every bisection step.
    ``nparts`` may be any positive integer (not only powers of two): an
    uneven split hands ``floor(q/2)`` parts to one side and the rest to
    the other, with proportional ceilings.
    """
    nparts = check_pos_int(nparts, "nparts")
    check_eps(eps)
    cfg = get_config(config)
    rng = as_generator(seed)
    n = matrix.nnz
    if nparts > max(n, 1):
        raise PartitioningError(
            f"cannot split {n} nonzeros into {nparts} non-trivial parts"
        )

    parts = np.zeros(n, dtype=np.int64)
    ceiling = max_allowed_part_size(n, nparts, eps)
    bisection_volumes: list[int] = []
    timer = Timer()
    with timer:
        if nparts > 1:
            _recurse(
                matrix,
                np.arange(n, dtype=np.int64),
                first_part=0,
                nparts=nparts,
                ceiling=ceiling,
                eps=eps,
                method=method,
                refine=refine,
                cfg=cfg,
                rng=rng,
                out=parts,
                volumes=bisection_volumes,
            )

    biggest = max_part_size(matrix, parts, nparts)
    return PartitionResult(
        parts=parts,
        nparts=nparts,
        volume=communication_volume(matrix, parts),
        max_part=biggest,
        feasible=biggest <= ceiling,
        imbalance=imbalance(matrix, parts, nparts),
        seconds=timer.elapsed,
        method=method + ("+ir" if refine else ""),
        bisection_volumes=bisection_volumes,
    )


def _recurse(
    matrix: SparseMatrix,
    indices: np.ndarray,
    first_part: int,
    nparts: int,
    ceiling: int,
    eps: float,
    method: str,
    refine: bool,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    out: np.ndarray,
    volumes: list[int],
) -> None:
    """Assign parts ``first_part .. first_part + nparts - 1`` to the
    nonzeros selected by ``indices`` (canonical indices into ``matrix``)."""
    if nparts == 1:
        out[indices] = first_part
        return
    q0 = nparts // 2
    q1 = nparts - q0
    sub = matrix.select(indices)
    cap0, cap1 = ceiling * q0, ceiling * q1
    if indices.size > cap0 + cap1:
        # An ancestor bisection could not satisfy its ceilings (e.g. a 1D
        # model facing an unsplittable dense line) and overloaded this
        # subproblem.  Proceed best-effort with proportionally relaxed
        # ceilings — the global constraint is already lost, which
        # ``partition`` reports via ``feasible=False``; aborting here
        # would be worse than finishing with the smallest achievable
        # imbalance (Mondriaan behaves the same way).
        relaxed = max_allowed_part_size(indices.size, nparts, eps)
        cap0 = max(cap0, relaxed * q0)
        cap1 = max(cap1, relaxed * q1)
    max_weights = (cap0, cap1)
    result = bipartition(
        sub,
        method=method,
        refine=refine,
        config=cfg,
        seed=rng,
        max_weights=max_weights,
    )
    volumes.append(result.volume)
    left = indices[result.parts == 0]
    right = indices[result.parts == 1]
    _recurse(
        matrix, left, first_part, q0, ceiling, eps, method, refine, cfg,
        rng, out, volumes,
    )
    _recurse(
        matrix, right, first_part + q0, q1, ceiling, eps, method, refine,
        cfg, rng, out, volumes,
    )
