"""Algorithm 2: iterative refinement of a bipartitioning.

Any bipartitioning ``(A0, A1)`` can be re-encoded as a medium-grain
instance: direction 0 puts the part-0 nonzeros in ``Ar`` and the part-1
nonzeros in ``Ac`` (direction 1 swaps them).  In the resulting composite
hypergraph the current bipartitioning is exactly representable — every row
group is pure part-0 and every column group pure part-1 — so one
single-level Kernighan–Lin/FM run can only keep or lower the communication
volume (the volume of the hypergraph partitioning *is* the volume of the
matrix partitioning, eqn (6)).

The procedure alternates directions: refine in the current direction until
the volume stops dropping, switch, and stop once *both* directions
stagnate (``V_k == V_{k-2}``, Algorithm 2 line 21).  The volume sequence is
monotonically non-increasing, which makes this a safe, cheap
post-processing step for *any* bipartitioning method — the LB+IR and FG+IR
columns of the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.medium_grain import build_medium_grain
from repro.core.split import split_from_bipartition, split_from_kway
from repro.core.volume import check_nonzero_parts, communication_volume
from repro.errors import PartitioningError
from repro.kernels import KernelBackend, resolve_backend
from repro.partitioner.config import PartitionerConfig, get_config
from repro.partitioner.fm import fm_refine, kway_refine
from repro.sparse.matrix import SparseMatrix
from repro.utils.balance import max_allowed_part_size
from repro.utils.deadline import Deadline, Degraded
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_eps

__all__ = [
    "iterative_refine",
    "RefinementTrace",
    "vcycle_refine_bipartition",
]


@dataclass
class RefinementTrace:
    """Diagnostics of one :func:`iterative_refine` call.

    Attributes
    ----------
    volumes:
        ``V_0, V_1, ...`` — the volume after each iteration (``V_0`` is the
        input volume).  Monotonically non-increasing.
    directions:
        The direction (0/1) used by each iteration (length
        ``len(volumes) - 1``).
    iterations:
        Number of refinement iterations executed.
    converged:
        True when the loop ended by the Algorithm-2 stopping rule rather
        than the ``max_iterations`` safety cap.
    degraded:
        A :class:`~repro.utils.deadline.Degraded` record when a deadline
        stopped the loop before either rule fired, else ``None``.
    """

    volumes: list[int] = field(default_factory=list)
    directions: list[int] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False
    degraded: Degraded | None = None

    @property
    def initial_volume(self) -> int:
        return self.volumes[0]

    @property
    def final_volume(self) -> int:
        return self.volumes[-1]


def iterative_refine(
    matrix: SparseMatrix,
    parts: np.ndarray,
    eps: float = 0.03,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    *,
    nparts: int | None = None,
    max_weights=None,
    max_iterations: int = 64,
    start_direction: int = 0,
    alternate: bool = True,
    backend: KernelBackend | None = None,
    initial_volume: int | None = None,
    deadline: Deadline | None = None,
) -> tuple[np.ndarray, RefinementTrace]:
    """Iteratively refine a partitioning (Algorithm 2, generalized).

    Parameters
    ----------
    matrix:
        The partitioned matrix.
    parts:
        Part id per canonical nonzero; not modified.
    eps:
        Load-imbalance fraction defining the per-part ceilings when
        ``max_weights`` is not given.
    config, seed:
        Partitioner preset (its FM settings drive the KL runs) and RNG.
    nparts:
        Number of parts.  ``None`` (default) or ``2`` runs the paper's
        Algorithm 2 on a bipartitioning, unchanged.  ``nparts > 2``
        drives the k-way generalization: each iteration re-encodes the
        best partitioning with a *majority* split
        (:func:`repro.core.split.split_from_kway` — no split can express
        an arbitrary k-way partitioning exactly), lifts the impure side
        by group majority, runs one k-way FM refinement
        (:func:`repro.partitioner.fm.kway_refine`), and keeps the result
        under a balance-first lexicographic rule: restored feasibility
        always wins, then strictly lower volume.  The traced best-so-far
        volume sequence is monotone non-increasing (up to one jump when
        feasibility is first restored); the direction alternation and
        the double-stagnation stopping rule carry over verbatim.
    max_weights:
        Explicit per-part nonzero-count ceilings: a ``(maxW0, maxW1)``
        pair for bipartitionings (recursive bisection hands down its
        budget here), a length-``nparts`` sequence for ``nparts > 2``.
    max_iterations:
        Safety cap; Algorithm 2 as published always terminates (monotone
        integer sequence), but each iteration costs an FM run, so runaway
        plateaus are cut off.
    start_direction:
        Which encoding to try first (0: ``Ar <- A0``, the paper's choice;
        for k parts: rows take their majority part first).
    alternate:
        The paper's policy switches the encoding direction whenever an
        iteration stagnates (default).  ``alternate=False`` keeps a single
        direction and stops at its first stagnation — the weaker variant
        the ablation benchmark compares against.
    backend:
        Pre-resolved kernel backend shared by all KL runs; defaults to
        ``config.kernel_backend``.
    initial_volume:
        The communication volume of ``parts``, when the caller already
        knows it (a multilevel run's connectivity-1 cut *is* the matrix
        volume by eqn (6), so e.g. the full iterative method hands it
        down instead of paying one redundant volume evaluation per
        iteration).  ``None`` computes it.
    deadline:
        Optional cooperative deadline, checked **between** iterations.
        Algorithm 2 keeps a valid partitioning at every boundary, so an
        expired deadline just ends the loop early with the incumbent and
        a ``trace.degraded`` record; each iteration's inner FM run also
        receives the deadline so a single oversized iteration cannot
        overshoot by more than one pass.

    Returns
    -------
    (parts, trace):
        The refined part vector (fresh array) and a
        :class:`RefinementTrace`.
    """
    k = 2 if nparts is None else int(nparts)
    if k < 1:
        raise PartitioningError(f"nparts must be positive, got {nparts}")
    parts = check_nonzero_parts(matrix, parts, k).copy()
    if k == 2 and parts.size and int(parts.max()) > 1:
        raise PartitioningError("iterative_refine expects a bipartitioning")
    cfg = get_config(config)
    rng = as_generator(seed)
    if start_direction not in (0, 1):
        raise PartitioningError(
            f"start_direction must be 0 or 1, got {start_direction}"
        )
    if k > 2:
        return _kway_iterative_refine(
            matrix, parts, k, eps, cfg, rng,
            max_weights=max_weights,
            max_iterations=max_iterations,
            start_direction=start_direction,
            alternate=alternate,
            backend=backend,
            initial_volume=initial_volume,
            deadline=deadline,
        )
    if k == 1:
        trace = RefinementTrace(converged=True)
        trace.volumes = [
            int(initial_volume)
            if initial_volume is not None
            else communication_volume(matrix, parts)
        ]
        return parts, trace
    if max_weights is None:
        check_eps(eps)
        ceiling = max_allowed_part_size(matrix.nnz, 2, eps)
        max_weights = (ceiling, ceiling)

    if backend is None:
        backend = resolve_backend(cfg.kernel_backend)
    trace = RefinementTrace()
    if initial_volume is None:
        initial_volume = communication_volume(matrix, parts)
    volumes = [int(initial_volume)]
    direction = start_direction
    k = 1
    while k <= max_iterations:
        if deadline is not None and deadline.expired():
            trace.degraded = Degraded(
                "iterate", completed=k - 1,
                skipped=max_iterations - (k - 1),
            )
            break
        split = split_from_bipartition(matrix, parts, direction)
        instance = build_medium_grain(split)
        vparts = instance.vertex_parts_from_nonzero(parts)
        result = fm_refine(
            instance.hypergraph, vparts, max_weights, cfg, rng,
            backend=backend, deadline=deadline,
        )
        parts = instance.nonzero_parts(result.parts)
        vk = communication_volume(matrix, parts)
        volumes.append(vk)
        trace.directions.append(direction)
        if vk == volumes[k - 1]:
            if not alternate:
                trace.converged = True
                k += 1
                break
            direction = 1 - direction
        if k > 1 and vk == volumes[k - 2]:
            trace.converged = True
            k += 1
            break
        k += 1

    trace.volumes = volumes
    trace.iterations = len(trace.directions)
    return parts, trace


def _kway_iterative_refine(
    matrix: SparseMatrix,
    parts: np.ndarray,
    nparts: int,
    eps: float,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    *,
    max_weights,
    max_iterations: int,
    start_direction: int,
    alternate: bool,
    backend: KernelBackend | None,
    initial_volume: int | None,
    deadline: Deadline | None = None,
) -> tuple[np.ndarray, RefinementTrace]:
    """The ``nparts > 2`` body of :func:`iterative_refine` (keep-best
    alternation over majority re-encodings; see its docstring)."""
    if max_weights is None:
        check_eps(eps)
        ceiling = max_allowed_part_size(matrix.nnz, nparts, eps)
        ceilings = np.full(nparts, ceiling, dtype=np.int64)
    else:
        ceilings = np.ascontiguousarray(max_weights, dtype=np.int64)
        if ceilings.shape != (nparts,):
            raise PartitioningError(
                f"max_weights must have length {nparts}, "
                f"got shape {ceilings.shape}"
            )
    if backend is None:
        backend = resolve_backend(cfg.kernel_backend)
    trace = RefinementTrace()
    if initial_volume is None:
        initial_volume = communication_volume(matrix, parts)

    def _feasible(p: np.ndarray) -> bool:
        return bool(
            (np.bincount(p, minlength=nparts) <= ceilings).all()
        )

    volumes = [int(initial_volume)]
    best = parts
    best_feasible = _feasible(parts)
    direction = start_direction
    k = 1
    while k <= max_iterations:
        if deadline is not None and deadline.expired():
            trace.degraded = Degraded(
                "iterate", completed=k - 1,
                skipped=max_iterations - (k - 1),
            )
            break
        split = split_from_kway(matrix, best, direction, nparts=nparts)
        instance = build_medium_grain(split)
        vparts = instance.vertex_parts_majority(best, nparts)
        result = kway_refine(
            instance.hypergraph, vparts, nparts, ceilings, cfg, rng,
            backend=backend, deadline=deadline,
        )
        cand = instance.nonzero_parts(result.parts)
        vol = communication_volume(matrix, cand)
        # The majority lift may not reproduce ``best`` exactly, so an
        # iteration can regress — in volume OR in balance (an infeasible
        # encoding the FM pass failed to rebalance comes back with its
        # low volume intact).  Keep-best is therefore *lexicographic*,
        # balance first: a feasible candidate always replaces an
        # infeasible best (even at higher volume — restoring eqn (1) is
        # worth volume, the same priority the FM pass itself applies),
        # and within equal feasibility only a strictly lower volume
        # wins.  The traced sequence is monotone non-increasing except
        # for at most one jump, when feasibility is first restored.
        cand_feasible = _feasible(cand)
        if (cand_feasible, -vol) > (best_feasible, -volumes[k - 1]):
            best = cand
            best_feasible = cand_feasible
            vk = vol
        else:
            vk = volumes[k - 1]
        volumes.append(vk)
        trace.directions.append(direction)
        if vk == volumes[k - 1]:
            if not alternate:
                trace.converged = True
                k += 1
                break
            direction = 1 - direction
        if k > 1 and vk == volumes[k - 2]:
            trace.converged = True
            k += 1
            break
        k += 1

    trace.volumes = volumes
    trace.iterations = len(trace.directions)
    return best, trace


def vcycle_refine_bipartition(
    matrix: SparseMatrix,
    parts: np.ndarray,
    eps: float = 0.03,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    *,
    max_weights: tuple[int, int] | None = None,
    max_cycles: int = 3,
) -> tuple[np.ndarray, list[int]]:
    """hMetis-style V-cycle post-processing of a matrix bipartitioning.

    The comparator the paper discusses against Algorithm 2 (Section
    III-C): run restricted-coarsening V-cycles on the *fine-grain*
    hypergraph of ``matrix`` starting from the given nonzero
    partitioning.  Monotonically non-increasing like Algorithm 2, but
    pays coarsening time each cycle and does not exploit the
    medium-grain re-encoding freedom.

    Returns the refined nonzero part vector and the per-cycle volume
    list (index 0 = input volume).
    """
    from repro.hypergraph.models import fine_grain_model
    from repro.partitioner.vcycle import vcycle_refine

    parts = check_nonzero_parts(matrix, parts, 2).copy()
    cfg = get_config(config)
    if max_weights is None:
        check_eps(eps)
        ceiling = max_allowed_part_size(matrix.nnz, 2, eps)
        max_weights = (ceiling, ceiling)
    model = fine_grain_model(matrix)
    result = vcycle_refine(
        model.hypergraph,
        parts,  # fine-grain vertices ARE the nonzeros
        max_weights,
        cfg,
        seed,
        max_cycles=max_cycles,
    )
    return model.nonzero_parts(result.parts), result.cuts
