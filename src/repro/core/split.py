"""Algorithm 1: the initial split ``A = Ar + Ac``.

Every nonzero is assigned to either a *row group* (``Ar`` — it will stick
with the other ``Ar`` nonzeros of its row) or a *column group* (``Ac``).
The split determines which 2D partitionings the medium-grain hypergraph can
express, so the paper drives it with a per-line score — the number of
nonzeros, ``sr(i) = nzr(i)`` and ``sc(j) = nzc(j)`` — and lets the smaller
line win each nonzero: small rows/columns are the ones a good partitioning
keeps uncut.

Rules reproduced from Algorithm 1 and the surrounding text:

1. singleton columns (``nzc(j) == 1``) send their nonzero to ``Ar``;
2. singleton rows send theirs to ``Ac``;
3. otherwise ``sr(i) < sc(j)`` → ``Ar``;  ``sr(i) > sc(j)`` → ``Ac``;
4. ties go to the globally preferred side: ``Ar`` if ``m > n``, ``C`` if
   ``m < n``, a random side for square matrices;
5. post-pass: a row with all nonzeros in ``Ar`` except exactly one pulls
   that nonzero in (the row then cannot cause volume); dually, a column
   with all nonzeros in ``Ac`` except one pulls that one into ``Ac``.

The split is represented by a boolean mask over the canonical nonzeros
(:class:`Split`), never by materialized matrices — ``Ar``/``Ac`` views are
available for tests and the B-matrix demo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SplitError
from repro.sparse.matrix import SparseMatrix
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "Split",
    "initial_split",
    "split_from_bipartition",
    "split_from_kway",
    "majority_parts",
]


@dataclass(frozen=True)
class Split:
    """A disjoint split ``A = Ar + Ac`` of the nonzeros of ``matrix``.

    Attributes
    ----------
    matrix:
        The source matrix.
    in_row_group:
        Boolean per canonical nonzero: ``True`` → the nonzero belongs to
        ``Ar`` (grouped with its row), ``False`` → ``Ac`` (grouped with its
        column).
    """

    matrix: SparseMatrix
    in_row_group: np.ndarray

    def __post_init__(self) -> None:
        mask = np.asarray(self.in_row_group)
        if mask.dtype != bool or mask.shape != (self.matrix.nnz,):
            raise SplitError(
                "in_row_group must be a boolean mask over the canonical "
                f"nonzeros (expected shape ({self.matrix.nnz},) bool, got "
                f"{mask.shape} {mask.dtype})"
            )
        object.__setattr__(self, "in_row_group", mask)

    # ------------------------------------------------------------------ #
    @property
    def ar_mask(self) -> np.ndarray:
        """Mask of nonzeros in ``Ar``."""
        return self.in_row_group

    @property
    def ac_mask(self) -> np.ndarray:
        """Mask of nonzeros in ``Ac``."""
        return ~self.in_row_group

    def ar_matrix(self) -> SparseMatrix:
        """Materialize ``Ar`` (same shape as ``A``)."""
        return self.matrix.select(self.ar_mask)

    def ac_matrix(self) -> SparseMatrix:
        """Materialize ``Ac`` (same shape as ``A``)."""
        return self.matrix.select(self.ac_mask)

    def row_group_sizes(self) -> np.ndarray:
        """Nonzeros of ``Ar`` per row (the row-group vertex weights)."""
        return np.bincount(
            self.matrix.rows[self.ar_mask], minlength=self.matrix.nrows
        ).astype(np.int64)

    def col_group_sizes(self) -> np.ndarray:
        """Nonzeros of ``Ac`` per column (the column-group vertex weights)."""
        return np.bincount(
            self.matrix.cols[self.ac_mask], minlength=self.matrix.ncols
        ).astype(np.int64)


def initial_split(
    matrix: SparseMatrix,
    seed: SeedLike = None,
    *,
    score: str = "nnz",
    tie_side: str | None = None,
    post_pass: bool = True,
) -> Split:
    """Algorithm 1 (plus the single-nonzero post-pass).

    Parameters
    ----------
    matrix:
        Matrix to split.
    seed:
        Used only to pick the globally preferred tie side for square
        matrices.
    score:
        Line score; ``"nnz"`` is the paper's choice.  ``"uniform"`` (all
        lines equal — every nonzero is a tie) and ``"sqrt_nnz"`` are
        provided for the ablation benchmark of the paper's "different
        initial split algorithm" discussion (Section V).
    tie_side:
        Force the tie side to ``"r"`` or ``"c"`` (overrides the
        shape/random rule); used by tests and ablations.
    post_pass:
        Apply rule 5 (default true, as in the paper).

    Returns
    -------
    Split
    """
    rows, cols = matrix.rows, matrix.cols
    m, n = matrix.shape
    nzr = matrix.nnz_per_row()
    nzc = matrix.nnz_per_col()

    if score == "nnz":
        sr_line = nzr.astype(np.float64)
        sc_line = nzc.astype(np.float64)
    elif score == "sqrt_nnz":
        sr_line = np.sqrt(nzr.astype(np.float64))
        sc_line = np.sqrt(nzc.astype(np.float64))
    elif score == "uniform":
        sr_line = np.zeros(m)
        sc_line = np.zeros(n)
    else:
        raise SplitError(f"unknown score {score!r}")

    if tie_side is None:
        if m > n:
            tie_side = "r"
        elif m < n:
            tie_side = "c"
        else:
            tie_side = "r" if as_generator(seed).random() < 0.5 else "c"
    if tie_side not in ("r", "c"):
        raise SplitError(f"tie_side must be 'r' or 'c', got {tie_side!r}")
    tie_to_ar = tie_side == "r"

    sr = sr_line[rows]
    sc = sc_line[cols]
    # Rules 3/4: smaller score wins; ties to the preferred side.
    in_ar = np.where(sr < sc, True, np.where(sr > sc, False, tie_to_ar))
    # Rules 1/2 override: singleton columns -> Ar, then singleton rows -> Ac
    # (Algorithm 1 checks nzc(j) == 1 first, so a 1x1 intersection of a
    # singleton row and singleton column lands in Ar).
    singleton_row = nzr[rows] == 1
    singleton_col = nzc[cols] == 1
    in_ar = np.where(singleton_row, False, in_ar)
    in_ar = np.where(singleton_col, True, in_ar)
    in_ar = in_ar.astype(bool)

    if post_pass:
        in_ar = _single_nonzero_post_pass(matrix, in_ar)
    return Split(matrix, in_ar)


def _single_nonzero_post_pass(
    matrix: SparseMatrix, in_ar: np.ndarray
) -> np.ndarray:
    """Rule 5: absorb lone strays into otherwise-pure lines.

    First rows: any row with >= 2 nonzeros, exactly one of which sits in
    ``Ac``, pulls it into ``Ar``.  Then columns on the updated state: any
    column with >= 2 nonzeros and exactly one in ``Ar`` pulls it into
    ``Ac``.  One sweep each, rows before columns, as in the paper.
    """
    rows, cols = matrix.rows, matrix.cols
    nzr = matrix.nnz_per_row()
    nzc = matrix.nnz_per_col()

    in_ar = in_ar.copy()
    ac_per_row = np.bincount(
        rows[~in_ar], minlength=matrix.nrows
    )
    fix_rows = (nzr >= 2) & (ac_per_row == 1)
    if fix_rows.any():
        move = fix_rows[rows] & ~in_ar
        in_ar[move] = True

    ar_per_col = np.bincount(cols[in_ar], minlength=matrix.ncols)
    fix_cols = (nzc >= 2) & (ar_per_col == 1)
    if fix_cols.any():
        move = fix_cols[cols] & in_ar
        in_ar[move] = False
    return in_ar


def split_from_bipartition(
    matrix: SparseMatrix,
    parts: np.ndarray,
    direction: int,
) -> Split:
    """Re-encode a bipartitioning as a split (Algorithm 2, lines 7–12).

    ``direction == 0`` places the part-0 nonzeros in ``Ar`` and part-1 in
    ``Ac``; ``direction == 1`` swaps the roles.  Every row group of the
    resulting split is then pure part-0 (direction 0) and every column
    group pure part-1, so the bipartitioning survives the round trip with
    identical volume and balance.
    """
    parts = np.asarray(parts)
    if parts.shape != (matrix.nnz,):
        raise SplitError(
            f"parts must have shape ({matrix.nnz},), got {parts.shape}"
        )
    parts = parts.astype(np.int64, copy=False)
    if parts.size and (parts.min() < 0 or parts.max() > 1):
        raise SplitError("split_from_bipartition expects a 0/1 part vector")
    if direction not in (0, 1):
        raise SplitError(f"direction must be 0 or 1, got {direction}")
    in_ar = parts == 0 if direction == 0 else parts == 1
    return Split(matrix, in_ar)


def majority_parts(
    index: np.ndarray, parts: np.ndarray, extent: int, nparts: int
) -> np.ndarray:
    """Majority part per group of ``index`` (ties to the lowest id).

    The shared majority-vote kernel of the k-way re-encoding machinery:
    :func:`split_from_kway` votes per row/column here, and
    :meth:`repro.core.medium_grain.MediumGrainInstance.
    vertex_parts_majority` votes per medium-grain group — one
    implementation so the tie discipline cannot silently diverge
    between the two lifts.
    """
    counts = np.bincount(
        index * np.int64(nparts) + parts, minlength=extent * nparts
    ).reshape(extent, nparts)
    return counts.argmax(axis=1).astype(np.int64)


def split_from_kway(
    matrix: SparseMatrix,
    parts: np.ndarray,
    direction: int,
    nparts: int | None = None,
) -> Split:
    """Re-encode a k-way partitioning as a split (majority rule).

    The k-way generalization of :func:`split_from_bipartition`.  For two
    parts every bipartitioning is exactly expressible under the re-
    encoded split; for ``k > 2`` no split can make an arbitrary k-way
    partitioning constant on all groups (a row and a column may each see
    three parts), so the re-encoding is *majority-driven* instead:

    * ``direction == 0`` — every row takes its majority part (ties to
      the lowest id); a nonzero joins ``Ar`` iff it matches its row's
      majority.  Row groups are then pure by construction; column groups
      collect the strays.
    * ``direction == 1`` — dually: a nonzero joins ``Ac`` iff it matches
      its column's majority, making the column groups pure.

    The k-way iterate loop (:func:`repro.core.refine.iterative_refine`
    with ``nparts > 2``) alternates the two directions and lifts the
    impure side by group majority, keeping the best result — monotone by
    best-keeping where Algorithm 2 is monotone by exact expressibility.
    """
    parts = np.asarray(parts)
    if parts.shape != (matrix.nnz,):
        raise SplitError(
            f"parts must have shape ({matrix.nnz},), got {parts.shape}"
        )
    parts = parts.astype(np.int64, copy=False)
    if parts.size and parts.min() < 0:
        raise SplitError("negative part id in k-way partitioning")
    if direction not in (0, 1):
        raise SplitError(f"direction must be 0 or 1, got {direction}")
    k = int(nparts) if nparts is not None else (
        int(parts.max()) + 1 if parts.size else 1
    )
    if parts.size and int(parts.max()) >= k:
        raise SplitError(
            f"part id {int(parts.max())} out of range for nparts={k}"
        )
    m, n = matrix.shape
    if direction == 0:
        majority = majority_parts(matrix.rows, parts, m, k)
        in_ar = parts == majority[matrix.rows]
    else:
        majority = majority_parts(matrix.cols, parts, n, k)
        in_ar = parts != majority[matrix.cols]
    return Split(matrix, in_ar)
