"""The paper's contribution: the medium-grain method and its surroundings.

Modules:

* :mod:`repro.core.volume` — communication volume / load-balance metrics
  (paper eqns (1)–(3));
* :mod:`repro.core.split` — Algorithm 1, the initial split ``A = Ar + Ac``;
* :mod:`repro.core.medium_grain` — the composite matrix ``B`` (eqn (4)), the
  medium-grain hypergraph, and the partition mapping (eqn (5));
* :mod:`repro.core.refine` — Algorithm 2, iterative refinement;
* :mod:`repro.core.methods` — the six experiment methods (LB/FG/MG ± IR)
  behind one `bipartition` entry point;
* :mod:`repro.core.recursive` — recursive bisection into ``p`` parts.
"""

from repro.core.volume import (
    communication_volume,
    imbalance,
    max_part_size,
    part_sizes,
    row_col_lambdas,
    volume_breakdown,
)
from repro.core.split import Split, initial_split, split_from_bipartition
from repro.core.medium_grain import (
    MediumGrainInstance,
    assemble_b_matrix,
    build_medium_grain,
)
from repro.core.refine import (
    RefinementTrace,
    iterative_refine,
    vcycle_refine_bipartition,
)
from repro.core.iterate import (
    FullIterativeResult,
    full_iterative_bipartition,
)
from repro.core.exact import ExactResult, exact_bipartition
from repro.core.sbd import ascii_spy, sbd_order
from repro.core.methods import (
    METHOD_NAMES,
    BipartitionResult,
    bipartition,
)
from repro.core.recursive import PartitionResult, partition

__all__ = [
    "communication_volume",
    "row_col_lambdas",
    "volume_breakdown",
    "part_sizes",
    "max_part_size",
    "imbalance",
    "Split",
    "initial_split",
    "split_from_bipartition",
    "MediumGrainInstance",
    "build_medium_grain",
    "assemble_b_matrix",
    "iterative_refine",
    "RefinementTrace",
    "full_iterative_bipartition",
    "FullIterativeResult",
    "vcycle_refine_bipartition",
    "exact_bipartition",
    "ExactResult",
    "sbd_order",
    "ascii_spy",
    "bipartition",
    "BipartitionResult",
    "METHOD_NAMES",
    "partition",
    "PartitionResult",
]
