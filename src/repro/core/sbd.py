"""Separated block-diagonal (SBD) reordering and ASCII spy plots.

Mondriaan's companion visualization (Vastenhouw & Bisseling, SIAM Rev.
2005 — the paper's ref. [12]): after partitioning, permute rows and
columns so each part's private rows/columns form a diagonal block and the
*cut* rows/columns — exactly the ones that cause communication — gather in
separator cross-bars between the blocks.  The same ordering underlies
cache-oblivious SpMV; here it also renders the paper's Fig. 2/3 matrix
pictures in plain text.

For ``p = 2^k`` partitionings produced by this package's recursive
bisection (contiguous part-id ranges per subtree), :func:`sbd_order`
recurses along the bisection tree, producing the full nested SBD form.
"""

from __future__ import annotations

import numpy as np

from repro.core.volume import check_nonzero_parts
from repro.errors import PartitioningError
from repro.sparse.matrix import SparseMatrix
from repro.utils.validation import check_pos_int

__all__ = ["sbd_order", "ascii_spy"]


def sbd_order(
    matrix: SparseMatrix,
    parts: np.ndarray,
    nparts: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute the SBD row/column permutations for a partitioning.

    Returns ``(row_perm, col_perm)`` with ``row_perm[i]`` the *new*
    position of row ``i`` (suitable for
    :meth:`repro.sparse.matrix.SparseMatrix.permuted`).  Within each
    bisection level the order is: lines touching only the left half of
    the parts, then the cut lines (the separator), then right-only lines;
    empty lines sort to the end of their group.  The recursion follows
    contiguous part-id ranges, matching this package's recursive
    bisection labelling.
    """
    nparts = check_pos_int(nparts, "nparts")
    parts = check_nonzero_parts(matrix, parts, nparts)
    m, n = matrix.shape

    row_order = _axis_sbd(matrix.rows, parts, m, 0, nparts)
    col_order = _axis_sbd(matrix.cols, parts, n, 0, nparts)
    row_perm = np.empty(m, dtype=np.int64)
    row_perm[row_order] = np.arange(m)
    col_perm = np.empty(n, dtype=np.int64)
    col_perm[col_order] = np.arange(n)
    return row_perm, col_perm


def _axis_sbd(
    index: np.ndarray,
    parts: np.ndarray,
    extent: int,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Recursive SBD ordering of one axis; returns line ids in new order."""
    lines = np.arange(extent, dtype=np.int64)
    return np.asarray(
        _recurse_axis(index, parts, extent, lines, lo, hi), dtype=np.int64
    )


def _recurse_axis(
    index: np.ndarray,
    parts: np.ndarray,
    extent: int,
    lines: np.ndarray,
    lo: int,
    hi: int,
) -> list[int]:
    if lines.size == 0:
        return []
    if hi - lo <= 1:
        return lines.tolist()
    mid = lo + (hi - lo) // 2
    # Classify each line in `lines` by which halves of [lo, hi) touch it.
    relevant = (parts >= lo) & (parts < hi)
    is_left_nz = relevant & (parts < mid)
    is_right_nz = relevant & (parts >= mid)
    left_touch = np.zeros(extent, dtype=bool)
    right_touch = np.zeros(extent, dtype=bool)
    in_scope = np.zeros(extent, dtype=bool)
    in_scope[lines] = True
    sel = in_scope[index]
    left_touch[index[sel & is_left_nz]] = True
    right_touch[index[sel & is_right_nz]] = True

    lmask = left_touch[lines] & ~right_touch[lines]
    rmask = right_touch[lines] & ~left_touch[lines]
    cut = left_touch[lines] & right_touch[lines]
    empty = ~left_touch[lines] & ~right_touch[lines]
    out: list[int] = []
    out += _recurse_axis(index, parts, extent, lines[lmask], lo, mid)
    out += lines[cut].tolist()  # the separator
    out += _recurse_axis(index, parts, extent, lines[rmask], mid, hi)
    out += lines[empty].tolist()
    return out


def ascii_spy(
    matrix: SparseMatrix,
    parts: np.ndarray | None = None,
    nparts: int | None = None,
    width: int = 64,
    height: int = 32,
) -> str:
    """Render a matrix pattern (optionally coloured by part) as text.

    Each character cell aggregates a rectangle of the matrix; it shows
    ``.`` for empty, the part digit when all its nonzeros belong to one
    part, ``#`` for mixed cells, and ``*`` when no partitioning is given.
    Used by the examples to draw the paper's Fig. 2/3-style pictures.
    """
    m, n = matrix.shape
    width = min(width, n)
    height = min(height, m)
    if matrix.nnz == 0:
        return "\n".join("." * width for _ in range(height))
    if parts is not None:
        if nparts is None:
            nparts = int(np.asarray(parts).max(initial=0)) + 1
        parts = check_nonzero_parts(matrix, parts, nparts)
        if nparts > 10:
            raise PartitioningError(
                "ascii_spy renders at most 10 parts with digit glyphs"
            )
    ri = (matrix.rows * height) // m
    ci = (matrix.cols * width) // n
    cell = ri * width + ci
    grid = np.full(height * width, -1, dtype=np.int64)  # -1 empty
    if parts is None:
        grid[cell] = 10  # uniform marker
    else:
        # -1 empty; 0..9 single part; 11 mixed.
        for k in range(matrix.nnz):
            c = cell[k]
            p = int(parts[k])
            if grid[c] == -1:
                grid[c] = p
            elif grid[c] != p:
                grid[c] = 11
    glyphs = {**{i: str(i) for i in range(10)}, -1: ".", 10: "*", 11: "#"}
    lines = []
    for r in range(height):
        row = grid[r * width : (r + 1) * width]
        lines.append("".join(glyphs[int(x)] for x in row))
    return "\n".join(lines)
