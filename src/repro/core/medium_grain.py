"""The medium-grain composite hypergraph model (paper Section III-A).

Given a split ``A = Ar + Ac``, the paper forms the ``(m+n) x (m+n)``
composite matrix

.. code-block:: text

    B = [ I_n   (Ar)^T ]
        [ Ac    I_m    ]

whose diagonal entries are *dummies* (they count for the communication
volume but not for the load), and applies the 1D row-net model to ``B``:

* vertex ``j < n``  — *column group* ``j``: the nonzeros of column ``j``
  of ``Ac``; weight ``nzc_Ac(j)`` (the dummy is excluded, paper Fig. 1);
* vertex ``n + i``  — *row group* ``i``: the nonzeros of row ``i`` of
  ``Ar``; weight ``nzr_Ar(i)``;
* net ``j < n`` (row ``j`` of ``B``) — the *column net* of column ``j`` of
  ``A``: the column-group vertex ``j`` plus the row groups of all ``Ar``
  nonzeros in column ``j``;
* net ``n + i`` — the *row net* of row ``i``: the row-group vertex plus the
  column groups of all ``Ac`` nonzeros in row ``i``.

Pure-dummy columns/rows of ``B`` (empty groups / singleton nets) are
removed, exactly as the paper prescribes; with that convention the
connectivity-1 cut of the hypergraph **equals** the communication volume of
the induced nonzero partitioning of ``A`` (eqn (6)), and part weights equal
nonzero counts, so eqn (1) transfers verbatim.  Both facts are enforced by
property tests.

:func:`assemble_b_matrix` materializes ``B`` explicitly (dummies included)
for tests, documentation, and the Fig. 3 demo; the hypergraph builder never
forms it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.core.split import Split, majority_parts
from repro.hypergraph.hypergraph import Hypergraph
from repro.sparse.matrix import SparseMatrix

__all__ = ["MediumGrainInstance", "build_medium_grain", "assemble_b_matrix"]


@dataclass(frozen=True)
class MediumGrainInstance:
    """A medium-grain hypergraph plus its group/vertex bookkeeping.

    Vertices are numbered: active column groups first (in increasing column
    order), then active row groups (in increasing row order).

    Attributes
    ----------
    split:
        The underlying split ``A = Ar + Ac``.
    hypergraph:
        The composite row-net hypergraph of ``B`` with empty groups and
        singleton nets removed.
    col_group_vertex:
        Length-``n`` array: vertex id of column ``j``'s group, or ``-1``
        if column ``j`` has no ``Ac`` nonzeros.
    row_group_vertex:
        Length-``m`` array: vertex id of row ``i``'s group, or ``-1``.
    """

    split: Split
    hypergraph: Hypergraph
    col_group_vertex: np.ndarray
    row_group_vertex: np.ndarray

    @property
    def matrix(self) -> SparseMatrix:
        return self.split.matrix

    # ------------------------------------------------------------------ #
    def _nonzero_groups(self) -> np.ndarray:
        """Group-vertex id per canonical nonzero (``Ar`` entries map to
        their row group, ``Ac`` entries to their column group) — the
        shared index both lift directions are built on."""
        a = self.matrix
        ar = self.split.ar_mask
        group = np.empty(a.nnz, dtype=np.int64)
        group[ar] = self.row_group_vertex[a.rows[ar]]
        group[~ar] = self.col_group_vertex[a.cols[~ar]]
        return group

    def nonzero_parts(self, vertex_parts: np.ndarray) -> np.ndarray:
        """Map a vertex partitioning of ``B`` back to the nonzeros of ``A``
        (paper eqn (5)): an ``Ar`` nonzero follows its row group, an ``Ac``
        nonzero its column group."""
        vertex_parts = np.asarray(vertex_parts)
        if vertex_parts.shape != (self.hypergraph.nverts,):
            raise PartitioningError(
                f"vertex_parts must have shape ({self.hypergraph.nverts},), "
                f"got {vertex_parts.shape}"
            )
        vertex_parts = vertex_parts.astype(np.int64, copy=False)
        a = self.matrix
        ar = self.split.ar_mask
        out = np.empty(a.nnz, dtype=np.int64)
        out[ar] = vertex_parts[self.row_group_vertex[a.rows[ar]]]
        ac = ~ar
        out[ac] = vertex_parts[self.col_group_vertex[a.cols[ac]]]
        return out

    def vertex_parts_from_nonzero(self, parts: np.ndarray) -> np.ndarray:
        """Lift a nonzero partitioning that is *constant on every group* to
        a vertex partitioning of ``B`` (the inverse of
        :meth:`nonzero_parts`).

        Raises
        ------
        PartitioningError
            If some group contains nonzeros from different parts — such a
            partitioning is not expressible under this split.
        """
        parts = np.asarray(parts)
        a = self.matrix
        if parts.shape != (a.nnz,):
            raise PartitioningError(
                f"parts must have shape ({a.nnz},), got {parts.shape}"
            )
        parts = parts.astype(np.int64, copy=False)
        nv = self.hypergraph.nverts
        vparts = np.full(nv, -1, dtype=np.int64)
        group = self._nonzero_groups()
        # Fancy assignment keeps the last writer per group; constancy is
        # then verified in one vectorized comparison.
        vparts[group] = parts
        if not np.array_equal(vparts[group], parts):
            raise PartitioningError(
                "nonzero partitioning is not constant on the split's groups"
            )
        # Isolated-but-active vertices cannot exist (an active group holds
        # at least one nonzero, which wrote its part above); any remaining
        # -1 would be a construction bug.
        if nv and int(vparts.min()) < 0:
            raise PartitioningError(
                "internal error: some medium-grain vertex received no part"
            )
        return vparts

    def vertex_parts_majority(
        self, parts: np.ndarray, nparts: int
    ) -> np.ndarray:
        """Lift *any* nonzero partitioning to a vertex partitioning by
        per-group majority vote (ties to the lowest part id).

        The tolerant counterpart of :meth:`vertex_parts_from_nonzero`:
        groups whose nonzeros disagree take their most frequent part
        instead of raising.  Exact (identical to the strict lift) when
        the partitioning is constant on every group — the k-way iterate
        loop uses this to re-encode partitionings no split can express
        exactly (see :func:`repro.core.split.split_from_kway`).
        """
        parts = np.asarray(parts)
        a = self.matrix
        if parts.shape != (a.nnz,):
            raise PartitioningError(
                f"parts must have shape ({a.nnz},), got {parts.shape}"
            )
        parts = parts.astype(np.int64, copy=False)
        k = int(nparts)
        if parts.size and (parts.min() < 0 or parts.max() >= k):
            raise PartitioningError(
                f"part ids must lie in [0, {k})"
            )
        # Every active group holds at least one nonzero, so each group's
        # vote is over a non-empty set and the argmax (ties to the
        # lowest part id, same discipline as the split-side votes) is a
        # genuine majority.
        return majority_parts(
            self._nonzero_groups(), parts, self.hypergraph.nverts, k
        )


def build_medium_grain(split: Split) -> MediumGrainInstance:
    """Construct the composite hypergraph for a split (vectorized).

    The hypergraph has one vertex per *active* group (``<= m + n``; often
    far fewer — the paper credits this shrinkage for the medium-grain
    method's speed) and one net per row/column of ``A`` that retains at
    least two pins after dummy removal.
    """
    a = split.matrix
    m, n = a.shape
    ar = split.ar_mask
    ac = ~ar

    ac_per_col = split.col_group_sizes()
    ar_per_row = split.row_group_sizes()
    col_active = ac_per_col > 0
    row_active = ar_per_row > 0
    n_cg = int(col_active.sum())
    n_rg = int(row_active.sum())
    nverts = n_cg + n_rg

    col_group_vertex = np.full(n, -1, dtype=np.int64)
    col_group_vertex[col_active] = np.arange(n_cg, dtype=np.int64)
    row_group_vertex = np.full(m, -1, dtype=np.int64)
    row_group_vertex[row_active] = n_cg + np.arange(n_rg, dtype=np.int64)

    vwgt = np.concatenate(
        [ac_per_col[col_active], ar_per_row[row_active]]
    ).astype(np.int64)

    # ------------------------------------------------------------------ #
    # Pins.  Net ids: column nets are 0..n-1, row nets are n..n+m-1.
    # Column net j: [cg(j) if active] + [rg(i) for a_ij in Ar].
    # Row net  n+i: [rg(i) if active] + [cg(j) for a_ij in Ac].
    # ------------------------------------------------------------------ #
    rows_ar = a.rows[ar]
    cols_ar = a.cols[ar]
    rows_ac = a.rows[ac]
    cols_ac = a.cols[ac]

    net_ids = np.concatenate(
        [
            np.flatnonzero(col_active),            # cg diagonal pins
            cols_ar,                                # Ar pins in column nets
            n + np.flatnonzero(row_active),         # rg diagonal pins
            n + rows_ac,                            # Ac pins in row nets
        ]
    )
    pin_ids = np.concatenate(
        [
            col_group_vertex[col_active],
            row_group_vertex[rows_ar],
            row_group_vertex[row_active],
            col_group_vertex[cols_ac],
        ]
    )

    counts = np.bincount(net_ids, minlength=m + n)
    live = counts >= 2  # singleton nets are the pure-dummy rows of B
    keep = live[net_ids]
    net_ids = net_ids[keep]
    pin_ids = pin_ids[keep]
    live_counts = counts[live]
    xpins = np.zeros(live_counts.size + 1, dtype=np.int64)
    np.cumsum(live_counts, out=xpins[1:])
    order = np.argsort(net_ids, kind="stable")
    pins = pin_ids[order]

    h = Hypergraph(nverts, xpins, pins, vwgt=vwgt, validate=False)
    return MediumGrainInstance(
        split=split,
        hypergraph=h,
        col_group_vertex=col_group_vertex,
        row_group_vertex=row_group_vertex,
    )


def assemble_b_matrix(split: Split, *, drop_pure_dummies: bool = False) -> SparseMatrix:
    """Materialize the composite matrix ``B`` of eqn (4), dummies included.

    Layout: rows/columns ``0..n-1`` correspond to the columns of ``A``
    (column groups), rows/columns ``n..n+m-1`` to the rows of ``A`` (row
    groups).  Dummy diagonal entries carry value 1; the ``(Ar)^T`` and
    ``Ac`` blocks carry the original values of ``A``.

    Parameters
    ----------
    split:
        The split defining ``Ar`` and ``Ac``.
    drop_pure_dummies:
        When true, diagonal entries of rows/columns of ``B`` that would
        otherwise be empty (inactive groups with no incident nonzeros) are
        omitted — the reduced ``B`` the hypergraph builder works with.
    """
    a = split.matrix
    m, n = a.shape
    ar = split.ar_mask
    ac = ~ar

    # (Ar)^T block: entry (j, n + i) for each a_ij in Ar.
    art_rows = a.cols[ar]
    art_cols = n + a.rows[ar]
    art_vals = a.vals[ar]
    # Ac block: entry (n + i, j).
    ac_rows = n + a.rows[ac]
    ac_cols = a.cols[ac]
    ac_vals = a.vals[ac]

    diag = np.arange(m + n, dtype=np.int64)
    if drop_pure_dummies:
        col_active = split.col_group_sizes() > 0
        row_active = split.row_group_sizes() > 0
        # A diagonal dummy survives only if its *column* of B is non-empty
        # besides the dummy (the vertex/group exists) AND its *row* of B
        # has off-diagonal entries (the net is not a singleton) — the
        # matrix counterpart of removing empty groups and singleton nets.
        ar_per_col = np.bincount(a.cols[ar], minlength=n)
        ac_per_row = np.bincount(a.rows[ac], minlength=m)
        keep_col_diag = col_active & (ar_per_col > 0)
        keep_row_diag = row_active & (ac_per_row > 0)
        diag = np.concatenate(
            [
                np.flatnonzero(keep_col_diag),
                n + np.flatnonzero(keep_row_diag),
            ]
        )
    rows = np.concatenate([diag, art_rows, ac_rows])
    cols = np.concatenate([diag, art_cols, ac_cols])
    vals = np.concatenate([np.ones(diag.size), art_vals, ac_vals])
    return SparseMatrix((m + n, m + n), rows, cols, vals)
