"""The bipartitioning methods compared in the paper.

Six labelled methods appear in the experiments (Figs. 4–6, Tables I–II):

==========  ==========================================================
``LB``      *localbest* — run both 1D models (row-net and column-net)
            and keep the lower-volume result; Mondriaan's default up to
            version 3.11.
``FG``      fine-grain — the 2D state of the art prior to this paper.
``MG``      medium-grain — the paper's method: Algorithm-1 split,
            composite hypergraph, multilevel bipartitioning, eqn-(5)
            mapping.
``*+IR``    any of the above followed by Algorithm-2 iterative
            refinement.
==========  ==========================================================

The pure 1D models (``rownet``, ``colnet``) are also exposed — the paper
uses them in the Fig. 3 walk-through.

:func:`bipartition` is the single entry point; it measures wall-clock
partitioning time (the paper's second metric) and returns a
:class:`BipartitionResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.medium_grain import build_medium_grain
from repro.core.refine import RefinementTrace, iterative_refine
from repro.core.split import initial_split
from repro.core.volume import (
    communication_volume,
    imbalance,
    max_part_size,
)
from repro.errors import PartitioningError
from repro.hypergraph.models import (
    HypergraphModel,
    column_net_model,
    fine_grain_model,
    row_net_model,
)
from repro.partitioner.bipartition import bipartition_hypergraph
from repro.partitioner.config import (
    ALGO_CHOICES,
    PartitionerConfig,
    get_config,
)
from repro.sparse.matrix import SparseMatrix
from repro.utils.balance import max_allowed_part_size
from repro.utils.deadline import Deadline
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer
from repro.utils.validation import check_eps

__all__ = ["METHOD_NAMES", "ALGO_NAMES", "BipartitionResult", "bipartition"]

METHOD_NAMES = (
    "rownet",
    "colnet",
    "localbest",
    "finegrain",
    "mediumgrain",
)

#: The registered p-way partitioning algorithms every method above can
#: run under (see :func:`repro.core.recursive.partition`'s ``algo``):
#: ``"recursive"`` — recursive bisection, each split a full method run;
#: ``"kway"`` — the direct k-way partitioner (:mod:`repro.core.kway`)
#: optimizing the connectivity-(λ−1) volume in one shot.
ALGO_NAMES = ALGO_CHOICES


@dataclass
class BipartitionResult:
    """Outcome of one bipartitioning run.

    Attributes
    ----------
    parts:
        Part id (0/1) per canonical nonzero of the matrix.
    volume:
        Communication volume ``V`` (eqn (3)).
    method:
        Method name, with ``"+ir"`` appended when refinement ran.
    max_part:
        ``max(|A_0|, |A_1|)``.
    feasible:
        Whether the eqn-(1) constraint holds for the ceilings used.
    imbalance:
        Achieved ``max_k |A_k| / (N/2) - 1``.
    seconds:
        Wall-clock partitioning time, including the model build, the
        multilevel run, the mapping back, and (when enabled) iterative
        refinement — matching what the paper times.
    refinement:
        The Algorithm-2 trace when ``refine=True``, else ``None``.
    details:
        Free-form diagnostics (e.g. which 1D model localbest chose).
    """

    parts: np.ndarray
    volume: int
    method: str
    max_part: int
    feasible: bool
    imbalance: float
    seconds: float
    refinement: Optional[RefinementTrace] = None
    details: dict = field(default_factory=dict)


def bipartition(
    matrix: SparseMatrix,
    method: str = "mediumgrain",
    eps: float = 0.03,
    refine: bool = False,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    *,
    max_weights: tuple[int, int] | None = None,
    deadline: Deadline | None = None,
) -> BipartitionResult:
    """Bipartition a sparse matrix with one of the paper's methods.

    Parameters
    ----------
    matrix:
        Matrix to bipartition.
    method:
        One of :data:`METHOD_NAMES`.
    eps:
        Load-imbalance fraction (paper default 0.03).
    refine:
        Apply Algorithm-2 iterative refinement afterwards (the ``+IR``
        variants).
    config:
        Partitioner preset (``"mondriaan"`` or ``"patoh"``) or an explicit
        :class:`~repro.partitioner.config.PartitionerConfig`.
    seed:
        Seed or generator; a single seed fixes the entire run.
    max_weights:
        Optional per-side nonzero ceilings overriding ``eps`` (recursive
        bisection uses this).
    deadline:
        Optional anytime deadline for the ``refine=True`` iterate loop
        (:func:`repro.core.refine.iterative_refine` stops at its next
        iteration boundary and keeps the incumbent); the base
        multilevel run itself is not interrupted here.  ``None`` (the
        default) is byte-for-byte the undeadlined run.

    Returns
    -------
    BipartitionResult
    """
    if method not in METHOD_NAMES:
        raise PartitioningError(
            f"unknown method {method!r}; expected one of {METHOD_NAMES}"
        )
    cfg = get_config(config)
    rng = as_generator(seed)
    if max_weights is None:
        check_eps(eps)
        ceiling = max_allowed_part_size(matrix.nnz, 2, eps)
        max_weights = (ceiling, ceiling)

    details: dict = {}
    timer = Timer()
    with timer:
        if method == "localbest":
            parts = _run_localbest(matrix, eps, cfg, rng, max_weights, details)
        elif method == "mediumgrain":
            parts = _run_medium_grain(matrix, eps, cfg, rng, max_weights, details)
        else:
            model = _build_model(matrix, method)
            parts = _partition_model(model, eps, cfg, rng, max_weights)
        trace: Optional[RefinementTrace] = None
        if refine:
            parts, trace = iterative_refine(
                matrix,
                parts,
                eps,
                cfg,
                rng,
                max_weights=max_weights,
                deadline=deadline,
            )

    volume = communication_volume(matrix, parts)
    biggest = max_part_size(matrix, parts, 2)
    return BipartitionResult(
        parts=parts,
        volume=volume,
        method=method + ("+ir" if refine else ""),
        max_part=biggest,
        feasible=biggest <= max(max_weights)
        and _side_feasible(matrix, parts, max_weights),
        imbalance=imbalance(matrix, parts, 2),
        seconds=timer.elapsed,
        refinement=trace,
        details=details,
    )


def _side_feasible(
    matrix: SparseMatrix, parts: np.ndarray, max_weights: tuple[int, int]
) -> bool:
    n1 = int(parts.sum())
    n0 = matrix.nnz - n1
    return n0 <= max_weights[0] and n1 <= max_weights[1]


def _build_model(matrix: SparseMatrix, method: str) -> HypergraphModel:
    if method == "rownet":
        return row_net_model(matrix)
    if method == "colnet":
        return column_net_model(matrix)
    if method == "finegrain":
        return fine_grain_model(matrix)
    raise PartitioningError(f"no hypergraph model for method {method!r}")


def _partition_model(
    model: HypergraphModel,
    eps: float,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    max_weights: tuple[int, int],
) -> np.ndarray:
    result = bipartition_hypergraph(
        model.hypergraph, eps, cfg, rng, max_weights=max_weights
    )
    return model.nonzero_parts(result.parts)


def _run_localbest(
    matrix: SparseMatrix,
    eps: float,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    max_weights: tuple[int, int],
    details: dict,
) -> np.ndarray:
    """Row-net and column-net, keep the lower communication volume
    (ties: better balance, then row-net)."""
    best_parts: np.ndarray | None = None
    best_key: tuple | None = None
    for name in ("rownet", "colnet"):
        model = _build_model(matrix, name)
        parts = _partition_model(model, eps, cfg, rng, max_weights)
        key = (
            communication_volume(matrix, parts),
            max_part_size(matrix, parts, 2),
        )
        if best_key is None or key < best_key:
            best_parts, best_key = parts, key
            details["localbest_choice"] = name
            details["localbest_volume"] = key[0]
    assert best_parts is not None
    return best_parts


def _run_medium_grain(
    matrix: SparseMatrix,
    eps: float,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    max_weights: tuple[int, int],
    details: dict,
) -> np.ndarray:
    """Algorithm-1 split, composite hypergraph, multilevel bipartitioning,
    eqn-(5) mapping back to the nonzeros."""
    split = initial_split(matrix, rng)
    instance = build_medium_grain(split)
    details["mg_vertices"] = instance.hypergraph.nverts
    details["mg_nets"] = instance.hypergraph.nnets
    result = bipartition_hypergraph(
        instance.hypergraph, eps, cfg, rng, max_weights=max_weights
    )
    return instance.nonzero_parts(result.parts)
