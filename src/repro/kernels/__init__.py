"""Pluggable kernel backends for the pipeline's scalar hot loops.

The loops that dominate end-to-end runtime — the FM move loop,
greedy-matching candidate scoring, identical-net merging, and (since the
sweep-engine PR) the greedy vector-owner assignment of the SpMV side —
live here behind a small registry:

``"python"``
    The reference backend: the seed implementation relocated from
    ``partitioner/`` and tightened (no per-move closures, direct bucket
    linking, vectorized net merging).  Always available.
``"numba"``
    A JIT backend running the same loops on flat int64/float64 arrays.
    Detected automatically; when numba is not installed the registry
    falls back to ``"python"`` silently, so callers never need to guard.

Backends are *bit-compatible*: for the same hypergraph, configuration,
and seed they produce identical partitions, cuts, and matchings (pinned
by ``tests/kernels/test_equivalence.py``).  Select a backend with
``PartitionerConfig.kernel_backend`` (``"auto"`` / ``"python"`` /
``"numba"``) or the ``--backend`` CLI flag.

Alongside the backends, :class:`~repro.kernels.state.FMPassState` keeps
the per-hypergraph buffers (list mirrors, gain/bucket storage, pin-count
scratch) alive across refinement calls, so multilevel refinement,
V-cycles, and iterative medium-grain runs stop paying per-call
``tolist()`` conversions and ``net_ids`` rebuilds.
:class:`~repro.kernels.spmv.SpMVState` mirrors the same pattern on the
matrix side for repeated volume/SpMV evaluation, and
:mod:`repro.kernels.spmv` holds the shared flat-array group-by kernels
(connectivity lambdas, (line, part) incidence lists, per-(part, row)
partial sums) used by ``core.volume``, ``spmv.*``, and
``hypergraph.metrics``.
"""

from __future__ import annotations

import importlib.util

from repro.errors import PartitioningError
from repro.kernels.base import KernelBackend
from repro.kernels.kway import compute_kway_setup
from repro.kernels.python_backend import PythonBackend
from repro.kernels.spmv import SpMVState
from repro.kernels.state import FMPassState, compute_fm_setup

__all__ = [
    "KernelBackend",
    "FMPassState",
    "SpMVState",
    "compute_fm_setup",
    "compute_kway_setup",
    "available_backends",
    "numba_available",
    "get_backend",
    "resolve_backend",
    "BACKEND_CHOICES",
]

#: Valid values of ``PartitionerConfig.kernel_backend`` / ``--backend``.
BACKEND_CHOICES = ("auto", "python", "numba")

_BACKENDS: dict[str, KernelBackend] = {"python": PythonBackend()}

_NUMBA_SPEC_CHECKED: list[bool] = []  # memoized find_spec result


def numba_available() -> bool:
    """Whether the numba JIT compiler can be imported (checked lazily)."""
    if not _NUMBA_SPEC_CHECKED:
        _NUMBA_SPEC_CHECKED.append(
            importlib.util.find_spec("numba") is not None
        )
    return _NUMBA_SPEC_CHECKED[0]


def _load_numba() -> KernelBackend | None:
    """Import and register the numba backend, or ``None`` if unavailable."""
    backend = _BACKENDS.get("numba")
    if backend is not None:
        return backend
    if not numba_available():
        return None
    try:
        from repro.kernels.numba_backend import NumbaBackend
    except Exception:  # pragma: no cover - numba present but broken
        return None
    backend = NumbaBackend()
    _BACKENDS["numba"] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of the backends usable in this environment."""
    names = ["python"]
    if numba_available():
        names.append("numba")
    return tuple(names)


def get_backend(name: str) -> KernelBackend:
    """Exact lookup by backend name; raises when the backend is missing.

    Unlike :func:`resolve_backend` this never falls back — use it when
    you need to *know* which backend you are timing or testing.
    """
    if name == "numba":
        backend = _load_numba()
        if backend is None:
            raise PartitioningError(
                "kernel backend 'numba' requested but numba is not installed"
            )
        return backend
    try:
        return _BACKENDS[name]
    except KeyError:
        raise PartitioningError(
            f"unknown kernel backend {name!r}; "
            f"available: {sorted(available_backends())}"
        ) from None


def resolve_backend(spec: "KernelBackend | str" = "auto") -> KernelBackend:
    """Resolve a backend spec to a live backend, with silent fallback.

    ``"auto"`` picks numba when importable, the reference backend
    otherwise; an explicit ``"numba"`` also degrades silently to
    ``"python"`` when numba is absent, so configs are portable across
    environments.  Backend instances pass through unchanged.
    """
    if isinstance(spec, KernelBackend):
        return spec
    if spec in ("auto", "numba"):
        backend = _load_numba()
        if backend is not None:
            return backend
        return _BACKENDS["python"]
    if spec == "python":
        return _BACKENDS["python"]
    raise PartitioningError(
        f"unknown kernel backend {spec!r}; expected one of {BACKEND_CHOICES}"
    )
