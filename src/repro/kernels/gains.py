"""Array-based gain buckets for Fiduccia–Mattheyses refinement.

(Part of the kernel engine: the ``"python"`` backend's move loop links
and unlinks these buckets directly; the ``"numba"`` backend mirrors the
same discipline on flat arrays.)

The classic FM data structure: one bucket array per side, each bucket a
doubly-linked list of vertices threaded through flat ``next``/``prev``
arrays, plus a moving ``max`` pointer per side.  All operations are O(1)
except ``pop_best``-style scans, which amortize against gain updates exactly
as in the original Fiduccia–Mattheyses design.

Implementation note (per the hpc-parallel performance guides): this
structure lives in FM's scalar hot loop, so plain Python ``list`` storage is
used instead of NumPy arrays — single-element reads/writes on lists are
2–3x faster than NumPy scalar indexing, and none of the operations here
vectorize.
"""

from __future__ import annotations

__all__ = ["GainBuckets"]


class GainBuckets:
    """Two-sided gain bucket lists over vertices ``0 .. nverts-1``.

    Parameters
    ----------
    nverts:
        Number of vertices.
    max_gain:
        Upper bound on ``|gain|`` of any vertex (the maximum total cost of
        nets incident to one vertex).  Gains outside the bound raise
        ``IndexError`` — by construction FM never produces them.
    """

    __slots__ = ("nverts", "offset", "nbuckets", "head", "nxt", "prv",
                 "gain", "inside", "maxptr")

    def __init__(self, nverts: int, max_gain: int) -> None:
        self.nverts = nverts
        self.offset = max_gain
        self.nbuckets = 2 * max_gain + 1
        # head[side][gain + offset] -> first vertex or -1
        self.head = [[-1] * self.nbuckets, [-1] * self.nbuckets]
        self.nxt = [-1] * nverts
        self.prv = [-1] * nverts
        self.gain = [0] * nverts
        self.inside = [False] * nverts
        # Highest possibly-non-empty bucket per side (monotone scan cursor).
        self.maxptr = [-1, -1]

    # ------------------------------------------------------------------ #
    def insert(self, v: int, side: int, gain: int) -> None:
        """Insert free vertex ``v`` (currently on ``side``) with ``gain``."""
        b = gain + self.offset
        head = self.head[side]
        first = head[b]
        self.nxt[v] = first
        self.prv[v] = -1
        if first != -1:
            self.prv[first] = v
        head[b] = v
        self.gain[v] = gain
        self.inside[v] = True
        if b > self.maxptr[side]:
            self.maxptr[side] = b

    def remove(self, v: int, side: int) -> None:
        """Remove vertex ``v`` from its bucket on ``side``."""
        if not self.inside[v]:
            return
        p, n = self.prv[v], self.nxt[v]
        if p != -1:
            self.nxt[p] = n
        else:
            self.head[side][self.gain[v] + self.offset] = n
        if n != -1:
            self.prv[n] = p
        self.inside[v] = False

    def adjust(self, v: int, side: int, delta: int) -> None:
        """Change the gain of an inserted vertex by ``delta`` (re-files it)."""
        if not self.inside[v]:
            return
        g = self.gain[v] + delta
        self.remove(v, side)
        self.insert(v, side, g)

    def best_movable(self, side: int, room: int, vw) -> int:
        """Highest-gain vertex on ``side`` with ``vw[v] <= room``.

        ``vw`` is the vertex-weight sequence and ``room`` the remaining
        capacity (plus transit slack) of the *target* side; the test is a
        plain comparison rather than a caller-supplied predicate, which
        keeps the scan free of closure allocations and Python calls.

        Returns ``-1`` if none.  Scans buckets downward from the side's max
        pointer, tightening the pointer past empty buckets as it goes (the
        pointer only ever needs to move up on insert).
        """
        head = self.head[side]
        nxt = self.nxt
        b = self.maxptr[side]
        while b >= 0:
            v = head[b]
            if v == -1:
                self.maxptr[side] = b - 1  # bucket empty: tighten cursor
                b -= 1
                continue
            while v != -1:
                if vw[v] <= room:
                    return v
                v = nxt[v]
            b -= 1
        return -1

    def peek_gain(self, v: int) -> int:
        """Current filed gain of ``v`` (meaningful only while inserted)."""
        return self.gain[v]
