"""Reusable per-hypergraph state for the FM / matching kernels.

:class:`FMPassState` owns every buffer an FM pass (or a matching sweep)
needs beyond the partition vector itself: the Python-list mirrors of the
CSR arrays used by the ``"python"`` backend, the flat scratch arrays used
by the ``"numba"`` backend, the gain-bucket storage, and the derived
scalars (gain bound, transit slack, total weight).

The state is keyed on the hypergraph and cached in ``Hypergraph._cache``
— hypergraphs are immutable, so the state is **never invalidated**.  The
contract for callers:

* a state object may be reused across any number of FM passes, refinement
  calls, and matching sweeps on *the same hypergraph*;
* the topology mirrors are read-only; the scratch buffers are reset at
  the start of every pass, so concurrent passes on one state are not
  allowed (the partitioner is sequential, as is the paper's);
* results are bit-identical whether a state is fresh or reused — the
  equivalence is pinned by ``tests/kernels/test_state.py``.

Repeated refinement (multilevel per-level calls, V-cycles, Algorithm-2
iterations, ``n_initial`` restarts at the coarsest level) therefore pays
the ``tolist()`` conversions and the ``net_ids`` expansion once per
hypergraph instead of once per call.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["FMPassState", "compute_fm_setup"]

_STATE_KEY = "fm_pass_state"


class FMPassState:
    """Persistent kernel buffers for one hypergraph + backend pair.

    Use :meth:`for_hypergraph` (or ``backend.fm_state(h)``) rather than
    the constructor; both return the cached instance when one exists.
    """

    __slots__ = (
        "h",
        "backend_name",
        "max_gain",
        "nbuckets",
        "slack",
        "total_weight",
        "lists",
        "arrays",
        "kway",
    )

    def __init__(self, h: Hypergraph, backend_name: str) -> None:
        self.h = h
        self.backend_name = backend_name
        self.max_gain = h.max_vertex_net_cost()
        self.nbuckets = 2 * self.max_gain + 1
        self.slack = int(h.vwgt.max(initial=0))
        self.total_weight = h.total_weight()
        #: Python-list mirrors (built on demand by the python backend).
        self.lists: dict | None = None
        #: Flat scratch arrays (built on demand by the numba backend).
        self.arrays: dict | None = None
        #: k-way bucket/move scratch (built on demand, see
        #: :meth:`kway_arrays`).
        self.kway: dict | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def for_hypergraph(cls, h: Hypergraph, backend_name: str) -> "FMPassState":
        """Cached state for ``h`` under the named backend."""
        cached = h._cache.get((_STATE_KEY, backend_name))
        if cached is None:
            cached = cls(h, backend_name)
            h._cache[(_STATE_KEY, backend_name)] = cached
        return cached

    # ------------------------------------------------------------------ #
    def list_mirrors(self) -> dict:
        """Python-list mirrors of the CSR topology (built once, reused).

        Single-element reads on plain lists are 2–3x faster than NumPy
        scalar indexing, which is what the scalar move loop does millions
        of times; the conversion cost is paid once per hypergraph.
        """
        if self.lists is None:
            h = self.h
            self.lists = {
                "xpins": h.xpins.tolist(),
                "pins": h.pins.tolist(),
                "xnets": h.xnets.tolist(),
                "vnets": h.vnets.tolist(),
                "cost": h.ncost.tolist(),
                "vwgt": h.vwgt.tolist(),
                "sizes": h.net_sizes().tolist(),
            }
        return self.lists

    def flat_arrays(self) -> dict:
        """Reusable flat scratch arrays for the JIT backend.

        All int64 / bool, sized once per hypergraph: bucket heads and
        links, gains, lock flags, per-side pin counts, and the move log.
        """
        if self.arrays is None:
            h = self.h
            n = h.nverts
            self.arrays = {
                "head": np.empty((2, self.nbuckets), dtype=np.int64),
                "nxt": np.empty(n, dtype=np.int64),
                "prv": np.empty(n, dtype=np.int64),
                "bgain": np.empty(n, dtype=np.int64),
                "inside": np.empty(n, dtype=np.bool_),
                "locked": np.empty(n, dtype=np.bool_),
                "pc0": np.empty(h.nnets, dtype=np.int64),
                "pc1": np.empty(h.nnets, dtype=np.int64),
                "moved": np.empty(n, dtype=np.int64),
                "score": np.empty(n, dtype=np.float64),
                "touched": np.empty(n, dtype=np.int64),
            }
        return self.arrays

    def kway_arrays(self) -> dict:
        """Reusable bucket/move scratch for the k-way FM kernels.

        Only the buffers the vectorized setup does *not* produce live
        here (bucket chains, lock flags, the move log — all independent
        of ``nparts``); the ``k``-wide state (occupancy, connectivity,
        part weights, cached best moves) is freshly allocated by
        :func:`repro.kernels.kway.compute_kway_setup` each pass and
        handed to the move loop directly — copying it into cached
        buffers would be pure overhead.
        """
        if self.kway is None:
            n = self.h.nverts
            self.kway = {
                "head": np.empty(self.nbuckets, dtype=np.int64),
                "nxt": np.empty(n, dtype=np.int64),
                "prv": np.empty(n, dtype=np.int64),
                "inside": np.empty(n, dtype=np.bool_),
                "locked": np.empty(n, dtype=np.bool_),
                "moved": np.empty(n, dtype=np.int64),
                "moved_from": np.empty(n, dtype=np.int64),
            }
        return self.kway


def compute_fm_setup(
    h: Hypergraph, parts: np.ndarray, boundary_only: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized per-pass FM setup, shared by every backend.

    Returns ``(pc0, pc1, gain, insert_mask)``: per-net pin counts on each
    side, the initial move gain per vertex, and the bucket-seeding mask
    (all vertices, or only boundary vertices when ``boundary_only``).
    Identical across backends by construction, which is what makes the
    backends bit-compatible — only the sequential move loop differs.
    """
    net_ids = h.net_ids()
    pin_parts = parts[h.pins]
    pc1 = np.zeros(h.nnets, dtype=np.int64)
    np.add.at(pc1, net_ids, pin_parts)
    pc0 = h.net_sizes() - pc1
    own = np.where(pin_parts == 0, pc0[net_ids], pc1[net_ids])
    other = np.where(pin_parts == 0, pc1[net_ids], pc0[net_ids])
    contrib = h.ncost[net_ids] * (
        (own == 1).astype(np.int64) - (other == 0).astype(np.int64)
    )
    gain = np.zeros(h.nverts, dtype=np.int64)
    np.add.at(gain, h.pins, contrib)
    if boundary_only:
        cut_net = (pc0 > 0) & (pc1 > 0)
        boundary = np.zeros(h.nverts, dtype=bool)
        np.logical_or.at(boundary, h.pins, cut_net[net_ids])
        insert_mask = boundary
    else:
        insert_mask = np.ones(h.nverts, dtype=bool)
    return pc0, pc1, gain, insert_mask
