"""Shared setup for the k-way FM kernels (direct k-way partitioning).

The 2-way FM kernels track two pin counts per net (``pc0``/``pc1``) and a
single cut-gain per vertex.  Their k-way generalization — used by
:mod:`repro.core.kway` — optimizes the *connectivity-(λ−1)* metric
directly, which needs richer state:

``occ``
    Per-net part-occupancy counts (``nnets x k``): ``occ[n, p]`` is the
    number of pins of net ``n`` in part ``p``.  ``λ_n`` is the number of
    nonzero entries of row ``n``.
``connect``
    Per-vertex part-connectivity weights (``nverts x k``):
    ``connect[v, t] = sum(cost[n] for n ∋ v if occ[n, t] > 0)``.
``base``
    ``gain_leave[v] - C_v`` where ``gain_leave[v] = sum(cost[n] for n ∋ v
    if occ[n, part[v]] == 1)`` (the connectivity drop of removing ``v``
    from its part) and ``C_v = sum(cost[n] for n ∋ v)``.  The exact gain
    of moving ``v`` to part ``t`` is then ``base[v] + connect[v, t]``.
``best_to`` / ``best_gain``
    Each vertex's cached best move: the target part maximizing
    ``connect[v, t]`` over ``t != part[v]`` (ties to the lowest part id)
    and its gain.  The move loops keep these caches *exact* after every
    move, so the gain-bucket key is always the true best gain.

All of it is computed here vectorized, shared by the ``"python"`` and
``"numba"`` backends — only the sequential move loop differs, which is
what makes the backends bit-compatible (mirroring
:func:`repro.kernels.state.compute_fm_setup` for the 2-way pass).

The gain bound of the 2-way pass carries over: ``|base[v] +
connect[v, t]| <= C_v <= max_vertex_net_cost``, so the k-way buckets
reuse ``FMPassState.max_gain`` / ``nbuckets`` unchanged (one bucket
array instead of one per side — k-way selection has no "side").
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = ["compute_kway_setup"]


def compute_kway_setup(
    h: Hypergraph,
    parts: np.ndarray,
    nparts: int,
    ceilings: np.ndarray,
    boundary_only: bool,
) -> tuple[np.ndarray, ...]:
    """Vectorized per-pass k-way FM setup, shared by every backend.

    Returns ``(occ, pw, base, connect, best_to, best_gain, insert_mask)``
    as described in the module docstring; ``pw`` is the part-weight
    vector and ``insert_mask`` the bucket-seeding mask (all vertices, or
    only vertices on nets with ``λ >= 2`` when ``boundary_only``).  An
    *infeasible* start (some part over its ceiling) always seeds every
    vertex: rebalancing must be able to move interior vertices — with a
    fully interior overweight part there would be no boundary at all.
    Requires ``nparts >= 2``.
    """
    k = int(nparts)
    net_ids = h.net_ids()
    pin_parts = parts[h.pins]
    occ = np.zeros((h.nnets, k), dtype=np.int64)
    np.add.at(occ, (net_ids, pin_parts), 1)
    pw = np.bincount(parts, weights=h.vwgt, minlength=k).astype(np.int64)

    costs = h.ncost[net_ids]
    sole = occ[net_ids, pin_parts] == 1
    gain_leave = np.zeros(h.nverts, dtype=np.int64)
    np.add.at(gain_leave, h.pins, costs * sole)
    cv = np.zeros(h.nverts, dtype=np.int64)
    np.add.at(cv, h.pins, costs)
    base = gain_leave - cv

    present = occ > 0
    connect = np.zeros((h.nverts, k), dtype=np.int64)
    np.add.at(connect, h.pins, costs[:, None] * present[net_ids])

    # Best admissible-ignoring move per vertex: argmax over t != part[v]
    # of connect[v, t]; np.argmax resolves ties to the lowest part id,
    # the discipline the move loops preserve incrementally.
    vids = np.arange(h.nverts, dtype=np.int64)
    masked = connect.copy()
    if h.nverts:
        masked[vids, parts] = -1
    best_to = (
        masked.argmax(axis=1).astype(np.int64)
        if h.nverts
        else np.empty(0, dtype=np.int64)
    )
    # connect >= 0 and k >= 2, so the best non-own entry is >= 0.
    best_conn = masked[vids, best_to] if h.nverts else best_to
    best_gain = base + np.maximum(best_conn, 0)

    if boundary_only and bool(np.all(pw <= np.asarray(ceilings))):
        cut_net = present.sum(axis=1) >= 2
        boundary = np.zeros(h.nverts, dtype=bool)
        np.logical_or.at(boundary, h.pins, cut_net[net_ids])
        insert_mask = boundary
    else:
        insert_mask = np.ones(h.nverts, dtype=bool)
    return occ, pw, base, connect, best_to, best_gain, insert_mask
