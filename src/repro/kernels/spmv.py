"""Flat-array kernels for the SpMV/volume side of the pipeline.

PR 1 put the *partitioner's* scalar hot loops behind the backend
registry; this module extends the same engine to everything downstream of
a partitioning — connectivity-``lambda`` counting, the distinct
``(line, part)`` incidence lists that drive vector distribution and BSP
phase loads, the greedy vector-owner assignment, and the per-part partial
sums of the SpMV simulator.

The central primitive is a *group-by on (line, part)*: most SpMV-side
quantities reduce to "which distinct parts touch each row/column".  The
seed computed it with a fresh ``np.lexsort((parts, index))`` per call;
here it is a boolean scatter (one ``(extent, nparts)`` table, one
``np.nonzero``) that does no sorting at all, with the lexsort kept as a
fallback for pathologically large ``extent * nparts`` products.  Both
paths return identical arrays (parts ascending within each line).

The one genuinely sequential loop — greedy vector-owner assignment,
where every choice updates the running send/receive loads — is a
:class:`~repro.kernels.base.KernelBackend` method like the FM loops:
``"python"`` runs the reference scalar loop (restricted to the cut lines;
singleton lines are assigned vectorized), ``"numba"`` runs the same loop
JIT-compiled.  The bit-compatibility contract is unchanged: every backend
returns identical owners for identical inputs.

Float contract: partial sums are accumulated by shared NumPy code
(``np.add.reduceat`` over a fixed ``(part, row)`` grouping), so the
simulated SpMV result is deterministic and identical across backends —
backends only ever differ in integer-loop implementation.

:class:`SpMVState` mirrors the ``FMPassState`` pattern from PR 1 on the
matrix side: per-matrix buffers (the default input vector, its reference
product, reusable scratch) cached on the immutable ``SparseMatrix`` so
repeated evaluation of the same matrix — exactly what an
(instance x method x seed) sweep does — stops rebuilding them per call.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.matrix import SparseMatrix

__all__ = [
    "SpMVState",
    "axis_incidences",
    "axis_lambdas",
    "greedy_owners_reference",
    "greedy_owners",
    "partial_sums",
]

_STATE_KEY = "spmv_state"

#: Scatter-table sizing: the boolean table costs O(extent * nparts) to
#: zero and scan, the lexsort fallback O(nnz log nnz).  Small tables are
#: always worth it (below the floor); past that the table may cost at
#: most this many cells per nonzero, and never more than the hard cap
#: (64 MB of bools), before the sort-based path takes over.
_SCATTER_CELL_FLOOR = 1 << 16
_SCATTER_CELLS_PER_NNZ = 32
_SCATTER_CELL_CAP = 1 << 26


def _use_scatter(extent: int, nparts: int, nnz: int) -> bool:
    """Whether the boolean-scatter table beats the sort-based fallback."""
    cells = extent * nparts
    if cells <= _SCATTER_CELL_FLOOR:
        return True
    return cells <= _SCATTER_CELLS_PER_NNZ * nnz and cells <= _SCATTER_CELL_CAP


class SpMVState:
    """Persistent per-matrix buffers for SpMV/volume evaluation.

    Cached on the (immutable) matrix like ``FMPassState`` is on its
    hypergraph, and never invalidated.  Holds whatever repeated
    evaluation of one matrix keeps re-deriving: the simulator's default
    input vector and its sequential reference product, plus reusable
    int64/float64 scratch arrays sized to the nonzero count.
    """

    __slots__ = ("matrix", "_default_v", "_reference_u", "_scratch")

    def __init__(self, matrix: SparseMatrix) -> None:
        self.matrix = matrix
        self._default_v: np.ndarray | None = None
        self._reference_u: np.ndarray | None = None
        self._scratch: dict = {}

    @classmethod
    def for_matrix(cls, matrix: SparseMatrix) -> "SpMVState":
        """The cached state for ``matrix`` (created on first use)."""
        cached = matrix._cache.get(_STATE_KEY)
        if cached is None:
            cached = cls(matrix)
            matrix._cache[_STATE_KEY] = cached
        return cached

    def default_vector(self) -> np.ndarray:
        """The simulator's default input ``(1, 2, ..., n) / n`` (read-only)."""
        if self._default_v is None:
            n = self.matrix.ncols
            v = np.arange(1, n + 1, dtype=np.float64) / n
            v.flags.writeable = False
            self._default_v = v
        return self._default_v

    def reference_result(self) -> np.ndarray:
        """Sequential ``A @ default_vector()`` (computed once, read-only)."""
        if self._reference_u is None:
            u = self.matrix.matvec(self.default_vector())
            u.flags.writeable = False
            self._reference_u = u
        return self._reference_u

    def scratch(self, name: str, size: int, dtype) -> np.ndarray:
        """A reusable uninitialized scratch array (grown, never shrunk)."""
        buf = self._scratch.get(name)
        if buf is None or buf.size < size or buf.dtype != np.dtype(dtype):
            buf = np.empty(size, dtype=dtype)
            self._scratch[name] = buf
        return buf[:size]


# --------------------------------------------------------------------- #
# Distinct (line, part) incidences — the shared group-by primitive.
# --------------------------------------------------------------------- #
def _incidences_sorted(
    index: np.ndarray, parts: np.ndarray, extent: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sort-based fallback: the seed's lexsort + adjacent-pair dedup."""
    order = np.lexsort((parts, index))
    si, sp = index[order], parts[order]
    keep = np.empty(si.size, dtype=bool)
    keep[0] = True
    keep[1:] = (si[1:] != si[:-1]) | (sp[1:] != sp[:-1])
    lines, flat = si[keep], sp[keep]
    counts = np.bincount(lines, minlength=extent)
    return counts, flat


def axis_incidences(
    index: np.ndarray,
    parts: np.ndarray,
    extent: int,
    nparts: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """CSR list of the distinct parts touching each line of one axis.

    Returns ``(ptr, flat)`` with the parts of line ``i`` in
    ``flat[ptr[i] : ptr[i+1]]``, ascending within each line.  ``index``
    is the row (or column) index of every nonzero and ``parts`` its part;
    neither needs to be pre-sorted — the default path is a boolean
    scatter, not a sort.
    """
    ptr = np.zeros(extent + 1, dtype=np.int64)
    if index.size == 0:
        return ptr, np.empty(0, dtype=np.int64)
    if nparts is None:
        nparts = int(parts.max()) + 1
    if _use_scatter(extent, nparts, index.size):
        seen = np.zeros((extent, nparts), dtype=bool)
        seen[index, parts] = True
        lines, flat = np.nonzero(seen)
        counts = np.bincount(lines, minlength=extent)
        flat = flat.astype(np.int64, copy=False)
    else:
        counts, flat = _incidences_sorted(index, parts, extent)
    np.cumsum(counts, out=ptr[1:])
    return ptr, flat


def axis_lambdas(
    index: np.ndarray,
    parts: np.ndarray,
    extent: int,
    nparts: int | None = None,
) -> np.ndarray:
    """Connectivity ``lambda`` per line: distinct parts touching it.

    Equivalent to ``np.diff(axis_incidences(...)[0])`` but skips
    materializing the incidence list when only the counts are needed
    (eqns (2)–(3): a line touched by ``lambda`` parts costs
    ``lambda - 1`` words).
    """
    if index.size == 0:
        return np.zeros(extent, dtype=np.int64)
    if nparts is None:
        nparts = int(parts.max()) + 1
    if _use_scatter(extent, nparts, index.size):
        seen = np.zeros((extent, nparts), dtype=bool)
        seen[index, parts] = True
        return seen.sum(axis=1, dtype=np.int64)
    counts, _ = _incidences_sorted(index, parts, extent)
    return counts.astype(np.int64)


# --------------------------------------------------------------------- #
# Greedy vector-owner assignment (the sequential kernel).
# --------------------------------------------------------------------- #
def _owner_setup(
    ptr: np.ndarray, flat: np.ndarray, extent: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized prelude shared by every backend.

    Assigns all singleton lines (their only touching part must own them;
    they move no words, so order does not matter) and returns the cut
    lines in the reference processing order — decreasing connectivity,
    stable in the line index, exactly the seed's
    ``np.argsort(-lam, kind="stable")`` restricted to ``lam >= 2``.
    """
    owners = np.full(extent, -1, dtype=np.int64)
    lam = np.diff(ptr)
    single = lam == 1
    if single.any():
        owners[single] = flat[ptr[:-1][single]]
    multi = np.flatnonzero(lam >= 2)
    if multi.size:
        multi = multi[np.argsort(-lam[multi], kind="stable")]
    return owners, multi


def _owner_finalize(
    owners: np.ndarray, fallback_balance: np.ndarray, nparts: int
) -> np.ndarray:
    """Round-robin empty lines over ``fallback_balance`` (shared by every
    backend — they cause no traffic, only storage)."""
    empty = owners < 0
    if empty.any():
        idx = np.flatnonzero(empty)
        owners[idx] = fallback_balance[np.arange(idx.size) % nparts]
    return owners


def greedy_owners_reference(
    ptr: np.ndarray,
    flat: np.ndarray,
    extent: int,
    nparts: int,
    fallback_balance: np.ndarray,
) -> np.ndarray:
    """Reference greedy owner assignment for one phase.

    The owner of a component with candidate set ``P`` (size ``lam``)
    sends ``lam - 1`` words; every other member receives one word.  Cut
    lines are processed in decreasing ``lam``; each picks the candidate
    whose tentative ``max(send, recv)`` after the assignment is smallest.
    Empty lines round-robin over ``fallback_balance`` — they cause no
    traffic, only storage.
    """
    owners, multi = _owner_setup(ptr, flat, extent)
    if multi.size:
        send = [0] * nparts
        recv = [0] * nparts
        ptr_l = ptr.tolist()
        flat_l = flat.tolist()
        for line in multi.tolist():
            lo, hi = ptr_l[line], ptr_l[line + 1]
            k = hi - lo
            best_s = -1
            best_cost = None
            for t in range(lo, hi):
                s = flat_l[t]
                cost = max(send[s] + k - 1, recv[s])
                if best_cost is None or cost < best_cost:
                    best_s, best_cost = s, cost
            owners[line] = best_s
            send[best_s] += k - 1
            for t in range(lo, hi):
                s = flat_l[t]
                if s != best_s:
                    recv[s] += 1
    return _owner_finalize(owners, fallback_balance, nparts)


def _resolve(backend):
    """Late import of the registry to avoid a package-import cycle."""
    from repro.kernels import resolve_backend

    return resolve_backend(backend)


def greedy_owners(
    ptr: np.ndarray,
    flat: np.ndarray,
    extent: int,
    nparts: int,
    fallback_balance: np.ndarray,
    backend="auto",
) -> np.ndarray:
    """Backend-dispatched greedy owner assignment (see the reference)."""
    return _resolve(backend).greedy_owners(
        ptr, flat, extent, nparts, fallback_balance
    )


# --------------------------------------------------------------------- #
# Per-(part, row) partial sums for the SpMV simulator.
# --------------------------------------------------------------------- #
def partial_sums(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    parts: np.ndarray,
    v: np.ndarray,
    m: int,
    state: SpMVState | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Local-multiply partial sums, grouped by ``(part, row)``.

    Returns ``(group_parts, group_rows, group_sums)`` sorted by part then
    row — each group is one partial sum some part computes for some
    output row, i.e. one candidate fan-in message.  Sums accumulate in
    flat float64 arrays (``np.add.reduceat`` over the stable
    ``(part, row)`` grouping, canonical nonzero order within a group) —
    no per-part Python dicts on any path.
    """
    nnz = rows.size
    if nnz == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    key = parts * np.int64(m) + rows
    order = np.argsort(key, kind="stable")
    if state is not None:
        products = state.scratch("products", nnz, np.float64)
        np.multiply(vals, v[cols], out=products)
    else:
        products = vals * v[cols]
    skey = key[order]
    starts = np.flatnonzero(np.r_[True, skey[1:] != skey[:-1]])
    sums = np.add.reduceat(products[order], starts)
    gkey = skey[starts]
    gparts = gkey // m
    grows = gkey - gparts * m
    return gparts, grows, sums
