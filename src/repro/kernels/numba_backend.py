"""Numba JIT backend: the hot loops on flat int64/float64 arrays.

Every kernel is a statement-for-statement transliteration of the
``"python"`` backend — same LIFO bucket discipline, same cursor
tightening, same tie-breaks, same floating-point accumulation order in
matching scores and balance metrics — so for a fixed hypergraph and seed
the two backends return bit-identical partitions and matchings (the RNG
is consumed *outside* the kernels, by the shared orchestration code).
The first call per signature pays JIT compilation; kernels are cached on
disk (``cache=True``) so subsequent processes start warm.  Every kernel
is also compiled ``nogil=True``: the loops touch only flat arrays, so
they release the GIL and the execution layer's thread backend
(:mod:`repro.utils.executor`) genuinely overlaps independent bisections
in one address space.

When numba is not installed the module still imports — ``njit`` degrades
to an identity decorator — so the flat-array kernels stay testable (the
cross-backend equivalence suite runs them interpreted on small inputs).
The registry only ever *selects* this backend when real numba is
present; without it ``"numba"``/``"auto"`` resolve to ``"python"``.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised implicitly by both environments
    from numba import njit

    NUMBA_JIT = True
except ImportError:  # numba absent: keep kernels importable, interpreted
    NUMBA_JIT = False

    def njit(*args, **kwargs):
        """Identity stand-in for ``numba.njit`` when numba is absent."""
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


from repro.kernels.base import KernelBackend
from repro.kernels.kway import compute_kway_setup
from repro.kernels.python_backend import merge_identical_nets
from repro.kernels.state import FMPassState, compute_fm_setup

__all__ = ["NumbaBackend", "NUMBA_JIT"]


@njit(cache=True, nogil=True)
def _bucket_insert(head, nxt, prv, inside, maxptr, bgain, offset, u, su):
    """File free vertex ``u`` (on side ``su``) at the head of its bucket."""
    b = bgain[u] + offset
    first = head[su, b]
    nxt[u] = first
    prv[u] = -1
    if first != -1:
        prv[first] = u
    head[su, b] = u
    inside[u] = True
    if b > maxptr[su]:
        maxptr[su] = b


@njit(cache=True, nogil=True)
def _bucket_remove(head, nxt, prv, inside, bgain, offset, u, su):
    """Unlink vertex ``u`` from its bucket on side ``su``."""
    if not inside[u]:
        return
    p = prv[u]
    n2 = nxt[u]
    if p != -1:
        nxt[p] = n2
    else:
        head[su, bgain[u] + offset] = n2
    if n2 != -1:
        prv[n2] = p
    inside[u] = False


@njit(cache=True, nogil=True)
def _gain_touch(
    head, nxt, prv, inside, locked, maxptr, bgain, parts, offset, u, delta
):
    """Apply a gain delta to a free vertex, (re-)filing it in buckets."""
    if inside[u]:
        su = parts[u]
        g = bgain[u]
        p = prv[u]
        n2 = nxt[u]
        if p != -1:
            nxt[p] = n2
        else:
            head[su, g + offset] = n2
        if n2 != -1:
            prv[n2] = p
        g += delta
        b = g + offset
        first = head[su, b]
        nxt[u] = first
        prv[u] = -1
        if first != -1:
            prv[first] = u
        head[su, b] = u
        bgain[u] = g
        if b > maxptr[su]:
            maxptr[su] = b
    else:
        bgain[u] += delta
        if not locked[u]:
            _bucket_insert(
                head, nxt, prv, inside, maxptr, bgain, offset, u, parts[u]
            )


@njit(cache=True, nogil=True)
def _best_movable(head, nxt, maxptr, vwgt, s, room):
    """Highest-gain vertex on side ``s`` with ``vwgt[v] <= room``.

    Scans buckets downward from the side's cursor, tightening the cursor
    past empty buckets exactly like the reference implementation.
    """
    b = maxptr[s]
    while b >= 0:
        v = head[s, b]
        if v == -1:
            maxptr[s] = b - 1
            b -= 1
            continue
        while v != -1:
            if vwgt[v] <= room:
                return v
            v = nxt[v]
        b -= 1
    return -1


@njit(cache=True, nogil=True)
def _balance_metric(w0, w1, maxw0, maxw1):
    """max of the per-side weight/ceiling ratios (ceiling 0 -> 0/1 flag)."""
    if maxw0 != 0:
        m0 = w0 / maxw0
    else:
        m0 = 1.0 if w0 > 0 else 0.0
    if maxw1 != 0:
        m1 = w1 / maxw1
    else:
        m1 = 1.0 if w1 > 0 else 0.0
    return max(m0, m1)


@njit(cache=True, nogil=True)
def _fm_move_loop(
    xpins,
    pins,
    xnets,
    vnets,
    ncost,
    vwgt,
    parts,
    pc0,
    pc1,
    bgain,
    insert_mask,
    insert_order,
    head,
    nxt,
    prv,
    inside,
    locked,
    maxptr,
    moved,
    offset,
    maxw0,
    maxw1,
    slack,
    stall_limit,
    w0_init,
    w1_init,
):
    """The sequential FM move loop; mutates ``parts``/``pc0``/``pc1``.

    Returns ``(best_cum, best_feasible)`` with the best-prefix rollback
    already applied to ``parts``.
    """
    nverts = parts.shape[0]
    head[:, :] = -1
    inside[:] = False
    locked[:] = False
    maxptr[0] = -1
    maxptr[1] = -1

    for i in range(nverts):
        v = insert_order[i]
        if insert_mask[v]:
            _bucket_insert(
                head, nxt, prv, inside, maxptr, bgain, offset, v, parts[v]
            )

    w0 = w0_init
    w1 = w1_init
    initially_feasible = w0 <= maxw0 and w1 <= maxw1
    best_feasible = initially_feasible
    best_cum = 0
    best_len = 0
    best_metric = _balance_metric(w0, w1, maxw0, maxw1)
    cum = 0
    n_moved = 0
    stall = 0

    while True:
        overweight0 = w0 > maxw0
        overweight1 = w1 > maxw1
        best_v = -1
        best_side = -1
        best_g = 0
        for s in range(2):
            # While infeasible, only moves off the overweight side help.
            if overweight0 and s != 0:
                continue
            if overweight1 and s != 1:
                continue
            if s == 0:
                room = maxw1 + slack - w1
            else:
                room = maxw0 + slack - w0
            v = _best_movable(head, nxt, maxptr, vwgt, s, room)
            if v == -1:
                continue
            g = bgain[v]
            if best_v == -1:
                best_v = v
                best_side = s
                best_g = g
            elif g > best_g:
                best_v = v
                best_side = s
                best_g = g
            elif g == best_g:
                ws = w0 if s == 0 else w1
                wb = w0 if best_side == 0 else w1
                if ws > wb:
                    best_v = v
                    best_side = s
                    best_g = g
        if best_v == -1:
            break

        v = best_v
        s = best_side
        t = 1 - s
        _bucket_remove(head, nxt, prv, inside, bgain, offset, v, s)
        locked[v] = True

        # Classic FM gain-update rules around the move of v from s to t.
        for idx in range(xnets[v], xnets[v + 1]):
            n = vnets[idx]
            c = ncost[n]
            if c == 0:
                continue
            p0 = xpins[n]
            p1 = xpins[n + 1]
            pcT = pc1[n] if t == 1 else pc0[n]
            if pcT == 0:
                for k in range(p0, p1):
                    u = pins[k]
                    if not locked[u]:
                        _gain_touch(
                            head, nxt, prv, inside, locked, maxptr,
                            bgain, parts, offset, u, c,
                        )
            elif pcT == 1:
                for k in range(p0, p1):
                    u = pins[k]
                    if parts[u] == t:
                        if not locked[u]:
                            _gain_touch(
                                head, nxt, prv, inside, locked, maxptr,
                                bgain, parts, offset, u, -c,
                            )
                        break
            if s == 0:
                pc0[n] -= 1
                pc1[n] += 1
                pcF = pc0[n]
            else:
                pc1[n] -= 1
                pc0[n] += 1
                pcF = pc1[n]
            if pcF == 0:
                for k in range(p0, p1):
                    u = pins[k]
                    if not locked[u]:
                        _gain_touch(
                            head, nxt, prv, inside, locked, maxptr,
                            bgain, parts, offset, u, -c,
                        )
            elif pcF == 1:
                for k in range(p0, p1):
                    u = pins[k]
                    if u != v and parts[u] == s:
                        if not locked[u]:
                            _gain_touch(
                                head, nxt, prv, inside, locked, maxptr,
                                bgain, parts, offset, u, c,
                            )
                        break

        parts[v] = t
        if s == 0:
            w0 -= vwgt[v]
            w1 += vwgt[v]
        else:
            w1 -= vwgt[v]
            w0 += vwgt[v]
        cum += best_g
        moved[n_moved] = v
        n_moved += 1

        feasible_now = w0 <= maxw0 and w1 <= maxw1
        improved = False
        if feasible_now:
            metric = _balance_metric(w0, w1, maxw0, maxw1)
            if (
                not best_feasible
                or cum > best_cum
                or (cum == best_cum and metric < best_metric)
            ):
                best_feasible = True
                best_cum = cum
                best_len = n_moved
                best_metric = metric
                improved = True
        if improved:
            stall = 0
        else:
            stall += 1
            if stall > stall_limit and best_feasible:
                break

    # Roll back to the best prefix.
    for i in range(best_len, n_moved):
        v = moved[i]
        parts[v] = 1 - parts[v]

    if not best_feasible:
        return 0, False
    return best_cum, True


@njit(cache=True, nogil=True)
def _kway_refile(head, nxt, prv, inside, bgain, maxptr, offset, u, newg):
    """Re-key free vertex ``u`` to gain ``newg`` in the k-way buckets
    (unlink if filed, else lazy-insert; LIFO at the new bucket head)."""
    if inside[u]:
        p = prv[u]
        n2 = nxt[u]
        if p != -1:
            nxt[p] = n2
        else:
            head[bgain[u] + offset] = n2
        if n2 != -1:
            prv[n2] = p
    else:
        inside[u] = True
    bgain[u] = newg
    b = newg + offset
    f = head[b]
    nxt[u] = f
    prv[u] = -1
    if f != -1:
        prv[f] = u
    head[b] = u
    if b > maxptr[0]:
        maxptr[0] = b


@njit(cache=True, nogil=True)
def _kway_balance_metric(pw, ceilings):
    """max over parts of the weight/ceiling ratio (ceiling 0 → 0/1 flag)."""
    metric = 0.0
    for p in range(pw.shape[0]):
        cl = ceilings[p]
        if cl != 0:
            m = pw[p] / cl
        else:
            m = 1.0 if pw[p] > 0 else 0.0
        if m > metric:
            metric = m
    return metric


@njit(cache=True, nogil=True)
def _kway_move_loop(
    xpins,
    pins,
    xnets,
    vnets,
    ncost,
    vwgt,
    parts,
    occ,
    conn,
    pw,
    ceilings,
    base,
    bto,
    bgain,
    insert_mask,
    insert_order,
    head,
    nxt,
    prv,
    inside,
    locked,
    moved,
    moved_from,
    offset,
    slack,
    stall_limit,
):
    """The sequential k-way FM move loop; mutates ``parts``/``occ``/
    ``conn``/``pw`` and the cached best moves.

    Statement-for-statement transliteration of
    ``PythonBackend.kway_fm_pass`` (same selection order, same touch
    rules, same tie-breaks); returns ``(best_cum, best_feasible)`` with
    the best-prefix rollback already applied to ``parts``.
    """
    nverts = parts.shape[0]
    k = pw.shape[0]
    head[:] = -1
    inside[:] = False
    locked[:] = False
    maxptr = np.empty(1, dtype=np.int64)
    maxptr[0] = -1

    for i in range(nverts):
        v = insert_order[i]
        if insert_mask[v]:
            b = bgain[v] + offset
            f = head[b]
            nxt[v] = f
            prv[v] = -1
            if f != -1:
                prv[f] = v
            head[b] = v
            inside[v] = True
            if b > maxptr[0]:
                maxptr[0] = b

    n_over = 0
    for p in range(k):
        if pw[p] > ceilings[p]:
            n_over += 1
    best_feasible = n_over == 0
    best_cum = 0
    best_len = 0
    best_metric = _kway_balance_metric(pw, ceilings)
    cum = 0
    n_moved = 0
    stall = 0

    while True:
        # Selection: best-gain-first, first admissible vertex wins.
        best_v = -1
        # Transit slack only while feasible (see the reference backend).
        if n_over == 0:
            sl = slack
        else:
            sl = 0
        while True:  # rescan after any up-refile (see reference)
            raised = False
            b = maxptr[0]
            while b >= 0:
                u = head[b]
                if u == -1:
                    # Tighten only if no up-refile raised the cursor.
                    if maxptr[0] == b:
                        maxptr[0] = b - 1
                    b -= 1
                    continue
                while u != -1:
                    s = parts[u]
                    if n_over > 0 and pw[s] <= ceilings[s]:
                        u = nxt[u]
                        continue
                    wu = vwgt[u]
                    t = bto[u]
                    if pw[t] + wu <= ceilings[t] + sl:
                        best_v = u
                        break
                    # Cached target is full: re-aim at the best target
                    # with room (see the reference backend).
                    bt2 = -1
                    bc2 = np.int64(-1)
                    for t2 in range(k):
                        if t2 == s:
                            continue
                        if pw[t2] + wu > ceilings[t2] + sl:
                            continue
                        cval = conn[u, t2]
                        if cval > bc2:
                            bc2 = cval
                            bt2 = t2
                    if bt2 == -1:
                        u = nxt[u]
                        continue
                    newg = base[u] + bc2
                    bto[u] = bt2
                    if newg == bgain[u]:
                        best_v = u
                        break
                    if newg > bgain[u]:
                        raised = True
                    unext = nxt[u]
                    _kway_refile(
                        head, nxt, prv, inside, bgain, maxptr,
                        offset, u, newg,
                    )
                    u = unext
                if best_v != -1:
                    break
                b -= 1
            if best_v != -1 or not raised:
                break
        if best_v == -1:
            break

        v = best_v
        s = parts[v]
        t = bto[v]
        g = bgain[v]
        p_ = prv[v]
        n2 = nxt[v]
        if p_ != -1:
            nxt[p_] = n2
        else:
            head[g + offset] = n2
        if n2 != -1:
            prv[n2] = p_
        inside[v] = False
        locked[v] = True

        # k-way gain-update rules around the move of v from s to t.
        for idx in range(xnets[v], xnets[v + 1]):
            n = vnets[idx]
            c = ncost[n]
            if c == 0:
                continue
            p0 = xpins[n]
            p1 = xpins[n + 1]
            ot = occ[n, t]
            if ot == 0:
                for kk in range(p0, p1):
                    u = pins[kk]
                    if locked[u]:
                        continue
                    conn[u, t] += c
                    bu = bto[u]
                    if bu == t:
                        _kway_refile(
                            head, nxt, prv, inside, bgain, maxptr,
                            offset, u, bgain[u] + c,
                        )
                    else:
                        nc = conn[u, t]
                        bc = conn[u, bu]
                        if nc > bc:
                            bto[u] = t
                            _kway_refile(
                                head, nxt, prv, inside, bgain, maxptr,
                                offset, u, bgain[u] + nc - bc,
                            )
                        elif nc == bc and t < bu:
                            bto[u] = t
            elif ot == 1:
                for kk in range(p0, p1):
                    u = pins[kk]
                    if parts[u] == t:
                        if not locked[u]:
                            base[u] -= c
                            _kway_refile(
                                head, nxt, prv, inside, bgain, maxptr,
                                offset, u, bgain[u] - c,
                            )
                        break
            occ[n, s] -= 1
            occ[n, t] += 1
            ns = occ[n, s]
            if ns == 0:
                for kk in range(p0, p1):
                    u = pins[kk]
                    if locked[u]:
                        continue
                    conn[u, s] -= c
                    if bto[u] == s:
                        pu = parts[u]
                        bt2 = -1
                        bc2 = np.int64(-1)
                        for t2 in range(k):
                            if t2 == pu:
                                continue
                            cval = conn[u, t2]
                            if cval > bc2:
                                bc2 = cval
                                bt2 = t2
                        bto[u] = bt2
                        newg = base[u] + bc2
                        if newg != bgain[u]:
                            _kway_refile(
                                head, nxt, prv, inside, bgain, maxptr,
                                offset, u, newg,
                            )
            elif ns == 1:
                for kk in range(p0, p1):
                    u = pins[kk]
                    if u != v and parts[u] == s:
                        if not locked[u]:
                            base[u] += c
                            _kway_refile(
                                head, nxt, prv, inside, bgain, maxptr,
                                offset, u, bgain[u] + c,
                            )
                        break

        parts[v] = t
        wv = vwgt[v]
        if pw[s] > ceilings[s] and pw[s] - wv <= ceilings[s]:
            n_over -= 1
        pw[s] -= wv
        if pw[t] <= ceilings[t] and pw[t] + wv > ceilings[t]:
            n_over += 1
        pw[t] += wv
        cum += g
        moved[n_moved] = v
        moved_from[n_moved] = s
        n_moved += 1

        improved = False
        if n_over == 0:
            metric = _kway_balance_metric(pw, ceilings)
            if (
                not best_feasible
                or cum > best_cum
                or (cum == best_cum and metric < best_metric)
            ):
                best_feasible = True
                best_cum = cum
                best_len = n_moved
                best_metric = metric
                improved = True
        if improved:
            stall = 0
        else:
            stall += 1
            if stall > stall_limit and best_feasible:
                break

    # Roll back to the best prefix (each vertex moved at most once).
    for i in range(best_len, n_moved):
        parts[moved[i]] = moved_from[i]

    if not best_feasible:
        return 0, False
    return best_cum, True


@njit(cache=True, nogil=True)
def _match_loop(
    xpins,
    pins,
    xnets,
    vnets,
    ncost,
    vwgt,
    sizes,
    order,
    match,
    score,
    touched,
    absorption,
    max_net,
    max_cluster_weight,
    restrict,
    has_restrict,
):
    """Greedy matching sweep; fills ``match`` with partner ids or -1."""
    nverts = order.shape[0]
    for oi in range(nverts):
        v = order[oi]
        if match[v] != -1:
            continue
        wv = vwgt[v]
        ntouched = 0
        for i in range(xnets[v], xnets[v + 1]):
            n = vnets[i]
            sz = sizes[n]
            if sz < 2 or sz > max_net:
                continue
            c = ncost[n]
            if c == 0:
                continue
            if absorption:
                w = c / (sz - 1)
            else:
                w = float(c)
            for k in range(xpins[n], xpins[n + 1]):
                u = pins[k]
                if u == v or match[u] != -1:
                    continue
                if has_restrict and restrict[u] != restrict[v]:
                    continue
                if wv + vwgt[u] > max_cluster_weight:
                    continue
                if score[u] == 0.0:
                    touched[ntouched] = u
                    ntouched += 1
                score[u] += w
        if ntouched > 0:
            best_u = -1
            best_s = 0.0
            for j in range(ntouched):
                u = touched[j]
                s = score[u]
                # Tie-break towards the lighter candidate: keeps coarse
                # weights even, which preserves partitionability.
                if s > best_s or (
                    s == best_s and best_u != -1 and vwgt[u] < vwgt[best_u]
                ):
                    best_u = u
                    best_s = s
                score[u] = 0.0
            if best_u != -1:
                match[v] = best_u
                match[best_u] = v


@njit(cache=True, nogil=True)
def _greedy_owner_loop(ptr, flat, lines, nparts, owners):
    """Greedy owner assignment over the cut lines, in the given order.

    Transliteration of ``greedy_owners_reference``'s scalar loop: each
    line picks the candidate minimizing the tentative phase bottleneck
    ``max(send + lam - 1, recv)``, first candidate winning ties.
    """
    send = np.zeros(nparts, dtype=np.int64)
    recv = np.zeros(nparts, dtype=np.int64)
    for li in range(lines.shape[0]):
        line = lines[li]
        lo = ptr[line]
        hi = ptr[line + 1]
        k = hi - lo
        best_s = -1
        best_cost = np.int64(0)
        for t in range(lo, hi):
            s = flat[t]
            cost = max(send[s] + k - 1, recv[s])
            if best_s == -1 or cost < best_cost:
                best_s = s
                best_cost = cost
        owners[line] = best_s
        send[best_s] += k - 1
        for t in range(lo, hi):
            s = flat[t]
            if s != best_s:
                recv[s] += 1


class NumbaBackend(KernelBackend):
    """JIT backend on flat arrays; bit-identical to the reference."""

    name = "numba"

    def fm_pass(
        self,
        state: FMPassState,
        parts: np.ndarray,
        maxw: tuple[int, int],
        cfg,
        rng: np.random.Generator,
    ) -> tuple[int, bool]:
        """One FM pass through the JIT move loop; mutates ``parts``."""
        h = state.h
        nverts = h.nverts
        if nverts == 0:
            return 0, True
        pc0_np, pc1_np, gain_np, insert_mask = compute_fm_setup(
            h, parts, cfg.boundary_only
        )
        insert_order = rng.permutation(nverts)
        scratch = state.flat_arrays()
        pc0 = scratch["pc0"]
        pc1 = scratch["pc1"]
        bgain = scratch["bgain"]
        pc0[:] = pc0_np
        pc1[:] = pc1_np
        bgain[:] = gain_np
        maxptr = np.empty(2, dtype=np.int64)
        w1 = int(np.dot(parts, h.vwgt))
        stall_limit = max(32, int(cfg.fm_early_exit_frac * nverts))
        delta, feasible = _fm_move_loop(
            h.xpins,
            h.pins,
            h.xnets,
            h.vnets,
            h.ncost,
            h.vwgt,
            parts,
            pc0,
            pc1,
            bgain,
            insert_mask,
            insert_order,
            scratch["head"],
            scratch["nxt"],
            scratch["prv"],
            scratch["inside"],
            scratch["locked"],
            maxptr,
            scratch["moved"],
            state.max_gain,
            int(maxw[0]),
            int(maxw[1]),
            state.slack,
            stall_limit,
            state.total_weight - w1,
            w1,
        )
        return int(delta), bool(feasible)

    def kway_fm_pass(
        self,
        state: FMPassState,
        parts: np.ndarray,
        nparts: int,
        ceilings: np.ndarray,
        cfg,
        rng: np.random.Generator,
    ) -> tuple[int, bool]:
        """One k-way FM pass through the JIT move loop; mutates ``parts``."""
        h = state.h
        nverts = h.nverts
        k = int(nparts)
        if nverts == 0:
            return 0, True
        occ_np, pw_np, base_np, conn_np, bto_np, bgain_np, mask_np = (
            compute_kway_setup(h, parts, k, ceilings, cfg.boundary_only)
        )
        insert_order = rng.permutation(nverts)
        # The setup arrays are freshly allocated each pass and mutated
        # by the move loop directly; only the nparts-independent bucket
        # scratch is cached on the state.
        scratch = state.kway_arrays()
        ceil_arr = np.ascontiguousarray(ceilings, dtype=np.int64)
        stall_limit = max(32, int(cfg.fm_early_exit_frac * nverts))
        delta, feasible = _kway_move_loop(
            h.xpins,
            h.pins,
            h.xnets,
            h.vnets,
            h.ncost,
            h.vwgt,
            parts,
            occ_np,
            conn_np,
            pw_np,
            ceil_arr,
            base_np,
            bto_np,
            bgain_np,
            mask_np,
            insert_order,
            scratch["head"],
            scratch["nxt"],
            scratch["prv"],
            scratch["inside"],
            scratch["locked"],
            scratch["moved"],
            scratch["moved_from"],
            state.max_gain,
            state.slack,
            stall_limit,
        )
        return int(delta), bool(feasible)

    def match_vertices(
        self,
        state: FMPassState,
        order: np.ndarray,
        absorption: bool,
        max_net: int,
        max_cluster_weight: int,
        restrict_parts: np.ndarray | None,
    ) -> np.ndarray:
        """Greedy matching sweep through the JIT kernel."""
        h = state.h
        scratch = state.flat_arrays()
        match = np.full(h.nverts, -1, dtype=np.int64)
        score = scratch["score"]
        score[:] = 0.0
        if restrict_parts is None:
            restrict = np.empty(0, dtype=np.int64)
            has_restrict = False
        else:
            restrict = np.ascontiguousarray(restrict_parts, dtype=np.int64)
            has_restrict = True
        _match_loop(
            h.xpins,
            h.pins,
            h.xnets,
            h.vnets,
            h.ncost,
            h.vwgt,
            h.net_sizes(),
            order,
            match,
            score,
            scratch["touched"],
            absorption,
            max_net,
            max_cluster_weight,
            restrict,
            has_restrict,
        )
        return match

    def merge_identical(
        self, xpins: np.ndarray, pins: np.ndarray, ncost: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Identical-net merging is already vectorized; shared with
        the reference backend."""
        return merge_identical_nets(xpins, pins, ncost)

    def greedy_owners(
        self,
        ptr: np.ndarray,
        flat: np.ndarray,
        extent: int,
        nparts: int,
        fallback_balance: np.ndarray,
    ) -> np.ndarray:
        """Greedy owner assignment through the JIT loop.

        The vectorized prelude (singleton lines, processing order) is
        shared with the reference; only the sequential cut-line loop is
        compiled.
        """
        from repro.kernels.spmv import _owner_finalize, _owner_setup

        owners, multi = _owner_setup(ptr, flat, extent)
        if multi.size:
            _greedy_owner_loop(
                np.ascontiguousarray(ptr),
                np.ascontiguousarray(flat),
                multi,
                nparts,
                owners,
            )
        return _owner_finalize(owners, fallback_balance, nparts)
