"""The pure-Python reference backend.

This is the seed implementation of the three hot loops, relocated from
``partitioner/fm.py`` and ``partitioner/coarsen.py`` and tightened for
interpreter throughput while keeping results bit-identical:

* the move loop runs on plain Python lists (single-element list reads are
  2–3x faster than NumPy scalar indexing) that are cached on the
  :class:`~repro.kernels.state.FMPassState` instead of rebuilt per call;
* the per-move ``best_movable(side, movable)`` *closures* of the seed are
  gone — bucket scans use the flat ``best_movable(side, room, vw)``
  comparison form, and the gain-update path writes the bucket linked
  lists directly instead of going through three method calls per touched
  vertex;
* identical-net merging is vectorized (group nets by size, then detect
  duplicate rows with one ``np.unique`` per distinct size) instead of
  hashing every net in a Python loop.

Every tie-break — LIFO bucket order, side preference by weight, the
balance-metric prefix tie-break, the bucket-cursor tightening quirk — is
preserved exactly; the golden tests pin this.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelBackend
from repro.kernels.kway import compute_kway_setup
from repro.kernels.state import FMPassState, compute_fm_setup

__all__ = ["PythonBackend", "merge_identical_nets"]


def _kw_refile(head, nxt, prv, inside, bgain, offset, u, newg, maxptr):
    """Re-key free vertex ``u`` to gain ``newg`` in the k-way buckets.

    Unlinks ``u`` if it is filed (lazily inserting it otherwise — the
    ``boundary_only`` discipline), LIFO-inserts it at the new bucket
    head, and returns the updated bucket cursor.  Shared by every gain
    touch of the k-way move loop; the 2-way loop inlines this logic for
    speed, but the k-way branches are too many to duplicate it.
    """
    if inside[u]:
        p = prv[u]
        n2 = nxt[u]
        if p != -1:
            nxt[p] = n2
        else:
            head[bgain[u] + offset] = n2
        if n2 != -1:
            prv[n2] = p
    else:
        inside[u] = True
    bgain[u] = newg
    b = newg + offset
    f = head[b]
    nxt[u] = f
    prv[u] = -1
    if f != -1:
        prv[f] = u
    head[b] = u
    if b > maxptr:
        return b
    return maxptr


class PythonBackend(KernelBackend):
    """Reference backend: list-based scalar loops, vectorized merging."""

    name = "python"

    # ------------------------------------------------------------------ #
    # FM move loop.
    # ------------------------------------------------------------------ #
    def fm_pass(
        self,
        state: FMPassState,
        parts: np.ndarray,
        maxw: tuple[int, int],
        cfg,
        rng: np.random.Generator,
    ) -> tuple[int, bool]:
        """One FM pass on Python lists; mutates ``parts`` in place.

        The pass body is deliberately closure-free: nested functions
        would turn every hot local (bucket heads, links, gains, parts)
        into a cell variable, taxing each access in the move loop, so
        the gain-update and balance-metric bodies are written out inline
        at their call sites instead.
        """
        h = state.h
        nverts = h.nverts
        if nverts == 0:
            return 0, True
        mirrors = state.list_mirrors()
        xpins_l: list = mirrors["xpins"]
        pins_l: list = mirrors["pins"]
        xnets_l: list = mirrors["xnets"]
        vnets_l: list = mirrors["vnets"]
        cost_l: list = mirrors["cost"]
        vw_l: list = mirrors["vwgt"]

        # ------------------------------------------------------------- #
        # Vectorized setup (shared across backends), then list mirrors.
        # ------------------------------------------------------------- #
        pc0_np, pc1_np, gain_np, insert_mask = compute_fm_setup(
            h, parts, cfg.boundary_only
        )
        nbuckets = state.nbuckets
        offset = state.max_gain
        bgain = gain_np.tolist()
        insert_order = rng.permutation(nverts)

        parts_l = parts.tolist()
        pc0 = pc0_np.tolist()
        pc1 = pc1_np.tolist()
        locked = [False] * nverts
        w1 = int(np.dot(parts, h.vwgt))
        w0 = state.total_weight - w1
        maxw0, maxw1 = maxw
        # In-pass transit slack: a swap (v out, u in) passes through a
        # state where one side briefly exceeds its ceiling.  Moves may
        # overshoot by at most one maximum vertex weight; only *feasible*
        # prefixes are ever recorded as the pass result.
        slack = state.slack

        # ------------------------------------------------------------- #
        # Bucket seeding, vectorized.  Inserting each masked vertex at
        # the head of bucket (side, gain) in visit order leaves every
        # bucket holding its vertices in *reverse* visit order, so the
        # chains can be built in one stable sort of (side, bucket) over
        # the reversed visit sequence — identical lists and cursors to
        # the per-vertex insertion loop.
        # ------------------------------------------------------------- #
        maxptr = [-1, -1]
        seeds = insert_order[insert_mask[insert_order]]
        if seeds.size:
            rev = seeds[::-1]
            rside = parts[rev]
            rbucket = gain_np[rev] + offset
            key = rside * nbuckets + rbucket
            perm = np.argsort(key, kind="stable")
            seq = rev[perm]
            kseq = key[perm]
            nxt_np = np.full(nverts, -1, dtype=np.int64)
            prv_np = np.full(nverts, -1, dtype=np.int64)
            same = kseq[1:] == kseq[:-1]
            nxt_np[seq[:-1][same]] = seq[1:][same]
            prv_np[seq[1:][same]] = seq[:-1][same]
            head_np = np.full(2 * nbuckets, -1, dtype=np.int64)
            first = np.empty(seq.size, dtype=bool)
            first[0] = True
            np.logical_not(same, out=first[1:])
            head_np[kseq[first]] = seq[first]
            heads0 = head_np[:nbuckets].tolist()
            heads1 = head_np[nbuckets:].tolist()
            nxt = nxt_np.tolist()
            prv = prv_np.tolist()
            inside_np = np.zeros(nverts, dtype=bool)
            inside_np[seeds] = True
            inside = inside_np.tolist()
            on0 = rside == 0
            if on0.any():
                maxptr[0] = int(rbucket[on0].max())
            if not on0.all():
                maxptr[1] = int(rbucket[~on0].max())
        else:
            heads0 = [-1] * nbuckets
            heads1 = [-1] * nbuckets
            nxt = [-1] * nverts
            prv = [-1] * nverts
            inside = [False] * nverts

        # ------------------------------------------------------------- #
        # Best-prefix tracking.
        # ------------------------------------------------------------- #
        best_feasible = w0 <= maxw0 and w1 <= maxw1
        best_cum = 0
        best_len = 0
        best_metric = max(
            w0 / maxw0 if maxw0 else float(w0 > 0),
            w1 / maxw1 if maxw1 else float(w1 > 0),
        )
        cum = 0
        moved: list[int] = []
        moved_append = moved.append
        stall = 0
        stall_limit = max(32, int(cfg.fm_early_exit_frac * nverts))

        # ------------------------------------------------------------- #
        # Move loop.
        # ------------------------------------------------------------- #
        while True:
            best_v = -1
            best_side = -1
            best_g = 0
            # While infeasible, only moves off the overweight side help;
            # the scans below are `GainBuckets.best_movable` written out
            # (same downward walk, same cursor tightening).
            if w1 <= maxw1:  # may move off side 0
                room = maxw1 + slack - w1
                v = -1
                b = maxptr[0]
                while b >= 0:
                    u = heads0[b]
                    if u == -1:
                        maxptr[0] = b - 1  # bucket empty: tighten cursor
                        b -= 1
                        continue
                    while u != -1:
                        if vw_l[u] <= room:
                            v = u
                            break
                        u = nxt[u]
                    if v != -1:
                        break
                    b -= 1
                if v != -1:
                    best_v = v
                    best_side = 0
                    best_g = bgain[v]
            if w0 <= maxw0:  # may move off side 1
                room = maxw0 + slack - w0
                v = -1
                b = maxptr[1]
                while b >= 0:
                    u = heads1[b]
                    if u == -1:
                        maxptr[1] = b - 1
                        b -= 1
                        continue
                    while u != -1:
                        if vw_l[u] <= room:
                            v = u
                            break
                        u = nxt[u]
                    if v != -1:
                        break
                    b -= 1
                if v != -1:
                    g = bgain[v]
                    if (
                        best_v == -1
                        or g > best_g
                        or (g == best_g and w1 > w0)
                    ):
                        best_v = v
                        best_side = 1
                        best_g = g
            if best_v == -1:
                break

            v, s = best_v, best_side
            t = 1 - s
            # Unlink the chosen vertex from its bucket and lock it.
            p = prv[v]
            n2 = nxt[v]
            if p != -1:
                nxt[p] = n2
            else:
                (heads0 if s == 0 else heads1)[bgain[v] + offset] = n2
            if n2 != -1:
                prv[n2] = p
            inside[v] = False
            locked[v] = True

            # Classic FM gain-update rules around the move of v from s to
            # t.  Each ``touch`` block applies a gain delta ``gd`` to a
            # free vertex ``u`` and (re-)files it in the buckets — the
            # former ``gain_touch`` helper written out inline (its locals
            # would otherwise be closure cells taxing the whole loop).
            for n in vnets_l[xnets_l[v]:xnets_l[v + 1]]:
                c = cost_l[n]
                if c == 0:
                    continue
                p0, p1 = xpins_l[n], xpins_l[n + 1]
                pcT = pc1[n] if t == 1 else pc0[n]
                if pcT == 0:
                    for u in pins_l[p0:p1]:
                        if locked[u]:
                            continue
                        if inside[u]:
                            su = parts_l[u]
                            hd = heads0 if su == 0 else heads1
                            g = bgain[u]
                            up = prv[u]
                            un = nxt[u]
                            if up != -1:
                                nxt[up] = un
                            else:
                                hd[g + offset] = un
                            if un != -1:
                                prv[un] = up
                            g += c
                        else:
                            g = bgain[u] + c
                            su = parts_l[u]
                            hd = heads0 if su == 0 else heads1
                            inside[u] = True
                        b = g + offset
                        uf = hd[b]
                        nxt[u] = uf
                        prv[u] = -1
                        if uf != -1:
                            prv[uf] = u
                        hd[b] = u
                        bgain[u] = g
                        if b > maxptr[su]:
                            maxptr[su] = b
                elif pcT == 1:
                    for u in pins_l[p0:p1]:
                        if parts_l[u] == t:
                            if not locked[u]:
                                if inside[u]:
                                    hd = heads0 if t == 0 else heads1
                                    g = bgain[u]
                                    up = prv[u]
                                    un = nxt[u]
                                    if up != -1:
                                        nxt[up] = un
                                    else:
                                        hd[g + offset] = un
                                    if un != -1:
                                        prv[un] = up
                                    g -= c
                                else:
                                    g = bgain[u] - c
                                    hd = heads0 if t == 0 else heads1
                                    inside[u] = True
                                b = g + offset
                                uf = hd[b]
                                nxt[u] = uf
                                prv[u] = -1
                                if uf != -1:
                                    prv[uf] = u
                                hd[b] = u
                                bgain[u] = g
                                if b > maxptr[t]:
                                    maxptr[t] = b
                            break
                if s == 0:
                    pc0[n] -= 1
                    pc1[n] += 1
                    pcF = pc0[n]
                else:
                    pc1[n] -= 1
                    pc0[n] += 1
                    pcF = pc1[n]
                if pcF == 0:
                    for u in pins_l[p0:p1]:
                        if locked[u]:
                            continue
                        if inside[u]:
                            su = parts_l[u]
                            hd = heads0 if su == 0 else heads1
                            g = bgain[u]
                            up = prv[u]
                            un = nxt[u]
                            if up != -1:
                                nxt[up] = un
                            else:
                                hd[g + offset] = un
                            if un != -1:
                                prv[un] = up
                            g -= c
                        else:
                            g = bgain[u] - c
                            su = parts_l[u]
                            hd = heads0 if su == 0 else heads1
                            inside[u] = True
                        b = g + offset
                        uf = hd[b]
                        nxt[u] = uf
                        prv[u] = -1
                        if uf != -1:
                            prv[uf] = u
                        hd[b] = u
                        bgain[u] = g
                        if b > maxptr[su]:
                            maxptr[su] = b
                elif pcF == 1:
                    for u in pins_l[p0:p1]:
                        if u != v and parts_l[u] == s:
                            if not locked[u]:
                                if inside[u]:
                                    hd = heads0 if s == 0 else heads1
                                    g = bgain[u]
                                    up = prv[u]
                                    un = nxt[u]
                                    if up != -1:
                                        nxt[up] = un
                                    else:
                                        hd[g + offset] = un
                                    if un != -1:
                                        prv[un] = up
                                    g += c
                                else:
                                    g = bgain[u] + c
                                    hd = heads0 if s == 0 else heads1
                                    inside[u] = True
                                b = g + offset
                                uf = hd[b]
                                nxt[u] = uf
                                prv[u] = -1
                                if uf != -1:
                                    prv[uf] = u
                                hd[b] = u
                                bgain[u] = g
                                if b > maxptr[s]:
                                    maxptr[s] = b
                            break

            parts_l[v] = t
            wv = vw_l[v]
            if s == 0:
                w0 -= wv
                w1 += wv
            else:
                w1 -= wv
                w0 += wv
            cum += best_g
            moved_append(v)

            feasible_now = w0 <= maxw0 and w1 <= maxw1
            improved = False
            if feasible_now:
                m0 = w0 / maxw0 if maxw0 else float(w0 > 0)
                m1 = w1 / maxw1 if maxw1 else float(w1 > 0)
                metric = m0 if m0 > m1 else m1
                if (
                    not best_feasible
                    or cum > best_cum
                    or (cum == best_cum and metric < best_metric)
                ):
                    best_feasible = True
                    best_cum = cum
                    best_len = len(moved)
                    best_metric = metric
                    improved = True
            if improved:
                stall = 0
            else:
                stall += 1
                if stall > stall_limit and best_feasible:
                    break

        # ------------------------------------------------------------- #
        # Roll back to the best prefix.
        # ------------------------------------------------------------- #
        for v in moved[best_len:]:
            parts_l[v] = 1 - parts_l[v]
        parts[:] = parts_l

        if not best_feasible:
            # No feasible prefix was found: everything is rolled back
            # (best_len == 0), the cut is unchanged, still infeasible.
            return 0, False
        # best_cum is the exact cut reduction of the applied prefix.
        return best_cum, True

    # ------------------------------------------------------------------ #
    # k-way FM move loop (connectivity-(λ−1) metric).
    # ------------------------------------------------------------------ #
    def kway_fm_pass(
        self,
        state: FMPassState,
        parts: np.ndarray,
        nparts: int,
        ceilings: np.ndarray,
        cfg,
        rng: np.random.Generator,
    ) -> tuple[int, bool]:
        """One k-way FM pass on flat Python lists; mutates ``parts``.

        The occupancy matrix and per-vertex connectivity table are flat
        lists indexed ``n * k + p`` / ``v * k + p``; every cached best
        move is kept *exact* after each move (see
        :mod:`repro.kernels.kway`), so the single bucket array is always
        keyed by true gains.  Selection walks buckets downward and takes
        the first vertex whose cached target has room (and, while some
        part is overweight, whose own part is overweight — the
        rebalancing discipline of the 2-way pass).
        """
        h = state.h
        nverts = h.nverts
        k = int(nparts)
        if nverts == 0:
            return 0, True
        occ_np, pw_np, base_np, conn_np, bto_np, bgain_np, mask_np = (
            compute_kway_setup(h, parts, k, ceilings, cfg.boundary_only)
        )
        insert_order = rng.permutation(nverts)

        mirrors = state.list_mirrors()
        xpins_l: list = mirrors["xpins"]
        pins_l: list = mirrors["pins"]
        xnets_l: list = mirrors["xnets"]
        vnets_l: list = mirrors["vnets"]
        cost_l: list = mirrors["cost"]
        vw_l: list = mirrors["vwgt"]

        occ = occ_np.ravel().tolist()
        conn = conn_np.ravel().tolist()
        pw = pw_np.tolist()
        ceil_l = [int(c) for c in ceilings]
        base = base_np.tolist()
        bto = bto_np.tolist()
        bgain = bgain_np.tolist()
        mask_l = mask_np.tolist()
        parts_l = parts.tolist()
        offset = state.max_gain
        slack = state.slack

        head = [-1] * state.nbuckets
        nxt = [-1] * nverts
        prv = [-1] * nverts
        inside = [False] * nverts
        locked = [False] * nverts
        maxptr = -1
        for v in insert_order.tolist():
            if mask_l[v]:
                b = bgain[v] + offset
                f = head[b]
                nxt[v] = f
                prv[v] = -1
                if f != -1:
                    prv[f] = v
                head[b] = v
                inside[v] = True
                if b > maxptr:
                    maxptr = b

        n_over = 0
        for p in range(k):
            if pw[p] > ceil_l[p]:
                n_over += 1
        metric = 0.0
        for p in range(k):
            cl = ceil_l[p]
            m = pw[p] / cl if cl else (1.0 if pw[p] > 0 else 0.0)
            if m > metric:
                metric = m
        best_feasible = n_over == 0
        best_cum = 0
        best_len = 0
        best_metric = metric
        cum = 0
        moved: list[int] = []
        moved_from: list[int] = []
        stall = 0
        stall_limit = max(32, int(cfg.fm_early_exit_frac * nverts))

        while True:
            # --------------------------------------------------------- #
            # Selection: best-gain-first, first admissible vertex wins.
            # --------------------------------------------------------- #
            best_v = -1
            # Transit slack only while feasible: a rebalancing pass that
            # overshoots a target past its ceiling would strand the
            # excess on locked vertices (each vertex moves once), so
            # overweight states fill targets strictly.
            sl = slack if n_over == 0 else 0
            while True:  # rescan after any up-refile (see below)
                raised = False
                b = maxptr
                while b >= 0:
                    u = head[b]
                    if u == -1:
                        # Bucket empty: tighten the cursor — but only if
                        # no up-refile raised it above this scan, else
                        # the refiled vertex would become unreachable.
                        if maxptr == b:
                            maxptr = b - 1
                        b -= 1
                        continue
                    while u != -1:
                        s = parts_l[u]
                        if n_over > 0 and pw[s] <= ceil_l[s]:
                            u = nxt[u]  # rebalancing: only overweight
                            continue
                        wu = vw_l[u]
                        t = bto[u]
                        if pw[t] + wu <= ceil_l[t] + sl:
                            best_v = u
                            break
                        # Cached target is full: re-aim at the best
                        # target *with room* (ties lowest id).  Equal
                        # gain selects immediately; a changed gain
                        # refiles the vertex at its exact new key and
                        # the scan carries on — a down-refile is
                        # re-encountered below, an up-refile (possible
                        # once earlier down-refiles broke the argmax
                        # invariant and room has since shifted) is
                        # picked up by the rescan.  Without the re-aim,
                        # a rebalancing pass stalls the moment one
                        # target part fills up.
                        iu = u * k
                        bt2 = -1
                        bc2 = -1
                        for t2 in range(k):
                            if t2 == s:
                                continue
                            if pw[t2] + wu > ceil_l[t2] + sl:
                                continue
                            cval = conn[iu + t2]
                            if cval > bc2:
                                bc2 = cval
                                bt2 = t2
                        if bt2 == -1:
                            u = nxt[u]  # no part has room for u at all
                            continue
                        newg = base[u] + bc2
                        bto[u] = bt2
                        if newg == bgain[u]:
                            best_v = u
                            break
                        if newg > bgain[u]:
                            raised = True
                        unext = nxt[u]
                        maxptr = _kw_refile(
                            head, nxt, prv, inside, bgain, offset,
                            u, newg, maxptr,
                        )
                        u = unext
                    if best_v != -1:
                        break
                    b -= 1
                # Rescan only when an up-refile may sit above the
                # descent; each rescan follows a strict key increase, so
                # this terminates.
                if best_v != -1 or not raised:
                    break
            if best_v == -1:
                break

            v = best_v
            s = parts_l[v]
            t = bto[v]
            g = bgain[v]
            # Unlink the chosen vertex and lock it.
            p_ = prv[v]
            n2 = nxt[v]
            if p_ != -1:
                nxt[p_] = n2
            else:
                head[g + offset] = n2
            if n2 != -1:
                prv[n2] = p_
            inside[v] = False
            locked[v] = True

            # k-way gain-update rules around the move of v from s to t.
            # Occupancy transitions drive four touch kinds: a net gaining
            # part t (connectivity of every free pin towards t rises), a
            # net whose sole t-pin loses its leave-gain, a net losing
            # part s (connectivity towards s drops; cached bests pointing
            # at s are recomputed), and a net left with a sole s-pin
            # (which gains the leave bonus).
            for n in vnets_l[xnets_l[v]:xnets_l[v + 1]]:
                c = cost_l[n]
                if c == 0:
                    continue
                p0, p1 = xpins_l[n], xpins_l[n + 1]
                nk = n * k
                ot = occ[nk + t]
                if ot == 0:
                    for u in pins_l[p0:p1]:
                        if locked[u]:
                            continue
                        iu = u * k
                        conn[iu + t] += c
                        bu = bto[u]
                        if bu == t:
                            maxptr = _kw_refile(
                                head, nxt, prv, inside, bgain, offset,
                                u, bgain[u] + c, maxptr,
                            )
                        else:
                            # No pin of this net sits in t (ot == 0), so
                            # t != parts[u] holds for every free pin.
                            nc = conn[iu + t]
                            bc = conn[iu + bu]
                            if nc > bc:
                                bto[u] = t
                                maxptr = _kw_refile(
                                    head, nxt, prv, inside, bgain, offset,
                                    u, bgain[u] + nc - bc, maxptr,
                                )
                            elif nc == bc and t < bu:
                                bto[u] = t  # lowest-id tie discipline
                elif ot == 1:
                    for u in pins_l[p0:p1]:
                        if parts_l[u] == t:
                            if not locked[u]:
                                base[u] -= c
                                maxptr = _kw_refile(
                                    head, nxt, prv, inside, bgain, offset,
                                    u, bgain[u] - c, maxptr,
                                )
                            break
                occ[nk + s] -= 1
                occ[nk + t] += 1
                ns = occ[nk + s]
                if ns == 0:
                    for u in pins_l[p0:p1]:
                        if locked[u]:
                            continue
                        iu = u * k
                        conn[iu + s] -= c
                        if bto[u] == s:
                            # Free pins cannot sit in s (ns == 0), so the
                            # recomputed argmax skips parts[u] correctly.
                            pu = parts_l[u]
                            bt2 = -1
                            bc2 = -1
                            for t2 in range(k):
                                if t2 == pu:
                                    continue
                                cval = conn[iu + t2]
                                if cval > bc2:
                                    bc2 = cval
                                    bt2 = t2
                            bto[u] = bt2
                            newg = base[u] + bc2
                            if newg != bgain[u]:
                                maxptr = _kw_refile(
                                    head, nxt, prv, inside, bgain, offset,
                                    u, newg, maxptr,
                                )
                elif ns == 1:
                    for u in pins_l[p0:p1]:
                        if u != v and parts_l[u] == s:
                            if not locked[u]:
                                base[u] += c
                                maxptr = _kw_refile(
                                    head, nxt, prv, inside, bgain, offset,
                                    u, bgain[u] + c, maxptr,
                                )
                            break

            parts_l[v] = t
            wv = vw_l[v]
            if pw[s] > ceil_l[s] and pw[s] - wv <= ceil_l[s]:
                n_over -= 1
            pw[s] -= wv
            if pw[t] <= ceil_l[t] and pw[t] + wv > ceil_l[t]:
                n_over += 1
            pw[t] += wv
            cum += g
            moved.append(v)
            moved_from.append(s)

            improved = False
            if n_over == 0:
                metric = 0.0
                for p in range(k):
                    cl = ceil_l[p]
                    m = pw[p] / cl if cl else (1.0 if pw[p] > 0 else 0.0)
                    if m > metric:
                        metric = m
                if (
                    not best_feasible
                    or cum > best_cum
                    or (cum == best_cum and metric < best_metric)
                ):
                    best_feasible = True
                    best_cum = cum
                    best_len = len(moved)
                    best_metric = metric
                    improved = True
            if improved:
                stall = 0
            else:
                stall += 1
                if stall > stall_limit and best_feasible:
                    break

        # Roll back to the best prefix (each vertex moved at most once).
        for i in range(best_len, len(moved)):
            parts_l[moved[i]] = moved_from[i]
        parts[:] = parts_l

        if not best_feasible:
            return 0, False
        return best_cum, True

    # ------------------------------------------------------------------ #
    # Greedy matching candidate scoring.
    # ------------------------------------------------------------------ #
    def match_vertices(
        self,
        state: FMPassState,
        order: np.ndarray,
        absorption: bool,
        max_net: int,
        max_cluster_weight: int,
        restrict_parts: np.ndarray | None,
    ) -> np.ndarray:
        """Greedy matching sweep on the cached list mirrors."""
        mirrors = state.list_mirrors()
        xpins_l: list = mirrors["xpins"]
        pins_l: list = mirrors["pins"]
        xnets_l: list = mirrors["xnets"]
        vnets_l: list = mirrors["vnets"]
        cost_l: list = mirrors["cost"]
        vw_l: list = mirrors["vwgt"]
        sizes_l: list = mirrors["sizes"]
        nverts = state.h.nverts

        match = [-1] * nverts
        parts_l = (
            restrict_parts.tolist() if restrict_parts is not None else None
        )
        score = [0.0] * nverts
        for v in order.tolist():
            if match[v] != -1:
                continue
            # Candidate weight cap rewritten as a bound on the partner's
            # weight; the scoring loops below are specialized on whether
            # coarsening is part-restricted (the checks are side-effect
            # free, so hoisting the restrict test out of the unrestricted
            # sweep cannot change any score).
            cap = max_cluster_weight - vw_l[v]
            touched: list[int] = []
            tappend = touched.append
            if parts_l is None:
                for n in vnets_l[xnets_l[v]:xnets_l[v + 1]]:
                    sz = sizes_l[n]
                    if sz < 2 or sz > max_net:
                        continue
                    c = cost_l[n]
                    if c == 0:
                        continue
                    w = c / (sz - 1) if absorption else float(c)
                    for u in pins_l[xpins_l[n]:xpins_l[n + 1]]:
                        if u == v or match[u] != -1:
                            continue
                        if vw_l[u] > cap:
                            continue
                        su = score[u]
                        if su == 0.0:
                            tappend(u)
                        score[u] = su + w
            else:
                pv = parts_l[v]
                for n in vnets_l[xnets_l[v]:xnets_l[v + 1]]:
                    sz = sizes_l[n]
                    if sz < 2 or sz > max_net:
                        continue
                    c = cost_l[n]
                    if c == 0:
                        continue
                    w = c / (sz - 1) if absorption else float(c)
                    for u in pins_l[xpins_l[n]:xpins_l[n + 1]]:
                        if u == v or match[u] != -1:
                            continue
                        if parts_l[u] != pv:
                            continue
                        if vw_l[u] > cap:
                            continue
                        su = score[u]
                        if su == 0.0:
                            tappend(u)
                        score[u] = su + w
            if touched:
                best_u = -1
                best_s = 0.0
                for u in touched:
                    s = score[u]
                    # Tie-break towards the lighter candidate: keeps coarse
                    # weights even, which preserves partitionability.
                    if s > best_s or (
                        s == best_s and best_u != -1 and vw_l[u] < vw_l[best_u]
                    ):
                        best_u, best_s = u, s
                    score[u] = 0.0
                if best_u != -1:
                    match[v] = best_u
                    match[best_u] = v
        return np.asarray(match, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Identical-net merging.
    # ------------------------------------------------------------------ #
    def merge_identical(
        self, xpins: np.ndarray, pins: np.ndarray, ncost: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized duplicate-net detection (see module docstring)."""
        return merge_identical_nets(xpins, pins, ncost)


#: Size classes below this many nets, or wider than this many pins, use
#: the per-net hash path: a lexsort there costs more than it saves.
_MERGE_LEXSORT_MIN_NETS = 16
_MERGE_LEXSORT_MAX_SIZE = 64


def merge_identical_nets(
    xpins: np.ndarray, pins: np.ndarray, ncost: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge nets with identical pin sets, summing their costs.

    Pins must be sorted within each net (``contract`` guarantees this), so
    nets are equal iff their pin slices are element-wise identical.  Nets
    of different sizes can never be equal, so nets are grouped by size;
    within a size class, duplicate rows of the ``(k, size)`` pin matrix
    are found with one column-wise ``np.lexsort`` plus an adjacent-row
    comparison — no per-net Python loop on the dominant classes.  (Tiny
    or very wide classes fall back to per-net hashing, where a lexsort
    would cost more than it saves.)  The representative of a duplicate
    group is its lowest net id, and surviving nets keep ascending-id
    order, exactly like the seed's hash-based implementation.
    """
    nnets = xpins.size - 1
    if nnets <= 1:
        return xpins, pins, ncost
    sizes = np.diff(xpins)
    ids = np.arange(nnets, dtype=np.int64)
    rep_of = ids.copy()
    order = np.argsort(sizes, kind="stable")
    sorted_sizes = sizes[order]
    run_starts = np.flatnonzero(
        np.r_[True, sorted_sizes[1:] != sorted_sizes[:-1]]
    )
    run_ends = np.r_[run_starts[1:], sorted_sizes.size]
    for a, b in zip(run_starts.tolist(), run_ends.tolist()):
        if b - a < 2:
            continue  # a size class of one net has nothing to merge
        s = int(sorted_sizes[a])
        nets = order[a:b]
        if s == 0:
            rep_of[nets] = nets.min()
            continue
        if nets.size < _MERGE_LEXSORT_MIN_NETS or s > _MERGE_LEXSORT_MAX_SIZE:
            groups: dict[bytes, int] = {}
            for n in np.sort(nets).tolist():
                key = pins[xpins[n] : xpins[n] + s].tobytes()
                rep_of[n] = groups.setdefault(key, n)
            continue
        rows = pins[xpins[nets][:, None] + np.arange(s, dtype=np.int64)]
        # Row-lexicographic sort, net id as the final tie-break, so the
        # first row of every duplicate group carries the lowest net id.
        keys = (nets,) + tuple(rows[:, j] for j in range(s - 1, -1, -1))
        perm = np.lexsort(keys)
        sr = rows[perm]
        new_group = np.empty(nets.size, dtype=bool)
        new_group[0] = True
        np.any(sr[1:] != sr[:-1], axis=1, out=new_group[1:])
        if new_group.all():
            continue  # all distinct within this size class
        nets_sorted = nets[perm]
        group_first = nets_sorted[new_group]
        rep_of[nets_sorted] = group_first[np.cumsum(new_group) - 1]
    keep = rep_of == ids
    reps = np.flatnonzero(keep)
    if reps.size == nnets:
        return xpins, pins, ncost
    merged_cost = np.zeros(nnets, dtype=np.int64)
    np.add.at(merged_cost, rep_of, ncost)
    new_pins = pins[np.repeat(keep, sizes)]
    new_xpins = np.zeros(reps.size + 1, dtype=np.int64)
    np.cumsum(sizes[reps], out=new_xpins[1:])
    return new_xpins, new_pins, merged_cost[reps]
