"""Abstract interface of a kernel backend.

A backend owns the three scalar hot loops of the partitioner — the FM
move loop, greedy-matching candidate scoring, and identical-net merging —
behind a uniform, state-passing API.  Everything *around* the loops
(vectorized pass setup, RNG consumption, validation, pass orchestration)
is shared, which is what makes backends bit-compatible: for a fixed
hypergraph and seed, every backend must return identical results.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels.state import FMPassState

__all__ = ["KernelBackend"]


class KernelBackend:
    """Base class for kernel backends (see :mod:`repro.kernels`).

    Subclasses set :attr:`name` and implement the three kernels.  The
    contract for every kernel: bit-identical results to the ``"python"``
    reference backend for the same inputs and RNG stream.
    """

    #: Registry key; also the ``PartitionerConfig.kernel_backend`` value.
    name: str = "abstract"

    def fm_state(self, h: Hypergraph) -> FMPassState:
        """The (cached) reusable pass state for ``h`` under this backend."""
        return FMPassState.for_hypergraph(h, self.name)

    # ------------------------------------------------------------------ #
    # The three hot loops.
    # ------------------------------------------------------------------ #
    def fm_pass(
        self,
        state: FMPassState,
        parts: np.ndarray,
        maxw: tuple[int, int],
        cfg,
        rng: np.random.Generator,
    ) -> tuple[int, bool]:
        """One FM pass; mutates ``parts`` in place.

        Returns ``(cut delta, feasible)`` exactly as the pre-backend
        ``_fm_pass`` did: *delta* is the cut reduction of the applied
        best prefix, *feasible* whether the result honours ``maxw``.
        """
        raise NotImplementedError

    def kway_fm_pass(
        self,
        state: FMPassState,
        parts: np.ndarray,
        nparts: int,
        ceilings: np.ndarray,
        cfg,
        rng: np.random.Generator,
    ) -> tuple[int, bool]:
        """One k-way FM pass on the connectivity-(λ−1) metric; mutates
        ``parts`` in place.

        ``parts`` holds part ids in ``[0, nparts)``; ``ceilings`` the
        per-part weight ceilings (length ``nparts``).  The move loop
        maintains per-net part-occupancy counts and exact connectivity
        gains (see :mod:`repro.kernels.kway`), applies the best feasible
        prefix, and returns ``(cut delta, feasible)`` exactly like
        :meth:`fm_pass`.
        """
        raise NotImplementedError

    def match_vertices(
        self,
        state: FMPassState,
        order: np.ndarray,
        absorption: bool,
        max_net: int,
        max_cluster_weight: int,
        restrict_parts: np.ndarray | None,
    ) -> np.ndarray:
        """Greedy matching sweep in the given visit ``order``.

        Returns the partner array (``-1`` for unmatched vertices).
        """
        raise NotImplementedError

    def merge_identical(
        self, xpins: np.ndarray, pins: np.ndarray, ncost: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Merge nets with identical (sorted) pin sets, summing costs."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # The SpMV-side sequential kernel (see :mod:`repro.kernels.spmv`).
    # ------------------------------------------------------------------ #
    def greedy_owners(
        self,
        ptr: np.ndarray,
        flat: np.ndarray,
        extent: int,
        nparts: int,
        fallback_balance: np.ndarray,
    ) -> np.ndarray:
        """Greedy vector-owner assignment for one SpMV phase.

        ``(ptr, flat)`` is the CSR incidence list from
        :func:`repro.kernels.spmv.axis_incidences`.  The default is the
        reference scalar loop; backends may override it with a faster
        implementation under the usual bit-compatibility contract.
        """
        from repro.kernels.spmv import greedy_owners_reference

        return greedy_owners_reference(
            ptr, flat, extent, nparts, fallback_balance
        )
