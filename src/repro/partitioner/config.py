"""Partitioner configuration and the two named presets.

The paper evaluates every method under two hypergraph partitioners
(Mondriaan's internal one, Figs. 4–5 and Table I; and PaToH, Fig. 6 and
Table II) to show its conclusions are partitioner-robust.  We mirror that
with two presets of the same multilevel engine that differ in coarsening
style, search effort, and refinement scope — genuinely different
quality/speed trade-offs, not just different seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitioningError
from repro.kernels import BACKEND_CHOICES, KernelBackend
from repro.utils.executor import EXEC_BACKEND_CHOICES

__all__ = ["PartitionerConfig", "get_config", "PRESETS", "ALGO_CHOICES"]

#: Valid values of ``PartitionerConfig.algo`` / the ``--algo`` CLI flag:
#: how a p-way partitioning is produced (see
#: :func:`repro.core.recursive.partition`).  Defined here (a leaf module)
#: so the config, the CLI, and the sweep engine share one registry;
#: ``repro.core.methods`` re-exports it as ``ALGO_NAMES``.
ALGO_CHOICES = ("recursive", "kway")


@dataclass(frozen=True)
class PartitionerConfig:
    """Tuning knobs of the multilevel bipartitioner.

    Attributes
    ----------
    name:
        Preset identifier (informational).
    coarse_target:
        Stop coarsening once the hypergraph has at most this many vertices.
    min_reduction:
        Abort coarsening early if a level shrinks the vertex count by less
        than this fraction (matching has stalled).
    max_levels:
        Hard cap on the number of coarsening levels.
    matching:
        ``"hcm"`` — heavy-connectivity matching, candidate score is the sum
        of shared net costs; ``"absorption"`` — PaToH-style scaled score
        ``cost / (|net| - 1)``.
    max_net_size_matching:
        Nets larger than this are ignored while scoring matches (dense rows
        would otherwise make matching quadratic).
    cluster_weight_frac:
        A matched pair may weigh at most this fraction of the *smaller*
        part-weight ceiling, keeping the coarsest hypergraph partitionable.
    merge_identical_nets:
        Merge nets with identical pin sets during contraction (costs add).
    n_initial:
        Number of initial-partitioning attempts at the coarsest level
        (alternating greedy growing and random balanced); best kept.
    fm_max_passes:
        Maximum FM passes per refinement call.
    fm_early_exit_frac:
        Abort a pass after ``max(32, frac * nverts)`` consecutive moves
        without improving on the best prefix.
    boundary_only:
        Seed FM's buckets with boundary vertices only (vertices on cut
        nets), inserting interior vertices lazily when touched.
    kernel_backend:
        Which :mod:`repro.kernels` backend runs the scalar hot loops:
        ``"auto"`` (numba when installed, pure Python otherwise),
        ``"python"``, or ``"numba"`` (silently degrades to Python when
        numba is absent).  A live :class:`~repro.kernels.KernelBackend`
        instance is also accepted (the benchmark harness injects frozen
        baselines this way).  Backends are bit-compatible, so this is a
        speed knob only.
    jobs:
        Default worker-process count for recursive bisection
        (:func:`repro.core.recursive.partition`): ``1`` walks the
        recursion tree serially, ``N >= 2`` schedules independent
        subtrees on a process pool, ``0`` means one worker per CPU.
        Like ``kernel_backend`` this is a speed knob only — the
        partition is bit-identical for every value (each bisection's
        randomness is keyed on its tree position).  An explicit
        ``jobs=`` argument to ``partition`` overrides it.
    exec_backend:
        How parallel bisection workers execute and receive their
        submatrices (see :mod:`repro.utils.executor`): ``"auto"``
        (threads over the nogil numba kernels when numba is installed,
        shared-memory worker processes otherwise), ``"thread"``,
        ``"process"`` (shared-memory store), ``"process-pickle"`` (the
        legacy pickled-payload pool), or ``"serial"``.  Bit-identical by
        contract — a delivery knob only.
    algo:
        How ``partition(matrix, nparts)`` produces a p-way partitioning:
        ``"recursive"`` (the paper's recursive-bisection scheme, default)
        or ``"kway"`` (the direct k-way partitioner of
        :mod:`repro.core.kway`, optimizing the connectivity-(λ−1) volume
        in one shot).  Unlike the backend knobs this genuinely changes
        the result — the two algorithms explore different search spaces;
        it does *not* change results across kernel/exec backends or
        ``jobs`` values within either algorithm.
    kway_vcycles:
        Multilevel V-cycles for the direct k-way partitioner
        (``algo="kway"``; see :mod:`repro.core.kway`).  ``0`` (default)
        refines the *flat* hypergraph — the original direct k-way path,
        exactly.  ``N >= 1`` runs the multilevel engine instead: cycle 1
        is a full multilevel construction (unrestricted coarsening,
        coarsest-level k-way construction, k-way-FM refinement at every
        level on the way up — :func:`repro.partitioner.multilevel.
        multilevel_kway`), and each further cycle is an hMetis-style
        *restricted* V-cycle (:func:`repro.partitioner.vcycle.
        kway_vcycle_refine`) that re-coarsens respecting the current
        partitioning and can move whole clusters between parts.  Unlike
        the backend knobs this genuinely changes the result (better
        volume for more time); within a fixed value results stay
        bit-identical across kernel/exec backends and ``jobs``.
    task_timeout:
        Per-task deadline in seconds for pool-executed work (see
        ``docs/robustness.md``): a task still running past it is killed
        by the watchdog and retried/degraded per ``retries``.  ``None``
        (or ``0``) disables deadlines — today's behavior, exactly.
    retries:
        How many times a crashed / timed-out / invalid pool task is
        retried (capped exponential backoff) before the serial
        in-process fallback completes it.  ``0`` disables retry —
        today's behavior, exactly.  Like ``jobs``, both knobs never
        change results: recovery re-runs the same position-keyed seed
        stream, so a retried task is bit-identical to an untroubled one.
    """

    name: str = "mondriaan"
    coarse_target: int = 144
    min_reduction: float = 0.03
    max_levels: int = 48
    matching: str = "hcm"
    max_net_size_matching: int = 400
    cluster_weight_frac: float = 0.35
    merge_identical_nets: bool = True
    n_initial: int = 8
    fm_max_passes: int = 4
    fm_early_exit_frac: float = 0.22
    boundary_only: bool = False
    kernel_backend: str = "auto"
    jobs: int = 1
    exec_backend: str = "auto"
    algo: str = "recursive"
    kway_vcycles: int = 0
    task_timeout: float | None = None
    retries: int = 0

    def __post_init__(self) -> None:
        if self.matching not in ("hcm", "absorption"):
            raise PartitioningError(
                f"unknown matching scheme {self.matching!r}"
            )
        if (
            not isinstance(self.kernel_backend, KernelBackend)
            and self.kernel_backend not in BACKEND_CHOICES
        ):
            # A live backend instance is also accepted — that is how the
            # benchmark harness injects frozen baseline kernels.
            raise PartitioningError(
                f"unknown kernel backend {self.kernel_backend!r}; "
                f"expected one of {BACKEND_CHOICES}"
            )
        if self.coarse_target < 2:
            raise PartitioningError("coarse_target must be at least 2")
        if not 0.0 < self.cluster_weight_frac <= 1.0:
            raise PartitioningError("cluster_weight_frac must be in (0, 1]")
        if self.n_initial < 1:
            raise PartitioningError("n_initial must be at least 1")
        if self.fm_max_passes < 1:
            raise PartitioningError("fm_max_passes must be at least 1")
        if self.jobs < 0:
            raise PartitioningError(
                "jobs must be non-negative (0 = one worker per CPU)"
            )
        if self.exec_backend not in EXEC_BACKEND_CHOICES:
            raise PartitioningError(
                f"unknown execution backend {self.exec_backend!r}; "
                f"expected one of {EXEC_BACKEND_CHOICES}"
            )
        if self.algo not in ALGO_CHOICES:
            raise PartitioningError(
                f"unknown partitioning algorithm {self.algo!r}; "
                f"expected one of {ALGO_CHOICES}"
            )
        if self.kway_vcycles < 0:
            raise PartitioningError(
                "kway_vcycles must be non-negative (0 = flat direct k-way)"
            )
        if self.task_timeout is not None and self.task_timeout < 0:
            raise PartitioningError(
                "task_timeout must be non-negative (0/None = no deadline)"
            )
        if self.retries < 0:
            raise PartitioningError(
                "retries must be non-negative (0 = no retry)"
            )


PRESETS: dict[str, PartitionerConfig] = {
    "mondriaan": PartitionerConfig(name="mondriaan"),
    "patoh": PartitionerConfig(
        name="patoh",
        coarse_target=72,
        matching="absorption",
        max_net_size_matching=256,
        n_initial=14,
        fm_max_passes=7,
        fm_early_exit_frac=0.3,
        boundary_only=True,
    ),
}


def get_config(config: "PartitionerConfig | str") -> PartitionerConfig:
    """Resolve a preset name or pass through an explicit config object."""
    if isinstance(config, PartitionerConfig):
        return config
    if isinstance(config, str):
        try:
            return PRESETS[config]
        except KeyError:
            raise PartitioningError(
                f"unknown partitioner preset {config!r}; "
                f"available: {sorted(PRESETS)}"
            ) from None
    raise PartitioningError(
        f"config must be a PartitionerConfig or preset name, got "
        f"{type(config).__name__}"
    )
