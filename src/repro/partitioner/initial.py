"""Initial partitioning of the coarsest hypergraph.

Runs ``config.n_initial`` attempts alternating two constructions and keeps
the FM-refined best:

* **greedy net growing** — seed a random vertex in part 0 and grow the part
  through incident nets (breadth-first over the net/pin incidence) until the
  part-0 weight reaches its share of the total; vertices left over go to
  part 1.  This biases towards connected, low-cut halves.
* **random balanced** — shuffle vertices, then assign each to the side with
  the most remaining capacity (first-fit towards per-side ceilings).

Each construction is followed by FM refinement to convergence; candidates
are ranked by (feasible, cut, balance metric).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import KernelBackend
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.fm import FMResult, fm_refine

__all__ = ["initial_partition", "greedy_grow", "random_balanced"]


def random_balanced(
    h: Hypergraph,
    max_weights: tuple[int, int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Random construction: shuffled first-fit towards the side ceilings."""
    parts = np.zeros(h.nverts, dtype=np.int64)
    # Target weights proportional to the ceilings (handles asymmetric splits).
    total = h.total_weight()
    cap0, cap1 = max_weights
    share0 = total * (cap0 / (cap0 + cap1)) if (cap0 + cap1) else 0.0
    w0 = 0.0
    vw = h.vwgt
    for v in rng.permutation(h.nverts).tolist():
        # Assign to side 0 while it lags its proportional share.
        if w0 < share0:
            parts[v] = 0
            w0 += vw[v]
        else:
            parts[v] = 1
    return parts


def greedy_grow(
    h: Hypergraph,
    max_weights: tuple[int, int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy net-growing construction from a random seed vertex."""
    nverts = h.nverts
    parts = np.ones(nverts, dtype=np.int64)
    if nverts == 0:
        return parts
    total = h.total_weight()
    cap0, cap1 = max_weights
    target0 = total * (cap0 / (cap0 + cap1)) if (cap0 + cap1) else 0.0
    vw = h.vwgt.tolist()
    xnets = h.xnets.tolist()
    vnets = h.vnets.tolist()
    xpins = h.xpins.tolist()
    pins = h.pins.tolist()

    in0 = [False] * nverts
    net_seen = [False] * h.nnets
    w0 = 0
    order = rng.permutation(nverts).tolist()
    cursor = 0
    frontier: deque[int] = deque()
    while w0 < target0:
        if not frontier:
            # Find a fresh (possibly disconnected) seed.
            while cursor < nverts and in0[order[cursor]]:
                cursor += 1
            if cursor == nverts:
                break
            frontier.append(order[cursor])
        v = frontier.popleft()
        if in0[v]:
            continue
        in0[v] = True
        w0 += vw[v]
        parts[v] = 0
        if w0 >= target0:
            break
        for i in range(xnets[v], xnets[v + 1]):
            n = vnets[i]
            if net_seen[n]:
                continue
            net_seen[n] = True
            for k in range(xpins[n], xpins[n + 1]):
                u = pins[k]
                if not in0[u]:
                    frontier.append(u)
    return parts


def initial_partition(
    h: Hypergraph,
    max_weights: tuple[int, int],
    config: PartitionerConfig,
    rng: np.random.Generator,
    backend: KernelBackend | None = None,
) -> FMResult:
    """Best-of-``n_initial`` construction + FM refinement.

    Returns the best :class:`~repro.partitioner.fm.FMResult`, ranked by
    feasibility first, then cut, then balance.  All ``n_initial``
    refinements run on the same hypergraph, so they share one reusable
    kernel pass state.
    """
    if h.nverts == 0:
        return FMResult(
            parts=np.zeros(0, dtype=np.int64),
            cut=0,
            feasible=True,
            passes=0,
            improvement=0,
        )
    best: FMResult | None = None
    best_key: tuple | None = None
    for attempt in range(config.n_initial):
        if attempt % 2 == 0:
            parts = greedy_grow(h, max_weights, rng)
        else:
            parts = random_balanced(h, max_weights, rng)
        result = fm_refine(h, parts, max_weights, config, rng, backend=backend)
        w1 = int(np.dot(result.parts, h.vwgt))
        w0 = h.total_weight() - w1
        balance = max(
            w0 / max_weights[0] if max_weights[0] else float(w0 > 0),
            w1 / max_weights[1] if max_weights[1] else float(w1 > 0),
        )
        key = (not result.feasible, result.cut, balance)
        if best_key is None or key < best_key:
            best, best_key = result, key
    assert best is not None
    return best
