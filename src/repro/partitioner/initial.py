"""Initial partitioning of the coarsest hypergraph.

Runs ``config.n_initial`` attempts alternating two constructions and keeps
the FM-refined best:

* **greedy net growing** — seed a random vertex in part 0 and grow the part
  through incident nets (breadth-first over the net/pin incidence) until the
  part-0 weight reaches its share of the total; vertices left over go to
  part 1.  This biases towards connected, low-cut halves.
* **random balanced** — shuffle vertices, then assign each to the side with
  the most remaining capacity (first-fit towards per-side ceilings).

Each construction is followed by FM refinement to convergence; candidates
are ranked by (feasible, cut, balance metric).

The k-way constructions live here too (:func:`greedy_kway_vertex_parts`
and the best-of-restarts :func:`initial_kway_parts`): the direct k-way
pipeline (:mod:`repro.core.kway`) and the k-way multilevel engine
(:func:`repro.partitioner.multilevel.multilevel_kway`) share them, and
this module sits below both in the import graph.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import KernelBackend
from repro.partitioner.config import PartitionerConfig
from repro.partitioner.fm import FMResult, fm_refine

__all__ = [
    "initial_partition",
    "greedy_grow",
    "random_balanced",
    "greedy_kway_vertex_parts",
    "greedy_kway_grow",
    "initial_kway_parts",
]


def random_balanced(
    h: Hypergraph,
    max_weights: tuple[int, int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Random construction: shuffled first-fit towards the side ceilings."""
    parts = np.zeros(h.nverts, dtype=np.int64)
    # Target weights proportional to the ceilings (handles asymmetric splits).
    total = h.total_weight()
    cap0, cap1 = max_weights
    share0 = total * (cap0 / (cap0 + cap1)) if (cap0 + cap1) else 0.0
    w0 = 0.0
    vw = h.vwgt
    for v in rng.permutation(h.nverts).tolist():
        # Assign to side 0 while it lags its proportional share.
        if w0 < share0:
            parts[v] = 0
            w0 += vw[v]
        else:
            parts[v] = 1
    return parts


def greedy_grow(
    h: Hypergraph,
    max_weights: tuple[int, int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Greedy net-growing construction from a random seed vertex."""
    nverts = h.nverts
    parts = np.ones(nverts, dtype=np.int64)
    if nverts == 0:
        return parts
    total = h.total_weight()
    cap0, cap1 = max_weights
    target0 = total * (cap0 / (cap0 + cap1)) if (cap0 + cap1) else 0.0
    vw = h.vwgt.tolist()
    xnets = h.xnets.tolist()
    vnets = h.vnets.tolist()
    xpins = h.xpins.tolist()
    pins = h.pins.tolist()

    in0 = [False] * nverts
    net_seen = [False] * h.nnets
    w0 = 0
    order = rng.permutation(nverts).tolist()
    cursor = 0
    frontier: deque[int] = deque()
    while w0 < target0:
        if not frontier:
            # Find a fresh (possibly disconnected) seed.
            while cursor < nverts and in0[order[cursor]]:
                cursor += 1
            if cursor == nverts:
                break
            frontier.append(order[cursor])
        v = frontier.popleft()
        if in0[v]:
            continue
        in0[v] = True
        w0 += vw[v]
        parts[v] = 0
        if w0 >= target0:
            break
        for i in range(xnets[v], xnets[v + 1]):
            n = vnets[i]
            if net_seen[n]:
                continue
            net_seen[n] = True
            for k in range(xpins[n], xpins[n + 1]):
                u = pins[k]
                if not in0[u]:
                    frontier.append(u)
    return parts


def initial_partition(
    h: Hypergraph,
    max_weights: tuple[int, int],
    config: PartitionerConfig,
    rng: np.random.Generator,
    backend: KernelBackend | None = None,
) -> FMResult:
    """Best-of-``n_initial`` construction + FM refinement.

    Returns the best :class:`~repro.partitioner.fm.FMResult`, ranked by
    feasibility first, then cut, then balance.  All ``n_initial``
    refinements run on the same hypergraph, so they share one reusable
    kernel pass state.
    """
    if h.nverts == 0:
        return FMResult(
            parts=np.zeros(0, dtype=np.int64),
            cut=0,
            feasible=True,
            passes=0,
            improvement=0,
        )
    best: FMResult | None = None
    best_key: tuple | None = None
    for attempt in range(config.n_initial):
        if attempt % 2 == 0:
            parts = greedy_grow(h, max_weights, rng)
        else:
            parts = random_balanced(h, max_weights, rng)
        result = fm_refine(h, parts, max_weights, config, rng, backend=backend)
        w1 = int(np.dot(result.parts, h.vwgt))
        w0 = h.total_weight() - w1
        balance = max(
            w0 / max_weights[0] if max_weights[0] else float(w0 > 0),
            w1 / max_weights[1] if max_weights[1] else float(w1 > 0),
        )
        key = (not result.feasible, result.cut, balance)
        if best_key is None or key < best_key:
            best, best_key = result, key
    assert best is not None
    return best


def greedy_kway_vertex_parts(
    h: Hypergraph,
    nparts: int,
    ceilings: np.ndarray,
    rng: np.random.Generator,
    strategy: str = "balance",
) -> np.ndarray:
    """Balanced greedy initial k-way assignment of the vertices.

    Heaviest vertex first (ties shuffled by ``rng`` so restarts differ);
    when no part has room the lightest part overall takes the vertex —
    the start is then infeasible and the k-way FM pass drives it
    feasible with forced moves.  Two placement disciplines:

    ``"balance"``
        Each vertex into the lightest part with room (ties to the lowest
        part id) — longest-processing-time, keeping ``max_k w_k`` near
        the eqn-(1) ceiling and the start maximally even.
    ``"pack"``
        First-fit decreasing: each vertex into the lowest-id part with
        room.  Packs early parts tight and leaves the tail parts slack —
        worse spread, but it fits tight instances (nearly uniform heavy
        weights against a snug ceiling) that defeat the even spread.
    """
    if strategy not in ("balance", "pack"):
        raise PartitioningError(
            f"unknown initial-assignment strategy {strategy!r}"
        )
    pack = strategy == "pack"
    k = int(nparts)
    nverts = h.nverts
    perm = rng.permutation(nverts)
    order = perm[np.argsort(-h.vwgt[perm], kind="stable")]
    ceil_l = [int(c) for c in ceilings]
    vw_l = h.vwgt.tolist()
    pw = [0] * k
    out = np.empty(nverts, dtype=np.int64)
    for v in order.tolist():
        wv = vw_l[v]
        best = -1
        best_w = -1
        any_p = 0
        any_w = pw[0]
        for p in range(k):
            w = pw[p]
            if w < any_w:
                any_w = w
                any_p = p
            if w + wv <= ceil_l[p]:
                if pack:
                    best = p
                    break
                if best == -1 or w < best_w:
                    best = p
                    best_w = w
        if best == -1:
            best = any_p
        out[v] = best
        pw[best] += wv
    return out


def greedy_kway_grow(
    h: Hypergraph,
    nparts: int,
    ceilings: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Net-growing k-way construction — the k-way :func:`greedy_grow`.

    Grows parts ``0 .. nparts-2`` one at a time: seed a random
    unassigned vertex, expand breadth-first through incident nets until
    the part reaches its proportional share of the *remaining* weight,
    then move on; leftovers form the last part.  Topology-aware where
    :func:`greedy_kway_vertex_parts` is weight-only — on structured
    instances (bands, grids) the grown parts are connected, low-cut
    regions, which the weight-only spread cannot produce from any
    tie-break order.  Parts may overshoot their share by at most one
    vertex; feasibility is the caller's problem (ranked restarts + the
    FM rebalancing pass).
    """
    k = int(nparts)
    nverts = h.nverts
    parts = np.full(nverts, k - 1, dtype=np.int64)
    if nverts == 0 or k < 2:
        parts[:] = 0 if k >= 1 else parts
        return parts
    ceil_l = [int(c) for c in ceilings]
    vw = h.vwgt.tolist()
    xnets = h.xnets.tolist()
    vnets = h.vnets.tolist()
    xpins = h.xpins.tolist()
    pins = h.pins.tolist()

    assigned = [False] * nverts
    order = rng.permutation(nverts).tolist()
    cursor = 0
    remaining = float(h.total_weight())
    for p in range(k - 1):
        tail_cap = sum(ceil_l[p:]) or 1
        target = remaining * (ceil_l[p] / tail_cap)
        w = 0
        net_seen = [False] * h.nnets
        frontier: deque[int] = deque()
        while w < target:
            if not frontier:
                # Find a fresh (possibly disconnected) seed.
                while cursor < nverts and assigned[order[cursor]]:
                    cursor += 1
                if cursor == nverts:
                    break
                frontier.append(order[cursor])
            v = frontier.popleft()
            if assigned[v]:
                continue
            assigned[v] = True
            parts[v] = p
            w += vw[v]
            if w >= target:
                break
            for i in range(xnets[v], xnets[v + 1]):
                n = vnets[i]
                if net_seen[n]:
                    continue
                net_seen[n] = True
                for j in range(xpins[n], xpins[n + 1]):
                    u = pins[j]
                    if not assigned[u]:
                        frontier.append(u)
        remaining -= w
    return parts


def initial_kway_parts(
    h: Hypergraph,
    nparts: int,
    ceilings: np.ndarray,
    config: PartitionerConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Best-of-restarts greedy k-way construction (no refinement).

    A feasible start provably stays feasible through the FM passes (the
    best-prefix bookkeeping never records an infeasible state once one
    feasible state exists), so the greedy assignment is retried with
    fresh tie-break orders — up to ``config.n_initial`` times, mirroring
    the coarsest-level restarts of the 2-way engine — until the packing
    fits, alternating the even-spread and first-fit disciplines (an
    instance of nearly uniform heavy weights against a snug ceiling
    defeats the even spread on *every* order, but first-fit packs it);
    the least-overweight attempt is returned otherwise and the caller's
    FM rebalancing pass gets to repair it.
    """
    best: np.ndarray | None = None
    best_over: int | None = None
    for attempt in range(max(1, config.n_initial)):
        vparts = greedy_kway_vertex_parts(
            h, nparts, ceilings, rng,
            strategy="balance" if attempt % 2 == 0 else "pack",
        )
        pw = np.bincount(vparts, weights=h.vwgt, minlength=nparts)
        over = int((pw - np.asarray(ceilings)).max(initial=0))
        if best_over is None or over < best_over:
            best, best_over = vparts, over
        if over <= 0:
            break
    assert best is not None
    return best
