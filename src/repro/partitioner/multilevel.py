"""The multilevel V-cycle driver.

Coarsen until the hypergraph is small (or matching stalls), partition the
coarsest level with best-of-many construction + FM, then project the
partition back up level by level, refining with FM at each level — the
scheme shared by Mondriaan, PaToH, hMetis, and MLpart (paper Section II).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import connectivity_volume, part_weights
from repro.kernels import KernelBackend, resolve_backend
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.partitioner.coarsen import CoarseLevel, coarsen_level
from repro.partitioner.config import PartitionerConfig, get_config
from repro.partitioner.fm import (
    FMResult,
    KWayFMResult,
    fm_refine,
    kway_rebalance,
    kway_refine,
)
from repro.partitioner.initial import (
    greedy_kway_grow,
    greedy_kway_vertex_parts,
    initial_partition,
)
from repro.utils.deadline import Deadline, Degraded
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "multilevel_bipartition",
    "multilevel_kway",
    "recursive_kway_parts",
]

# Observability (see docs/observability.md): coarsening depth per
# engine, never consulted by the algorithm.
_COARSEN_LEVELS = _metrics.counter(
    "repro_coarsen_levels_total",
    "Coarsening levels built by the multilevel engines",
    ("engine",),
)


def multilevel_bipartition(
    h: Hypergraph,
    max_weights: tuple[int, int],
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    backend: KernelBackend | None = None,
) -> FMResult:
    """Bipartition ``h`` under per-side weight ceilings ``max_weights``.

    Returns an :class:`~repro.partitioner.fm.FMResult` for the finest level
    (``parts`` has one entry per vertex of ``h``).  The kernel backend is
    resolved once (from ``config.kernel_backend`` unless given) and shared
    by every matching sweep and FM call of the run.
    """
    cfg = get_config(config)
    rng = as_generator(seed)
    if backend is None:
        backend = resolve_backend(cfg.kernel_backend)

    # ------------------------------------------------------------------ #
    # Coarsening phase.
    # ------------------------------------------------------------------ #
    # Cap cluster weights so the coarsest level stays partitionable well
    # within the ceilings.
    cluster_cap = max(
        1, int(cfg.cluster_weight_frac * min(max_weights[0], max_weights[1]))
    )
    levels: list[CoarseLevel] = []
    cur = h
    with _trace.span("multilevel.coarsen") as sp:
        while cur.nverts > cfg.coarse_target and len(levels) < cfg.max_levels:
            level = coarsen_level(cur, cfg, rng, cluster_cap, backend=backend)
            reduction = 1.0 - level.coarse.nverts / cur.nverts
            if reduction < cfg.min_reduction:
                break  # matching stalled; further levels would be wasted work
            levels.append(level)
            cur = level.coarse
        sp.set(levels=len(levels), coarse_nverts=cur.nverts)
    _COARSEN_LEVELS.labels(engine="bi").inc(len(levels))

    # ------------------------------------------------------------------ #
    # Initial partitioning at the coarsest level.
    # ------------------------------------------------------------------ #
    with _trace.span("multilevel.initial"):
        result = initial_partition(
            cur, max_weights, cfg, rng, backend=backend
        )
    parts = result.parts

    # ------------------------------------------------------------------ #
    # Uncoarsening: project and refine at every level.
    # ------------------------------------------------------------------ #
    for i, level in enumerate(reversed(levels)):
        parts = parts[level.cmap]
        with _trace.span("multilevel.uncoarsen_level", level=i):
            result = fm_refine(
                level.fine, parts, max_weights, cfg, rng, backend=backend
            )
        parts = result.parts

    if not levels:
        return result
    return result


def recursive_kway_parts(
    h: Hypergraph,
    nparts: int,
    ceilings: np.ndarray,
    config: PartitionerConfig,
    rng: np.random.Generator,
    backend: KernelBackend | None = None,
) -> np.ndarray:
    """Recursive-bisection construction of an initial k-way assignment.

    Splits the part range ``[0, nparts)`` in half, bipartitions ``h``
    under side ceilings summed from each half's per-part ceilings,
    induces the two sub-hypergraphs
    (:meth:`~repro.hypergraph.hypergraph.Hypergraph.induce`), and
    recurses — depth-first, left side first, so the vertex order and
    RNG stream are deterministic.  Sub-hypergraphs above
    ``config.coarse_target`` vertices are bipartitioned with the full
    multilevel engine (:func:`multilevel_bipartition`); smaller ones
    with the flat 2-way initial machinery (:func:`~repro.partitioner.
    initial.initial_partition`).  Hierarchically nested boundaries make
    this by far the strongest k-way construction on structured
    instances; it is meant for the *coarse* hypergraphs of the k-way
    multilevel engine's coarsest level, where the FM work is cheap.

    The bisections run under a lightened search budget (two initial
    attempts, at most two FM passes): the construction only has to
    place boundaries approximately — every level of the k-way
    uncoarsening refines them afterwards.
    """
    config = dataclasses.replace(
        config,
        n_initial=2,
        fm_max_passes=min(2, config.fm_max_passes),
    )
    parts = np.zeros(h.nverts, dtype=np.int64)

    def split(sub: Hypergraph, ids: np.ndarray, lo: int, hi: int) -> None:
        k = hi - lo
        if k <= 1 or ids.size == 0:
            parts[ids] = lo
            return
        k0 = k // 2
        cap0 = int(np.sum(ceilings[lo : lo + k0]))
        cap1 = int(np.sum(ceilings[lo + k0 : hi]))
        if sub.total_weight() > cap0 + cap1:
            # An ancestor bisection overflowed this subtree's combined
            # ceilings (FM kept an infeasible side).  No feasible
            # bisection exists; split by weight alone and let the
            # candidate ranking / FM rebalancing judge the result.
            two = greedy_kway_vertex_parts(
                sub, 2, np.array([cap0, cap1], dtype=np.int64), rng
            )
            left = two == 0
        elif sub.nverts > config.coarse_target:
            result = multilevel_bipartition(
                sub, (cap0, cap1), config, rng, backend=backend
            )
            left = result.parts == 0
        else:
            result = initial_partition(
                sub, (cap0, cap1), config, rng, backend=backend
            )
            left = result.parts == 0
        lids, rids = ids[left], ids[~left]
        split(sub.induce(np.flatnonzero(left)), lids, lo, lo + k0)
        split(sub.induce(np.flatnonzero(~left)), rids, lo + k0, hi)

    split(h, np.arange(h.nverts, dtype=np.int64), 0, int(nparts))
    return parts


def multilevel_kway(
    h: Hypergraph,
    nparts: int,
    ceilings: np.ndarray,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    backend: KernelBackend | None = None,
    deadline: Deadline | None = None,
) -> KWayFMResult:
    """Partition ``h`` into ``nparts`` parts under per-part ``ceilings``.

    The direct k-way analogue of :func:`multilevel_bipartition`: coarsen
    with *unrestricted* matching until at most
    ``max(config.coarse_target, 8 * nparts)`` vertices remain (enough
    headroom that the coarsest level stays k-way partitionable), build
    the coarsest partitioning from ranked construction candidates
    (recursive bisection, net growing, greedy spread — see below) plus
    k-way FM (:func:`~repro.partitioner.fm.kway_refine`), then project
    up level by level, k-way-refining each.  The connectivity-(λ−1) cut
    is the objective throughout — no intermediate two-sided proxy.

    Returns a :class:`~repro.partitioner.fm.KWayFMResult` for the finest
    level.  Requires ``nparts >= 2`` (``nparts == 1`` has nothing to
    optimize — callers short-circuit it).

    An expired ``deadline`` degrades each phase at its natural boundary:
    coarsening stops adding levels, the construction keeps the cheapest
    feasible-ish candidate instead of ranking every restart, and
    uncoarsening projects the remaining levels *without* refining them —
    always returning a complete finest-level assignment, flagged via the
    result's ``degraded`` record.
    """
    cfg = get_config(config)
    rng = as_generator(seed)
    nparts = int(nparts)
    if nparts < 2:
        raise PartitioningError(
            f"multilevel_kway needs nparts >= 2, got {nparts}"
        )
    ceilings = np.ascontiguousarray(ceilings, dtype=np.int64)
    if ceilings.shape != (nparts,):
        raise PartitioningError(
            f"ceilings must have shape ({nparts},), got {ceilings.shape}"
        )
    if backend is None:
        backend = resolve_backend(cfg.kernel_backend)
    if h.nverts == 0:
        return KWayFMResult(
            parts=np.zeros(0, dtype=np.int64),
            cut=0,
            feasible=True,
            passes=0,
            improvement=0,
        )

    # ------------------------------------------------------------------ #
    # Coarsening phase (unrestricted — there is no partitioning yet).
    # Granularity must scale with the part count: the coarsest level
    # keeps ~8 vertices per part and clusters stay well under the
    # per-part ceiling (a quarter of the 2-way cap), or the initial
    # k-way construction cannot place boundaries anywhere useful.
    # ------------------------------------------------------------------ #
    cluster_cap = max(
        1, int(cfg.cluster_weight_frac * int(ceilings.min())) // 4
    )
    coarse_target = max(cfg.coarse_target, 8 * nparts)
    cut_short = False  # any phase stopped at a deadline boundary
    levels: list[CoarseLevel] = []
    cur = h
    with _trace.span("multilevel_kway.coarsen") as sp:
        while cur.nverts > coarse_target and len(levels) < cfg.max_levels:
            if deadline is not None and deadline.expired():
                cut_short = True
                sp.event("deadline", where="coarsen")
                break  # partition whatever granularity we reached
            level = coarsen_level(cur, cfg, rng, cluster_cap, backend=backend)
            reduction = 1.0 - level.coarse.nverts / cur.nverts
            if reduction < cfg.min_reduction:
                break  # matching stalled; further levels would be wasted work
            levels.append(level)
            cur = level.coarse
        sp.set(levels=len(levels), coarse_nverts=cur.nverts)
    _COARSEN_LEVELS.labels(engine="kway").inc(len(levels))

    # ------------------------------------------------------------------ #
    # Initial k-way partitioning at the coarsest level: one
    # recursive-bisection construction (hierarchically nested
    # boundaries — the quality anchor) plus cheap restarts alternating
    # net growing (topology — connected, low-cut parts) and the
    # weight-only greedy spread (balance — fits snug ceilings the
    # others can overshoot), ranked by (overshoot, cut) *after* the
    # swap-capable weight repair — a topology-aware candidate a few
    # percent overweight almost always beats a balanced-but-scattered
    # one once repaired, so ranking raw overshoot first would throw the
    # best cuts away.  The coarsest level is small, so repairing and
    # scoring every candidate's exact connectivity cut is cheap.
    # ------------------------------------------------------------------ #
    best: np.ndarray | None = None
    best_key: tuple | None = None
    initial_span = _trace.span("multilevel_kway.initial")
    for attempt in range(max(2, cfg.n_initial)):
        if deadline is not None and deadline.expired():
            cut_short = True
            if best is None:
                # Never return empty-handed: the weight-only greedy
                # spread is near-instant and always yields a complete
                # assignment; the repair keeps it as balanced as single
                # moves and swaps can.
                best = greedy_kway_vertex_parts(cur, nparts, ceilings, rng)
                kway_rebalance(cur, best, nparts, ceilings)
            break
        if attempt == 0:
            cand = recursive_kway_parts(
                cur, nparts, ceilings, cfg, rng, backend=backend
            )
        elif attempt % 2 == 1:
            cand = greedy_kway_grow(cur, nparts, ceilings, rng)
        else:
            cand = greedy_kway_vertex_parts(
                cur, nparts, ceilings, rng,
                strategy="balance" if (attempt // 2) % 2 == 1 else "pack",
            )
        kway_rebalance(cur, cand, nparts, ceilings)
        over = int(
            (part_weights(cur, cand, nparts) - ceilings).max(initial=0)
        )
        key = (over, connectivity_volume(cur, cand))
        if best_key is None or key < best_key:
            best, best_key = cand, key
    initial_span.end()
    assert best is not None
    with _trace.span("multilevel_kway.coarsest_refine"):
        result = kway_refine(
            cur, best, nparts, ceilings, cfg, rng, backend=backend,
            deadline=deadline,
        )
    parts = result.parts
    cut_short = cut_short or result.degraded is not None

    # ------------------------------------------------------------------ #
    # Uncoarsening: project and k-way-refine at every level.  One pass
    # per intermediate level — the hierarchy itself provides the
    # repeated refinement (every vertex is revisited at each of the
    # O(log n) levels), so extra same-level passes buy little cut for a
    # lot of time; only the finest level gets the full pass budget.
    # ------------------------------------------------------------------ #
    refined_levels = 0
    skipped_levels = 0
    for i, level in enumerate(reversed(levels)):
        parts = parts[level.cmap]
        if deadline is not None and deadline.expired():
            # Projection alone keeps the assignment complete and its
            # per-part weights identical — only the per-level polish is
            # forfeited.
            skipped_levels += 1
            _trace.event("level_skipped", level=i)
            continue
        finest = i == len(levels) - 1
        with _trace.span("multilevel_kway.uncoarsen_level", level=i,
                         nverts=level.fine.nverts):
            result = kway_refine(
                level.fine, parts, nparts, ceilings, cfg, rng,
                max_passes=2 if finest else 1, backend=backend,
                deadline=deadline,
            )
        parts = result.parts
        refined_levels += 1
    if skipped_levels or cut_short:
        # ``result`` may describe a coarser level than ``parts`` (a
        # skipped refinement leaves only the projection); rebuild the
        # outcome from the finest-level vector with its true cut.
        return KWayFMResult(
            parts=parts,
            cut=connectivity_volume(h, parts),
            feasible=bool(
                np.all(part_weights(h, parts, nparts) <= ceilings)
            ),
            passes=result.passes,
            improvement=result.improvement,
            degraded=Degraded(
                "multilevel", completed=refined_levels,
                skipped=skipped_levels,
            ),
        )
    return result
