"""The multilevel V-cycle driver.

Coarsen until the hypergraph is small (or matching stalls), partition the
coarsest level with best-of-many construction + FM, then project the
partition back up level by level, refining with FM at each level — the
scheme shared by Mondriaan, PaToH, hMetis, and MLpart (paper Section II).
"""

from __future__ import annotations

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import KernelBackend, resolve_backend
from repro.partitioner.coarsen import CoarseLevel, coarsen_level
from repro.partitioner.config import PartitionerConfig, get_config
from repro.partitioner.fm import FMResult, fm_refine
from repro.partitioner.initial import initial_partition
from repro.utils.rng import SeedLike, as_generator

__all__ = ["multilevel_bipartition"]


def multilevel_bipartition(
    h: Hypergraph,
    max_weights: tuple[int, int],
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    backend: KernelBackend | None = None,
) -> FMResult:
    """Bipartition ``h`` under per-side weight ceilings ``max_weights``.

    Returns an :class:`~repro.partitioner.fm.FMResult` for the finest level
    (``parts`` has one entry per vertex of ``h``).  The kernel backend is
    resolved once (from ``config.kernel_backend`` unless given) and shared
    by every matching sweep and FM call of the run.
    """
    cfg = get_config(config)
    rng = as_generator(seed)
    if backend is None:
        backend = resolve_backend(cfg.kernel_backend)

    # ------------------------------------------------------------------ #
    # Coarsening phase.
    # ------------------------------------------------------------------ #
    # Cap cluster weights so the coarsest level stays partitionable well
    # within the ceilings.
    cluster_cap = max(
        1, int(cfg.cluster_weight_frac * min(max_weights[0], max_weights[1]))
    )
    levels: list[CoarseLevel] = []
    cur = h
    while cur.nverts > cfg.coarse_target and len(levels) < cfg.max_levels:
        level = coarsen_level(cur, cfg, rng, cluster_cap, backend=backend)
        reduction = 1.0 - level.coarse.nverts / cur.nverts
        if reduction < cfg.min_reduction:
            break  # matching stalled; further levels would be wasted work
        levels.append(level)
        cur = level.coarse

    # ------------------------------------------------------------------ #
    # Initial partitioning at the coarsest level.
    # ------------------------------------------------------------------ #
    result = initial_partition(cur, max_weights, cfg, rng, backend=backend)
    parts = result.parts

    # ------------------------------------------------------------------ #
    # Uncoarsening: project and refine at every level.
    # ------------------------------------------------------------------ #
    for level in reversed(levels):
        parts = parts[level.cmap]
        result = fm_refine(
            level.fine, parts, max_weights, cfg, rng, backend=backend
        )
        parts = result.parts

    if not levels:
        return result
    return result
