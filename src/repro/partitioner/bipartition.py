"""Public hypergraph-bipartitioning entry point."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import connectivity_volume, part_weights
from repro.kernels import KernelBackend
from repro.partitioner.config import PartitionerConfig, get_config
from repro.partitioner.multilevel import multilevel_bipartition
from repro.utils.balance import max_allowed_part_size
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_eps

__all__ = ["bipartition_hypergraph", "BipartitionHResult"]


@dataclass(frozen=True)
class BipartitionHResult:
    """Result of a hypergraph bipartitioning.

    Attributes
    ----------
    parts:
        Part id (0/1) per vertex.
    cut:
        Connectivity-1 cut (for two parts: total cost of cut nets).
    weights:
        ``(w0, w1)`` part weights.
    max_weights:
        The ceilings the run was given.
    feasible:
        Whether ``weights[k] <= max_weights[k]`` for both sides.
    """

    parts: np.ndarray
    cut: int
    weights: tuple[int, int]
    max_weights: tuple[int, int]
    feasible: bool


def bipartition_hypergraph(
    h: Hypergraph,
    eps: float = 0.03,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    max_weights: tuple[int, int] | None = None,
    backend: KernelBackend | None = None,
) -> BipartitionHResult:
    """Bipartition a hypergraph minimizing the connectivity-1 cut.

    Parameters
    ----------
    h:
        Hypergraph to split.
    eps:
        Load-imbalance fraction; each side may weigh at most
        ``(1 + eps) * W / 2`` (with the integer clamp of
        :func:`repro.utils.balance.max_allowed_part_size`).  Ignored when
        ``max_weights`` is given.
    config:
        Partitioner preset name (``"mondriaan"``, ``"patoh"``) or an
        explicit :class:`~repro.partitioner.config.PartitionerConfig`.
    seed:
        Seed or generator for all randomized decisions.
    max_weights:
        Optional explicit per-side ceilings, overriding ``eps`` (used by
        recursive bisection to hand down its global budget).
    backend:
        Pre-resolved kernel backend (callers doing many runs resolve it
        once); defaults to ``config.kernel_backend``.

    Returns
    -------
    BipartitionHResult
    """
    cfg = get_config(config)
    rng = as_generator(seed)
    if max_weights is None:
        check_eps(eps)
        total = h.total_weight()
        ceiling = max_allowed_part_size(total, 2, eps)
        max_weights = (ceiling, ceiling)
    else:
        max_weights = (int(max_weights[0]), int(max_weights[1]))
        if max_weights[0] < 0 or max_weights[1] < 0:
            raise PartitioningError("max_weights must be non-negative")
    if h.total_weight() > max_weights[0] + max_weights[1]:
        raise PartitioningError(
            f"total weight {h.total_weight()} exceeds combined ceilings "
            f"{max_weights}: infeasible"
        )

    result = multilevel_bipartition(h, max_weights, cfg, rng, backend=backend)
    weights = part_weights(h, result.parts, 2)
    cut = connectivity_volume(h, result.parts)
    return BipartitionHResult(
        parts=result.parts,
        cut=cut,
        weights=(int(weights[0]), int(weights[1])),
        max_weights=max_weights,
        feasible=bool(
            weights[0] <= max_weights[0] and weights[1] <= max_weights[1]
        ),
    )
