"""hMetis-style V-cycle refinement.

The paper (Section III-C) contrasts its iterative refinement with "the
so-called V-cycle refinement included in hMetis, which is a multi-level
postprocessing procedure with a restricted coarsening (respecting the
current partitioning) followed by Kernighan–Lin refinement at all levels".
This module implements that procedure, both as a quality option for the
partitioner and as the comparator for the IR-vs-V-cycle ablation.

One V-cycle:

1. coarsen with *restricted* matching — only vertices of the same part
   may merge — so the current partitioning projects to every level with
   an identical cut;
2. refine the coarsest projection with FM;
3. uncoarsen, FM-refining at every level.

Like Algorithm 2, the result is monotonically non-increasing in the cut;
unlike it, a cycle re-coarsens (paying coarsening time) and can move whole
clusters across the cut at the coarse levels.

:func:`vcycle_refine` is the 2-way engine used inside recursive
bisection; :func:`kway_vcycle_refine` generalizes the same procedure to
k parts (restricted matching already only merges vertices with *equal*
part ids, so it works for arbitrary part vectors unchanged) and refines
every level with the connectivity-(λ−1) k-way FM pass instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import connectivity_volume, part_weights
from repro.kernels import KernelBackend, resolve_backend
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.partitioner.coarsen import contract, match_vertices
from repro.partitioner.config import PartitionerConfig, get_config
from repro.partitioner.fm import fm_refine, kway_refine
from repro.utils.deadline import Deadline, Degraded
from repro.utils.rng import SeedLike, as_generator

__all__ = ["VCycleResult", "vcycle_refine", "kway_vcycle_refine"]

# Observability (see docs/observability.md): cycle counts and the
# keep-best verdict per cycle; never consulted by the algorithm.
_VCYCLE_CYCLES = _metrics.counter(
    "repro_vcycle_cycles_total", "V-cycles executed", ("kind",)
)
_VCYCLE_KEEP_BEST = _metrics.counter(
    "repro_vcycle_keep_best_total",
    "Keep-best decisions at k-way V-cycle boundaries",
    ("decision",),
)


@dataclass
class VCycleResult:
    """Outcome of V-cycle refinement.

    Attributes
    ----------
    parts:
        Refined part vector (fresh array).
    cut:
        Connectivity-1 cut of ``parts``.
    cycles:
        Number of V-cycles executed.
    cuts:
        Cut after each cycle (index 0 is the input cut); non-increasing.
    feasible:
        Whether the weight ceilings hold.
    degraded:
        A :class:`~repro.utils.deadline.Degraded` record when a deadline
        stopped the cycles early, else ``None``.
    """

    parts: np.ndarray
    cut: int
    cycles: int
    cuts: list[int]
    feasible: bool
    degraded: Degraded | None = None


def vcycle_refine(
    h: Hypergraph,
    parts: np.ndarray,
    max_weights: tuple[int, int],
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    max_cycles: int = 3,
) -> VCycleResult:
    """Refine a bipartitioning of ``h`` with repeated V-cycles.

    Stops early when a cycle fails to improve the cut.  The input must be
    a 0/1 part vector; it is not modified.
    """
    cfg = get_config(config)
    rng = as_generator(seed)
    parts = np.asarray(parts)
    if parts.shape != (h.nverts,):
        raise PartitioningError(
            f"parts must have shape ({h.nverts},), got {parts.shape}"
        )
    parts = parts.astype(np.int64, copy=True)
    if h.nverts and (parts.min() < 0 or parts.max() > 1):
        raise PartitioningError("vcycle_refine expects a 0/1 part vector")
    if max_cycles < 0:
        raise PartitioningError("max_cycles must be non-negative")

    backend = resolve_backend(cfg.kernel_backend)
    cuts = [connectivity_volume(h, parts)]
    cycles = 0
    for _ in range(max_cycles):
        with _trace.span("vcycle.cycle", kind="bi", cycle=cycles):
            parts = _one_cycle(h, parts, max_weights, cfg, rng, backend)
        cuts.append(connectivity_volume(h, parts))
        cycles += 1
        _VCYCLE_CYCLES.labels(kind="bi").inc()
        if cuts[-1] >= cuts[-2]:
            break

    return VCycleResult(
        parts=parts,
        cut=cuts[-1],
        cycles=cycles,
        cuts=cuts,
        feasible=_parts_feasible(h, parts, 2, np.asarray(max_weights)),
    )


def _parts_feasible(
    h: Hypergraph, parts: np.ndarray, nparts: int, ceilings: np.ndarray
) -> bool:
    """Do the per-part weights of ``parts`` satisfy every ceiling?

    Arity-generic (``np.bincount`` against per-part ceilings) — the old
    2-way check hardcoded ``w1 = dot(parts, vwgt)``, which silently
    mis-reports feasibility for any k > 2 part vector.
    """
    return bool(
        np.all(part_weights(h, parts, nparts) <= np.asarray(ceilings))
    )


def kway_vcycle_refine(
    h: Hypergraph,
    parts: np.ndarray,
    nparts: int,
    ceilings: np.ndarray,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    max_cycles: int = 3,
    *,
    backend: KernelBackend | None = None,
    deadline: Deadline | None = None,
) -> VCycleResult:
    """Refine a k-way partitioning of ``h`` with repeated V-cycles.

    The k-way generalization of :func:`vcycle_refine`: each cycle
    re-coarsens with *restricted* matching (only same-part vertices may
    merge, so the k-way assignment projects to every level with an
    identical connectivity-(λ−1) cut), refines the coarsest projection
    with :func:`~repro.partitioner.fm.kway_refine`, then uncoarsens,
    k-way-refining at every level.  ``parts`` holds ids in
    ``[0, nparts)``; ``ceilings`` the per-part weight ceilings (length
    ``nparts``).  The input array is not modified.

    Keep-best contract: a cycle's outcome replaces the incumbent only
    when it wins the lexicographic ``(feasible, -cut)`` order, so from a
    feasible input the reported ``cuts`` are monotonically
    non-increasing and the result is never worse than the input.  An
    *infeasible* input is repaired on the way (``kway_refine`` falls
    back to the swap-capable ``kway_rebalance``), which may raise the
    cut once in exchange for feasibility — never silently kept: the
    ``feasible`` flag always reports the returned vector's true state.

    ``max_cycles=0`` is a pure no-op returning the input cut; so are
    ``nparts=1`` and empty hypergraphs (nothing to refine).

    The keep-best contract is what makes an optional ``deadline`` safe
    here: the incumbent is a complete, scored partitioning before every
    cycle, so an expiry observed at a cycle boundary (or inside a
    cycle's per-level refinements) simply ends the loop with the best
    vector found so far and a ``degraded`` record on the result.
    """
    cfg = get_config(config)
    rng = as_generator(seed)
    nparts = int(nparts)
    if nparts < 1:
        raise PartitioningError(
            f"kway_vcycle_refine needs nparts >= 1, got {nparts}"
        )
    parts = np.asarray(parts)
    if parts.shape != (h.nverts,):
        raise PartitioningError(
            f"parts must have shape ({h.nverts},), got {parts.shape}"
        )
    parts = parts.astype(np.int64, copy=True)
    if h.nverts and (parts.min() < 0 or parts.max() >= nparts):
        raise PartitioningError(
            f"kway_vcycle_refine expects part ids in [0, {nparts})"
        )
    ceilings = np.ascontiguousarray(ceilings, dtype=np.int64)
    if ceilings.shape != (nparts,):
        raise PartitioningError(
            f"ceilings must have shape ({nparts},), got {ceilings.shape}"
        )
    if max_cycles < 0:
        raise PartitioningError("max_cycles must be non-negative")
    if backend is None:
        backend = resolve_backend(cfg.kernel_backend)

    best = parts
    best_cut = connectivity_volume(h, best)
    best_feasible = _parts_feasible(h, best, nparts, ceilings)
    cuts = [best_cut]
    cycles = 0
    # A total weight above the combined ceilings is unrepairable by any
    # sequence of moves: skip the cycles (kway_refine would refuse the
    # state anyway) and report the input truthfully infeasible.
    repairable = h.total_weight() <= int(ceilings.sum())
    degraded = None
    if nparts >= 2 and h.nverts and repairable:
        for _ in range(max_cycles):
            if deadline is not None and deadline.expired():
                degraded = Degraded(
                    "vcycle", completed=cycles,
                    skipped=max_cycles - cycles,
                )
                _trace.event("deadline", where="vcycle", completed=cycles)
                break
            with _trace.span("vcycle.cycle", kind="kway",
                             cycle=cycles) as sp:
                cand = _one_kway_cycle(
                    h, best, nparts, ceilings, cfg, rng, backend,
                    deadline=deadline,
                )
                cand_cut = connectivity_volume(h, cand)
                cand_feasible = _parts_feasible(h, cand, nparts, ceilings)
                cycles += 1
                improved = (
                    (cand_feasible, -cand_cut) > (best_feasible, -best_cut)
                )
                sp.set(improved=improved, cut=cand_cut)
            _VCYCLE_CYCLES.labels(kind="kway").inc()
            _VCYCLE_KEEP_BEST.labels(
                decision="improved" if improved else "kept"
            ).inc()
            if improved:
                best, best_cut = cand, cand_cut
                best_feasible = cand_feasible
            cuts.append(best_cut)
            if not improved:
                break
    return VCycleResult(
        parts=best,
        cut=best_cut,
        cycles=cycles,
        cuts=cuts,
        feasible=best_feasible,
        degraded=degraded,
    )


def _one_kway_cycle(
    h: Hypergraph,
    parts: np.ndarray,
    nparts: int,
    ceilings: np.ndarray,
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    backend: KernelBackend,
    deadline: Deadline | None = None,
) -> np.ndarray:
    """One restricted-coarsen / k-way-refine-up pass.

    Restricted matching keeps every cluster within one part, so the
    projected partitioning is well defined at every level (and each
    nonempty part retains at least one coarse vertex — the coarsest
    level is always k-way partitionable).
    """
    cluster_cap = max(
        1, int(cfg.cluster_weight_frac * int(ceilings.min()))
    )
    levels: list[tuple[Hypergraph, np.ndarray]] = []  # (fine, cmap)
    cur_h = h
    cur_parts = parts
    while cur_h.nverts > cfg.coarse_target and len(levels) < cfg.max_levels:
        if deadline is not None and deadline.expired():
            break  # refine whatever granularity we reached
        match = match_vertices(
            cur_h, cfg, rng, cluster_cap,
            restrict_parts=cur_parts, backend=backend,
        )
        cmap, coarse = contract(
            cur_h,
            match,
            merge_identical_nets=cfg.merge_identical_nets,
            backend=backend,
        )
        if coarse.nverts > (1.0 - cfg.min_reduction) * cur_h.nverts:
            break
        # Project the partitioning: constant on clusters by construction.
        coarse_parts = np.empty(coarse.nverts, dtype=np.int64)
        coarse_parts[cmap] = cur_parts
        levels.append((cur_h, cmap))
        cur_h, cur_parts = coarse, coarse_parts

    cur_parts = kway_refine(
        cur_h, cur_parts, nparts, ceilings, cfg, rng, backend=backend,
        deadline=deadline,
    ).parts
    for fine, cmap in reversed(levels):
        # Restricted coarsening means projection alone reproduces the
        # incoming assignment at every level — skipping a refinement
        # under an expired deadline degrades quality, never validity.
        cur_parts = cur_parts[cmap]
        if deadline is not None and deadline.expired():
            continue
        cur_parts = kway_refine(
            fine, cur_parts, nparts, ceilings, cfg, rng, backend=backend,
            deadline=deadline,
        ).parts
    return cur_parts


def _one_cycle(
    h: Hypergraph,
    parts: np.ndarray,
    max_weights: tuple[int, int],
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    backend: KernelBackend,
) -> np.ndarray:
    """One restricted-coarsen / refine-up pass."""
    cluster_cap = max(
        1, int(cfg.cluster_weight_frac * min(max_weights[0], max_weights[1]))
    )
    levels: list[tuple[Hypergraph, np.ndarray]] = []  # (fine, cmap)
    cur_h = h
    cur_parts = parts
    while cur_h.nverts > cfg.coarse_target and len(levels) < cfg.max_levels:
        match = match_vertices(
            cur_h, cfg, rng, cluster_cap,
            restrict_parts=cur_parts, backend=backend,
        )
        cmap, coarse = contract(
            cur_h,
            match,
            merge_identical_nets=cfg.merge_identical_nets,
            backend=backend,
        )
        if coarse.nverts > (1.0 - cfg.min_reduction) * cur_h.nverts:
            break
        # Project the partitioning: constant on clusters by construction.
        coarse_parts = np.empty(coarse.nverts, dtype=np.int64)
        coarse_parts[cmap] = cur_parts
        levels.append((cur_h, cmap))
        cur_h, cur_parts = coarse, coarse_parts

    cur_parts = fm_refine(
        cur_h, cur_parts, max_weights, cfg, rng, backend=backend
    ).parts
    for fine, cmap in reversed(levels):
        cur_parts = cur_parts[cmap]
        cur_parts = fm_refine(
            fine, cur_parts, max_weights, cfg, rng, backend=backend
        ).parts
    return cur_parts
