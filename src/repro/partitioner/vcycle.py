"""hMetis-style V-cycle refinement.

The paper (Section III-C) contrasts its iterative refinement with "the
so-called V-cycle refinement included in hMetis, which is a multi-level
postprocessing procedure with a restricted coarsening (respecting the
current partitioning) followed by Kernighan–Lin refinement at all levels".
This module implements that procedure, both as a quality option for the
partitioner and as the comparator for the IR-vs-V-cycle ablation.

One V-cycle:

1. coarsen with *restricted* matching — only vertices of the same part
   may merge — so the current partitioning projects to every level with
   an identical cut;
2. refine the coarsest projection with FM;
3. uncoarsen, FM-refining at every level.

Like Algorithm 2, the result is monotonically non-increasing in the cut;
unlike it, a cycle re-coarsens (paying coarsening time) and can move whole
clusters across the cut at the coarse levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import connectivity_volume
from repro.kernels import KernelBackend, resolve_backend
from repro.partitioner.coarsen import contract, match_vertices
from repro.partitioner.config import PartitionerConfig, get_config
from repro.partitioner.fm import fm_refine
from repro.utils.rng import SeedLike, as_generator

__all__ = ["VCycleResult", "vcycle_refine"]


@dataclass
class VCycleResult:
    """Outcome of V-cycle refinement.

    Attributes
    ----------
    parts:
        Refined part vector (fresh array).
    cut:
        Connectivity-1 cut of ``parts``.
    cycles:
        Number of V-cycles executed.
    cuts:
        Cut after each cycle (index 0 is the input cut); non-increasing.
    feasible:
        Whether the weight ceilings hold.
    """

    parts: np.ndarray
    cut: int
    cycles: int
    cuts: list[int]
    feasible: bool


def vcycle_refine(
    h: Hypergraph,
    parts: np.ndarray,
    max_weights: tuple[int, int],
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    max_cycles: int = 3,
) -> VCycleResult:
    """Refine a bipartitioning of ``h`` with repeated V-cycles.

    Stops early when a cycle fails to improve the cut.  The input must be
    a 0/1 part vector; it is not modified.
    """
    cfg = get_config(config)
    rng = as_generator(seed)
    parts = np.asarray(parts)
    if parts.shape != (h.nverts,):
        raise PartitioningError(
            f"parts must have shape ({h.nverts},), got {parts.shape}"
        )
    parts = parts.astype(np.int64, copy=True)
    if h.nverts and (parts.min() < 0 or parts.max() > 1):
        raise PartitioningError("vcycle_refine expects a 0/1 part vector")
    if max_cycles < 0:
        raise PartitioningError("max_cycles must be non-negative")

    backend = resolve_backend(cfg.kernel_backend)
    cuts = [connectivity_volume(h, parts)]
    cycles = 0
    for _ in range(max_cycles):
        parts = _one_cycle(h, parts, max_weights, cfg, rng, backend)
        cuts.append(connectivity_volume(h, parts))
        cycles += 1
        if cuts[-1] >= cuts[-2]:
            break

    w1 = int(np.dot(parts, h.vwgt))
    w0 = h.total_weight() - w1
    return VCycleResult(
        parts=parts,
        cut=cuts[-1],
        cycles=cycles,
        cuts=cuts,
        feasible=w0 <= max_weights[0] and w1 <= max_weights[1],
    )


def _one_cycle(
    h: Hypergraph,
    parts: np.ndarray,
    max_weights: tuple[int, int],
    cfg: PartitionerConfig,
    rng: np.random.Generator,
    backend: KernelBackend,
) -> np.ndarray:
    """One restricted-coarsen / refine-up pass."""
    cluster_cap = max(
        1, int(cfg.cluster_weight_frac * min(max_weights[0], max_weights[1]))
    )
    levels: list[tuple[Hypergraph, np.ndarray]] = []  # (fine, cmap)
    cur_h = h
    cur_parts = parts
    while cur_h.nverts > cfg.coarse_target and len(levels) < cfg.max_levels:
        match = match_vertices(
            cur_h, cfg, rng, cluster_cap,
            restrict_parts=cur_parts, backend=backend,
        )
        cmap, coarse = contract(
            cur_h,
            match,
            merge_identical_nets=cfg.merge_identical_nets,
            backend=backend,
        )
        if coarse.nverts > (1.0 - cfg.min_reduction) * cur_h.nverts:
            break
        # Project the partitioning: constant on clusters by construction.
        coarse_parts = np.empty(coarse.nverts, dtype=np.int64)
        coarse_parts[cmap] = cur_parts
        levels.append((cur_h, cmap))
        cur_h, cur_parts = coarse, coarse_parts

    cur_parts = fm_refine(
        cur_h, cur_parts, max_weights, cfg, rng, backend=backend
    ).parts
    for fine, cmap in reversed(levels):
        cur_parts = cur_parts[cmap]
        cur_parts = fm_refine(
            fine, cur_parts, max_weights, cfg, rng, backend=backend
        ).parts
    return cur_parts
