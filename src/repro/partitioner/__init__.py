"""Multilevel hypergraph bipartitioner.

A from-scratch reimplementation of the algorithm family every partitioner
compared in the paper uses (Section II): multilevel coarsening by
heavy-connectivity matching, greedy/random initial partitioning, and
Kernighan–Lin/Fiduccia–Mattheyses refinement with gain buckets under the
connectivity-1 (= cut-net, for two parts) metric.

Two presets substitute for the paper's two partitioners (see DESIGN.md):

* ``"mondriaan"`` — stands in for Mondriaan's internal hypergraph
  bipartitioner (unscaled heavy-connectivity matching, full FM sweeps);
* ``"patoh"`` — stands in for PaToH (absorption-scaled matching, deeper
  coarsening, more initial attempts, boundary-only FM).
"""

from repro.partitioner.config import PartitionerConfig, get_config
from repro.partitioner.bipartition import (
    BipartitionHResult,
    bipartition_hypergraph,
)
from repro.partitioner.fm import fm_refine, kway_rebalance, kway_refine
from repro.partitioner.multilevel import (
    multilevel_bipartition,
    multilevel_kway,
)
from repro.partitioner.vcycle import kway_vcycle_refine, vcycle_refine

__all__ = [
    "PartitionerConfig",
    "get_config",
    "bipartition_hypergraph",
    "BipartitionHResult",
    "fm_refine",
    "kway_refine",
    "kway_rebalance",
    "multilevel_bipartition",
    "multilevel_kway",
    "vcycle_refine",
    "kway_vcycle_refine",
]
