"""Multilevel coarsening: matching and contraction.

Coarsening pairs up strongly connected vertices and contracts each pair into
one coarse vertex, shrinking the hypergraph until it is cheap to partition
directly.  Two matching scores are provided (selected by
``PartitionerConfig.matching``):

* ``"hcm"`` — heavy-connectivity matching: a candidate's score is the total
  cost of nets shared with the seed vertex (Mondriaan-style);
* ``"absorption"`` — PaToH-style absorption score ``cost / (|net| - 1)``,
  which discounts large nets.

Contraction is fully vectorized: pins are mapped through the cluster map,
deduplicated with one lexsort, nets that shrink below two pins are dropped
(they can never be cut), and — optionally — nets with identical pin sets
are merged with their costs added, which both shrinks the problem and
sharpens FM gains on the coarse levels.

The scalar matching sweep and the identical-net merge are kernel-backend
calls (:mod:`repro.kernels`), so the JIT backend accelerates coarsening
exactly as it does FM refinement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels import KernelBackend, resolve_backend
from repro.partitioner.config import PartitionerConfig

__all__ = ["match_vertices", "contract", "coarsen_level", "CoarseLevel"]


@dataclass(frozen=True)
class CoarseLevel:
    """One coarsening step: the fine hypergraph and the vertex map into the
    coarse one (``cmap[fine_vertex] = coarse_vertex``)."""

    fine: Hypergraph
    cmap: np.ndarray
    coarse: Hypergraph


def match_vertices(
    h: Hypergraph,
    config: PartitionerConfig,
    rng: np.random.Generator,
    max_cluster_weight: int,
    restrict_parts: np.ndarray | None = None,
    backend: KernelBackend | None = None,
) -> np.ndarray:
    """Greedy matching; returns ``match`` with ``match[v]`` the partner of
    ``v`` or ``-1`` for unmatched vertices.

    Vertices are visited in random order; each unmatched vertex scores all
    unmatched neighbours sharing a (not too large) net and takes the best,
    subject to the pair weight not exceeding ``max_cluster_weight``.

    ``restrict_parts`` enables hMetis-style *restricted* coarsening: only
    vertices in the same part may match, so any partitioning constant on
    the clusters projects exactly (used by V-cycle refinement).

    The candidate-scoring sweep runs on the kernel backend selected by
    ``config.kernel_backend`` (or the explicit ``backend``); the RNG is
    consumed here, identically for every backend.
    """
    nverts = h.nverts
    if nverts == 0 or h.npins == 0:
        return np.full(nverts, -1, dtype=np.int64)
    if backend is None:
        backend = resolve_backend(config.kernel_backend)
    order = rng.permutation(nverts)
    return backend.match_vertices(
        backend.fm_state(h),
        order,
        config.matching == "absorption",
        config.max_net_size_matching,
        max_cluster_weight,
        restrict_parts,
    )


def contract(
    h: Hypergraph,
    match: np.ndarray,
    *,
    merge_identical_nets: bool = True,
    backend: KernelBackend | None = None,
) -> tuple[np.ndarray, Hypergraph]:
    """Contract matched pairs; returns ``(cmap, coarse_hypergraph)``.

    ``cmap`` maps each fine vertex to its coarse id; matched pairs share an
    id, unmatched vertices keep their own.  Coarse vertex weights are the
    sums over their clusters.
    """
    nverts = h.nverts
    ids = np.arange(nverts, dtype=np.int64)
    match = np.asarray(match, dtype=np.int64)
    # A vertex is a representative if unmatched or the smaller id of its pair.
    is_rep = (match < 0) | (ids < match)
    cmap = np.empty(nverts, dtype=np.int64)
    cmap[is_rep] = np.cumsum(is_rep)[is_rep] - 1
    nonrep = ~is_rep
    cmap[nonrep] = cmap[match[nonrep]]
    ncoarse = int(is_rep.sum())

    cvwgt = np.zeros(ncoarse, dtype=np.int64)
    np.add.at(cvwgt, cmap, h.vwgt)

    if h.npins == 0:
        coarse = Hypergraph(
            ncoarse,
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            vwgt=cvwgt,
            ncost=np.empty(0, dtype=np.int64),
            validate=False,
        )
        return cmap, coarse

    # Map pins and deduplicate within each net with a single lexsort.
    net_ids = h.net_ids()
    new_pins = cmap[h.pins]
    order = np.lexsort((new_pins, net_ids))
    sn = net_ids[order]
    sp = new_pins[order]
    keep = np.empty(sn.size, dtype=bool)
    keep[0] = True
    keep[1:] = (sn[1:] != sn[:-1]) | (sp[1:] != sp[:-1])
    sn = sn[keep]
    sp = sp[keep]
    new_sizes = np.bincount(sn, minlength=h.nnets)

    # Drop nets that shrank below two pins; they can never be cut.
    live = new_sizes >= 2
    keep_pin = live[sn]
    sn = sn[keep_pin]
    sp = sp[keep_pin]
    live_ids = np.flatnonzero(live)
    ncost = h.ncost[live_ids]
    live_sizes = new_sizes[live_ids]
    xpins = np.zeros(live_ids.size + 1, dtype=np.int64)
    np.cumsum(live_sizes, out=xpins[1:])
    pins = sp  # already grouped by net in ascending net order

    if merge_identical_nets and live_ids.size > 1:
        if backend is None:
            # No config reaches a bare contract() call: default to the
            # reference backend (predictable, and every backend's merge
            # must be bit-identical to it anyway) rather than "auto".
            backend = resolve_backend("python")
        xpins, pins, ncost = backend.merge_identical(xpins, pins, ncost)

    coarse = Hypergraph(
        ncoarse, xpins, pins, vwgt=cvwgt, ncost=ncost, validate=False
    )
    return cmap, coarse


def coarsen_level(
    h: Hypergraph,
    config: PartitionerConfig,
    rng: np.random.Generator,
    max_cluster_weight: int,
    backend: KernelBackend | None = None,
) -> CoarseLevel:
    """Run one matching + contraction step."""
    if backend is None:
        backend = resolve_backend(config.kernel_backend)
    match = match_vertices(
        h, config, rng, max_cluster_weight, backend=backend
    )
    cmap, coarse = contract(
        h,
        match,
        merge_identical_nets=config.merge_identical_nets,
        backend=backend,
    )
    return CoarseLevel(fine=h, cmap=cmap, coarse=coarse)
