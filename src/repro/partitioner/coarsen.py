"""Multilevel coarsening: matching and contraction.

Coarsening pairs up strongly connected vertices and contracts each pair into
one coarse vertex, shrinking the hypergraph until it is cheap to partition
directly.  Two matching scores are provided (selected by
``PartitionerConfig.matching``):

* ``"hcm"`` — heavy-connectivity matching: a candidate's score is the total
  cost of nets shared with the seed vertex (Mondriaan-style);
* ``"absorption"`` — PaToH-style absorption score ``cost / (|net| - 1)``,
  which discounts large nets.

Contraction is fully vectorized: pins are mapped through the cluster map,
deduplicated with one lexsort, nets that shrink below two pins are dropped
(they can never be cut), and — optionally — nets with identical pin sets
are merged with their costs added, which both shrinks the problem and
sharpens FM gains on the coarse levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph
from repro.partitioner.config import PartitionerConfig

__all__ = ["match_vertices", "contract", "coarsen_level", "CoarseLevel"]


@dataclass(frozen=True)
class CoarseLevel:
    """One coarsening step: the fine hypergraph and the vertex map into the
    coarse one (``cmap[fine_vertex] = coarse_vertex``)."""

    fine: Hypergraph
    cmap: np.ndarray
    coarse: Hypergraph


def match_vertices(
    h: Hypergraph,
    config: PartitionerConfig,
    rng: np.random.Generator,
    max_cluster_weight: int,
    restrict_parts: np.ndarray | None = None,
) -> np.ndarray:
    """Greedy matching; returns ``match`` with ``match[v]`` the partner of
    ``v`` or ``-1`` for unmatched vertices.

    Vertices are visited in random order; each unmatched vertex scores all
    unmatched neighbours sharing a (not too large) net and takes the best,
    subject to the pair weight not exceeding ``max_cluster_weight``.

    ``restrict_parts`` enables hMetis-style *restricted* coarsening: only
    vertices in the same part may match, so any partitioning constant on
    the clusters projects exactly (used by V-cycle refinement).
    """
    nverts = h.nverts
    match = [-1] * nverts
    if nverts == 0 or h.npins == 0:
        return np.full(nverts, -1, dtype=np.int64)
    parts_l = (
        restrict_parts.tolist() if restrict_parts is not None else None
    )

    xpins_l = h.xpins.tolist()
    pins_l = h.pins.tolist()
    xnets_l = h.xnets.tolist()
    vnets_l = h.vnets.tolist()
    cost_l = h.ncost.tolist()
    vw_l = h.vwgt.tolist()
    sizes_l = h.net_sizes().tolist()
    absorption = config.matching == "absorption"
    max_net = config.max_net_size_matching

    score = [0.0] * nverts
    for v in rng.permutation(nverts).tolist():
        if match[v] != -1:
            continue
        wv = vw_l[v]
        touched: list[int] = []
        for i in range(xnets_l[v], xnets_l[v + 1]):
            n = vnets_l[i]
            sz = sizes_l[n]
            if sz < 2 or sz > max_net:
                continue
            c = cost_l[n]
            if c == 0:
                continue
            w = c / (sz - 1) if absorption else float(c)
            for k in range(xpins_l[n], xpins_l[n + 1]):
                u = pins_l[k]
                if u == v or match[u] != -1:
                    continue
                if parts_l is not None and parts_l[u] != parts_l[v]:
                    continue
                if wv + vw_l[u] > max_cluster_weight:
                    continue
                if score[u] == 0.0:
                    touched.append(u)
                score[u] += w
        if touched:
            best_u = -1
            best_s = 0.0
            for u in touched:
                s = score[u]
                # Tie-break towards the lighter candidate: keeps coarse
                # weights even, which preserves partitionability.
                if s > best_s or (s == best_s and best_u != -1 and vw_l[u] < vw_l[best_u]):
                    best_u, best_s = u, s
                score[u] = 0.0
            if best_u != -1:
                match[v] = best_u
                match[best_u] = v
    return np.asarray(match, dtype=np.int64)


def contract(
    h: Hypergraph,
    match: np.ndarray,
    *,
    merge_identical_nets: bool = True,
) -> tuple[np.ndarray, Hypergraph]:
    """Contract matched pairs; returns ``(cmap, coarse_hypergraph)``.

    ``cmap`` maps each fine vertex to its coarse id; matched pairs share an
    id, unmatched vertices keep their own.  Coarse vertex weights are the
    sums over their clusters.
    """
    nverts = h.nverts
    ids = np.arange(nverts, dtype=np.int64)
    match = np.asarray(match, dtype=np.int64)
    # A vertex is a representative if unmatched or the smaller id of its pair.
    is_rep = (match < 0) | (ids < match)
    cmap = np.empty(nverts, dtype=np.int64)
    cmap[is_rep] = np.cumsum(is_rep)[is_rep] - 1
    nonrep = ~is_rep
    cmap[nonrep] = cmap[match[nonrep]]
    ncoarse = int(is_rep.sum())

    cvwgt = np.zeros(ncoarse, dtype=np.int64)
    np.add.at(cvwgt, cmap, h.vwgt)

    if h.npins == 0:
        coarse = Hypergraph(
            ncoarse,
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            vwgt=cvwgt,
            ncost=np.empty(0, dtype=np.int64),
            validate=False,
        )
        return cmap, coarse

    # Map pins and deduplicate within each net with a single lexsort.
    net_ids = np.repeat(np.arange(h.nnets, dtype=np.int64), h.net_sizes())
    new_pins = cmap[h.pins]
    order = np.lexsort((new_pins, net_ids))
    sn = net_ids[order]
    sp = new_pins[order]
    keep = np.empty(sn.size, dtype=bool)
    keep[0] = True
    keep[1:] = (sn[1:] != sn[:-1]) | (sp[1:] != sp[:-1])
    sn = sn[keep]
    sp = sp[keep]
    new_sizes = np.bincount(sn, minlength=h.nnets)

    # Drop nets that shrank below two pins; they can never be cut.
    live = new_sizes >= 2
    keep_pin = live[sn]
    sn = sn[keep_pin]
    sp = sp[keep_pin]
    live_ids = np.flatnonzero(live)
    ncost = h.ncost[live_ids]
    live_sizes = new_sizes[live_ids]
    xpins = np.zeros(live_ids.size + 1, dtype=np.int64)
    np.cumsum(live_sizes, out=xpins[1:])
    pins = sp  # already grouped by net in ascending net order

    if merge_identical_nets and live_ids.size > 1:
        xpins, pins, ncost = _merge_identical(xpins, pins, ncost)

    coarse = Hypergraph(
        ncoarse, xpins, pins, vwgt=cvwgt, ncost=ncost, validate=False
    )
    return cmap, coarse


def _merge_identical(
    xpins: np.ndarray, pins: np.ndarray, ncost: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge nets with identical pin sets, summing their costs.

    Pins are sorted within each net (contract guarantees this), so nets are
    equal iff their pin slices are byte-identical.
    """
    nnets = xpins.size - 1
    groups: dict[bytes, int] = {}
    rep_of = np.empty(nnets, dtype=np.int64)
    starts = xpins[:-1].tolist()
    ends = xpins[1:].tolist()
    for n in range(nnets):
        key = pins[starts[n] : ends[n]].tobytes()
        rep = groups.setdefault(key, n)
        rep_of[n] = rep
    reps = np.unique(rep_of)
    if reps.size == nnets:
        return xpins, pins, ncost
    merged_cost = np.zeros(nnets, dtype=np.int64)
    np.add.at(merged_cost, rep_of, ncost)
    sizes = np.diff(xpins)[reps]
    new_xpins = np.zeros(reps.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=new_xpins[1:])
    chunks = [pins[xpins[r] : xpins[r + 1]] for r in reps.tolist()]
    new_pins = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    )
    return new_xpins, new_pins, merged_cost[reps]


def coarsen_level(
    h: Hypergraph,
    config: PartitionerConfig,
    rng: np.random.Generator,
    max_cluster_weight: int,
) -> CoarseLevel:
    """Run one matching + contraction step."""
    match = match_vertices(h, config, rng, max_cluster_weight)
    cmap, coarse = contract(
        h, match, merge_identical_nets=config.merge_identical_nets
    )
    return CoarseLevel(fine=h, cmap=cmap, coarse=coarse)
