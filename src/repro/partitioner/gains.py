"""Compatibility re-export of the FM gain buckets.

The bucket structure moved to :mod:`repro.kernels.gains` together with
the rest of the kernel engine (it belongs to the hot loops, and the move
kept the ``kernels`` package free of imports from ``partitioner``).
Importing it from here keeps working.
"""

from repro.kernels.gains import GainBuckets

__all__ = ["GainBuckets"]
