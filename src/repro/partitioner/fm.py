"""Fiduccia–Mattheyses bipartition refinement with gain buckets.

This is the Kernighan–Lin-style engine every partitioner in the paper shares
(Section II): repeated *passes* in which each free vertex may move across
the cut at most once, in best-gain-first order subject to the balance
constraint; the pass is then rolled back to its best prefix, which is never
worse than the starting point — the monotonicity the paper's Algorithm 2
relies on.

Metric: cut-net cost, which for two parts equals the connectivity-1 metric
used throughout the paper.  Balance: *asymmetric* per-side weight ceilings
``(maxW0, maxW1)`` so recursive bisection can pass down Mondriaan-style
budgets; if the incoming partitioning violates a ceiling, the pass first
drives it feasible (forced moves off the overweight side) and only tracks
best prefixes at feasible states.

The pass itself — vectorized setup plus the sequential move loop — lives
in :mod:`repro.kernels`: this module validates inputs, orchestrates the
pass schedule, and delegates each pass to the selected kernel backend
(``PartitionerConfig.kernel_backend``), reusing one
:class:`~repro.kernels.state.FMPassState` per hypergraph so repeated
refinement calls pay the array-to-list conversions only once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import connectivity_volume, part_weights
from repro.kernels import FMPassState, KernelBackend, resolve_backend
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.partitioner.config import PartitionerConfig, get_config
from repro.utils.deadline import Deadline, Degraded
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "fm_refine",
    "FMResult",
    "kway_refine",
    "KWayFMResult",
    "kway_rebalance",
]

# Observability: plain process-local counters, never read by the
# algorithm (see docs/observability.md for the catalog).  ``kind`` is
# "bi" for 2-way passes, "kway" for direct k-way passes.
_FM_PASSES = _metrics.counter(
    "repro_fm_passes_total", "FM refinement passes executed", ("kind",)
)
_FM_MOVES = _metrics.counter(
    "repro_fm_moves_total",
    "Vertices left in a moved position by an FM pass's best prefix",
    ("kind",),
)
_FM_GAIN = _metrics.counter(
    "repro_fm_gain_total",
    "Total cut reduction achieved by improving FM passes",
    ("kind",),
)


@dataclass
class FMResult:
    """Outcome of an FM refinement call.

    Attributes
    ----------
    parts:
        Refined part vector (int64, values 0/1).
    cut:
        Cut-net cost of ``parts``.
    feasible:
        Whether ``parts`` satisfies the weight ceilings.
    passes:
        Number of passes executed.
    improvement:
        Total cut reduction over the call (>= 0 whenever the input was
        feasible).
    degraded:
        A :class:`~repro.utils.deadline.Degraded` record when a deadline
        cut the pass schedule short, else ``None``.
    """

    parts: np.ndarray
    cut: int
    feasible: bool
    passes: int
    improvement: int
    degraded: Degraded | None = None


def fm_refine(
    h: Hypergraph,
    parts: np.ndarray,
    max_weights: tuple[int, int],
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    max_passes: int | None = None,
    *,
    backend: KernelBackend | str | None = None,
    state: FMPassState | None = None,
    deadline: Deadline | None = None,
) -> FMResult:
    """Refine a bipartitioning of ``h`` with repeated FM passes.

    Parameters
    ----------
    h:
        The hypergraph.
    parts:
        Initial part vector (0/1 per vertex); not modified.
    max_weights:
        Per-side weight ceilings ``(maxW0, maxW1)``.
    config:
        Preset name or :class:`PartitionerConfig` (controls pass count,
        early exit, boundary-only seeding, kernel backend).
    seed:
        RNG for tie-breaking insertion order.
    max_passes:
        Overrides ``config.fm_max_passes`` when given.
    backend:
        Kernel backend (instance or name) overriding
        ``config.kernel_backend``; callers running many refinements
        resolve once and pass it down.
    state:
        Explicit reusable pass state for ``h``.  Defaults to the state
        cached on the hypergraph; results are identical either way.
    deadline:
        Optional cooperative deadline, checked **between** passes only
        (each pass rolls back to its best prefix, so the incumbent is
        valid at every boundary).  When it expires the remaining passes
        are skipped and the result carries a ``degraded`` record.

    Returns
    -------
    FMResult
        With ``parts`` a fresh array; the cut never exceeds the input cut
        when the input is feasible.
    """
    cfg = get_config(config)
    kb = resolve_backend(backend if backend is not None else cfg.kernel_backend)
    parts = np.asarray(parts)
    if parts.shape != (h.nverts,):
        raise PartitioningError(
            f"parts must have shape ({h.nverts},), got {parts.shape}"
        )
    if state is None:
        state = kb.fm_state(h)
    elif state.h is not h:
        raise PartitioningError(
            "FMPassState belongs to a different hypergraph"
        )
    rng = as_generator(seed)
    parts = parts.astype(np.int64, copy=True)
    if h.nverts and (parts.min() < 0 or parts.max() > 1):
        raise PartitioningError("fm_refine expects a 0/1 part vector")
    maxw = (int(max_weights[0]), int(max_weights[1]))
    if h.total_weight() > maxw[0] + maxw[1]:
        raise PartitioningError(
            f"total weight {h.total_weight()} exceeds combined ceilings "
            f"{maxw[0]} + {maxw[1]}: no feasible bipartitioning exists"
        )

    passes_budget = max_passes if max_passes is not None else cfg.fm_max_passes
    cut = connectivity_volume(h, parts)
    total_delta = 0
    passes_run = 0
    feasible = _is_feasible(h, parts, maxw)
    degraded = None
    for _ in range(passes_budget):
        if deadline is not None and deadline.expired():
            degraded = Degraded(
                "fm", completed=passes_run,
                skipped=passes_budget - passes_run,
            )
            _trace.event("deadline", where="fm", completed=passes_run)
            break
        started_feasible = feasible
        before = parts.copy()
        with _trace.span("fm.pass") as sp:
            delta, feasible = kb.fm_pass(state, parts, maxw, cfg, rng)
            moved = int(np.count_nonzero(parts != before))
            sp.set(delta=delta, moved=moved)
        passes_run += 1
        total_delta += delta
        _FM_PASSES.labels(kind="bi").inc()
        _FM_MOVES.labels(kind="bi").inc(moved)
        if delta > 0:
            _FM_GAIN.labels(kind="bi").inc(delta)
        # Stop once a pass that started from a feasible state no longer
        # reduces the cut; a rebalancing pass (infeasible start) may have
        # delta <= 0 yet unlock further improvement, so it never stops us.
        if started_feasible and delta <= 0:
            break
    return FMResult(
        parts=parts,
        cut=cut - total_delta,
        feasible=feasible,
        passes=passes_run,
        improvement=total_delta,
        degraded=degraded,
    )


def _is_feasible(h: Hypergraph, parts: np.ndarray, maxw: tuple[int, int]) -> bool:
    w1 = int(np.dot(parts, h.vwgt))
    w0 = h.total_weight() - w1
    return w0 <= maxw[0] and w1 <= maxw[1]


@dataclass
class KWayFMResult:
    """Outcome of a k-way FM refinement call.

    Attributes mirror :class:`FMResult`; ``cut`` is the
    connectivity-(λ−1) cost the k-way pass optimizes directly.
    """

    parts: np.ndarray
    cut: int
    feasible: bool
    passes: int
    improvement: int
    degraded: Degraded | None = None


def kway_refine(
    h: Hypergraph,
    parts: np.ndarray,
    nparts: int,
    ceilings: np.ndarray,
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    max_passes: int | None = None,
    *,
    backend: KernelBackend | str | None = None,
    state: FMPassState | None = None,
    deadline: Deadline | None = None,
) -> KWayFMResult:
    """Refine a k-way partitioning of ``h`` with repeated k-way FM passes.

    The direct k-way counterpart of :func:`fm_refine`: each pass
    (``backend.kway_fm_pass``) maintains per-net part-occupancy counts
    and exact connectivity-λ gains instead of two-sided cut gains, moves
    vertices best-gain-first under per-part weight ``ceilings`` (length
    ``nparts``), and rolls back to its best feasible prefix.  An
    infeasible input is first driven feasible by forced moves off
    overweight parts, exactly like the 2-way pass.

    Parameters mirror :func:`fm_refine`; ``parts`` holds ids in
    ``[0, nparts)`` and is not modified.  Requires ``nparts >= 2``.
    """
    cfg = get_config(config)
    kb = resolve_backend(backend if backend is not None else cfg.kernel_backend)
    nparts = int(nparts)
    if nparts < 2:
        raise PartitioningError(
            f"kway_refine needs nparts >= 2, got {nparts}"
        )
    parts = np.asarray(parts)
    if parts.shape != (h.nverts,):
        raise PartitioningError(
            f"parts must have shape ({h.nverts},), got {parts.shape}"
        )
    if state is None:
        state = kb.fm_state(h)
    elif state.h is not h:
        raise PartitioningError(
            "FMPassState belongs to a different hypergraph"
        )
    rng = as_generator(seed)
    parts = parts.astype(np.int64, copy=True)
    if h.nverts and (parts.min() < 0 or parts.max() >= nparts):
        raise PartitioningError(
            f"kway_refine expects part ids in [0, {nparts})"
        )
    ceilings = np.ascontiguousarray(ceilings, dtype=np.int64)
    if ceilings.shape != (nparts,):
        raise PartitioningError(
            f"ceilings must have shape ({nparts},), got {ceilings.shape}"
        )
    if ceilings.size and int(ceilings.min()) < 0:
        raise PartitioningError("ceilings must be non-negative")
    if h.total_weight() > int(ceilings.sum()):
        raise PartitioningError(
            f"total weight {h.total_weight()} exceeds combined ceilings "
            f"{int(ceilings.sum())}: no feasible partitioning exists"
        )

    passes_budget = max_passes if max_passes is not None else cfg.fm_max_passes
    cut = connectivity_volume(h, parts)
    total_delta = 0
    passes_run = 0
    feasible = bool(np.all(part_weights(h, parts, nparts) <= ceilings))
    if not feasible:
        # The FM pass rebalances with *single* forced moves; when every
        # single move off an overweight part would blow another ceiling
        # (coarse V-cycle levels: few, heavy vertices against snug
        # ceilings) the pass cannot make progress.  The swap-capable
        # rebalancer covers exactly that case — and it never touches a
        # feasible input, so the fast path is unchanged.
        kway_rebalance(h, parts, nparts, ceilings)
        cut = connectivity_volume(h, parts)
        feasible = bool(np.all(part_weights(h, parts, nparts) <= ceilings))
    degraded = None
    for _ in range(passes_budget):
        if deadline is not None and deadline.expired():
            degraded = Degraded(
                "kway-fm", completed=passes_run,
                skipped=passes_budget - passes_run,
            )
            _trace.event("deadline", where="kway-fm", completed=passes_run)
            break
        started_feasible = feasible
        before = parts.copy()
        with _trace.span("kway_fm.pass") as sp:
            delta, feasible = kb.kway_fm_pass(
                state, parts, nparts, ceilings, cfg, rng
            )
            moved = int(np.count_nonzero(parts != before))
            sp.set(delta=delta, moved=moved)
        passes_run += 1
        total_delta += delta
        _FM_PASSES.labels(kind="kway").inc()
        _FM_MOVES.labels(kind="kway").inc(moved)
        if delta > 0:
            _FM_GAIN.labels(kind="kway").inc(delta)
        # Same stopping rule as fm_refine: a feasible-start pass that no
        # longer reduces the cut ends the call; a rebalancing pass never
        # does.
        if started_feasible and delta <= 0:
            break
    return KWayFMResult(
        parts=parts,
        cut=cut - total_delta,
        feasible=feasible,
        passes=passes_run,
        improvement=total_delta,
        degraded=degraded,
    )


def kway_rebalance(
    h: Hypergraph,
    parts: np.ndarray,
    nparts: int,
    ceilings: np.ndarray,
) -> bool:
    """Weight-only repair of an infeasible k-way partitioning, in place.

    The k-way FM pass drives infeasible states feasible with forced
    *single* moves; this is its fallback for the states single moves
    cannot fix — e.g. a projected V-cycle level whose coarse vertices
    are so heavy that any move off the overweight part would overload
    the target.  Two escalating repairs, both deterministic (lowest-id
    tie-breaks, no RNG, pure NumPy — trivially backend-independent):

    1. **single move** — the heaviest vertex of the most-overweight part
       that fits the slack of the roomiest other part;
    2. **pairwise swap** — a vertex of the overweight part exchanged
       with a lighter vertex of another part, chosen (via one
       ``searchsorted`` per candidate part) to shed the most weight the
       target's slack allows.

    Every applied repair strictly reduces the total overshoot
    ``sum(max(w_k - ceil_k, 0))`` (an integer), so the loop terminates.
    Cut quality is ignored — the caller follows with a k-way FM pass
    that re-optimizes the cut from the repaired, feasible state.

    Returns ``True`` when the result satisfies every ceiling.  A
    feasible input returns immediately, untouched.
    """
    ceil = np.ascontiguousarray(ceilings, dtype=np.int64)
    vw = np.asarray(h.vwgt, dtype=np.int64)
    pw = np.bincount(parts, weights=vw, minlength=nparts).astype(np.int64)
    if bool(np.all(pw <= ceil)):
        return True
    while True:
        over = pw - ceil
        s = int(np.argmax(over))
        if over[s] <= 0:
            return True
        members = np.flatnonzero(parts == s)
        mw = vw[members]
        heavy_order = np.argsort(-mw, kind="stable")  # heaviest first
        slack = ceil - pw
        slack[s] = np.iinfo(np.int64).min
        # 1. Single move: heaviest member that fits the roomiest target.
        t = int(np.argmax(slack))
        moved = False
        if slack[t] > 0:
            fits = heavy_order[
                (mw[heavy_order] <= slack[t]) & (mw[heavy_order] > 0)
            ]
            if fits.size:
                v = int(members[fits[0]])
                parts[v] = t
                pw[s] -= vw[v]
                pw[t] += vw[v]
                moved = True
        if moved:
            continue
        # 2. Pairwise swap: for each candidate target, pair the heaviest
        # donors with the lightest counter-weights that keep the target
        # under its ceiling; keep the swap shedding the most weight.
        best = None  # (shed, t, v, u) — maximize shed, tie to low ids
        for t in range(nparts):
            if t == s:
                continue
            others = np.flatnonzero(parts == t)
            if not others.size:
                continue
            ow = vw[others]
            asc = np.argsort(ow, kind="stable")
            others, ow = others[asc], ow[asc]
            # Donor v (weight wv) swaps with counter u (weight wu < wv)
            # needing wv - wu <= slack_t; the lightest such u maximizes
            # the shed.  Equal-weight donors shed identically, so only
            # the first (lowest-id) of each weight is considered.
            room = int(ceil[t] - pw[t])
            prev_wv = -1
            for i in heavy_order.tolist():
                wv = int(mw[i])
                if wv == prev_wv:
                    continue
                prev_wv = wv
                lo = int(np.searchsorted(ow, wv - room, side="left"))
                if lo >= ow.size:
                    continue
                wu = int(ow[lo])
                shed = wv - wu
                if shed <= 0:
                    continue
                cand = (shed, -t, -int(members[i]), -int(others[lo]))
                if best is None or cand > best:
                    best = cand
        if best is None:
            return False  # no repair strictly reduces the overshoot
        _, t, v, u = best
        t, v, u = -t, -v, -u
        parts[v], parts[u] = t, s
        dw = vw[v] - vw[u]
        pw[s] -= dw
        pw[t] += dw
