"""Fiduccia–Mattheyses bipartition refinement with gain buckets.

This is the Kernighan–Lin-style engine every partitioner in the paper shares
(Section II): repeated *passes* in which each free vertex may move across
the cut at most once, in best-gain-first order subject to the balance
constraint; the pass is then rolled back to its best prefix, which is never
worse than the starting point — the monotonicity the paper's Algorithm 2
relies on.

Metric: cut-net cost, which for two parts equals the connectivity-1 metric
used throughout the paper.  Balance: *asymmetric* per-side weight ceilings
``(maxW0, maxW1)`` so recursive bisection can pass down Mondriaan-style
budgets; if the incoming partitioning violates a ceiling, the pass first
drives it feasible (forced moves off the overweight side) and only tracks
best prefixes at feasible states.

Implementation notes (per the hpc-parallel guides): per-pass setup —
pin counts, initial gains, boundary detection — is vectorized NumPy; the
move loop itself is inherently sequential and runs on plain Python lists
(2–3x faster than NumPy scalar indexing), which are cached on the
hypergraph so repeated refinement calls (multilevel, iterative refinement)
pay the conversion once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import connectivity_volume
from repro.partitioner.config import PartitionerConfig, get_config
from repro.partitioner.gains import GainBuckets
from repro.utils.rng import SeedLike, as_generator

__all__ = ["fm_refine", "FMResult"]


@dataclass
class FMResult:
    """Outcome of an FM refinement call.

    Attributes
    ----------
    parts:
        Refined part vector (int64, values 0/1).
    cut:
        Cut-net cost of ``parts``.
    feasible:
        Whether ``parts`` satisfies the weight ceilings.
    passes:
        Number of passes executed.
    improvement:
        Total cut reduction over the call (>= 0 whenever the input was
        feasible).
    """

    parts: np.ndarray
    cut: int
    feasible: bool
    passes: int
    improvement: int


def _hot_lists(h: Hypergraph) -> dict:
    """Python-list mirrors of the CSR arrays, cached on the hypergraph."""
    lists = h._cache.get("fm_lists")
    if lists is None:
        lists = {
            "xpins": h.xpins.tolist(),
            "pins": h.pins.tolist(),
            "xnets": h.xnets.tolist(),
            "vnets": h.vnets.tolist(),
            "cost": h.ncost.tolist(),
            "vwgt": h.vwgt.tolist(),
            "net_ids": np.repeat(
                np.arange(h.nnets, dtype=np.int64), h.net_sizes()
            ),
        }
        h._cache["fm_lists"] = lists
    return lists


def fm_refine(
    h: Hypergraph,
    parts: np.ndarray,
    max_weights: tuple[int, int],
    config: PartitionerConfig | str = "mondriaan",
    seed: SeedLike = None,
    max_passes: int | None = None,
) -> FMResult:
    """Refine a bipartitioning of ``h`` with repeated FM passes.

    Parameters
    ----------
    h:
        The hypergraph.
    parts:
        Initial part vector (0/1 per vertex); not modified.
    max_weights:
        Per-side weight ceilings ``(maxW0, maxW1)``.
    config:
        Preset name or :class:`PartitionerConfig` (controls pass count,
        early exit, boundary-only seeding).
    seed:
        RNG for tie-breaking insertion order.
    max_passes:
        Overrides ``config.fm_max_passes`` when given.

    Returns
    -------
    FMResult
        With ``parts`` a fresh array; the cut never exceeds the input cut
        when the input is feasible.
    """
    cfg = get_config(config)
    rng = as_generator(seed)
    parts = np.asarray(parts)
    if parts.shape != (h.nverts,):
        raise PartitioningError(
            f"parts must have shape ({h.nverts},), got {parts.shape}"
        )
    parts = parts.astype(np.int64, copy=True)
    if h.nverts and (parts.min() < 0 or parts.max() > 1):
        raise PartitioningError("fm_refine expects a 0/1 part vector")
    maxw = (int(max_weights[0]), int(max_weights[1]))
    if h.total_weight() > maxw[0] + maxw[1]:
        raise PartitioningError(
            f"total weight {h.total_weight()} exceeds combined ceilings "
            f"{maxw[0]} + {maxw[1]}: no feasible bipartitioning exists"
        )

    passes_budget = max_passes if max_passes is not None else cfg.fm_max_passes
    cut = connectivity_volume(h, parts)
    total_delta = 0
    passes_run = 0
    feasible = _is_feasible(h, parts, maxw)
    for _ in range(passes_budget):
        started_feasible = feasible
        delta, feasible = _fm_pass(h, parts, maxw, cfg, rng)
        passes_run += 1
        total_delta += delta
        # Stop once a pass that started from a feasible state no longer
        # reduces the cut; a rebalancing pass (infeasible start) may have
        # delta <= 0 yet unlock further improvement, so it never stops us.
        if started_feasible and delta <= 0:
            break
    return FMResult(
        parts=parts,
        cut=cut - total_delta,
        feasible=feasible,
        passes=passes_run,
        improvement=total_delta,
    )


def _is_feasible(h: Hypergraph, parts: np.ndarray, maxw: tuple[int, int]) -> bool:
    w1 = int(np.dot(parts, h.vwgt))
    w0 = h.total_weight() - w1
    return w0 <= maxw[0] and w1 <= maxw[1]


def _fm_pass(
    h: Hypergraph,
    parts: np.ndarray,
    maxw: tuple[int, int],
    cfg: PartitionerConfig,
    rng: np.random.Generator,
) -> tuple[int, bool]:
    """One FM pass; mutates ``parts`` in place.

    Returns ``(cut delta, feasible)`` where *delta* is the exact cut
    reduction achieved by the applied move prefix: >= 0 whenever the
    incoming partitioning was feasible, possibly negative when the pass had
    to pay cut to repair an infeasible input.
    """
    nverts = h.nverts
    if nverts == 0:
        return 0, True
    lists = _hot_lists(h)
    xpins_l: list = lists["xpins"]
    pins_l: list = lists["pins"]
    xnets_l: list = lists["xnets"]
    vnets_l: list = lists["vnets"]
    cost_l: list = lists["cost"]
    vw_l: list = lists["vwgt"]
    net_ids: np.ndarray = lists["net_ids"]

    # ------------------------------------------------------------------ #
    # Vectorized setup: pin counts per side, initial gains, boundary mask.
    # ------------------------------------------------------------------ #
    pin_parts = parts[h.pins]
    pc1_np = np.zeros(h.nnets, dtype=np.int64)
    np.add.at(pc1_np, net_ids, pin_parts)
    sizes = h.net_sizes()
    pc0_np = sizes - pc1_np
    own = np.where(pin_parts == 0, pc0_np[net_ids], pc1_np[net_ids])
    other = np.where(pin_parts == 0, pc1_np[net_ids], pc0_np[net_ids])
    contrib = h.ncost[net_ids] * (
        (own == 1).astype(np.int64) - (other == 0).astype(np.int64)
    )
    gain_np = np.zeros(nverts, dtype=np.int64)
    np.add.at(gain_np, h.pins, contrib)

    max_gain = h.max_vertex_net_cost()
    buckets = GainBuckets(nverts, max_gain)
    bgain = buckets.gain
    for v, g in enumerate(gain_np.tolist()):
        bgain[v] = g

    insert_order = rng.permutation(nverts)
    if cfg.boundary_only:
        cut_net = (pc0_np > 0) & (pc1_np > 0)
        boundary = np.zeros(nverts, dtype=bool)
        boundary_flags = cut_net[net_ids]
        np.logical_or.at(boundary, h.pins, boundary_flags)
        insert_mask = boundary
    else:
        insert_mask = np.ones(nverts, dtype=bool)

    parts_l = parts.tolist()
    pc0 = pc0_np.tolist()
    pc1 = pc1_np.tolist()
    locked = [False] * nverts
    w1 = int(np.dot(parts, h.vwgt))
    weights = [h.total_weight() - w1, w1]
    maxw0, maxw1 = maxw
    # In-pass transit slack: a swap (v out, u in) passes through a state
    # where one side briefly exceeds its ceiling.  Moves may overshoot by
    # at most one maximum vertex weight; only *feasible* prefixes are ever
    # recorded as the pass result, so the returned partitioning always
    # honours the true ceilings.
    slack = int(h.vwgt.max(initial=0))

    for v in insert_order.tolist():
        if insert_mask[v]:
            buckets.insert(v, parts_l[v], bgain[v])

    # ------------------------------------------------------------------ #
    # Best-prefix tracking.
    # ------------------------------------------------------------------ #
    def balance_metric() -> float:
        return max(
            weights[0] / maxw0 if maxw0 else float(weights[0] > 0),
            weights[1] / maxw1 if maxw1 else float(weights[1] > 0),
        )

    initially_feasible = weights[0] <= maxw0 and weights[1] <= maxw1
    best_feasible = initially_feasible
    best_cum = 0
    best_len = 0
    best_metric = balance_metric()
    cum = 0
    moved: list[int] = []
    stall = 0
    stall_limit = max(32, int(cfg.fm_early_exit_frac * nverts))

    inside = buckets.inside

    def gain_touch(u: int, delta: int) -> None:
        """Apply a gain delta to a free vertex, (re-)filing it in buckets."""
        if inside[u]:
            buckets.adjust(u, parts_l[u], delta)
        else:
            bgain[u] += delta
            if not locked[u]:
                buckets.insert(u, parts_l[u], bgain[u])

    # ------------------------------------------------------------------ #
    # Move loop.
    # ------------------------------------------------------------------ #
    while True:
        overweight0 = weights[0] > maxw0
        overweight1 = weights[1] > maxw1
        best_v = -1
        best_side = -1
        best_g = None
        for s in (0, 1):
            # While infeasible, only moves off the overweight side help.
            if overweight0 and s != 0:
                continue
            if overweight1 and s != 1:
                continue
            t = 1 - s
            cap = maxw1 if t == 1 else maxw0
            room = cap + slack - weights[t]
            v = buckets.best_movable(s, lambda u: vw_l[u] <= room)
            if v == -1:
                continue
            g = bgain[v]
            if (
                best_v == -1
                or g > best_g
                or (g == best_g and weights[s] > weights[best_side])
            ):
                best_v, best_side, best_g = v, s, g
        if best_v == -1:
            break

        v, s = best_v, best_side
        t = 1 - s
        buckets.remove(v, s)
        locked[v] = True

        # Classic FM gain-update rules around the move of v from s to t.
        for idx in range(xnets_l[v], xnets_l[v + 1]):
            n = vnets_l[idx]
            c = cost_l[n]
            if c == 0:
                continue
            p0, p1 = xpins_l[n], xpins_l[n + 1]
            pcT = pc1[n] if t == 1 else pc0[n]
            if pcT == 0:
                for k in range(p0, p1):
                    u = pins_l[k]
                    if not locked[u]:
                        gain_touch(u, c)
            elif pcT == 1:
                for k in range(p0, p1):
                    u = pins_l[k]
                    if parts_l[u] == t:
                        if not locked[u]:
                            gain_touch(u, -c)
                        break
            if s == 0:
                pc0[n] -= 1
                pc1[n] += 1
                pcF = pc0[n]
            else:
                pc1[n] -= 1
                pc0[n] += 1
                pcF = pc1[n]
            if pcF == 0:
                for k in range(p0, p1):
                    u = pins_l[k]
                    if not locked[u]:
                        gain_touch(u, -c)
            elif pcF == 1:
                for k in range(p0, p1):
                    u = pins_l[k]
                    if u != v and parts_l[u] == s:
                        if not locked[u]:
                            gain_touch(u, c)
                        break

        parts_l[v] = t
        weights[s] -= vw_l[v]
        weights[t] += vw_l[v]
        cum += best_g
        moved.append(v)

        feasible_now = weights[0] <= maxw0 and weights[1] <= maxw1
        improved = False
        if feasible_now:
            metric = balance_metric()
            if (
                not best_feasible
                or cum > best_cum
                or (cum == best_cum and metric < best_metric)
            ):
                best_feasible = True
                best_cum = cum
                best_len = len(moved)
                best_metric = metric
                improved = True
        if improved:
            stall = 0
        else:
            stall += 1
            if stall > stall_limit and best_feasible:
                break

    # ------------------------------------------------------------------ #
    # Roll back to the best prefix.
    # ------------------------------------------------------------------ #
    for v in moved[best_len:]:
        parts_l[v] = 1 - parts_l[v]
    parts[:] = parts_l

    if not best_feasible:
        # No feasible prefix was found: everything is rolled back
        # (best_len == 0), the cut is unchanged, still infeasible.
        return 0, False
    # best_cum is the exact cut reduction of the applied prefix.  It is
    # >= 0 whenever the pass started feasible; a rebalancing pass may pay
    # cut (negative delta) to reach feasibility.
    return best_cum, True
