"""repro — a reproduction of Pelt & Bisseling (IPDPS 2014):
*A medium-grain method for fast 2D bipartitioning of sparse matrices*.

The package implements, from scratch:

* the medium-grain composite hypergraph model, its Algorithm-1 initial
  split, and Algorithm-2 iterative refinement (:mod:`repro.core`);
* the classic row-net / column-net / fine-grain models
  (:mod:`repro.hypergraph`);
* a multilevel FM hypergraph bipartitioner with two presets substituting
  for Mondriaan's internal partitioner and PaToH
  (:mod:`repro.partitioner`);
* recursive bisection to ``p`` parts, a BSP SpMV simulator with vector
  distribution (:mod:`repro.spmv`), a synthetic stand-in for the
  University of Florida test collection (:mod:`repro.sparse`), and the
  Dolan–Moré evaluation harness regenerating every table and figure of
  the paper (:mod:`repro.eval`).

Quickstart
----------
>>> from repro import bipartition, load_instance
>>> a = load_instance("sym_gd97_like")
>>> result = bipartition(a, method="mediumgrain", refine=True, seed=0)
>>> result.volume <= a.nnz
True
"""

from repro.core import (
    BipartitionResult,
    ExactResult,
    FullIterativeResult,
    PartitionResult,
    ascii_spy,
    bipartition,
    communication_volume,
    exact_bipartition,
    full_iterative_bipartition,
    imbalance,
    initial_split,
    iterative_refine,
    partition,
    sbd_order,
    vcycle_refine_bipartition,
)
from repro.sparse import (
    SparseMatrix,
    build_collection,
    classify_matrix,
    load_instance,
    read_matrix_market,
    write_matrix_market,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "bipartition",
    "partition",
    "iterative_refine",
    "full_iterative_bipartition",
    "FullIterativeResult",
    "vcycle_refine_bipartition",
    "exact_bipartition",
    "ExactResult",
    "sbd_order",
    "ascii_spy",
    "initial_split",
    "communication_volume",
    "imbalance",
    "BipartitionResult",
    "PartitionResult",
    "SparseMatrix",
    "load_instance",
    "build_collection",
    "classify_matrix",
    "read_matrix_market",
    "write_matrix_market",
]
