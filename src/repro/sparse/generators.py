"""Synthetic sparse-matrix generators.

The paper's experiments run on 2264 matrices from the University of Florida
collection (500 to 5,000,000 nonzeros; rectangular, structurally symmetric,
and square non-symmetric).  That collection is not available offline, so
these generators provide a structurally diverse substitute spanning the same
three classes: uniform random, power-law (Chung–Lu), R-MAT/Kronecker,
grid Laplacians, banded, block-diagonal, arrow, term-by-document, and
bipartite preferential-attachment patterns, plus symmetrization and random
permutation transforms.  See DESIGN.md Section 2 for the substitution
rationale.

All generators are deterministic given a ``seed`` and return
:class:`~repro.sparse.matrix.SparseMatrix` instances with values in
``[0.5, 1.5]`` (or stencil values for the Laplacians) so the SpMV simulator
exercises non-trivial numerics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SparseFormatError
from repro.sparse.matrix import SparseMatrix
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_pos_int

__all__ = [
    "erdos_renyi",
    "chung_lu",
    "rmat",
    "grid2d_laplacian",
    "grid3d_laplacian",
    "banded",
    "kdiagonal",
    "block_diagonal",
    "arrow",
    "term_document",
    "bipartite_preferential",
    "symmetrize",
    "random_permute",
    "gd97_like",
]


def _random_values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Nonzero values uniform in [0.5, 1.5]; never exactly zero."""
    return 0.5 + rng.random(n)


def _dedupe_exact(
    rng: np.random.Generator,
    m: int,
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    nnz: int,
    sampler,
    max_rounds: int = 30,
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicate coordinates and top up to exactly ``nnz`` distinct entries.

    ``sampler(rng, k) -> (rows, cols)`` draws ``k`` fresh candidate
    coordinates.  If the space is too small or sampling keeps colliding, the
    result may fall short of ``nnz``; callers accept the achieved count.
    """
    keys = rows * n + cols
    keys = np.unique(keys)
    nnz = min(nnz, m * n)
    rounds = 0
    while keys.size < nnz and rounds < max_rounds:
        need = nnz - keys.size
        extra_r, extra_c = sampler(rng, max(2 * need, 16))
        keys = np.unique(np.concatenate([keys, extra_r * n + extra_c]))
        rounds += 1
    if keys.size > nnz:
        keys = rng.choice(keys, size=nnz, replace=False)
    return keys // n, keys % n


def erdos_renyi(
    m: int, n: int, nnz: int, seed: SeedLike = None
) -> SparseMatrix:
    """Uniform random pattern with (exactly, when feasible) ``nnz`` nonzeros."""
    m, n = check_pos_int(m, "m"), check_pos_int(n, "n")
    nnz = check_pos_int(nnz, "nnz")
    if nnz > m * n:
        raise SparseFormatError(f"nnz={nnz} exceeds m*n={m * n}")
    rng = as_generator(seed)

    def sampler(r, k):
        return r.integers(0, m, size=k), r.integers(0, n, size=k)

    rows, cols = sampler(rng, nnz)
    rows, cols = _dedupe_exact(rng, m, n, rows, cols, nnz, sampler)
    return SparseMatrix((m, n), rows, cols, _random_values(rng, rows.size))


def chung_lu(
    m: int,
    n: int,
    nnz: int,
    seed: SeedLike = None,
    *,
    row_exponent: float = 2.2,
    col_exponent: float = 2.2,
) -> SparseMatrix:
    """Power-law pattern: coordinate ``(i, j)`` drawn with probability
    proportional to ``w_r[i] * w_c[j]`` with Zipf-like weights.

    Mimics the skewed degree distributions of web/social matrices in the UF
    collection, which are the instances where 2D methods shine.
    """
    m, n = check_pos_int(m, "m"), check_pos_int(n, "n")
    nnz = check_pos_int(nnz, "nnz")
    rng = as_generator(seed)
    wr = (np.arange(1, m + 1, dtype=np.float64)) ** (-1.0 / (row_exponent - 1.0))
    wc = (np.arange(1, n + 1, dtype=np.float64)) ** (-1.0 / (col_exponent - 1.0))
    pr = wr / wr.sum()
    pc = wc / wc.sum()
    # Shuffle identities so heavy rows/cols are not clustered at low indices.
    rp = rng.permutation(m)
    cp = rng.permutation(n)

    def sampler(r, k):
        return rp[r.choice(m, size=k, p=pr)], cp[r.choice(n, size=k, p=pc)]

    rows, cols = sampler(rng, nnz)
    rows, cols = _dedupe_exact(rng, m, n, rows, cols, nnz, sampler)
    return SparseMatrix((m, n), rows, cols, _random_values(rng, rows.size))


def rmat(
    scale: int,
    nnz: int,
    seed: SeedLike = None,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> SparseMatrix:
    """R-MAT (recursive Kronecker) square pattern of size ``2**scale``.

    The default ``(a, b, c, d)`` parameters are the Graph500 values, yielding
    the heavy-tailed, non-symmetric patterns typical of network matrices.
    """
    scale = check_pos_int(scale, "scale")
    nnz = check_pos_int(nnz, "nnz")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("rmat probabilities must be non-negative and sum <= 1")
    size = 1 << scale
    rng = as_generator(seed)
    p = np.array([a, b, c, d])

    def sampler(r, k):
        rows = np.zeros(k, dtype=np.int64)
        cols = np.zeros(k, dtype=np.int64)
        for _ in range(scale):
            quad = r.choice(4, size=k, p=p)
            rows = (rows << 1) | (quad >> 1)
            cols = (cols << 1) | (quad & 1)
        return rows, cols

    rows, cols = sampler(rng, nnz)
    rows, cols = _dedupe_exact(rng, size, size, rows, cols, nnz, sampler)
    return SparseMatrix(
        (size, size), rows, cols, _random_values(rng, rows.size)
    )


def grid2d_laplacian(nx: int, ny: int) -> SparseMatrix:
    """5-point Laplacian on an ``nx x ny`` grid (structurally symmetric).

    The canonical PDE matrix; partitioners should find low-volume splits.
    """
    nx, ny = check_pos_int(nx, "nx"), check_pos_int(ny, "ny")
    idx = np.arange(nx * ny, dtype=np.int64).reshape(nx, ny)
    rows = [idx.ravel()]
    cols = [idx.ravel()]
    vals = [np.full(nx * ny, 4.0)]
    # Horizontal and vertical neighbor pairs, both directions.
    for src, dst in (
        (idx[:, :-1], idx[:, 1:]),
        (idx[:-1, :], idx[1:, :]),
    ):
        s, t = src.ravel(), dst.ravel()
        rows += [s, t]
        cols += [t, s]
        vals += [np.full(s.size, -1.0), np.full(s.size, -1.0)]
    return SparseMatrix(
        (nx * ny, nx * ny),
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals),
    )


def grid3d_laplacian(nx: int, ny: int, nz: int) -> SparseMatrix:
    """7-point Laplacian on an ``nx x ny x nz`` grid (structurally symmetric)."""
    nx, ny, nz = (
        check_pos_int(nx, "nx"),
        check_pos_int(ny, "ny"),
        check_pos_int(nz, "nz"),
    )
    n = nx * ny * nz
    idx = np.arange(n, dtype=np.int64).reshape(nx, ny, nz)
    rows = [idx.ravel()]
    cols = [idx.ravel()]
    vals = [np.full(n, 6.0)]
    for src, dst in (
        (idx[:, :, :-1], idx[:, :, 1:]),
        (idx[:, :-1, :], idx[:, 1:, :]),
        (idx[:-1, :, :], idx[1:, :, :]),
    ):
        s, t = src.ravel(), dst.ravel()
        rows += [s, t]
        cols += [t, s]
        vals += [np.full(s.size, -1.0), np.full(s.size, -1.0)]
    return SparseMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    )


def banded(
    n: int, bandwidth: int, fill: float, seed: SeedLike = None
) -> SparseMatrix:
    """Random pattern restricted to ``|i - j| <= bandwidth``, density ``fill``
    within the band, plus a guaranteed full diagonal.
    """
    n = check_pos_int(n, "n")
    bandwidth = check_pos_int(bandwidth, "bandwidth")
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill must be in (0, 1], got {fill}")
    rng = as_generator(seed)
    offsets = np.arange(-bandwidth, bandwidth + 1)
    rows_list = [np.arange(n, dtype=np.int64)]
    cols_list = [np.arange(n, dtype=np.int64)]
    for off in offsets:
        if off == 0:
            continue
        i0, i1 = max(0, -off), min(n, n - off)
        if i1 <= i0:
            continue
        cand = np.arange(i0, i1, dtype=np.int64)
        keep = rng.random(cand.size) < fill
        rows_list.append(cand[keep])
        cols_list.append(cand[keep] + off)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return SparseMatrix((n, n), rows, cols, _random_values(rng, rows.size))


def kdiagonal(
    n: int,
    offsets: "tuple[int, ...] | list[int]" = (-1, 0, 1),
    seed: SeedLike = None,
) -> SparseMatrix:
    """Deterministic k-diagonal pattern: *full* diagonals at ``offsets``.

    Unlike :func:`banded` (random fill inside a band) the structure is
    exact: every entry of each listed diagonal is present, nothing else.
    Symmetric offset sets (e.g. ``(-64, -1, 0, 1, 64)``, the flattened
    2D five-point stencil) give structurally symmetric matrices;
    asymmetric sets (e.g. ``(-3, 0, 2, 7)``) give square non-symmetric
    ones.  Long off-diagonals couple distant index ranges, which is what
    makes these instances interesting for direct k-way partitioning:
    contiguous index blocks — the shape recursive bisection tends to
    carve — cut every long diagonal they straddle.

    ``seed`` randomizes only the values, never the pattern.
    """
    n = check_pos_int(n, "n")
    offs = sorted({int(o) for o in offsets})
    if not offs:
        raise SparseFormatError("kdiagonal needs at least one offset")
    if any(abs(o) >= n for o in offs):
        raise SparseFormatError(
            f"every |offset| must be < n = {n}, got {offs}"
        )
    rng = as_generator(seed)
    rows_list = []
    cols_list = []
    for off in offs:
        i0, i1 = max(0, -off), min(n, n - off)
        cand = np.arange(i0, i1, dtype=np.int64)
        rows_list.append(cand)
        cols_list.append(cand + off)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return SparseMatrix((n, n), rows, cols, _random_values(rng, rows.size))


def block_diagonal(
    nblocks: int,
    block_size: int,
    fill: float,
    noise_nnz: int = 0,
    seed: SeedLike = None,
) -> SparseMatrix:
    """Block-diagonal pattern with ``nblocks`` dense-ish blocks plus optional
    uniform off-block "noise" nonzeros.

    With zero noise this is perfectly partitionable (volume 0 for ``p <=
    nblocks``); noise makes the partitioning problem non-trivial while
    keeping obvious cluster structure — a common shape in circuit matrices.
    """
    nblocks = check_pos_int(nblocks, "nblocks")
    block_size = check_pos_int(block_size, "block_size")
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill must be in (0, 1], got {fill}")
    rng = as_generator(seed)
    n = nblocks * block_size
    rows_list = []
    cols_list = []
    for b in range(nblocks):
        base = b * block_size
        local = rng.random((block_size, block_size)) < fill
        np.fill_diagonal(local, True)
        r, c = np.nonzero(local)
        rows_list.append(base + r)
        cols_list.append(base + c)
    if noise_nnz > 0:
        rows_list.append(rng.integers(0, n, size=noise_nnz))
        cols_list.append(rng.integers(0, n, size=noise_nnz))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return SparseMatrix((n, n), rows, cols, _random_values(rng, rows.size))


def arrow(n: int, bandwidth: int = 1, seed: SeedLike = None) -> SparseMatrix:
    """Symmetric arrow matrix: banded core plus dense first row and column.

    Arrow matrices are the classic worst case for 1D partitioning (the dense
    row/column must be cut) and a showcase for 2D methods — the paper's
    motivation for fine/medium-grain models.
    """
    n = check_pos_int(n, "n")
    bandwidth = check_pos_int(bandwidth, "bandwidth")
    rng = as_generator(seed)
    rows_list = [np.arange(n, dtype=np.int64)]
    cols_list = [np.arange(n, dtype=np.int64)]
    for off in range(1, bandwidth + 1):
        cand = np.arange(0, n - off, dtype=np.int64)
        rows_list += [cand, cand + off]
        cols_list += [cand + off, cand]
    border = np.arange(1, n, dtype=np.int64)
    rows_list += [np.zeros(n - 1, dtype=np.int64), border]
    cols_list += [border, np.zeros(n - 1, dtype=np.int64)]
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return SparseMatrix((n, n), rows, cols, _random_values(rng, rows.size))


def term_document(
    n_terms: int,
    n_docs: int,
    n_topics: int,
    nnz: int,
    seed: SeedLike = None,
    *,
    topic_spread: float = 0.1,
) -> SparseMatrix:
    """Rectangular term-by-document pattern with latent topic clusters.

    Each document belongs to one topic; terms are drawn mostly from the
    topic's term block with probability ``1 - topic_spread`` and uniformly
    otherwise — the clustered rectangular shape of LSI matrices in the UF
    collection.
    """
    n_terms = check_pos_int(n_terms, "n_terms")
    n_docs = check_pos_int(n_docs, "n_docs")
    n_topics = check_pos_int(n_topics, "n_topics")
    nnz = check_pos_int(nnz, "nnz")
    rng = as_generator(seed)
    doc_topic = rng.integers(0, n_topics, size=n_docs)
    # Term blocks: contiguous slices of roughly equal size per topic.
    bounds = np.linspace(0, n_terms, n_topics + 1).astype(np.int64)

    def sampler(r, k):
        docs = r.integers(0, n_docs, size=k)
        topics = doc_topic[docs]
        lo, hi = bounds[topics], bounds[topics + 1]
        span = np.maximum(hi - lo, 1)
        in_topic = r.random(k) >= topic_spread
        terms = np.where(
            in_topic,
            lo + (r.random(k) * span).astype(np.int64),
            r.integers(0, n_terms, size=k),
        )
        return terms, docs

    rows, cols = sampler(rng, nnz)
    rows, cols = _dedupe_exact(rng, n_terms, n_docs, rows, cols, nnz, sampler)
    return SparseMatrix(
        (n_terms, n_docs), rows, cols, _random_values(rng, rows.size)
    )


def bipartite_preferential(
    m: int, n: int, nnz: int, seed: SeedLike = None
) -> SparseMatrix:
    """Rectangular preferential-attachment pattern.

    Nonzeros are added one batch at a time; within a batch, row endpoints are
    drawn proportional to (1 + current row degree), column endpoints
    uniformly.  Produces a few very heavy rows — the shape where the
    medium-grain score heuristic ("small rows and columns stay uncut") has
    real work to do.
    """
    m, n = check_pos_int(m, "m"), check_pos_int(n, "n")
    nnz = check_pos_int(nnz, "nnz")
    rng = as_generator(seed)
    deg = np.ones(m, dtype=np.float64)
    rows_parts = []
    cols_parts = []
    remaining = nnz
    batch = max(nnz // 20, 16)
    while remaining > 0:
        k = min(batch, remaining)
        p = deg / deg.sum()
        r = rng.choice(m, size=k, p=p)
        c = rng.integers(0, n, size=k)
        rows_parts.append(r)
        cols_parts.append(c)
        np.add.at(deg, r, 1.0)
        remaining -= k
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)

    def sampler(r_, k):
        p = deg / deg.sum()
        return r_.choice(m, size=k, p=p), r_.integers(0, n, size=k)

    rows, cols = _dedupe_exact(rng, m, n, rows, cols, nnz, sampler)
    return SparseMatrix((m, n), rows, cols, _random_values(rng, rows.size))


def symmetrize(matrix: SparseMatrix) -> SparseMatrix:
    """Return the structurally symmetric pattern ``A + A^T`` (values summed).

    Used to build the symmetric class of the synthetic collection from
    non-symmetric generators.
    """
    m, n = matrix.shape
    if m != n:
        raise SparseFormatError("can only symmetrize a square matrix")
    rows = np.concatenate([matrix.rows, matrix.cols])
    cols = np.concatenate([matrix.cols, matrix.rows])
    vals = np.concatenate([matrix.vals, matrix.vals])
    return SparseMatrix((m, n), rows, cols, vals)


def random_permute(matrix: SparseMatrix, seed: SeedLike = None) -> SparseMatrix:
    """Apply independent random row and column permutations.

    Destroys banded/block layout while preserving the partitioning problem's
    difficulty, diversifying the collection.  Note this in general breaks
    *pattern* symmetry, so it is applied only to non-symmetric instances.
    """
    rng = as_generator(seed)
    m, n = matrix.shape
    return matrix.permuted(rng.permutation(m), rng.permutation(n))


def gd97_like(seed: SeedLike = 1997) -> SparseMatrix:
    """A 47 x 47 structurally symmetric matrix with 264 nonzeros.

    Stand-in for the ``gd97_b`` graph-drawing matrix of the paper's Fig. 3
    (47 x 47, 264 nonzeros): the adjacency matrix of a small-world graph on
    47 nodes — a ring plus random chords, exactly 132 edges in total —
    matching the original's size, nonzero count, and symmetry while being
    hard enough for 1D models that the 2D methods' advantage shows, as in
    the paper's walk-through.
    """
    rng = as_generator(seed)
    npts = 47
    target_edges = 132  # 2 * 132 = 264 nonzeros
    idx = np.arange(npts, dtype=np.int64)
    ring = {(int(i), int((i + 1) % npts)) for i in idx}
    edges = {(min(e), max(e)) for e in ring}
    while len(edges) < target_edges:
        i, j = rng.integers(0, npts, size=2)
        if i == j:
            continue
        edges.add((int(min(i, j)), int(max(i, j))))
    arr = np.array(sorted(edges), dtype=np.int64)
    r, c = arr[:, 0], arr[:, 1]
    rows = np.concatenate([r, c])
    cols = np.concatenate([c, r])
    return SparseMatrix(
        (npts, npts), rows, cols, _random_values(rng, rows.size)
    )
