"""Distributed-matrix and vector-distribution file I/O.

Mondriaan (the paper's host software) emits its partitionings in an
extended MatrixMarket dialect so downstream SpMV codes can load them:

* ``<name>-P<p>``: a ``distributed-matrix`` file — the usual coordinate
  entries grouped by owning processor, preceded by a ``Pstart`` index
  giving each processor's first entry;
* ``<name>-u<p>`` / ``<name>-v<p>``: the output/input vector
  distributions, one ``index owner`` pair per line.

This module reads and writes both, so partitionings produced here can be
consumed by Mondriaan-compatible tooling and vice versa.

Format written (and accepted) for a matrix distributed over ``p`` parts::

    %%MatrixMarket distributed-matrix coordinate real general
    m n nnz p
    Pstart_0        <- always 0
    ...
    Pstart_p        <- always nnz
    i j v           <- nnz entries, grouped by part, 1-based

and for a vector distribution over ``p`` parts::

    %%MatrixMarket distributed-vector array integer general
    n p
    index owner     <- 1-based component index, 1-based owner
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import MatrixMarketError, PartitioningError
from repro.sparse.matrix import SparseMatrix
from repro.utils.validation import check_pos_int


def _check_parts(
    matrix: SparseMatrix, parts: np.ndarray, nparts: int
) -> np.ndarray:
    """Local part-vector validation (kept here to avoid importing
    :mod:`repro.core`, which would cycle back into this package)."""
    parts = np.asarray(parts)
    if parts.shape != (matrix.nnz,):
        raise PartitioningError(
            f"parts must have shape ({matrix.nnz},), got {parts.shape}"
        )
    parts = parts.astype(np.int64, copy=False)
    if parts.size and (int(parts.min()) < 0 or int(parts.max()) >= nparts):
        raise PartitioningError("part ids out of range")
    return parts

__all__ = [
    "write_distributed_matrix_market",
    "read_distributed_matrix_market",
    "write_vector_distribution",
    "read_vector_distribution",
]

_DM_BANNER = "%%MatrixMarket distributed-matrix coordinate real general"
_DV_BANNER = "%%MatrixMarket distributed-vector array integer general"


def write_distributed_matrix_market(
    matrix: SparseMatrix,
    parts: np.ndarray,
    nparts: int,
    target: Union[str, Path, TextIO],
) -> None:
    """Write a partitioned matrix in the distributed MatrixMarket dialect.

    Entries are grouped by part (part 0 first), each group internally in
    canonical order; the ``Pstart`` block gives 0-based group offsets.
    """
    nparts = check_pos_int(nparts, "nparts")
    parts = _check_parts(matrix, parts, nparts)
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            _write_dm(matrix, parts, nparts, fh)
    else:
        _write_dm(matrix, parts, nparts, target)


def _write_dm(
    matrix: SparseMatrix, parts: np.ndarray, nparts: int, fh: TextIO
) -> None:
    m, n = matrix.shape
    fh.write(_DM_BANNER + "\n")
    fh.write(f"{m} {n} {matrix.nnz} {nparts}\n")
    order = np.argsort(parts, kind="stable")
    counts = np.bincount(parts, minlength=nparts)
    pstart = np.zeros(nparts + 1, dtype=np.int64)
    np.cumsum(counts, out=pstart[1:])
    for s in pstart.tolist():
        fh.write(f"{s}\n")
    rows = matrix.rows[order]
    cols = matrix.cols[order]
    vals = matrix.vals[order]
    for i, j, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
        fh.write(f"{i + 1} {j + 1} {v!r}\n")


def read_distributed_matrix_market(
    source: Union[str, Path, TextIO],
) -> tuple[SparseMatrix, np.ndarray, int]:
    """Read a distributed MatrixMarket file.

    Returns ``(matrix, parts, nparts)`` with ``parts`` aligned to the
    matrix's canonical nonzero order (duplicate coordinates are rejected
    since their ownership would be ambiguous).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return _read_dm(fh)
    return _read_dm(source)


def _read_dm(fh: TextIO) -> tuple[SparseMatrix, np.ndarray, int]:
    banner = fh.readline().strip()
    if banner != _DM_BANNER:
        raise MatrixMarketError(
            f"expected distributed-matrix banner, got {banner[:60]!r}"
        )
    fields = _next_data_line(fh).split()
    if len(fields) != 4:
        raise MatrixMarketError("size line must be 'm n nnz p'")
    m, n, nnz, nparts = (int(x) for x in fields)
    if m <= 0 or n <= 0 or nnz < 0 or nparts <= 0:
        raise MatrixMarketError("invalid distributed-matrix size line")
    pstart = [int(_next_data_line(fh)) for _ in range(nparts + 1)]
    if pstart[0] != 0 or pstart[-1] != nnz or any(
        a > b for a, b in zip(pstart, pstart[1:])
    ):
        raise MatrixMarketError("invalid Pstart block")
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    file_parts = np.empty(nnz, dtype=np.int64)
    part = 0
    for k in range(nnz):
        while part < nparts - 1 and k >= pstart[part + 1]:
            part += 1
        entry = _next_data_line(fh).split()
        if len(entry) < 3:
            raise MatrixMarketError(f"malformed entry line {entry!r}")
        i, j, v = int(entry[0]), int(entry[1]), float(entry[2])
        if not (1 <= i <= m and 1 <= j <= n):
            raise MatrixMarketError(f"entry ({i}, {j}) out of bounds")
        rows[k] = i - 1
        cols[k] = j - 1
        vals[k] = v
        file_parts[k] = part
    matrix = SparseMatrix((m, n), rows, cols, vals, sum_duplicates=False)
    # Map the file's entry order to canonical order: order[t] is the file
    # index of the t-th canonical nonzero.
    order = np.lexsort((cols, rows))
    canonical_parts = file_parts[order]
    return matrix, canonical_parts, nparts


def _next_data_line(fh: TextIO) -> str:
    for line in fh:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            return stripped
    raise MatrixMarketError("unexpected end of file")


def write_vector_distribution(
    owner: np.ndarray,
    nparts: int,
    target: Union[str, Path, TextIO],
) -> None:
    """Write a vector distribution (``index owner`` pairs, 1-based)."""
    nparts = check_pos_int(nparts, "nparts")
    owner = np.asarray(owner, dtype=np.int64).ravel()
    if owner.size and (owner.min() < 0 or owner.max() >= nparts):
        raise MatrixMarketError("vector owners out of range")
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            _write_dv(owner, nparts, fh)
    else:
        _write_dv(owner, nparts, target)


def _write_dv(owner: np.ndarray, nparts: int, fh: TextIO) -> None:
    fh.write(_DV_BANNER + "\n")
    fh.write(f"{owner.size} {nparts}\n")
    for idx, p in enumerate(owner.tolist(), start=1):
        fh.write(f"{idx} {p + 1}\n")


def read_vector_distribution(
    source: Union[str, Path, TextIO],
) -> tuple[np.ndarray, int]:
    """Read a vector distribution; returns ``(owner, nparts)`` 0-based."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return _read_dv(fh)
    return _read_dv(source)


def _read_dv(fh: TextIO) -> tuple[np.ndarray, int]:
    banner = fh.readline().strip()
    if banner != _DV_BANNER:
        raise MatrixMarketError(
            f"expected distributed-vector banner, got {banner[:60]!r}"
        )
    fields = _next_data_line(fh).split()
    if len(fields) != 2:
        raise MatrixMarketError("size line must be 'n p'")
    n, nparts = int(fields[0]), int(fields[1])
    if n < 0 or nparts <= 0:
        raise MatrixMarketError("invalid distributed-vector size line")
    owner = np.empty(n, dtype=np.int64)
    seen = np.zeros(n, dtype=bool)
    for _ in range(n):
        entry = _next_data_line(fh).split()
        if len(entry) != 2:
            raise MatrixMarketError(f"malformed vector line {entry!r}")
        idx, p = int(entry[0]), int(entry[1])
        if not (1 <= idx <= n):
            raise MatrixMarketError(f"vector index {idx} out of range")
        if not (1 <= p <= nparts):
            raise MatrixMarketError(f"vector owner {p} out of range")
        if seen[idx - 1]:
            raise MatrixMarketError(f"duplicate vector index {idx}")
        seen[idx - 1] = True
        owner[idx - 1] = p - 1
    return owner, nparts
