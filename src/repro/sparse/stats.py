"""Pattern statistics and matrix classification.

The paper splits its test set into three classes (Section IV):

* **rectangular** matrices (``m != n``),
* **structurally symmetric** matrices (square, nonzero-pattern symmetry
  exactly one), and
* **square non-symmetric** matrices (square, pattern symmetry below one).

:func:`classify_matrix` reproduces that classification, and
:func:`pattern_symmetry` computes the UF-collection-style pattern-symmetry
score it relies on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.sparse.matrix import SparseMatrix

__all__ = [
    "MatrixClass",
    "classify_matrix",
    "pattern_symmetry",
    "MatrixStats",
    "matrix_stats",
]


class MatrixClass(enum.Enum):
    """The paper's three test-set categories."""

    RECTANGULAR = "rectangular"
    SYMMETRIC = "symmetric"
    SQUARE_NONSYMMETRIC = "square_nonsymmetric"

    @property
    def short(self) -> str:
        """The paper's table abbreviation (Rec / Sym / Sqr)."""
        return {
            MatrixClass.RECTANGULAR: "Rec",
            MatrixClass.SYMMETRIC: "Sym",
            MatrixClass.SQUARE_NONSYMMETRIC: "Sqr",
        }[self]


def pattern_symmetry(matrix: SparseMatrix) -> float:
    """Nonzero-pattern symmetry score in ``[0, 1]``.

    Defined as the fraction of *off-diagonal* nonzeros ``(i, j)`` whose
    transposed position ``(j, i)`` is also a nonzero — the definition used by
    the UF sparse matrix collection.  A matrix with no off-diagonal nonzeros
    scores 1.  Rectangular matrices score 0 by convention.
    """
    m, n = matrix.shape
    if m != n:
        return 0.0
    off = matrix.rows != matrix.cols
    n_off = int(np.count_nonzero(off))
    if n_off == 0:
        return 1.0
    # Encode positions as scalar keys; membership via sorted search.
    keys = matrix.rows[off] * n + matrix.cols[off]
    tkeys = matrix.cols[off] * n + matrix.rows[off]
    keys_sorted = np.sort(keys)
    pos = np.searchsorted(keys_sorted, tkeys)
    pos = np.minimum(pos, keys_sorted.size - 1)
    matched = keys_sorted[pos] == tkeys
    return float(np.count_nonzero(matched)) / n_off


def classify_matrix(matrix: SparseMatrix) -> MatrixClass:
    """Classify a matrix into the paper's Rec / Sym / Sqr categories."""
    m, n = matrix.shape
    if m != n:
        return MatrixClass.RECTANGULAR
    if pattern_symmetry(matrix) == 1.0:
        return MatrixClass.SYMMETRIC
    return MatrixClass.SQUARE_NONSYMMETRIC


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics of a sparse matrix pattern."""

    nrows: int
    ncols: int
    nnz: int
    density: float
    pattern_symmetry: float
    matrix_class: MatrixClass
    min_row_degree: int
    max_row_degree: int
    mean_row_degree: float
    min_col_degree: int
    max_col_degree: int
    mean_col_degree: float
    empty_rows: int
    empty_cols: int
    diagonal_nnz: int


def matrix_stats(matrix: SparseMatrix) -> MatrixStats:
    """Compute :class:`MatrixStats` for ``matrix``."""
    m, n = matrix.shape
    nzr = matrix.nnz_per_row()
    nzc = matrix.nnz_per_col()
    diag = 0
    if m == n:
        diag = int(np.count_nonzero(matrix.rows == matrix.cols))
    return MatrixStats(
        nrows=m,
        ncols=n,
        nnz=matrix.nnz,
        density=matrix.nnz / (m * n),
        pattern_symmetry=pattern_symmetry(matrix),
        matrix_class=classify_matrix(matrix),
        min_row_degree=int(nzr.min(initial=0)),
        max_row_degree=int(nzr.max(initial=0)),
        mean_row_degree=float(nzr.mean()) if m else 0.0,
        min_col_degree=int(nzc.min(initial=0)),
        max_col_degree=int(nzc.max(initial=0)),
        mean_col_degree=float(nzc.mean()) if n else 0.0,
        empty_rows=int(np.count_nonzero(nzr == 0)),
        empty_cols=int(np.count_nonzero(nzc == 0)),
        diagonal_nnz=diag,
    )
