"""Sparse-matrix substrate.

This subpackage provides everything the partitioning core needs from the
sparse-matrix world, built from scratch on NumPy:

* :class:`~repro.sparse.matrix.SparseMatrix` — an immutable, canonically
  ordered COO matrix whose nonzero ordering defines the indexing of all
  nonzero partition vectors in the package;
* MatrixMarket I/O (:mod:`repro.sparse.io_mm`);
* pattern statistics and classification (:mod:`repro.sparse.stats`);
* synthetic matrix generators (:mod:`repro.sparse.generators`); and
* the named, seeded test collection substituting for the University of
  Florida collection used in the paper (:mod:`repro.sparse.collection`).
"""

from repro.sparse.matrix import SparseMatrix
from repro.sparse.io_mm import read_matrix_market, write_matrix_market
from repro.sparse.io_dist import (
    read_distributed_matrix_market,
    read_vector_distribution,
    write_distributed_matrix_market,
    write_vector_distribution,
)
from repro.sparse.stats import (
    MatrixClass,
    classify_matrix,
    pattern_symmetry,
)
from repro.sparse.collection import (
    CollectionEntry,
    build_collection,
    collection_names,
    load_instance,
)

__all__ = [
    "SparseMatrix",
    "read_matrix_market",
    "write_matrix_market",
    "read_distributed_matrix_market",
    "write_distributed_matrix_market",
    "read_vector_distribution",
    "write_vector_distribution",
    "MatrixClass",
    "classify_matrix",
    "pattern_symmetry",
    "CollectionEntry",
    "build_collection",
    "collection_names",
    "load_instance",
]
