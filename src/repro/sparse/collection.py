"""The synthetic test-matrix collection.

Substitute for the University of Florida sparse matrix collection used in the
paper's experiments (Section IV: 2264 matrices with 500–5,000,000 nonzeros;
582 rectangular, 1007 structurally symmetric, 675 square non-symmetric).

Offline reproduction cannot download UF matrices, so this module defines a
*named, deterministic* collection drawn from the generator families in
:mod:`repro.sparse.generators`, spanning the same three classes and a wide
nonzero range (≈500–50,000; the ceiling keeps pure-Python partitioning times
practical).  Every instance is identified by a stable name and built from a
seed derived from that name, so any two processes constructing the same
instance get bit-identical matrices.

Tiers
-----
``small``
    ≈500–2,500 nonzeros.  Used by the unit/integration tests.
``medium``
    ≈2,500–12,000 nonzeros.  Default benchmark tier.
``large``
    ≈12,000–50,000 nonzeros.  Used by the full benchmark runs and the
    ``p = 64`` recursive-bisection experiments.
"""

from __future__ import annotations

import functools
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.errors import EvaluationError
from repro.sparse import generators as gen
from repro.sparse.matrix import SparseMatrix
from repro.sparse.stats import MatrixClass, classify_matrix

__all__ = [
    "CollectionEntry",
    "build_collection",
    "collection_names",
    "load_instance",
    "TIERS",
]

TIERS = ("small", "medium", "large")


@dataclass(frozen=True)
class CollectionEntry:
    """One named instance of the synthetic collection."""

    name: str
    matrix_class: MatrixClass
    tier: str
    factory: Callable[[int], SparseMatrix]

    def build(self) -> SparseMatrix:
        """Construct the matrix (deterministic; cached via load_instance)."""
        return self.factory(_seed_for(self.name))


def _seed_for(name: str) -> int:
    """Stable 32-bit seed derived from the instance name."""
    return zlib.crc32(name.encode("utf-8"))


def _sym(factory: Callable[[int], SparseMatrix]) -> Callable[[int], SparseMatrix]:
    """Wrap a factory so its output is symmetrized."""

    def wrapped(seed: int) -> SparseMatrix:
        return gen.symmetrize(factory(seed))

    return wrapped


def _registry() -> list[CollectionEntry]:
    """The full declarative instance table."""
    R = MatrixClass.RECTANGULAR
    S = MatrixClass.SYMMETRIC
    Q = MatrixClass.SQUARE_NONSYMMETRIC
    entries: list[CollectionEntry] = []

    def add(name: str, klass: MatrixClass, tier: str, factory) -> None:
        entries.append(CollectionEntry(name, klass, tier, factory))

    # ------------------------------------------------------------------ #
    # Rectangular (m != n)
    # ------------------------------------------------------------------ #
    add("rec_td_small_a", R, "small", lambda s: gen.term_document(120, 80, 6, 900, s))
    add("rec_td_small_b", R, "small", lambda s: gen.term_document(200, 60, 4, 1400, s))
    add("rec_er_tall_s", R, "small", lambda s: gen.erdos_renyi(400, 60, 1600, s))
    add("rec_er_wide_s", R, "small", lambda s: gen.erdos_renyi(50, 500, 1800, s))
    add("rec_cl_small", R, "small", lambda s: gen.chung_lu(240, 120, 1500, s))
    add("rec_bp_small", R, "small", lambda s: gen.bipartite_preferential(150, 100, 1200, s))
    add("rec_td_med_a", R, "medium", lambda s: gen.term_document(500, 300, 10, 5000, s))
    add("rec_td_med_b", R, "medium", lambda s: gen.term_document(900, 240, 8, 8000, s))
    add("rec_er_tall_m", R, "medium", lambda s: gen.erdos_renyi(1800, 220, 7000, s))
    add("rec_er_wide_m", R, "medium", lambda s: gen.erdos_renyi(200, 2200, 8800, s))
    add("rec_cl_med", R, "medium", lambda s: gen.chung_lu(900, 500, 6000, s))
    add("rec_bp_med", R, "medium", lambda s: gen.bipartite_preferential(700, 420, 5200, s))
    add("rec_verytall_m", R, "medium", lambda s: gen.erdos_renyi(4200, 80, 9000, s))
    add("rec_td_large_a", R, "large", lambda s: gen.term_document(2000, 1200, 16, 20000, s))
    add("rec_td_large_b", R, "large", lambda s: gen.term_document(3200, 800, 12, 30000, s))
    add("rec_er_tall_l", R, "large", lambda s: gen.erdos_renyi(5200, 700, 21000, s))
    add("rec_er_wide_l", R, "large", lambda s: gen.erdos_renyi(650, 5800, 24000, s))
    add("rec_cl_large", R, "large", lambda s: gen.chung_lu(3000, 1600, 24000, s))
    add("rec_bp_large", R, "large", lambda s: gen.bipartite_preferential(2400, 1500, 18000, s))
    add("rec_verywide_l", R, "large", lambda s: gen.erdos_renyi(240, 9000, 26000, s))

    # ------------------------------------------------------------------ #
    # Structurally symmetric (square, pattern symmetry == 1)
    # ------------------------------------------------------------------ #
    add("sym_gd97_like", S, "small", lambda s: gen.gd97_like(s))
    add("sym_grid2d_s", S, "small", lambda _s: gen.grid2d_laplacian(16, 16))
    add("sym_arrow_s", S, "small", lambda s: gen.arrow(300, 1, s))
    add("sym_er_s", S, "small", lambda s: gen.symmetrize(gen.erdos_renyi(300, 300, 900, s)))
    add("sym_cl_s", S, "small", lambda s: gen.symmetrize(gen.chung_lu(350, 350, 1000, s)))
    add("sym_rmat_s", S, "small", lambda s: gen.symmetrize(gen.rmat(8, 1000, s)))
    add("sym_grid2d_m", S, "medium", lambda _s: gen.grid2d_laplacian(38, 38))
    add("sym_grid3d_m", S, "medium", lambda _s: gen.grid3d_laplacian(11, 11, 11))
    add("sym_arrow_m", S, "medium", lambda s: gen.arrow(1600, 2, s))
    add("sym_er_m", S, "medium", lambda s: gen.symmetrize(gen.erdos_renyi(1300, 1300, 3900, s)))
    add("sym_cl_m", S, "medium", lambda s: gen.symmetrize(gen.chung_lu(1500, 1500, 4200, s)))
    add("sym_rmat_m", S, "medium", lambda s: gen.symmetrize(gen.rmat(10, 4200, s)))
    add("sym_blk_m", S, "medium", lambda s: gen.symmetrize(gen.block_diagonal(8, 28, 0.28, 260, s)))
    # Flattened five-point stencil (long symmetric off-diagonals): the
    # structured case where direct k-way and recursive bisection diverge.
    add("sym_kdiag_m", S, "medium", lambda s: gen.kdiagonal(1500, (-38, -1, 0, 1, 38), s))
    add("sym_grid2d_l", S, "large", lambda _s: gen.grid2d_laplacian(78, 78))
    add("sym_grid3d_l", S, "large", lambda _s: gen.grid3d_laplacian(17, 17, 17))
    add("sym_arrow_l", S, "large", lambda s: gen.arrow(5600, 2, s))
    add("sym_er_l", S, "large", lambda s: gen.symmetrize(gen.erdos_renyi(5200, 5200, 15500, s)))
    add("sym_cl_l", S, "large", lambda s: gen.symmetrize(gen.chung_lu(5600, 5600, 16500, s)))
    add("sym_rmat_l", S, "large", lambda s: gen.symmetrize(gen.rmat(12, 16000, s)))
    add("sym_blk_l", S, "large", lambda s: gen.symmetrize(gen.block_diagonal(14, 52, 0.12, 1300, s)))
    add("sym_kdiag_l", S, "large", lambda s: gen.kdiagonal(4200, (-65, -1, 0, 1, 65), s))

    # ------------------------------------------------------------------ #
    # Square non-symmetric (square, pattern symmetry < 1)
    # ------------------------------------------------------------------ #
    add("sqr_er_s", Q, "small", lambda s: gen.erdos_renyi(350, 350, 1400, s))
    add("sqr_cl_s", Q, "small", lambda s: gen.chung_lu(400, 400, 1600, s))
    add("sqr_rmat_s", Q, "small", lambda s: gen.rmat(8, 1500, s))
    add("sqr_band_s", Q, "small", lambda s: gen.banded(260, 4, 0.45, s))
    add("sqr_blk_s", Q, "small", lambda s: gen.block_diagonal(6, 22, 0.4, 140, s))
    add("sqr_perm_s", Q, "small", lambda s: gen.random_permute(gen.banded(300, 3, 0.5, s), s + 1))
    add("sqr_er_m", Q, "medium", lambda s: gen.erdos_renyi(1700, 1700, 6800, s))
    add("sqr_cl_m", Q, "medium", lambda s: gen.chung_lu(1800, 1800, 7200, s))
    add("sqr_rmat_m", Q, "medium", lambda s: gen.rmat(10, 6500, s))
    add("sqr_band_m", Q, "medium", lambda s: gen.banded(1100, 5, 0.5, s))
    add("sqr_blk_m", Q, "medium", lambda s: gen.block_diagonal(9, 34, 0.24, 560, s))
    add("sqr_perm_m", Q, "medium", lambda s: gen.random_permute(gen.banded(1400, 4, 0.45, s), s + 1))
    add("sqr_cl_skew_m", Q, "medium", lambda s: gen.chung_lu(2000, 2000, 8000, s, row_exponent=1.9, col_exponent=2.6))
    # Asymmetric k-diagonal structure (see sym_kdiag_m for the rationale).
    add("sqr_kdiag_m", Q, "medium", lambda s: gen.kdiagonal(1400, (-47, -1, 0, 2, 31), s))
    add("sqr_er_l", Q, "large", lambda s: gen.erdos_renyi(5400, 5400, 21500, s))
    add("sqr_cl_l", Q, "large", lambda s: gen.chung_lu(5800, 5800, 23000, s))
    add("sqr_rmat_l", Q, "large", lambda s: gen.rmat(12, 21000, s))
    add("sqr_band_l", Q, "large", lambda s: gen.banded(3800, 5, 0.55, s))
    add("sqr_blk_l", Q, "large", lambda s: gen.block_diagonal(16, 60, 0.09, 2400, s))
    add("sqr_perm_l", Q, "large", lambda s: gen.random_permute(gen.banded(4600, 5, 0.5, s), s + 1))

    return entries


@functools.lru_cache(maxsize=1)
def _registry_cached() -> tuple[CollectionEntry, ...]:
    entries = _registry()
    names = [e.name for e in entries]
    if len(set(names)) != len(names):
        raise EvaluationError("duplicate collection instance names")
    return tuple(entries)


def build_collection(
    tier: Optional[str] = None,
    matrix_class: Optional[MatrixClass] = None,
    max_tier: Optional[str] = None,
) -> list[CollectionEntry]:
    """Return collection entries, optionally filtered.

    Parameters
    ----------
    tier:
        Keep only this tier (``"small"``, ``"medium"``, ``"large"``).
    matrix_class:
        Keep only this class.
    max_tier:
        Keep all tiers up to and including this one (ordered small <
        medium < large).  Mutually exclusive with ``tier``.
    """
    if tier is not None and max_tier is not None:
        raise EvaluationError("pass either tier or max_tier, not both")
    entries: Iterable[CollectionEntry] = _registry_cached()
    if tier is not None:
        if tier not in TIERS:
            raise EvaluationError(f"unknown tier {tier!r}; expected one of {TIERS}")
        entries = (e for e in entries if e.tier == tier)
    if max_tier is not None:
        if max_tier not in TIERS:
            raise EvaluationError(f"unknown tier {max_tier!r}; expected one of {TIERS}")
        allowed = set(TIERS[: TIERS.index(max_tier) + 1])
        entries = (e for e in entries if e.tier in allowed)
    if matrix_class is not None:
        entries = (e for e in entries if e.matrix_class == matrix_class)
    return list(entries)


def collection_names(tier: Optional[str] = None) -> list[str]:
    """Names of all instances (optionally restricted to one tier)."""
    return [e.name for e in build_collection(tier=tier)]


@functools.lru_cache(maxsize=None)
def load_instance(name: str) -> SparseMatrix:
    """Build (and cache) the named collection instance.

    Raises
    ------
    EvaluationError
        If the name is unknown or the built matrix does not match its
        declared class (a collection self-consistency failure).
    """
    for entry in _registry_cached():
        if entry.name == name:
            matrix = entry.build()
            if classify_matrix(matrix) != entry.matrix_class:
                raise EvaluationError(
                    f"instance {name!r} built as {classify_matrix(matrix)} "
                    f"but is declared {entry.matrix_class}"
                )
            return matrix
    raise EvaluationError(f"unknown collection instance {name!r}")
