"""Canonical COO sparse matrix.

:class:`SparseMatrix` is the package's single sparse-matrix type.  It stores
the nonzeros in *canonical order* — lexicographically sorted by ``(row,
col)`` with duplicates summed — and is immutable: the arrays are set to
read-only so a matrix can safely be shared between partitioning runs.

The canonical ordering matters beyond hygiene: a *nonzero partitioning* in
this package is an integer array ``parts`` with ``parts[k]`` the part of the
``k``-th canonical nonzero.  Every module (the splitter, the medium-grain
mapper, the volume calculator, the SpMV simulator) indexes nonzeros the same
way, so partition vectors can flow between them without translation.

Design notes
------------
Values are kept (for the SpMV simulator and MatrixMarket round-trips) but the
partitioning problem only depends on the *pattern*; ``SparseMatrix.pattern()``
drops values.  Rows/cols use ``int64`` throughout — matrices here are far
from the 2**31 limit, but mixing index dtypes is a classic source of silent
bugs in sparse code, so one dtype is enforced at the boundary.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import SparseFormatError
from repro.utils.validation import check_axis_pair

__all__ = ["SparseMatrix"]


def _readonly(a: np.ndarray) -> np.ndarray:
    a = np.ascontiguousarray(a)
    a.flags.writeable = False
    return a


class SparseMatrix:
    """An immutable sparse matrix in canonical COO form.

    Parameters
    ----------
    shape:
        Pair ``(m, n)`` of positive matrix dimensions.
    rows, cols:
        Integer arrays of equal length with the coordinates of each nonzero;
        entries must satisfy ``0 <= rows[k] < m`` and ``0 <= cols[k] < n``.
    vals:
        Optional float array of nonzero values; defaults to all ones.
        Explicitly stored zeros are kept (MatrixMarket files may contain
        them) unless ``prune`` is true.
    sum_duplicates:
        If true (default), duplicate coordinates are merged by summing their
        values.  If false, duplicates raise :class:`SparseFormatError`.
    prune:
        If true, entries whose value is exactly ``0.0`` are dropped after
        duplicate merging.  Default false: pattern-based algorithms treat an
        explicit zero as a nonzero, matching Mondriaan's behaviour.
    """

    __slots__ = ("_shape", "_rows", "_cols", "_vals", "_cache")

    def __init__(
        self,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: Optional[np.ndarray] = None,
        *,
        sum_duplicates: bool = True,
        prune: bool = False,
    ) -> None:
        m, n = check_axis_pair(shape)
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        if rows.shape != cols.shape:
            raise SparseFormatError(
                f"rows and cols must have equal length, got {rows.size} and {cols.size}"
            )
        if vals is None:
            vals = np.ones(rows.size, dtype=np.float64)
        else:
            vals = np.asarray(vals, dtype=np.float64).ravel()
            if vals.shape != rows.shape:
                raise SparseFormatError(
                    f"vals length {vals.size} does not match {rows.size} coordinates"
                )
        if rows.size:
            if rows.min(initial=0) < 0 or rows.max(initial=0) >= m:
                raise SparseFormatError(f"row indices out of range for m={m}")
            if cols.min(initial=0) < 0 or cols.max(initial=0) >= n:
                raise SparseFormatError(f"column indices out of range for n={n}")

        # Canonicalize: lexsort by (row, col); merge duplicates.
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if rows.size:
            same = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
            if same.any():
                if not sum_duplicates:
                    raise SparseFormatError("duplicate coordinates present")
                # Segment-sum values over runs of identical coordinates.
                first = np.concatenate(([True], ~same))
                seg = np.cumsum(first) - 1
                merged = np.zeros(int(seg[-1]) + 1, dtype=np.float64)
                np.add.at(merged, seg, vals)
                rows, cols, vals = rows[first], cols[first], merged
        if prune and vals.size:
            keep = vals != 0.0
            rows, cols, vals = rows[keep], cols[keep], vals[keep]

        self._shape = (m, n)
        self._rows = _readonly(rows)
        self._cols = _readonly(cols)
        self._vals = _readonly(vals)
        self._cache: dict = {}

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """Matrix dimensions ``(m, n)``."""
        return self._shape

    @property
    def nrows(self) -> int:
        return self._shape[0]

    @property
    def ncols(self) -> int:
        return self._shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros ``N``."""
        return self._rows.size

    @property
    def rows(self) -> np.ndarray:
        """Row index of each canonical nonzero (read-only ``int64``)."""
        return self._rows

    @property
    def cols(self) -> np.ndarray:
        """Column index of each canonical nonzero (read-only ``int64``)."""
        return self._cols

    @property
    def vals(self) -> np.ndarray:
        """Value of each canonical nonzero (read-only ``float64``)."""
        return self._vals

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m, n = self._shape
        return f"SparseMatrix(shape=({m}, {n}), nnz={self.nnz})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMatrix):
            return NotImplemented
        return (
            self._shape == other._shape
            and np.array_equal(self._rows, other._rows)
            and np.array_equal(self._cols, other._cols)
            and np.array_equal(self._vals, other._vals)
        )

    def __hash__(self) -> int:
        key = self._cache.get("hash")
        if key is None:
            key = hash(
                (
                    self._shape,
                    self._rows.tobytes(),
                    self._cols.tobytes(),
                    self._vals.tobytes(),
                )
            )
            self._cache["hash"] = key
        return key

    # ------------------------------------------------------------------ #
    # Derived structure (cached)
    # ------------------------------------------------------------------ #
    def nnz_per_row(self) -> np.ndarray:
        """``nzr(i)``: number of nonzeros in each row (length ``m``)."""
        out = self._cache.get("nnz_per_row")
        if out is None:
            out = _readonly(np.bincount(self._rows, minlength=self.nrows))
            self._cache["nnz_per_row"] = out
        return out

    def nnz_per_col(self) -> np.ndarray:
        """``nzc(j)``: number of nonzeros in each column (length ``n``)."""
        out = self._cache.get("nnz_per_col")
        if out is None:
            out = _readonly(np.bincount(self._cols, minlength=self.ncols))
            self._cache["nnz_per_col"] = out
        return out

    def row_ptr(self) -> np.ndarray:
        """CSR-style row pointer into the canonical nonzero arrays.

        ``row_ptr()[i] : row_ptr()[i+1]`` is the canonical index range of
        row ``i``'s nonzeros (canonical order is row-major, so this is a
        contiguous slice).
        """
        out = self._cache.get("row_ptr")
        if out is None:
            ptr = np.zeros(self.nrows + 1, dtype=np.int64)
            np.cumsum(self.nnz_per_row(), out=ptr[1:])
            out = _readonly(ptr)
            self._cache["row_ptr"] = out
        return out

    def col_order(self) -> np.ndarray:
        """Permutation of canonical indices sorting nonzeros by (col, row)."""
        out = self._cache.get("col_order")
        if out is None:
            out = _readonly(np.lexsort((self._rows, self._cols)))
            self._cache["col_order"] = out
        return out

    def col_ptr(self) -> np.ndarray:
        """CSC-style column pointer into ``col_order()``.

        ``col_order()[col_ptr()[j] : col_ptr()[j+1]]`` are the canonical
        indices of column ``j``'s nonzeros.
        """
        out = self._cache.get("col_ptr")
        if out is None:
            ptr = np.zeros(self.ncols + 1, dtype=np.int64)
            np.cumsum(self.nnz_per_col(), out=ptr[1:])
            out = _readonly(ptr)
            self._cache["col_ptr"] = out
        return out

    def spmv_state(self):
        """The per-matrix SpMV/volume evaluation state (cached).

        Holds the simulator's default input vector, its sequential
        reference product, and reusable scratch buffers — everything
        repeated volume/SpMV evaluation of this matrix would otherwise
        re-derive per call (see :class:`repro.kernels.spmv.SpMVState`;
        immutability makes the cache safe, like the derived-structure
        accessors above).
        """
        # Late import: repro.kernels.spmv imports this module.
        from repro.kernels.spmv import SpMVState

        return SpMVState.for_matrix(self)

    # ------------------------------------------------------------------ #
    # Constructors / converters
    # ------------------------------------------------------------------ #
    @classmethod
    def from_canonical(
        cls,
        shape: Tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
    ) -> "SparseMatrix":
        """Trusted zero-copy constructor for *already canonical* arrays.

        Skips validation, the lexsort, and duplicate merging, and does
        not copy: the given arrays (typically views of a shared-memory
        segment, see :class:`repro.utils.executor.MatrixHandle`) are
        marked read-only and adopted directly.  The caller guarantees the
        canonical invariant — ``(row, col)`` strictly lexicographically
        increasing, indices in range, matching dtypes/lengths; arrays
        that came out of another :class:`SparseMatrix` satisfy it by
        construction.
        """
        self = object.__new__(cls)
        self._shape = tuple(shape)
        self._rows = _readonly(rows)
        self._cols = _readonly(cols)
        self._vals = _readonly(vals)
        self._cache = {}
        return self

    @classmethod
    def from_scipy(cls, a: sp.spmatrix | sp.sparray) -> "SparseMatrix":
        """Build from any SciPy sparse matrix/array (pattern + values)."""
        coo = sp.coo_matrix(a)
        return cls(coo.shape, coo.row, coo.col, coo.data)

    @classmethod
    def from_dense(cls, a: np.ndarray) -> "SparseMatrix":
        """Build from a dense 2-D array, storing its nonzero entries."""
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2:
            raise SparseFormatError(f"dense input must be 2-D, got {a.ndim}-D")
        rows, cols = np.nonzero(a)
        return cls(a.shape, rows, cols, a[rows, cols])

    @classmethod
    def eye(cls, n: int) -> "SparseMatrix":
        """The ``n x n`` identity matrix."""
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), idx, idx, np.ones(n))

    def to_scipy(self, fmt: str = "csr") -> sp.spmatrix:
        """Convert to a SciPy sparse matrix (``csr``, ``csc``, or ``coo``)."""
        coo = sp.coo_matrix(
            (self._vals, (self._rows, self._cols)), shape=self._shape
        )
        if fmt == "coo":
            return coo
        if fmt == "csr":
            return coo.tocsr()
        if fmt == "csc":
            return coo.tocsc()
        raise ValueError(f"unsupported format {fmt!r}")

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (intended for small matrices/tests)."""
        out = np.zeros(self._shape, dtype=np.float64)
        out[self._rows, self._cols] = self._vals
        return out

    # ------------------------------------------------------------------ #
    # Transformations (each returns a new SparseMatrix)
    # ------------------------------------------------------------------ #
    def transpose(self) -> "SparseMatrix":
        """Return ``A^T``."""
        m, n = self._shape
        return SparseMatrix((n, m), self._cols, self._rows, self._vals)

    @property
    def T(self) -> "SparseMatrix":
        return self.transpose()

    def pattern(self) -> "SparseMatrix":
        """Return the pattern matrix (same coordinates, all values 1)."""
        return SparseMatrix((self._shape), self._rows, self._cols, None)

    def with_values(self, vals: np.ndarray) -> "SparseMatrix":
        """Return a copy with ``vals[k]`` as value of canonical nonzero ``k``."""
        vals = np.asarray(vals, dtype=np.float64).ravel()
        if vals.size != self.nnz:
            raise SparseFormatError(
                f"expected {self.nnz} values, got {vals.size}"
            )
        return SparseMatrix(self._shape, self._rows, self._cols, vals)

    def select(self, mask: np.ndarray) -> "SparseMatrix":
        """Submatrix (same shape) keeping canonical nonzeros where ``mask``.

        ``mask`` may be boolean (length ``nnz``) or an integer index array.
        The result preserves values; its canonical order is the induced
        order, which equals the original relative order.
        """
        mask = np.asarray(mask)
        if mask.dtype == bool:
            if mask.size != self.nnz:
                raise SparseFormatError(
                    f"boolean mask length {mask.size} != nnz {self.nnz}"
                )
            idx = np.flatnonzero(mask)
        else:
            idx = mask.astype(np.int64, copy=False)
            if idx.size and (idx.min() < 0 or idx.max() >= self.nnz):
                raise SparseFormatError("index mask out of range")
        if idx.size < 2 or bool((idx[1:] > idx[:-1]).all()):
            # Strictly increasing indices (every boolean mask, and the
            # index sets recursive bisection hands around) induce a
            # submatrix that is canonical by construction — unique
            # (row, col) pairs in lexicographic order — so the O(n log n)
            # re-canonicalization of the constructor can be skipped.
            return SparseMatrix.from_canonical(
                self._shape, self._rows[idx], self._cols[idx], self._vals[idx]
            )
        return SparseMatrix(
            self._shape, self._rows[idx], self._cols[idx], self._vals[idx]
        )

    def permuted(self, row_perm: np.ndarray, col_perm: np.ndarray) -> "SparseMatrix":
        """Return ``P A Q`` where ``row_perm[i]`` is the new index of row ``i``
        and ``col_perm[j]`` of column ``j`` (both must be permutations)."""
        row_perm = _check_perm(row_perm, self.nrows, "row_perm")
        col_perm = _check_perm(col_perm, self.ncols, "col_perm")
        return SparseMatrix(
            self._shape, row_perm[self._rows], col_perm[self._cols], self._vals
        )

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Sequential reference SpMV ``u = A v`` (used to validate the simulator)."""
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.size != self.ncols:
            raise SparseFormatError(
                f"vector length {v.size} != ncols {self.ncols}"
            )
        u = np.zeros(self.nrows, dtype=np.float64)
        np.add.at(u, self._rows, self._vals * v[self._cols])
        return u

    # ------------------------------------------------------------------ #
    # Iteration
    # ------------------------------------------------------------------ #
    def triplets(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(i, j, value)`` in canonical order (for small matrices)."""
        for i, j, v in zip(self._rows, self._cols, self._vals):
            yield int(i), int(j), float(v)


def _check_perm(perm: np.ndarray, n: int, name: str) -> np.ndarray:
    perm = np.asarray(perm, dtype=np.int64).ravel()
    if perm.size != n:
        raise SparseFormatError(f"{name} must have length {n}, got {perm.size}")
    seen = np.zeros(n, dtype=bool)
    if perm.size and (perm.min() < 0 or perm.max() >= n):
        raise SparseFormatError(f"{name} entries out of range")
    seen[perm] = True
    if not seen.all():
        raise SparseFormatError(f"{name} is not a permutation")
    return perm
