"""MatrixMarket coordinate-format I/O.

The University of Florida collection (the paper's test set) distributes
matrices as MatrixMarket files, so the reproduction ships a small, strict
reader/writer for the coordinate format.  Supported qualifiers:

* field: ``real``, ``integer``, ``pattern`` (``complex`` is rejected —
  partitioning only needs the pattern, and silently dropping imaginary
  parts would corrupt SpMV validation);
* symmetry: ``general``, ``symmetric``, ``skew-symmetric`` (expanded to the
  full pattern on read, as Mondriaan does before partitioning).

Every parse failure raises a structured
:class:`~repro.errors.MatrixMarketError` (a
:class:`~repro.errors.MatrixFormatError`) naming the source file and the
1-based line that was rejected; the raw ``ValueError``/``IndexError``
that detected the problem never leaks.  That contract is what lets the
serving daemon (:mod:`repro.serve`) turn a bad upload into an HTTP 400
at the admission boundary instead of a worker crash.  Non-finite values
(NaN/inf) are rejected too — they would silently corrupt every
downstream weight computation.

The writer emits ``general`` files; symmetry is a storage optimization the
reproduction does not need on output.
"""

from __future__ import annotations

import io
import math
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import MatrixMarketError
from repro.sparse.matrix import SparseMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER_PREFIX = "%%MatrixMarket"


def read_matrix_market(source: Union[str, Path, TextIO]) -> SparseMatrix:
    """Read a MatrixMarket coordinate file into a :class:`SparseMatrix`.

    Parameters
    ----------
    source:
        File path or open text stream.

    Returns
    -------
    SparseMatrix
        With symmetric/skew-symmetric storage expanded to the full pattern.

    Raises
    ------
    MatrixMarketError
        On any malformed input, naming the source and the offending
        1-based line.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return _read_stream(fh, name=str(source))
    name = getattr(source, "name", "") or "<stream>"
    return _read_stream(source, name=str(name))


def _read_stream(fh: TextIO, name: str = "<stream>") -> SparseMatrix:
    def bad(message: str, line: int) -> MatrixMarketError:
        return MatrixMarketError(message, source=name, line=line)

    lineno = 1
    header = fh.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise bad(
            f"missing '%%MatrixMarket' banner, got {header[:40]!r}", lineno
        )
    tokens = header.strip().split()
    if len(tokens) != 5:
        raise bad(f"malformed banner: {header.strip()!r}", lineno)
    _, object_, fmt, field, symmetry = (t.lower() for t in tokens)
    if object_ != "matrix":
        raise bad(f"unsupported object {object_!r}", lineno)
    if fmt != "coordinate":
        raise bad(
            f"only 'coordinate' format is supported, got {fmt!r}", lineno
        )
    if field not in ("real", "integer", "pattern"):
        raise bad(f"unsupported field {field!r}", lineno)
    if symmetry not in ("general", "symmetric", "skew-symmetric"):
        raise bad(f"unsupported symmetry {symmetry!r}", lineno)

    # Skip comments and blank lines up to the size line.
    size_line = None
    for line in fh:
        lineno += 1
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        size_line = stripped
        break
    if size_line is None:
        raise bad("missing size line (file truncated after header)", lineno)
    parts = size_line.split()
    if len(parts) != 3:
        raise bad(f"malformed size line: {size_line!r}", lineno)
    try:
        m, n, nnz = (int(p) for p in parts)
    except ValueError:
        raise bad(f"malformed size line: {size_line!r}", lineno) from None
    if m <= 0 or n <= 0 or nnz < 0:
        raise bad(f"invalid dimensions in size line: {size_line!r}", lineno)

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.ones(nnz, dtype=np.float64)
    k = 0
    last_entry_line = lineno
    for line in fh:
        lineno += 1
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        if k >= nnz:
            raise bad(
                f"more entries than the {nnz} declared in the size line",
                lineno,
            )
        fields = stripped.split()
        try:
            if field == "pattern":
                if len(fields) < 2:
                    raise bad(
                        f"malformed entry line: {stripped!r}", lineno
                    )
                i, j = int(fields[0]), int(fields[1])
            else:
                if len(fields) < 3:
                    raise bad(
                        f"malformed entry line: {stripped!r}", lineno
                    )
                i, j = int(fields[0]), int(fields[1])
                vals[k] = float(fields[2])
        except ValueError:
            # Non-numeric tokens ("1 x 2.0", "1.5 2 3.0"): a structured
            # format error, never a leaked ValueError.
            raise bad(
                f"non-numeric token in entry line: {stripped!r}", lineno
            ) from None
        if field != "pattern" and not math.isfinite(vals[k]):
            raise bad(
                f"non-finite value {fields[2]!r} in entry line "
                f"(NaN/inf would corrupt downstream weights)", lineno
            )
        if not (1 <= i <= m and 1 <= j <= n):
            raise bad(
                f"entry ({i}, {j}) out of bounds for {m} x {n} matrix",
                lineno,
            )
        rows[k] = i - 1
        cols[k] = j - 1
        k += 1
        last_entry_line = lineno
    if k != nnz:
        raise bad(
            f"expected {nnz} entries, found {k} (body truncated?)",
            last_entry_line,
        )

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        if symmetry == "skew-symmetric" and np.any(~off):
            raise bad("skew-symmetric matrix has diagonal entries", lineno)
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        r0, c0 = rows, cols
        rows = np.concatenate([r0, c0[off]])
        cols = np.concatenate([c0, r0[off]])
        vals = np.concatenate([vals, sign * vals[off]])
    return SparseMatrix((m, n), rows, cols, vals, sum_duplicates=True)


def write_matrix_market(
    matrix: SparseMatrix,
    target: Union[str, Path, TextIO],
    *,
    field: str = "real",
    comment: str = "",
) -> None:
    """Write a :class:`SparseMatrix` in MatrixMarket coordinate format.

    Parameters
    ----------
    matrix:
        Matrix to write.
    target:
        File path or open text stream.
    field:
        ``"real"`` (default) writes values; ``"pattern"`` writes coordinates
        only.
    comment:
        Optional comment text placed after the banner (may be multi-line).
    """
    if field not in ("real", "pattern"):
        raise MatrixMarketError(f"unsupported output field {field!r}")
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            _write_stream(matrix, fh, field, comment)
    else:
        _write_stream(matrix, target, field, comment)


def _write_stream(
    matrix: SparseMatrix, fh: TextIO, field: str, comment: str
) -> None:
    fh.write(f"{_HEADER_PREFIX} matrix coordinate {field} general\n")
    for line in comment.splitlines():
        fh.write(f"% {line}\n")
    m, n = matrix.shape
    fh.write(f"{m} {n} {matrix.nnz}\n")
    buf = io.StringIO()
    if field == "pattern":
        for i, j, _ in matrix.triplets():
            buf.write(f"{i + 1} {j + 1}\n")
    else:
        for i, j, v in matrix.triplets():
            buf.write(f"{i + 1} {j + 1} {v!r}\n")
    fh.write(buf.getvalue())
