"""Fig. 3 — the medium-grain walk-through on the gd97-like matrix.

The paper's figure shows: the original 47 x 47 matrix with 264 nonzeros,
the column-partitioned B matrix, and the mapped-back 2D partitioning; the
caption reports best-of-100-run volumes — row-net 31, column-net 31,
fine-grain 12, medium-grain 11 (the known optimum for gd97_b).

This bench regenerates the same quantities on the deterministic stand-in
matrix and times one full medium-grain run as the figure's kernel.
"""

import pytest

from repro.core.methods import bipartition
from repro.eval.experiments import run_fig3_demo
from repro.sparse.generators import gd97_like


def test_fig3_report(results_dir):
    report = run_fig3_demo(nruns=25, seed=1997)
    report.write(results_dir)
    print()
    print(report.text)
    rows = {r[0]: r[1] for r in report.tables["volumes"][1:]}
    # Reproduction shape checks: every method beats the trivial bound and
    # the 2D methods are at least as good as the 1D ones (best-of-runs).
    assert rows["mediumgrain"] <= rows["rownet"]
    assert rows["finegrain"] <= rows["rownet"]
    assert rows["mediumgrain+ir"] <= rows["mediumgrain"]


@pytest.mark.benchmark(group="artifacts")
def test_fig3_regenerate(benchmark, results_dir):
    """Regenerate and print the Fig. 3 artifact under any bench mode."""
    rep = benchmark.pedantic(
        lambda: run_fig3_demo(nruns=25, seed=1997), iterations=1, rounds=1
    )
    rep.write(results_dir)
    print()
    print(rep.text)


@pytest.mark.benchmark(group="fig3")
def test_fig3_mediumgrain_kernel(benchmark):
    """Time one medium-grain (+IR) bipartitioning of the demo matrix."""
    matrix = gd97_like()
    result = benchmark(
        lambda: bipartition(
            matrix, method="mediumgrain", refine=True, seed=11
        )
    )
    assert result.feasible
