"""Ablation — the Algorithm-1 initial split design choices.

The paper (Section V) notes that "the current splitter, although able to
outperform existing models and methods, may not be the best possible
choice".  This bench quantifies the design decisions on the synthetic
collection:

* the nonzero-count score vs a uniform score (every nonzero a tie) vs a
  square-root-compressed score;
* the single-nonzero post-pass on vs off.

All variants are evaluated as full medium-grain runs (no IR, to isolate
the split's effect) and summarized as normalized geometric means against
the paper's configuration.
"""

import numpy as np
import pytest

from repro.core.medium_grain import build_medium_grain
from repro.core.split import initial_split
from repro.core.volume import communication_volume
from repro.eval.geomean import normalized_geomeans
from repro.eval.report import markdown_table, write_csv
from repro.partitioner.bipartition import bipartition_hypergraph
from repro.sparse.collection import build_collection, load_instance
from repro.utils.rng import spawn_seeds

from conftest import BENCH_SEED

VARIANTS = {
    "paper (nnz + post)": dict(score="nnz", post_pass=True),
    "nnz, no post-pass": dict(score="nnz", post_pass=False),
    "sqrt score": dict(score="sqrt_nnz", post_pass=True),
    "uniform (all ties)": dict(score="uniform", post_pass=True),
}


def _mg_volume(matrix, seed, **split_kwargs) -> int:
    split = initial_split(matrix, seed=seed, **split_kwargs)
    inst = build_medium_grain(split)
    res = bipartition_hypergraph(inst.hypergraph, eps=0.03, seed=seed)
    return communication_volume(matrix, inst.nonzero_parts(res.parts))


@pytest.fixture(scope="module")
def ablation_data(results_dir):
    entries = build_collection(tier="small") + build_collection(
        tier="medium"
    )
    seeds = spawn_seeds(BENCH_SEED, 2)
    values = {label: [] for label in VARIANTS}
    for entry in entries:
        matrix = load_instance(entry.name)
        for label, kwargs in VARIANTS.items():
            vols = [_mg_volume(matrix, s, **kwargs) for s in seeds]
            values[label].append(float(np.mean(vols)))
    values = {k: np.array(v) for k, v in values.items()}
    means, n = normalized_geomeans(values, "paper (nnz + post)")
    rows = [["variant", "normalized_geomean_volume"]]
    rows += [[k, round(v, 4)] for k, v in means.items()]
    write_csv(results_dir / "ablation_split.csv", rows[0], rows[1:])
    return means, n, rows


def test_split_ablation_report(ablation_data):
    means, n, rows = ablation_data
    print()
    print(f"Initial-split ablation over {n} matrices "
          "(medium-grain, no IR, volume geomean vs paper config):")
    print(markdown_table(rows[0], rows[1:]))


def test_paper_score_beats_uniform(ablation_data):
    """The nnz score must beat treating every nonzero as a tie."""
    means, _, _ = ablation_data
    assert means["paper (nnz + post)"] <= means["uniform (all ties)"]


def test_post_pass_not_harmful(ablation_data):
    """The post-pass is a strict local improvement per line; across the
    collection it must not hurt on average (allow 2% noise)."""
    means, _, _ = ablation_data
    assert means["paper (nnz + post)"] <= means["nnz, no post-pass"] * 1.02


@pytest.mark.benchmark(group="artifacts")
def test_split_ablation_regenerate(benchmark, ablation_data):
    """Print the ablation table under any bench mode."""
    means, n, rows = ablation_data
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(f"Initial-split ablation over {n} matrices:")
    print(markdown_table(rows[0], rows[1:]))


@pytest.mark.benchmark(group="split")
def test_split_kernel(benchmark):
    """Algorithm 1 itself is O(N) vectorized; time it on a medium matrix."""
    matrix = load_instance("sqr_cl_m")
    split = benchmark(lambda: initial_split(matrix, seed=1))
    assert split.in_row_group.shape == (matrix.nnz,)
