"""Shared fixtures for the benchmark harness.

Every paper artifact is regenerated from one of three method sweeps, which
are expensive; they are computed once per session here and shared across
the bench modules.  Scale knobs (environment variables):

``REPRO_BENCH_TIER``
    ``small`` / ``medium`` / ``large`` — the *maximum* collection tier
    included (default ``medium``; ``large`` reproduces at the biggest
    built-in scale and takes tens of minutes in pure Python).
``REPRO_BENCH_NRUNS``
    Runs per (instance, method) to average, default 2 (the paper uses 10).
``REPRO_BENCH_SEED``
    Root seed, default 2014.
``REPRO_BENCH_JOBS``
    Worker processes for the sweeps (default 1 = serial, 0 = CPU count).
    Results are bit-identical to the serial sweeps — the sweep engine
    guarantees it — so this only changes how fast artifacts regenerate.

Artifacts (text reports + CSV series) are written to ``results/`` in the
repository root.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.experiments import collect_paper_runs

BENCH_TIER = os.environ.get("REPRO_BENCH_TIER", "medium")
BENCH_NRUNS = int(os.environ.get("REPRO_BENCH_NRUNS", "2"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2014"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: p = 64 needs enough nonzeros per part to be meaningful; the paper's
#: smallest matrices (500 nnz) are only used at p = 2.
P64_MIN_NNZ = int(os.environ.get("REPRO_BENCH_P64_MIN_NNZ", "6400"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def internal_sweep():
    """Six methods, Mondriaan-internal preset, p = 2 (Figs. 4-5, Table I)."""
    return collect_paper_runs(
        max_tier=BENCH_TIER,
        nruns=BENCH_NRUNS,
        config="mondriaan",
        base_seed=BENCH_SEED,
        progress=True,
        jobs=BENCH_JOBS,
    )


@pytest.fixture(scope="session")
def patoh_sweep():
    """Six methods, PaToH preset, p = 2, with BSP cost (Fig. 6a, Table II)."""
    return collect_paper_runs(
        max_tier=BENCH_TIER,
        nruns=BENCH_NRUNS,
        config="patoh",
        base_seed=BENCH_SEED,
        with_bsp=True,
        progress=True,
        jobs=BENCH_JOBS,
    )


@pytest.fixture(scope="session")
def patoh_sweep_p64():
    """Six methods, PaToH preset, p = 64 (Fig. 6b, Table II)."""
    return collect_paper_runs(
        max_tier=BENCH_TIER,
        nruns=1,
        nparts=64,
        config="patoh",
        base_seed=BENCH_SEED,
        with_bsp=True,
        min_nnz=P64_MIN_NNZ,
        progress=True,
        jobs=BENCH_JOBS,
    )
