"""Extension — optimality gaps on exactly solvable instances.

The paper's Fig. 3 compares heuristic volumes against a *known optimum*
(from the exact bipartitioner of ref. [19]).  This bench generalizes the
check: on a set of tiny random matrices the exact branch-and-bound solver
provides ground truth, and the gap of each heuristic method to the
optimum is reported — the strongest possible quality statement the
reproduction can make.
"""

import numpy as np
import pytest

from repro.core.exact import exact_bipartition
from repro.core.methods import bipartition
from repro.eval.report import markdown_table, write_csv
from repro.sparse.matrix import SparseMatrix
from repro.utils.rng import as_generator, spawn_seeds

from conftest import BENCH_SEED

N_INSTANCES = 24
EPS = 0.1  # a little slack keeps every tiny instance feasible
METHODS = ("localbest", "finegrain", "mediumgrain")


def _tiny_matrix(seed: int) -> SparseMatrix:
    rng = as_generator(seed)
    m = int(rng.integers(5, 9))
    n = int(rng.integers(5, 9))
    k = int(rng.integers(12, min(26, m * n)))
    cells = set()
    while len(cells) < k:
        cells.add((int(rng.integers(0, m)), int(rng.integers(0, n))))
    return SparseMatrix(
        (m, n),
        np.array([c[0] for c in cells]),
        np.array([c[1] for c in cells]),
    )


@pytest.fixture(scope="module")
def gap_data(results_dir):
    seeds = spawn_seeds(BENCH_SEED + 3, N_INSTANCES)
    optima = []
    heuristic = {f"{m}+IR": [] for m in METHODS}
    for seed in seeds:
        matrix = _tiny_matrix(seed)
        warm = bipartition(
            matrix, method="mediumgrain", refine=True, eps=EPS, seed=seed
        )
        opt = exact_bipartition(
            matrix, eps=EPS, initial_incumbent=warm.parts
        )
        assert opt.optimal
        optima.append(opt.volume)
        for m in METHODS:
            res = bipartition(
                matrix, method=m, refine=True, eps=EPS, seed=seed
            )
            heuristic[f"{m}+IR"].append(res.volume)
    rows = [["method", "mean_gap", "optimal_found_fraction"]]
    stats = {}
    for label, vols in heuristic.items():
        gaps = [v - o for v, o in zip(vols, optima)]
        hit = sum(g == 0 for g in gaps) / len(gaps)
        stats[label] = (float(np.mean(gaps)), hit)
        rows.append([label, round(float(np.mean(gaps)), 3), round(hit, 3)])
    write_csv(results_dir / "ext_optimality.csv", rows[0], rows[1:])
    return optima, heuristic, stats, rows


def test_optimality_report(gap_data):
    optima, _, stats, rows = gap_data
    print()
    print(
        f"Optimality gaps over {len(optima)} tiny instances "
        f"(mean optimum {np.mean(optima):.2f}):"
    )
    print(markdown_table(rows[0], rows[1:]))


def test_no_heuristic_beats_optimum(gap_data):
    optima, heuristic, _, _ = gap_data
    for label, vols in heuristic.items():
        assert all(
            v >= o for v, o in zip(vols, optima)
        ), f"{label} reported a volume below the proven optimum"


def test_mg_ir_close_to_optimal(gap_data):
    """MG+IR should land within 1 unit of optimal on average and find
    the exact optimum on a healthy fraction of tiny instances."""
    _, _, stats, _ = gap_data
    mean_gap, hit = stats["mediumgrain+IR"]
    assert mean_gap <= 1.0
    assert hit >= 0.4


@pytest.mark.benchmark(group="exact")
def test_exact_solver_kernel(benchmark):
    matrix = _tiny_matrix(12345)
    res = benchmark(lambda: exact_bipartition(matrix, eps=EPS))
    assert res.optimal
