"""End-to-end pipeline benchmark: the whole-sweep perf trajectory.

Where ``bench_regress`` times isolated kernels, this times the *full
pipeline* a paper-style experiment runs per (instance, seed):

    split -> medium-grain build -> multilevel partition ->
    iterative refinement -> volume -> vector distribution ->
    verified SpMV simulation

once per seed, three ways:

``baseline_serial_s``
    The pre-PR pipeline (frozen kernels and dict-based SpMV simulation
    from :mod:`benchmarks._baseline_e2e`), executed serially.
``current_serial_s``
    The live pipeline through the sweep engine with ``jobs=1``.
``current_parallel_s``
    The live pipeline through the sweep engine with ``--jobs`` workers
    (default 2).  On a single-core container this is expected to be
    *slower* than serial (process startup, no parallel hardware); it is
    recorded so the trajectory shows real parallel behaviour wherever
    the benchmark runs.

Every run is verified before its timing is trusted: the simulated SpMV
volume must equal the partitioner's volume, the baseline volumes must be
bit-identical to the live ones (the kernel contract), and the parallel
sweep's records must equal the serial sweep's (modulo measured seconds).

A third stage measures the **execution layer** itself: the legacy
pickled-payload pool (``exec_backend="process-pickle"`` — every task
ships a full submatrix) versus the shared-memory store
(``exec_backend="process"`` — tasks ship a segment handle plus an index
range).  Per (matrix, p): the real p-way partitioning is verified
bit-identical to serial under every backend and its shipped bytes are
audited (:func:`repro.utils.executor.payload_audit`, untimed); the
``speedup_shm`` gate then times *delivery* — a no-op probe mapped over
the p-way task shapes — because whole-run wall clock on a single-core
host cannot resolve the few-millisecond payload delta that the layer
removes (the full-partition times are recorded as context).  When numba
is installed the ``"thread"`` backend (nogil kernels, zero payload) is
measured as well.

A fourth stage benchmarks the **direct k-way partitioner**
(``algo="kway"`` — :mod:`repro.core.kway`) head-to-head against
recursive bisection at the same p values, on the bench set plus the
k-diagonal structured instance: per (matrix, p) it verifies the k-way
result is bit-identical across every kernel backend, execution backend
and ``jobs`` value (the partitioner has no recursion tree, so the knobs
must be exact no-ops), that every part respects the eqn-(1) ceiling,
and records interleaved min-of wall clocks and the volume ratio
``kway / recursive`` — the quality/speed trade-off the ROADMAP's
bisection-vs-direct comparison asks for.

A fifth stage (``kway-ml``) benchmarks the **multilevel** direct k-way
engine (``algo="kway"`` with ``kway_vcycles >= 1`` —
:func:`repro.partitioner.multilevel.multilevel_kway`) against recursive
bisection on the same grid.  Where the flat k-way stage above trades
volume for speed, the multilevel stage must close the quality gap while
keeping a decisive speed edge; both sides are *gated at generation
time*: geomean volume ratio <= ``KWAY_ML_RATIO_GATE`` AND geomean
speedup >= ``KWAY_ML_SPEEDUP_GATE``, plus the usual bit-identity
(kernel backends, exec backends, jobs) and eqn-(1) feasibility checks
per cell.  ``tests/test_bench_e2e.py`` re-asserts the committed
numbers under ``pytest -m bench``.

A second stage times **p-way recursive bisection** (p in {4, 16, 64} —
the paper's Fig. 6b / Table II workload) three ways on every bench
matrix: the frozen pre-PR serial recursion
(:func:`benchmarks._baseline_e2e.baseline_partition` — traversal-order
seed stream over the frozen kernels), the live engine serially
(``jobs=1``), and the live engine on a worker pool (``--jobs``).  The
live serial and parallel partitions are asserted bit-identical (the
position-keyed seed streams guarantee it); the frozen baseline follows
the *old* seed discipline, so its volumes are recorded rather than
asserted.  ``speedup_parallel`` is the intra-matrix speedup of the
parallel engine over the frozen serial baseline — on multi-core hardware
it compounds the kernel gains with real concurrency; on a single-core
container it degenerates to the kernel gains minus pool overhead.

Usage::

    python -m benchmarks.bench_e2e              # write BENCH_e2e.json
    python -m benchmarks.bench_e2e --check      # compare vs. committed
    make bench-e2e                              # the --check mode
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks._baseline_e2e import (
    BASELINE_BACKEND,
    baseline_distribute_vectors,
    baseline_lambda_kernels,
    baseline_partition,
    baseline_simulate_spmv,
)
from repro.core.methods import bipartition
from repro.core.recursive import partition
from repro.core.volume import max_allowed_part_size
from repro.eval.geomean import geometric_mean as _geomean
from repro.eval.sweep import RunSpec, run_sweep
from repro.kernels import available_backends, numba_available, resolve_backend
from repro.partitioner.config import get_config
from repro.sparse.collection import build_collection, load_instance
from repro.utils.executor import JobsBudget, MatrixExecutor, payload_audit
from repro.utils.rng import spawn_seeds

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_e2e.json"
#: One matrix per paper class plus the matching-heavy Chung-Lu square —
#: the adversarial case where scalar partitioning dominates end to end.
DEFAULT_MATRICES = ("sym_grid2d_l", "sqr_band_l", "rec_td_med_b", "sqr_cl_m")
BASE_SEED = 2014
#: Recursive-bisection depths of the p-way stage (the paper's Fig. 6b /
#: Table II run at p = 64; 4 and 16 chart how speedup grows with depth).
PWAY_PARTS = (4, 16, 64)
PIPELINE = (
    "split -> medium-grain build -> multilevel partition -> "
    "iterative refinement -> volume -> vector distribution -> "
    "verified SpMV simulation"
)


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock seconds of ``repeats`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _class_of(name: str) -> str:
    for entry in build_collection():
        if entry.name == name:
            return entry.matrix_class.short
    raise KeyError(f"unknown collection instance {name!r}")


def make_specs(name: str, seeds: list[int]) -> list[RunSpec]:
    """The end-to-end work items for one matrix: MG+IR at every seed,
    with the downstream vector distribution + verified SpMV included."""
    cls = _class_of(name)
    return [
        RunSpec(
            index=i,
            instance=name,
            matrix_class=cls,
            label="MG+IR",
            method="mediumgrain",
            refine=True,
            seed=seed,
            verify_spmv=True,
        )
        for i, seed in enumerate(seeds)
    ]


def baseline_pipeline(matrix, seed: int) -> int:
    """One pre-PR end-to-end run; returns the communication volume."""
    cfg = dataclasses.replace(
        get_config("mondriaan"), kernel_backend=BASELINE_BACKEND
    )
    with baseline_lambda_kernels():
        res = bipartition(
            matrix, method="mediumgrain", refine=True, config=cfg, seed=seed
        )
        dist = baseline_distribute_vectors(matrix, res.parts, 2)
        _, words_fanout, words_fanin = baseline_simulate_spmv(
            matrix, res.parts, 2, dist
        )
    if words_fanout + words_fanin != res.volume:
        raise AssertionError(
            "baseline simulated volume disagrees with partitioner volume"
        )
    return res.volume


def bench_matrix(
    name: str, seeds: list[int], repeats: int, jobs: int,
    current_only: bool = False,
) -> dict:
    """Time the three pipeline variants on one matrix."""
    matrix = load_instance(name)
    specs = make_specs(name, seeds)

    serial_records = list(run_sweep(specs, jobs=1))  # warm caches
    current_volumes = [r.volume for r in serial_records]

    def run_serial():
        return list(run_sweep(specs, jobs=1))

    entry: dict = {
        "nnz": matrix.nnz,
        "volumes": current_volumes,
    }
    if current_only:
        entry["current_serial_s"] = round(_best_of(repeats, run_serial), 6)
        return entry

    # Baseline (pre-PR) serial pipeline — verified bit-identical first.
    baseline_volumes = [baseline_pipeline(matrix, s) for s in seeds]
    if baseline_volumes != current_volumes:
        raise AssertionError(
            f"{name}: baseline volumes {baseline_volumes} != current "
            f"{current_volumes} — kernels drifted, timings meaningless"
        )

    def run_baseline():
        for s in seeds:
            baseline_pipeline(matrix, s)

    # Interleave the two serial measurements: machine-load drift over
    # the benchmark's runtime then biases both sides equally instead of
    # whichever variant happened to run in the slow phase.
    best_cur = float("inf")
    best_base = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_serial()
        best_cur = min(best_cur, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_baseline()
        best_base = min(best_base, time.perf_counter() - t0)
    entry["current_serial_s"] = round(best_cur, 6)
    entry["baseline_serial_s"] = round(best_base, 6)
    entry["speedup_serial"] = round(
        entry["baseline_serial_s"] / entry["current_serial_s"], 3
    ) if entry["current_serial_s"] > 0 else float("inf")

    # Parallel sweep — verified bit-identical to serial, then timed.
    parallel_records = list(run_sweep(specs, jobs=jobs))
    strip = lambda rs: [dataclasses.replace(r, seconds=0.0) for r in rs]
    entry["parallel_bit_identical"] = (
        strip(parallel_records) == strip(serial_records)
    )
    if not entry["parallel_bit_identical"]:
        raise AssertionError(
            f"{name}: parallel sweep records differ from serial"
        )

    def run_parallel():
        return list(run_sweep(specs, jobs=jobs))

    entry["current_parallel_s"] = round(
        _best_of(max(1, repeats - 1), run_parallel), 6
    )
    return entry


def bench_pway_matrix(
    name: str, ps, repeats: int, jobs: int
) -> dict:
    """Time p-way recursive bisection three ways on one matrix.

    The live serial and parallel runs must be bit-identical (asserted);
    the frozen baseline follows the pre-PR traversal-order seed stream,
    so only its timing and volume are recorded.  The three variants are
    interleaved per repeat so machine-load drift biases them equally.
    """
    matrix = load_instance(name)
    entry: dict = {"nnz": matrix.nnz, "by_p": {}}
    for p in ps:
        # Warm caches, the persistent worker pool, and verify identity.
        serial = partition(
            matrix, p, method="mediumgrain", seed=BASE_SEED, jobs=1
        )
        par = partition(
            matrix, p, method="mediumgrain", seed=BASE_SEED, jobs=jobs
        )
        if not np.array_equal(serial.parts, par.parts):
            raise AssertionError(
                f"{name} p={p}: parallel partition differs from serial"
            )
        base_parts, base_volume = baseline_partition(
            matrix, p, method="mediumgrain", seed=BASE_SEED
        )
        best = [float("inf")] * 3
        for _ in range(repeats):
            t0 = time.perf_counter()
            partition(matrix, p, method="mediumgrain", seed=BASE_SEED, jobs=1)
            best[0] = min(best[0], time.perf_counter() - t0)
            t0 = time.perf_counter()
            partition(
                matrix, p, method="mediumgrain", seed=BASE_SEED, jobs=jobs
            )
            best[1] = min(best[1], time.perf_counter() - t0)
            t0 = time.perf_counter()
            baseline_partition(matrix, p, method="mediumgrain", seed=BASE_SEED)
            best[2] = min(best[2], time.perf_counter() - t0)
        cur_s, par_s, base_s = best
        entry["by_p"][str(p)] = {
            "volume": serial.volume,
            "baseline_volume": base_volume,
            "parallel_bit_identical": True,
            "current_serial_s": round(cur_s, 6),
            "current_parallel_s": round(par_s, 6),
            "baseline_serial_s": round(base_s, 6),
            "speedup_serial": round(base_s / cur_s, 3),
            "speedup_parallel": round(base_s / par_s, 3),
            "parallel_vs_serial": round(cur_s / par_s, 3),
        }
    return entry


#: Extra instances for the k-way stage on top of the bench set: the
#: structured k-diagonal case — long off-diagonals are where
#: contiguous-block bisection and direct k-way genuinely diverge.
KWAY_EXTRA_MATRICES = ("sym_kdiag_m",)


def bench_kway_matrix(name: str, ps, repeats: int, jobs: int) -> dict:
    """Direct k-way vs recursive bisection on one matrix.

    Gates before any timing is trusted, per p:

    * the k-way partition is **bit-identical** across every available
      kernel backend, every execution backend, and ``jobs`` in
      ``{1, jobs}`` (no recursion tree — the knobs must change nothing);
    * every part respects the eqn-(1) ceiling (``feasible``).

    Timings are interleaved min-of wall clocks of the two algorithms;
    ``volume_ratio`` (kway / recursive) records the quality side of the
    trade-off.
    """
    matrix = load_instance(name)
    entry: dict = {"nnz": matrix.nnz, "by_p": {}}
    for p in ps:
        rec = partition(
            matrix, p, method="mediumgrain", seed=BASE_SEED, jobs=1
        )
        kw = partition(
            matrix, p, method="mediumgrain", seed=BASE_SEED, algo="kway"
        )
        ceiling = max_allowed_part_size(matrix.nnz, p, 0.03)
        if not kw.feasible or kw.max_part > ceiling:
            raise AssertionError(
                f"{name} p={p}: kway max part {kw.max_part} exceeds the "
                f"eqn-(1) ceiling {ceiling}"
            )
        for kb in available_backends():
            cfg = dataclasses.replace(
                get_config("mondriaan"), kernel_backend=kb
            )
            res = partition(
                matrix, p, method="mediumgrain", seed=BASE_SEED,
                config=cfg, algo="kway",
            )
            if not np.array_equal(kw.parts, res.parts):
                raise AssertionError(
                    f"{name} p={p}: kway partition differs under kernel "
                    f"backend {kb!r}"
                )
        exec_backends = ["process-pickle", "process", "thread"]
        for jv, eb in [(1, "serial")] + [(jobs, m) for m in exec_backends]:
            res = partition(
                matrix, p, method="mediumgrain", seed=BASE_SEED,
                algo="kway", jobs=jv, exec_backend=eb,
            )
            if not np.array_equal(kw.parts, res.parts):
                raise AssertionError(
                    f"{name} p={p}: kway partition differs under "
                    f"jobs={jv} exec_backend={eb}"
                )
        best_kw = float("inf")
        best_rec = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            partition(
                matrix, p, method="mediumgrain", seed=BASE_SEED,
                algo="kway",
            )
            best_kw = min(best_kw, time.perf_counter() - t0)
            t0 = time.perf_counter()
            partition(
                matrix, p, method="mediumgrain", seed=BASE_SEED, jobs=1
            )
            best_rec = min(best_rec, time.perf_counter() - t0)
        entry["by_p"][str(p)] = {
            "volume_kway": kw.volume,
            "volume_recursive": rec.volume,
            "volume_ratio": round(kw.volume / rec.volume, 3)
            if rec.volume
            else float("inf"),
            "kway_s": round(best_kw, 6),
            "recursive_s": round(best_rec, 6),
            "speedup_kway": round(best_rec / best_kw, 3)
            if best_kw > 0
            else float("inf"),
            "max_part_kway": kw.max_part,
            "imbalance_kway": round(kw.imbalance, 6),
            "ceiling": ceiling,
            "feasible": True,
            "bit_identical": True,
        }
    return entry


#: V-cycle count of the multilevel k-way (``kway-ml``) rows: one full
#: multilevel construction, no extra restricted V-cycles.  Measured as
#: the knee of the quality/speed curve on the bench set — ``vcycles=2``
#: buys ~3% more volume for roughly half the speed advantage, dropping
#: below the 2x gate.
KWAY_ML_VCYCLES = 1
#: Generation-time gates of the kway-ml stage: the multilevel engine
#: must land within 10% of recursive bisection's volume (geomean over
#: every (matrix, p) cell) while running at least twice as fast.
KWAY_ML_RATIO_GATE = 1.1
KWAY_ML_SPEEDUP_GATE = 2.0


def bench_kway_ml_matrix(name: str, ps, repeats: int, jobs: int) -> dict:
    """Multilevel direct k-way vs recursive bisection on one matrix.

    The same contract as :func:`bench_kway_matrix`, with the k-way side
    running the multilevel engine (``kway_vcycles=KWAY_ML_VCYCLES``)
    instead of the flat pipeline: per p, the partition must be
    bit-identical across every available kernel backend, every execution
    backend, and ``jobs`` in ``{1, jobs}``, and every part must respect
    the eqn-(1) ceiling.  Timings are interleaved min-of wall clocks;
    ``volume_ratio`` (kway-ml / recursive) is the quantity the
    generation-time geomean gates aggregate.
    """
    matrix = load_instance(name)
    ml_cfg = dataclasses.replace(
        get_config("mondriaan"), kway_vcycles=KWAY_ML_VCYCLES
    )
    entry: dict = {"nnz": matrix.nnz, "by_p": {}}
    for p in ps:
        rec = partition(
            matrix, p, method="mediumgrain", seed=BASE_SEED, jobs=1
        )
        kw = partition(
            matrix, p, method="mediumgrain", seed=BASE_SEED,
            config=ml_cfg, algo="kway",
        )
        ceiling = max_allowed_part_size(matrix.nnz, p, 0.03)
        if not kw.feasible or kw.max_part > ceiling:
            raise AssertionError(
                f"{name} p={p}: kway-ml max part {kw.max_part} exceeds "
                f"the eqn-(1) ceiling {ceiling}"
            )
        for kb in available_backends():
            cfg = dataclasses.replace(ml_cfg, kernel_backend=kb)
            res = partition(
                matrix, p, method="mediumgrain", seed=BASE_SEED,
                config=cfg, algo="kway",
            )
            if not np.array_equal(kw.parts, res.parts):
                raise AssertionError(
                    f"{name} p={p}: kway-ml partition differs under "
                    f"kernel backend {kb!r}"
                )
        exec_backends = ["process-pickle", "process", "thread"]
        for jv, eb in [(1, "serial")] + [(jobs, m) for m in exec_backends]:
            res = partition(
                matrix, p, method="mediumgrain", seed=BASE_SEED,
                config=ml_cfg, algo="kway", jobs=jv, exec_backend=eb,
            )
            if not np.array_equal(kw.parts, res.parts):
                raise AssertionError(
                    f"{name} p={p}: kway-ml partition differs under "
                    f"jobs={jv} exec_backend={eb}"
                )
        best_kw = float("inf")
        best_rec = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            partition(
                matrix, p, method="mediumgrain", seed=BASE_SEED,
                config=ml_cfg, algo="kway",
            )
            best_kw = min(best_kw, time.perf_counter() - t0)
            t0 = time.perf_counter()
            partition(
                matrix, p, method="mediumgrain", seed=BASE_SEED, jobs=1
            )
            best_rec = min(best_rec, time.perf_counter() - t0)
        entry["by_p"][str(p)] = {
            "volume_kway_ml": kw.volume,
            "volume_recursive": rec.volume,
            "volume_ratio": round(kw.volume / rec.volume, 3)
            if rec.volume
            else float("inf"),
            "kway_ml_s": round(best_kw, 6),
            "recursive_s": round(best_rec, 6),
            "speedup_kway_ml": round(best_rec / best_kw, 3)
            if best_kw > 0
            else float("inf"),
            "max_part_kway_ml": kw.max_part,
            "imbalance_kway_ml": round(kw.imbalance, 6),
            "ceiling": ceiling,
            "feasible": True,
            "bit_identical": True,
            "method": kw.method,
        }
    return entry


def _delivery_probe(sub, extra):
    """Executor task that only *receives* its submatrix (one touch so
    lazy views cannot be optimized away), isolating delivery cost."""
    return (sub.nnz, extra)


def bench_exec_matrix(name: str, ps, repeats: int, jobs: int) -> dict:
    """Time the execution backends against each other on one matrix.

    For every p, three measurements:

    * **Identity + payload** on the real partitioning: each backend's
      p-way partition is verified bit-identical to the serial reference,
      and its per-run shipped bytes are recorded by an (untimed)
      :func:`~repro.utils.executor.payload_audit` run — the direct
      evidence of the pickling cut.
    * **Delivery timing** (the ``speedup_shm`` gate): the executor maps
      a no-op probe over ``p`` index chunks of the matrix — exactly the
      task shapes the p-way scheduler dispatches — under the pickled
      pool and the shared-memory store.  This isolates what the layer
      changed (select + serialize + ship + reconstruct); whole-run wall
      clock on a loaded single-core host cannot resolve a
      few-millisecond payload delta under hundreds of milliseconds of
      partitioning compute, so the full-partition timings below are
      context, not the gate.
    * **Full-partition timing** (context): interleaved min-of wall
      clock of the real p-way run under both backends.
    """
    matrix = load_instance(name)
    entry: dict = {"nnz": matrix.nnz, "by_p": {}}
    modes = ["process-pickle", "process"]
    if numba_available():
        modes.append("thread")
    for p in ps:
        serial = partition(
            matrix, p, method="mediumgrain", seed=BASE_SEED, jobs=1
        )
        payloads: dict[str, int] = {}
        part_best = {mode: float("inf") for mode in modes}
        for mode in modes:
            # Warm pools/caches and verify identity; then audit payloads.
            res = partition(
                matrix, p, method="mediumgrain", seed=BASE_SEED,
                jobs=jobs, exec_backend=mode,
            )
            if not np.array_equal(serial.parts, res.parts):
                raise AssertionError(
                    f"{name} p={p} exec_backend={mode}: partition "
                    f"differs from serial"
                )
            with payload_audit() as audit:
                partition(
                    matrix, p, method="mediumgrain", seed=BASE_SEED,
                    jobs=jobs, exec_backend=mode,
                )
            payloads[mode] = audit["bytes"]
        for _ in range(repeats):
            for mode in modes:
                t0 = time.perf_counter()
                partition(
                    matrix, p, method="mediumgrain", seed=BASE_SEED,
                    jobs=jobs, exec_backend=mode,
                )
                part_best[mode] = min(
                    part_best[mode], time.perf_counter() - t0
                )

        # Delivery gate: p index chunks (the p-way task shapes) through
        # a no-op probe, interleaved min-of timing.
        chunk_rng = np.random.default_rng(BASE_SEED)
        owner = chunk_rng.integers(0, p, matrix.nnz)
        tasks = [(np.flatnonzero(owner == k), k) for k in range(p)]
        delivery_best = {mode: float("inf") for mode in modes}
        executors = {
            mode: MatrixExecutor(matrix, jobs, mode) for mode in modes
        }
        try:
            for mode, ex in executors.items():
                ex.map(_delivery_probe, tasks)  # warm pools + store
            for _ in range(repeats + 2):
                for mode, ex in executors.items():
                    t0 = time.perf_counter()
                    out = ex.map(_delivery_probe, tasks)
                    delivery_best[mode] = min(
                        delivery_best[mode], time.perf_counter() - t0
                    )
                    if [o[0] for o in out] != [t[0].size for t in tasks]:
                        raise AssertionError(
                            f"{name} p={p}: delivery probe returned "
                            f"wrong submatrices under {mode}"
                        )
        finally:
            for ex in executors.values():
                ex.close()
        cell = {
            "volume": serial.volume,
            "bit_identical": True,
            "pickled_s": round(delivery_best["process-pickle"], 6),
            "shm_s": round(delivery_best["process"], 6),
            "speedup_shm": round(
                delivery_best["process-pickle"] / delivery_best["process"], 3
            ),
            "partition_pickled_s": round(part_best["process-pickle"], 6),
            "partition_shm_s": round(part_best["process"], 6),
            "payload_pickled_bytes": payloads["process-pickle"],
            "payload_shm_bytes": payloads["process"],
            "payload_cut": round(
                payloads["process-pickle"] / payloads["process"], 2
            ) if payloads["process"] else float("inf"),
        }
        if "thread" in modes:
            cell["thread_s"] = round(delivery_best["thread"], 6)
            cell["partition_thread_s"] = round(part_best["thread"], 6)
            cell["speedup_thread"] = round(
                delivery_best["process-pickle"] / delivery_best["thread"], 3
            )
        entry["by_p"][str(p)] = cell
    return entry


def run_benchmarks(
    matrices=DEFAULT_MATRICES,
    nseeds: int = 3,
    repeats: int = 3,
    jobs: int = 2,
    pway_parts=PWAY_PARTS,
) -> dict:
    """Time every matrix; returns the report dict."""
    seeds = spawn_seeds(BASE_SEED, nseeds)
    backend = resolve_backend("auto")
    report = {
        "schema": 1,
        "pipeline": PIPELINE,
        "backend": backend.name,
        "numba_available": numba_available(),
        "repeats": repeats,
        "base_seed": BASE_SEED,
        "seeds": seeds,
        "jobs_parallel": jobs,
        "matrices": {},
    }
    for name in matrices:
        entry = bench_matrix(name, seeds, repeats, jobs)
        report["matrices"][name] = entry
        print(
            f"  {name:14s} baseline {entry['baseline_serial_s']:7.3f} s   "
            f"serial {entry['current_serial_s']:7.3f} s   "
            f"parallel(j{jobs}) {entry['current_parallel_s']:7.3f} s   "
            f"x{entry['speedup_serial']:.2f}"
        )
    speedups = [
        report["matrices"][m]["speedup_serial"] for m in matrices
    ]
    report["geomean_speedup_serial"] = round(_geomean(speedups), 3)

    # p-way recursive-bisection stage.
    pway: dict = {
        "method": "mediumgrain",
        "ps": [int(p) for p in pway_parts],
        "jobs": jobs,
        "matrices": {},
    }
    for name in matrices:
        entry = bench_pway_matrix(name, pway_parts, repeats, jobs)
        pway["matrices"][name] = entry
        for p in pway_parts:
            e = entry["by_p"][str(p)]
            print(
                f"  {name:14s} p={p:<3d} baseline "
                f"{e['baseline_serial_s']:7.3f} s   serial "
                f"{e['current_serial_s']:7.3f} s   parallel(j{jobs}) "
                f"{e['current_parallel_s']:7.3f} s   "
                f"x{e['speedup_parallel']:.2f}"
            )
    per_p_parallel = {
        str(p): round(
            _geomean([
                pway["matrices"][m]["by_p"][str(p)]["speedup_parallel"]
                for m in matrices
            ]), 3,
        )
        for p in pway_parts
    }
    pway["geomean_speedup_parallel_by_p"] = per_p_parallel
    pway["geomean_speedup_parallel"] = round(
        _geomean([
            pway["matrices"][m]["by_p"][str(p)]["speedup_parallel"]
            for m in matrices for p in pway_parts
        ]), 3,
    )
    pway["geomean_speedup_serial"] = round(
        _geomean([
            pway["matrices"][m]["by_p"][str(p)]["speedup_serial"]
            for m in matrices for p in pway_parts
        ]), 3,
    )
    report["pway"] = pway

    # Execution-layer stage: pickled pool vs shared-memory workers.
    exec_section: dict = {
        "baseline": "process-pickle",
        "current": "process",
        "ps": [int(p) for p in pway_parts],
        "jobs": jobs,
        "matrices": {},
    }
    for name in matrices:
        entry = bench_exec_matrix(name, pway_parts, repeats, jobs)
        exec_section["matrices"][name] = entry
        for p in pway_parts:
            e = entry["by_p"][str(p)]
            print(
                f"  {name:14s} p={p:<3d} delivery pickled "
                f"{e['pickled_s']:7.4f} s   shm {e['shm_s']:7.4f} s   "
                f"x{e['speedup_shm']:.2f}   payload "
                f"{e['payload_pickled_bytes']:>10d} -> "
                f"{e['payload_shm_bytes']:>9d} B "
                f"(x{e['payload_cut']:.1f} cut)"
            )
    exec_section["geomean_speedup_shm"] = round(
        _geomean([
            exec_section["matrices"][m]["by_p"][str(p)]["speedup_shm"]
            for m in matrices for p in pway_parts
        ]), 3,
    )
    report["exec"] = exec_section

    # Direct k-way vs recursive bisection stage.
    kway_names = tuple(
        dict.fromkeys(tuple(matrices) + KWAY_EXTRA_MATRICES)
    )
    kway_section: dict = {
        "method": "mediumgrain",
        "baseline": "recursive",
        "current": "kway",
        "ps": [int(p) for p in pway_parts],
        "eps": 0.03,
        "matrices": {},
    }
    for name in kway_names:
        entry = bench_kway_matrix(name, pway_parts, repeats, jobs)
        kway_section["matrices"][name] = entry
        for p in pway_parts:
            e = entry["by_p"][str(p)]
            print(
                f"  {name:14s} p={p:<3d} kway vol {e['volume_kway']:>6d} "
                f"({e['kway_s']:7.3f} s)   recursive vol "
                f"{e['volume_recursive']:>6d} ({e['recursive_s']:7.3f} s)  "
                f"ratio x{e['volume_ratio']:.2f}  speed x{e['speedup_kway']:.2f}"
            )
    kway_section["geomean_volume_ratio_by_p"] = {
        str(p): round(
            _geomean([
                kway_section["matrices"][m]["by_p"][str(p)]["volume_ratio"]
                for m in kway_names
            ]), 3,
        )
        for p in pway_parts
    }
    kway_section["geomean_speedup_kway"] = round(
        _geomean([
            kway_section["matrices"][m]["by_p"][str(p)]["speedup_kway"]
            for m in kway_names for p in pway_parts
        ]), 3,
    )
    report["kway"] = kway_section

    # Multilevel direct k-way stage — same grid, gated at generation.
    kway_ml_section: dict = {
        "method": "mediumgrain",
        "baseline": "recursive",
        "current": "kway-ml",
        "kway_vcycles": KWAY_ML_VCYCLES,
        "ps": [int(p) for p in pway_parts],
        "eps": 0.03,
        "ratio_gate": KWAY_ML_RATIO_GATE,
        "speedup_gate": KWAY_ML_SPEEDUP_GATE,
        "matrices": {},
    }
    for name in kway_names:
        entry = bench_kway_ml_matrix(name, pway_parts, repeats, jobs)
        kway_ml_section["matrices"][name] = entry
        for p in pway_parts:
            e = entry["by_p"][str(p)]
            print(
                f"  {name:14s} p={p:<3d} kway-ml vol "
                f"{e['volume_kway_ml']:>6d} ({e['kway_ml_s']:7.3f} s)   "
                f"recursive vol {e['volume_recursive']:>6d} "
                f"({e['recursive_s']:7.3f} s)  ratio x{e['volume_ratio']:.2f}"
                f"  speed x{e['speedup_kway_ml']:.2f}"
            )
    ml_cells = [
        kway_ml_section["matrices"][m]["by_p"][str(p)]
        for m in kway_names for p in pway_parts
    ]
    kway_ml_section["geomean_volume_ratio"] = round(
        _geomean([c["volume_ratio"] for c in ml_cells]), 3
    )
    kway_ml_section["geomean_volume_ratio_by_p"] = {
        str(p): round(
            _geomean([
                kway_ml_section["matrices"][m]["by_p"][str(p)]["volume_ratio"]
                for m in kway_names
            ]), 3,
        )
        for p in pway_parts
    }
    kway_ml_section["geomean_speedup_kway_ml"] = round(
        _geomean([c["speedup_kway_ml"] for c in ml_cells]), 3
    )
    if kway_ml_section["geomean_volume_ratio"] > KWAY_ML_RATIO_GATE:
        raise AssertionError(
            f"kway-ml geomean volume ratio "
            f"{kway_ml_section['geomean_volume_ratio']} exceeds the "
            f"{KWAY_ML_RATIO_GATE} gate — the multilevel engine lost its "
            f"quality contract"
        )
    if kway_ml_section["geomean_speedup_kway_ml"] < KWAY_ML_SPEEDUP_GATE:
        raise AssertionError(
            f"kway-ml geomean speedup "
            f"{kway_ml_section['geomean_speedup_kway_ml']} is below the "
            f"{KWAY_ML_SPEEDUP_GATE}x gate — the multilevel engine lost "
            f"its speed contract"
        )
    report["kway_ml"] = kway_ml_section
    return report


#: The --smoke instance set: one tiny matrix per paper class, enough to
#: drive every pipeline stage in seconds.
SMOKE_MATRICES = ("sym_grid2d_s", "rec_td_small_a", "sqr_er_s")


def run_smoke(jobs: int) -> int:
    """CI smoke: completion + bit-identity across every backend combo.

    Runs the whole-pipeline sweep, a p=4 recursive bisection, a p=4 flat
    direct k-way partitioning (``--algo kway``), and a p=4 *multilevel*
    k-way partitioning (``kway_vcycles=2`` — one multilevel construction
    plus one restricted V-cycle, so both halves of the multilevel engine
    execute) on tiny instances with ``--jobs`` workers, under every
    available kernel backend x execution backend, asserting the results
    equal the serial reference and (for both k-way flavours) that every
    part respects the eqn-(1) ceiling.  **No wall-clock gating** — this
    exists so a cold CI runner proves the parallel plumbing end to end,
    not to race it.
    """
    import repro.kernels as kernels

    kernel_backends = ["python"] + (
        ["numba"] if numba_available() else []
    )
    exec_backends = ["process-pickle", "process", "thread"]
    seeds = spawn_seeds(BASE_SEED, 1)
    failures = 0
    for kb in kernel_backends:
        cfg = dataclasses.replace(get_config("mondriaan"), kernel_backend=kb)
        for name in SMOKE_MATRICES:
            matrix = load_instance(name)
            specs = [
                dataclasses.replace(s, backend=kb)
                for s in make_specs(name, seeds)
            ]
            serial_records = list(run_sweep(specs, jobs=1))
            strip = lambda rs: [
                dataclasses.replace(r, seconds=0.0) for r in rs
            ]
            for sweep_jobs in (jobs, JobsBudget(jobs)):
                records = list(run_sweep(specs, jobs=sweep_jobs))
                if strip(records) != strip(serial_records):
                    print(f"FAIL sweep {name} kernel={kb} jobs={sweep_jobs}")
                    failures += 1
            serial = partition(
                matrix, 4, method="mediumgrain", seed=BASE_SEED,
                config=cfg, jobs=1,
            )
            kway_serial = partition(
                matrix, 4, method="mediumgrain", seed=BASE_SEED,
                config=cfg, jobs=1, algo="kway",
            )
            ml_cfg = dataclasses.replace(cfg, kway_vcycles=2)
            ml_serial = partition(
                matrix, 4, method="mediumgrain", seed=BASE_SEED,
                config=ml_cfg, jobs=1, algo="kway",
            )
            ceiling = max_allowed_part_size(matrix.nnz, 4, 0.03)
            if kway_serial.max_part > ceiling:
                print(f"FAIL kway ceiling {name} kernel={kb}")
                failures += 1
            if ml_serial.max_part > ceiling:
                print(f"FAIL kway-ml ceiling {name} kernel={kb}")
                failures += 1
            for eb in exec_backends:
                res = partition(
                    matrix, 4, method="mediumgrain", seed=BASE_SEED,
                    config=cfg, jobs=jobs, exec_backend=eb,
                )
                ok = np.array_equal(serial.parts, res.parts)
                kres = partition(
                    matrix, 4, method="mediumgrain", seed=BASE_SEED,
                    config=cfg, jobs=jobs, exec_backend=eb, algo="kway",
                )
                kok = np.array_equal(kway_serial.parts, kres.parts)
                mres = partition(
                    matrix, 4, method="mediumgrain", seed=BASE_SEED,
                    config=ml_cfg, jobs=jobs, exec_backend=eb, algo="kway",
                )
                mok = np.array_equal(ml_serial.parts, mres.parts)
                failures += (not ok) + (not kok) + (not mok)
                print(
                    f"  {name:14s} kernel={kb:6s} exec={eb:14s} "
                    f"volume={res.volume:<6d} "
                    f"{'ok' if ok else 'MISMATCH'}  "
                    f"kway={kres.volume:<6d} "
                    f"{'ok' if kok else 'MISMATCH'}  "
                    f"kway-ml={mres.volume:<6d} "
                    f"{'ok' if mok else 'MISMATCH'}"
                )
    failures += _smoke_retry_path(jobs)
    resolved = kernels.resolve_backend("auto").name
    print(
        f"\nsmoke: {len(kernel_backends)} kernel backend(s) x "
        f"{len(exec_backends)} exec backend(s) x {len(SMOKE_MATRICES)} "
        f"matrices x (recursive + kway + kway-ml + retry-path), jobs={jobs} "
        f"(auto kernel backend: {resolved}); {failures} failure(s)"
    )
    return 1 if failures else 0


def _smoke_retry_path(jobs: int) -> int:
    """Hardened-path smoke: one injected-crash run plus the happy-path
    watchdog overhead gate.

    The retry-path run SIGKILLs the first sweep chunk worker (a real
    kill, fired once across all processes via the harness's filesystem
    token) and asserts the hardened sweep still streams records
    bit-identical to the serial reference, with failure briefs recorded.
    The overhead gate then times the same sweep plain vs armed (deadline
    + retries configured, nothing failing) and requires the armed path
    to stay within 2% of the plain one plus a small absolute slack for
    CI timer noise — min over repeats, so pool/JIT warm-up cancels out.
    """
    import tempfile

    from repro.utils import faults
    from repro.utils.executor import shutdown_pools

    failures = 0
    seeds = spawn_seeds(BASE_SEED, 1)
    specs = [
        spec
        for name in SMOKE_MATRICES
        for spec in make_specs(name, seeds)
    ]
    strip = lambda rs: [
        dataclasses.replace(r, seconds=0.0, failures=()) for r in rs
    ]
    serial = list(run_sweep(specs, jobs=1))

    token = tempfile.mktemp(prefix="repro-smoke-fault-")
    rule = faults.FaultRule(
        point="sweep.chunk", kind="crash", hits=(1,), once_token=token
    )
    with faults.install([rule]):
        hardened = list(
            run_sweep(specs, jobs=jobs, task_timeout=60.0, retries=2)
        )
    if strip(hardened) != strip(serial):
        print("FAIL retry-path records differ from the serial reference")
        failures += 1
    if not any(r.failures for r in hardened):
        print("FAIL retry-path run recorded no failure briefs")
        failures += 1
    else:
        briefs = sorted({b for r in hardened for b in r.failures})
        print(f"  retry-path: recovered, briefs={briefs}")

    def best(run_kwargs: dict) -> float:
        t = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            list(run_sweep(specs, jobs=jobs, **run_kwargs))
            t = min(t, time.perf_counter() - t0)
        return t

    shutdown_pools()
    plain = best({})
    armed = best({"task_timeout": 60.0, "retries": 2})
    budget = plain * 1.02 + 0.25
    ok = armed <= budget
    print(
        f"  watchdog overhead: plain {plain:.3f}s vs armed {armed:.3f}s "
        f"(budget {budget:.3f}s) {'ok' if ok else 'OVER'}"
    )
    failures += not ok
    return failures


def check_regression(
    committed: dict, matrices, nseeds: int, repeats: int,
    tolerance: float, min_delta: float,
) -> int:
    """Re-time the live serial pipeline against the committed file.

    A matrix counts as regressed only when it is both ``tolerance``
    slower relatively and ``min_delta`` seconds slower absolutely.
    Returns a process exit code.
    """
    seeds = committed.get("seeds") or spawn_seeds(
        committed.get("base_seed", BASE_SEED), nseeds
    )
    failures = []
    for name in matrices:
        ref_entry = committed.get("matrices", {}).get(name)
        if ref_entry is None:
            print(f"  {name}: not in committed file, skipping")
            continue
        entry = bench_matrix(
            name, list(seeds), repeats, jobs=1, current_only=True
        )
        if entry["volumes"] != ref_entry.get("volumes", entry["volumes"]):
            print(f"  {name}: volumes changed — retime with a fresh "
                  f"`python -m benchmarks.bench_e2e`")
            failures.append((name, float("nan")))
            continue
        cur = entry["current_serial_s"]
        ref = ref_entry["current_serial_s"]
        ratio = cur / ref if ref > 0 else 1.0
        regressed = ratio > 1.0 + tolerance and cur - ref > min_delta
        flag = "REGRESSION" if regressed else "ok"
        print(
            f"  {name:14s} committed {ref:7.3f} s  current {cur:7.3f} s  "
            f"x{ratio:5.2f}  {flag}"
        )
        if regressed:
            failures.append((name, ratio))
    if failures:
        print(f"\n{len(failures)} end-to-end timing(s) regressed more "
              f"than {tolerance:.0%}:")
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x the committed time")
        return 1
    print("\nend-to-end pipeline within tolerance")
    return 0


def main(argv=None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(
        prog="bench_e2e",
        description="end-to-end pipeline benchmark harness",
    )
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed JSON instead "
                             "of rewriting it")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: tiny instances, every kernel x "
                             "execution backend, gate on completion and "
                             "bit-identity only (no timings, no JSON)")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument("--matrices", default=",".join(DEFAULT_MATRICES),
                        help="comma-separated collection instance names")
    parser.add_argument("--nseeds", type=int, default=3,
                        help="seeds per matrix (deterministic tree)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (min is kept)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the parallel timing")
    parser.add_argument("--pway-parts", default=",".join(map(str, PWAY_PARTS)),
                        help="comma-separated p values for the recursive-"
                             "bisection stage")
    # Whole-pipeline wall-clock jitters far more than the isolated-kernel
    # microbenchmarks (scheduler noise integrates over hundreds of ms on
    # shared runners), so the end-to-end gate is looser than the 25%
    # kernel gate by default.
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="--check relative failure threshold")
    parser.add_argument("--min-delta", type=float, default=5e-2,
                        help="--check absolute floor in seconds")
    args = parser.parse_args(argv)
    matrices = tuple(m for m in args.matrices.split(",") if m)
    out = Path(args.out)

    if args.smoke:
        print(f"execution-layer smoke (jobs={args.jobs})")
        return run_smoke(args.jobs)

    if args.check:
        if not out.exists():
            print(f"no committed benchmark file at {out}; "
                  f"run `python -m benchmarks.bench_e2e` first")
            return 2
        committed = json.loads(out.read_text(encoding="utf-8"))
        print(f"checking end-to-end pipeline against {out} "
              f"(tolerance {args.tolerance:.0%})")
        return check_regression(
            committed, matrices, args.nseeds, args.repeats,
            args.tolerance, args.min_delta,
        )

    print(f"timing the end-to-end pipeline on {', '.join(matrices)} "
          f"({args.nseeds} seeds, min of {args.repeats} runs, "
          f"parallel jobs={args.jobs})")
    report = run_benchmarks(
        matrices, args.nseeds, args.repeats, args.jobs,
        pway_parts=tuple(int(p) for p in args.pway_parts.split(",") if p),
    )
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\ngeomean end-to-end speedup (serial, vs pre-PR): "
          f"x{report['geomean_speedup_serial']}")
    print(f"geomean p-way speedup (parallel j{args.jobs}, vs frozen serial "
          f"baseline): x{report['pway']['geomean_speedup_parallel']}")
    print(f"geomean exec-layer speedup (shared-memory vs pickled pool): "
          f"x{report['exec']['geomean_speedup_shm']}")
    print(f"geomean kway speedup over recursive bisection: "
          f"x{report['kway']['geomean_speedup_kway']} at volume ratio "
          f"{report['kway']['geomean_volume_ratio_by_p']}")
    print(f"geomean kway-ml (vcycles={report['kway_ml']['kway_vcycles']}) "
          f"speedup: x{report['kway_ml']['geomean_speedup_kway_ml']} at "
          f"volume ratio {report['kway_ml']['geomean_volume_ratio']} "
          f"(gates: ratio <= {KWAY_ML_RATIO_GATE}, "
          f"speed >= {KWAY_ML_SPEEDUP_GATE}x)")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
