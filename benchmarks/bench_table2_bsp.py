"""Table II — geometric means of volume and BSP cost, p = 2 and p = 64
(PaToH preset, relative to LB).

Paper values for reference:

=====  ==  =====  =====  =====  =====  =====  =====
metric p    LB    LB+IR   MG    MG+IR   FG    FG+IR
Vol     2  1.00   0.81   0.76   0.67   0.71   0.67
Cost    2  1.00   0.82   0.78   0.69   0.73   0.69
Vol    64  1.00   0.86   0.89   0.80   0.87   0.80
Cost   64  1.00   0.78   0.75   0.68   0.72   0.68
=====  ==  =====  =====  =====  =====  =====  =====

Reading: the refined 2D methods (MG+IR, FG+IR) are tied-best on both
metrics at both p; the BSP-cost ranking mirrors the volume ranking.
"""

import pytest

from repro.eval.experiments import run_table2_geomeans
from repro.eval.geomean import normalized_geomeans


@pytest.fixture(scope="module")
def report(patoh_sweep, patoh_sweep_p64, results_dir):
    rep = run_table2_geomeans(patoh_sweep, patoh_sweep_p64)
    rep.write(results_dir)
    return rep


def _means(data, metric):
    values = data.mean_metric(metric)
    means, _ = normalized_geomeans(values, "LB")
    return means


def test_table2_renders(report):
    print()
    print(report.text)
    rows = report.tables["geomeans"]
    assert {r[0] for r in rows[1:]} == {"Vol", "Cost"}


def test_p2_refined_2d_methods_lead_volume(patoh_sweep):
    means = _means(patoh_sweep, "volume")
    best = min(means.values())
    # The paper's Table II finds MG+IR/FG+IR tied-best; a stochastic
    # reproduction can land a few percent either side of the other
    # refined methods, so assert a 5%-of-best envelope plus strict
    # dominance over unrefined localbest.
    assert means["MG+IR"] <= best * 1.05
    assert means["MG+IR"] < means["LB"]
    assert means["MG+IR"] <= means["MG"] + 1e-9


def test_p2_bsp_ranking_mirrors_volume(patoh_sweep):
    """The method ordering under BSP cost matches the volume ordering for
    the refined methods (paper: identical boldface pattern)."""
    vol = _means(patoh_sweep, "volume")
    cost = _means(patoh_sweep, "bsp")
    assert cost["MG+IR"] < cost["LB"]
    assert (vol["MG+IR"] < vol["FG"]) == (cost["MG+IR"] < cost["FG"]) or (
        abs(cost["MG+IR"] - cost["FG"]) < 0.1
    )


def test_p64_ir_still_pays(patoh_sweep_p64):
    means = _means(patoh_sweep_p64, "volume")
    for base in ("LB", "MG", "FG"):
        assert means[f"{base}+IR"] <= means[base] + 1e-9


def test_p64_bsp_refined_2d_lead(patoh_sweep_p64):
    means = _means(patoh_sweep_p64, "bsp")
    best = min(means.values())
    assert means["MG+IR"] <= best * 1.1


@pytest.mark.benchmark(group="artifacts")
def test_table2_regenerate(
    benchmark, patoh_sweep, patoh_sweep_p64, results_dir
):
    """Regenerate and print the Table II artifact under any bench mode."""
    rep = benchmark.pedantic(
        lambda: run_table2_geomeans(patoh_sweep, patoh_sweep_p64),
        iterations=1,
        rounds=1,
    )
    rep.write(results_dir)
    print()
    print(rep.text)
