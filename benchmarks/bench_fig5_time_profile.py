"""Fig. 5 — partitioning-time performance profile (internal partitioner).

Paper readings: the medium-grain method is the *fastest* of all methods —
faster even than localbest, because many columns of B hold only the dummy
diagonal and drop out, leaving a hypergraph with fewer than m + n vertices;
fine-grain (N vertices) is slowest; iterative refinement adds little time.
"""

import pytest

from repro.eval.experiments import run_fig5_time_profile


@pytest.fixture(scope="module")
def report(internal_sweep, results_dir):
    rep = run_fig5_time_profile(internal_sweep)
    rep.write(results_dir)
    return rep


def test_fig5_renders(report):
    print()
    print(report.text)
    assert "all" in report.profiles


def test_fig5_mg_fastest(report):
    """MG has the highest time profile (lowest times) of the six."""
    profile = report.profiles["all"]
    auc = {m: profile.auc(m) for m in profile.fractions}
    assert auc["MG"] == max(auc.values())


def test_fig5_mg_faster_than_lb(report):
    """The surprising paper result: MG beats even the 1D localbest."""
    profile = report.profiles["all"]
    assert profile.auc("MG") > profile.auc("LB")


def test_fig5_fg_slowest_base_method(report):
    """Fine-grain pays for its N-vertex hypergraph."""
    profile = report.profiles["all"]
    assert profile.auc("FG") < profile.auc("MG")
    assert profile.auc("FG") < profile.auc("LB")


def test_fig5_ir_adds_little_time(internal_sweep):
    """Paper: partitioning with IR is roughly 10% slower; allow a loose
    factor-of-2 envelope for the Python reproduction."""
    times = internal_sweep.mean_metric("seconds")
    for base in ("LB", "MG", "FG"):
        ratio = float(times[f"{base}+IR"].mean() / times[base].mean())
        assert ratio < 2.0, f"{base}+IR / {base} time ratio {ratio:.2f}"


@pytest.mark.benchmark(group="artifacts")
def test_fig5_regenerate(benchmark, internal_sweep, results_dir):
    """Regenerate and print the Fig. 5 artifact under any bench mode."""
    rep = benchmark.pedantic(
        lambda: run_fig5_time_profile(internal_sweep),
        iterations=1,
        rounds=1,
    )
    rep.write(results_dir)
    print()
    print(rep.text)
