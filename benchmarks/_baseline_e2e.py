"""Frozen pre-PR pipeline pieces for the end-to-end benchmark.

``bench_e2e`` measures the *whole* pipeline — split, medium-grain build,
multilevel partitioning, iterative refinement, volume, vector
distribution, verified SpMV simulation — against the state of the
repository before the sweep-engine PR.  The pieces that PR changed are
frozen here verbatim:

* :class:`BaselineBackend` — the FM move loop and greedy-matching sweep
  exactly as PR 1 left them (closure-based gain updates, per-vertex
  bucket seeding loop, index-based pin scans).  Identical-net merging is
  shared with the live backend (unchanged by this PR).
* :func:`baseline_distribute_vectors` — lexsort-based incidence lists
  plus the all-lines Python greedy owner loop.
* :func:`baseline_simulate_spmv` — the dict-based fan-out / partial-sum
  / fan-in simulation, including its lexsort-based expected-word and
  phase-load checks.
* :func:`baseline_partition` — the serial recursive bisection exactly as
  the parallel-recursion PR found it: one RNG stream consumed in
  depth-first traversal order (which is why it could not be
  parallelized), depth-first ``_recurse``, frozen kernels underneath.
  Its volumes are *not* expected to match the live ``partition`` — the
  seed discipline intentionally changed — so the p-way benchmark records
  both sides' volumes instead of asserting bit-identity against it.

The orchestration around these (split, model build, coarsening,
contraction, recursion) is the *live* code — it was not changed by this
PR.  The two lambda-counting helpers that the orchestration calls
internally (``repro.core.volume`` for eqn (3) inside iterative
refinement, ``repro.hypergraph.metrics`` for the connectivity cut inside
the multilevel engine) *were* changed, so :func:`baseline_lambda_kernels`
swaps the pre-PR lexsort versions in for the duration of a baseline
timing — otherwise the baseline would silently benefit from this PR's
own speedups.

Everything here is bit-identical to the live implementations by the
kernel contract; ``bench_e2e`` asserts that on every timed run before
trusting the numbers.
"""

from __future__ import annotations

import contextlib

import numpy as np

import repro.core.volume as _volume_mod
import repro.hypergraph.metrics as _metrics_mod
from repro.kernels.base import KernelBackend
from repro.kernels.gains import GainBuckets
from repro.kernels.python_backend import merge_identical_nets
from repro.kernels.state import FMPassState, compute_fm_setup
from repro.spmv.vector_dist import VectorDistribution


def _lexsort_axis_lambdas(index, parts, extent, nparts=None):
    """Pre-PR connectivity counting: lexsort + adjacent-pair dedup."""
    if index.size == 0:
        return np.zeros(extent, dtype=np.int64)
    order = np.lexsort((parts, index))
    si, sp = index[order], parts[order]
    new_pair = np.empty(si.size, dtype=bool)
    new_pair[0] = True
    new_pair[1:] = (si[1:] != si[:-1]) | (sp[1:] != sp[:-1])
    return np.bincount(si[new_pair], minlength=extent).astype(np.int64)


@contextlib.contextmanager
def baseline_lambda_kernels():
    """Temporarily restore the pre-PR lambda kernels inside the live
    orchestration (volume checks in refinement, connectivity cuts in the
    multilevel engine) so baseline timings measure the true pre-PR
    pipeline."""
    saved = (_volume_mod.axis_lambdas, _metrics_mod.axis_lambdas)
    _volume_mod.axis_lambdas = _lexsort_axis_lambdas
    _metrics_mod.axis_lambdas = _lexsort_axis_lambdas
    try:
        yield
    finally:
        _volume_mod.axis_lambdas, _metrics_mod.axis_lambdas = saved


class BaselineBackend(KernelBackend):
    """The PR-1 pure-Python kernels, frozen for benchmarking."""

    name = "baseline-e2e"

    # ------------------------------------------------------------------ #
    # FM move loop (pre-PR: closure-based gain updates, scalar seeding).
    # ------------------------------------------------------------------ #
    def fm_pass(self, state, parts, maxw, cfg, rng):
        h = state.h
        nverts = h.nverts
        if nverts == 0:
            return 0, True
        mirrors = state.list_mirrors()
        xpins_l = mirrors["xpins"]
        pins_l = mirrors["pins"]
        xnets_l = mirrors["xnets"]
        vnets_l = mirrors["vnets"]
        cost_l = mirrors["cost"]
        vw_l = mirrors["vwgt"]

        pc0_np, pc1_np, gain_np, insert_mask = compute_fm_setup(
            h, parts, cfg.boundary_only
        )
        buckets = GainBuckets(nverts, state.max_gain)
        bgain = gain_np.tolist()
        buckets.gain = bgain
        insert_order = rng.permutation(nverts)

        parts_l = parts.tolist()
        pc0 = pc0_np.tolist()
        pc1 = pc1_np.tolist()
        locked = [False] * nverts
        w1 = int(np.dot(parts, h.vwgt))
        weights = [state.total_weight - w1, w1]
        maxw0, maxw1 = maxw
        slack = state.slack

        heads = buckets.head
        heads0 = heads[0]
        heads1 = heads[1]
        nxt = buckets.nxt
        prv = buckets.prv
        inside = buckets.inside
        maxptr = buckets.maxptr
        offset = buckets.offset

        mask_l = insert_mask.tolist()
        for v in insert_order.tolist():
            if mask_l[v]:
                sv = parts_l[v]
                b = bgain[v] + offset
                hd = heads0 if sv == 0 else heads1
                first = hd[b]
                nxt[v] = first
                prv[v] = -1
                if first != -1:
                    prv[first] = v
                hd[b] = v
                inside[v] = True
                if b > maxptr[sv]:
                    maxptr[sv] = b

        w0, w1 = weights

        def balance_metric() -> float:
            return max(
                w0 / maxw0 if maxw0 else float(w0 > 0),
                w1 / maxw1 if maxw1 else float(w1 > 0),
            )

        best_feasible = w0 <= maxw0 and w1 <= maxw1
        best_cum = 0
        best_len = 0
        best_metric = balance_metric()
        cum = 0
        moved = []
        moved_append = moved.append
        stall = 0
        stall_limit = max(32, int(cfg.fm_early_exit_frac * nverts))

        def gain_touch(u: int, delta: int) -> None:
            if inside[u]:
                su = parts_l[u]
                hd = heads0 if su == 0 else heads1
                g = bgain[u]
                p = prv[u]
                n2 = nxt[u]
                if p != -1:
                    nxt[p] = n2
                else:
                    hd[g + offset] = n2
                if n2 != -1:
                    prv[n2] = p
                g += delta
                b = g + offset
                first = hd[b]
                nxt[u] = first
                prv[u] = -1
                if first != -1:
                    prv[first] = u
                hd[b] = u
                bgain[u] = g
                if b > maxptr[su]:
                    maxptr[su] = b
            else:
                g = bgain[u] + delta
                bgain[u] = g
                if not locked[u]:
                    su = parts_l[u]
                    b = g + offset
                    hd = heads0 if su == 0 else heads1
                    first = hd[b]
                    nxt[u] = first
                    prv[u] = -1
                    if first != -1:
                        prv[first] = u
                    hd[b] = u
                    inside[u] = True
                    if b > maxptr[su]:
                        maxptr[su] = b

        while True:
            best_v = -1
            best_side = -1
            best_g = 0
            if w1 <= maxw1:
                room = maxw1 + slack - w1
                v = -1
                b = maxptr[0]
                while b >= 0:
                    u = heads0[b]
                    if u == -1:
                        maxptr[0] = b - 1
                        b -= 1
                        continue
                    while u != -1:
                        if vw_l[u] <= room:
                            v = u
                            break
                        u = nxt[u]
                    if v != -1:
                        break
                    b -= 1
                if v != -1:
                    best_v = v
                    best_side = 0
                    best_g = bgain[v]
            if w0 <= maxw0:
                room = maxw0 + slack - w0
                v = -1
                b = maxptr[1]
                while b >= 0:
                    u = heads1[b]
                    if u == -1:
                        maxptr[1] = b - 1
                        b -= 1
                        continue
                    while u != -1:
                        if vw_l[u] <= room:
                            v = u
                            break
                        u = nxt[u]
                    if v != -1:
                        break
                    b -= 1
                if v != -1:
                    g = bgain[v]
                    if (
                        best_v == -1
                        or g > best_g
                        or (g == best_g and w1 > w0)
                    ):
                        best_v = v
                        best_side = 1
                        best_g = g
            if best_v == -1:
                break

            v, s = best_v, best_side
            t = 1 - s
            p = prv[v]
            n2 = nxt[v]
            if p != -1:
                nxt[p] = n2
            else:
                (heads0 if s == 0 else heads1)[bgain[v] + offset] = n2
            if n2 != -1:
                prv[n2] = p
            inside[v] = False
            locked[v] = True

            for idx in range(xnets_l[v], xnets_l[v + 1]):
                n = vnets_l[idx]
                c = cost_l[n]
                if c == 0:
                    continue
                p0, p1 = xpins_l[n], xpins_l[n + 1]
                pcT = pc1[n] if t == 1 else pc0[n]
                if pcT == 0:
                    for k in range(p0, p1):
                        u = pins_l[k]
                        if not locked[u]:
                            gain_touch(u, c)
                elif pcT == 1:
                    for k in range(p0, p1):
                        u = pins_l[k]
                        if parts_l[u] == t:
                            if not locked[u]:
                                gain_touch(u, -c)
                            break
                if s == 0:
                    pc0[n] -= 1
                    pc1[n] += 1
                    pcF = pc0[n]
                else:
                    pc1[n] -= 1
                    pc0[n] += 1
                    pcF = pc1[n]
                if pcF == 0:
                    for k in range(p0, p1):
                        u = pins_l[k]
                        if not locked[u]:
                            gain_touch(u, -c)
                elif pcF == 1:
                    for k in range(p0, p1):
                        u = pins_l[k]
                        if u != v and parts_l[u] == s:
                            if not locked[u]:
                                gain_touch(u, c)
                            break

            parts_l[v] = t
            wv = vw_l[v]
            if s == 0:
                w0 -= wv
                w1 += wv
            else:
                w1 -= wv
                w0 += wv
            cum += best_g
            moved_append(v)

            feasible_now = w0 <= maxw0 and w1 <= maxw1
            improved = False
            if feasible_now:
                metric = balance_metric()
                if (
                    not best_feasible
                    or cum > best_cum
                    or (cum == best_cum and metric < best_metric)
                ):
                    best_feasible = True
                    best_cum = cum
                    best_len = len(moved)
                    best_metric = metric
                    improved = True
            if improved:
                stall = 0
            else:
                stall += 1
                if stall > stall_limit and best_feasible:
                    break

        for v in moved[best_len:]:
            parts_l[v] = 1 - parts_l[v]
        parts[:] = parts_l

        if not best_feasible:
            return 0, False
        return best_cum, True

    # ------------------------------------------------------------------ #
    # Greedy matching (pre-PR: single loop, index-based pin scans).
    # ------------------------------------------------------------------ #
    def match_vertices(
        self, state, order, absorption, max_net, max_cluster_weight,
        restrict_parts,
    ):
        mirrors = state.list_mirrors()
        xpins_l = mirrors["xpins"]
        pins_l = mirrors["pins"]
        xnets_l = mirrors["xnets"]
        vnets_l = mirrors["vnets"]
        cost_l = mirrors["cost"]
        vw_l = mirrors["vwgt"]
        sizes_l = mirrors["sizes"]
        nverts = state.h.nverts

        match = [-1] * nverts
        parts_l = (
            restrict_parts.tolist() if restrict_parts is not None else None
        )
        score = [0.0] * nverts
        for v in order.tolist():
            if match[v] != -1:
                continue
            wv = vw_l[v]
            touched = []
            for i in range(xnets_l[v], xnets_l[v + 1]):
                n = vnets_l[i]
                sz = sizes_l[n]
                if sz < 2 or sz > max_net:
                    continue
                c = cost_l[n]
                if c == 0:
                    continue
                w = c / (sz - 1) if absorption else float(c)
                for k in range(xpins_l[n], xpins_l[n + 1]):
                    u = pins_l[k]
                    if u == v or match[u] != -1:
                        continue
                    if parts_l is not None and parts_l[u] != parts_l[v]:
                        continue
                    if wv + vw_l[u] > max_cluster_weight:
                        continue
                    if score[u] == 0.0:
                        touched.append(u)
                    score[u] += w
            if touched:
                best_u = -1
                best_s = 0.0
                for u in touched:
                    s = score[u]
                    if s > best_s or (
                        s == best_s and best_u != -1 and vw_l[u] < vw_l[best_u]
                    ):
                        best_u, best_s = u, s
                    score[u] = 0.0
                if best_u != -1:
                    match[v] = best_u
                    match[best_u] = v
        return np.asarray(match, dtype=np.int64)

    def merge_identical(self, xpins, pins, ncost):
        """Unchanged by this PR; shared with the live backend."""
        return merge_identical_nets(xpins, pins, ncost)


BASELINE_BACKEND = BaselineBackend()


# --------------------------------------------------------------------- #
# Pre-PR recursive bisection: traversal-order seed stream, serial only.
# --------------------------------------------------------------------- #
def _baseline_recurse(
    matrix, indices, first_part, nparts, ceiling, eps, method, refine,
    cfg, rng, out, volumes,
):
    """The pre-PR ``_recurse`` verbatim: the single ``rng`` is threaded
    through the depth-first walk, so every bisection's randomness depends
    on how many draws earlier subtrees consumed."""
    import numpy as np

    from repro.core.methods import bipartition
    from repro.utils.balance import max_allowed_part_size

    if nparts == 1:
        out[indices] = first_part
        return
    q0 = nparts // 2
    q1 = nparts - q0
    sub = matrix.select(indices)
    cap0, cap1 = ceiling * q0, ceiling * q1
    if indices.size > cap0 + cap1:
        relaxed = max_allowed_part_size(indices.size, nparts, eps)
        cap0 = max(cap0, relaxed * q0)
        cap1 = max(cap1, relaxed * q1)
    result = bipartition(
        sub, method=method, refine=refine, config=cfg, seed=rng,
        max_weights=(cap0, cap1),
    )
    volumes.append(result.volume)
    left = indices[result.parts == 0]
    right = indices[result.parts == 1]
    _baseline_recurse(
        matrix, left, first_part, q0, ceiling, eps, method, refine, cfg,
        rng, out, volumes,
    )
    _baseline_recurse(
        matrix, right, first_part + q0, q1, ceiling, eps, method, refine,
        cfg, rng, out, volumes,
    )


def baseline_partition(
    matrix, nparts, method="mediumgrain", eps=0.03, refine=False, seed=None
):
    """Pre-PR serial p-way partitioning over the frozen kernels.

    Returns ``(parts, volume)``.  Runs the frozen traversal-order
    recursion with the frozen backend and lambda kernels, i.e. the whole
    pre-PR p-way pipeline the parallel-recursion benchmark compares
    against.
    """
    import dataclasses

    import numpy as np

    from repro.core.volume import communication_volume
    from repro.partitioner.config import get_config
    from repro.utils.balance import max_allowed_part_size
    from repro.utils.rng import as_generator

    cfg = dataclasses.replace(
        get_config("mondriaan"), kernel_backend=BASELINE_BACKEND
    )
    rng = as_generator(seed)
    n = matrix.nnz
    parts = np.zeros(n, dtype=np.int64)
    ceiling = max_allowed_part_size(n, nparts, eps)
    with baseline_lambda_kernels():
        if nparts > 1:
            _baseline_recurse(
                matrix, np.arange(n, dtype=np.int64), 0, nparts, ceiling,
                eps, method, refine, cfg, rng, parts, [],
            )
        volume = communication_volume(matrix, parts)
    return parts, volume


# --------------------------------------------------------------------- #
# Pre-PR SpMV side: lexsort incidences, all-lines greedy, dict simulate.
# --------------------------------------------------------------------- #
def _axis_part_sets(index, parts, extent):
    if index.size == 0:
        return np.zeros(extent + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    order = np.lexsort((parts, index))
    si, sp = index[order], parts[order]
    keep = np.empty(si.size, dtype=bool)
    keep[0] = True
    keep[1:] = (si[1:] != si[:-1]) | (sp[1:] != sp[:-1])
    si, sp = si[keep], sp[keep]
    counts = np.bincount(si, minlength=extent)
    ptr = np.zeros(extent + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return ptr, sp


def _greedy_owners(ptr, flat, extent, nparts, fallback_balance):
    owners = np.full(extent, -1, dtype=np.int64)
    lam = np.diff(ptr)
    send = [0] * nparts
    recv = [0] * nparts
    ptr_l = ptr.tolist()
    flat_l = flat.tolist()
    order = np.argsort(-lam, kind="stable").tolist()
    for line in order:
        lo, hi = ptr_l[line], ptr_l[line + 1]
        k = hi - lo
        if k == 0:
            continue
        if k == 1:
            owners[line] = flat_l[lo]
            continue
        best_s = -1
        best_cost = None
        for t in range(lo, hi):
            s = flat_l[t]
            cost = max(send[s] + k - 1, recv[s])
            if best_cost is None or cost < best_cost:
                best_s, best_cost = s, cost
        owners[line] = best_s
        send[best_s] += k - 1
        for t in range(lo, hi):
            s = flat_l[t]
            if s != best_s:
                recv[s] += 1
    empty = owners < 0
    if empty.any():
        idx = np.flatnonzero(empty)
        owners[idx] = fallback_balance[np.arange(idx.size) % nparts]
    return owners


def baseline_distribute_vectors(matrix, parts, nparts):
    """Pre-PR greedy vector distribution (lexsort + all-lines loop)."""
    m, n = matrix.shape
    col_ptr, col_parts = _axis_part_sets(matrix.cols, parts, n)
    row_ptr, row_parts = _axis_part_sets(matrix.rows, parts, m)
    fallback = np.arange(nparts, dtype=np.int64)
    return VectorDistribution(
        input_owner=_greedy_owners(col_ptr, col_parts, n, nparts, fallback),
        output_owner=_greedy_owners(row_ptr, row_parts, m, nparts, fallback),
        nparts=nparts,
    )


def _expected_phase_words(matrix, parts, dist):
    m, n = matrix.shape
    totals = []
    for index, owner, extent in (
        (matrix.cols, dist.input_owner, n),
        (matrix.rows, dist.output_owner, m),
    ):
        ptr, flat = _axis_part_sets(index, parts, extent)
        line_of = np.repeat(np.arange(extent), np.diff(ptr))
        foreign = flat != owner[line_of]
        totals.append(int(np.count_nonzero(foreign)))
    return totals[0], totals[1]


def _baseline_phase_loads(matrix, parts, nparts, dist):
    """Pre-PR BSP phase loads (lexsort-based incidence detection)."""
    m, n = matrix.shape
    fanout_send = np.zeros(nparts, dtype=np.int64)
    fanout_recv = np.zeros(nparts, dtype=np.int64)
    fanin_send = np.zeros(nparts, dtype=np.int64)
    fanin_recv = np.zeros(nparts, dtype=np.int64)
    for axis, owner, send, recv in (
        ("col", dist.input_owner, fanout_send, fanout_recv),
        ("row", dist.output_owner, fanin_send, fanin_recv),
    ):
        index = matrix.cols if axis == "col" else matrix.rows
        if index.size == 0:
            continue
        order = np.lexsort((parts, index))
        si, sp = index[order], parts[order]
        keep = np.empty(si.size, dtype=bool)
        keep[0] = True
        keep[1:] = (si[1:] != si[:-1]) | (sp[1:] != sp[:-1])
        li, lp = si[keep], sp[keep]
        own = owner[li]
        foreign = lp != own
        if axis == "col":
            np.add.at(send, own[foreign], 1)
            np.add.at(recv, lp[foreign], 1)
        else:
            np.add.at(send, lp[foreign], 1)
            np.add.at(recv, own[foreign], 1)
    return fanout_send, fanin_send


def baseline_simulate_spmv(matrix, parts, nparts, dist):
    """Pre-PR dict-based verified SpMV simulation.

    Returns ``(u, words_fanout, words_fanin)`` after running the same
    verification the pre-PR simulator performed (result vs. sequential
    product, words vs. the distribution-implied counts, eqn-(3) lower
    bound, BSP phase loads).
    """
    m, n = matrix.shape
    v = (np.arange(1, n + 1, dtype=np.float64)) / n
    rows, cols, vals = matrix.rows, matrix.cols, matrix.vals

    need_pairs = np.unique(np.stack([parts, cols], axis=1), axis=0)
    need_owner = dist.input_owner[need_pairs[:, 1]]
    foreign_in = need_pairs[need_owner != need_pairs[:, 0]]
    vlocal = [dict() for _ in range(nparts)]
    for j, owner in enumerate(dist.input_owner.tolist()):
        vlocal[owner][j] = v[j]
    words_fanout = int(foreign_in.shape[0])
    for s, j in foreign_in.tolist():
        owner = int(dist.input_owner[j])
        vlocal[s][j] = vlocal[owner][j]

    partials = [dict() for _ in range(nparts)]
    for k in range(matrix.nnz):
        s = int(parts[k])
        i = int(rows[k])
        j = int(cols[k])
        vj = vlocal[s][j]
        acc = partials[s]
        acc[i] = acc.get(i, 0.0) + vals[k] * vj

    u = np.zeros(m, dtype=np.float64)
    words_fanin = 0
    for s in range(nparts):
        for i, val in partials[s].items():
            owner = int(dist.output_owner[i])
            if owner != s:
                words_fanin += 1
            u[i] += val

    reference = matrix.matvec(v)
    if not np.allclose(u, reference, rtol=1e-9, atol=1e-9):
        raise AssertionError("baseline simulation drifted from A @ v")
    expected_out, expected_in = _expected_phase_words(matrix, parts, dist)
    if words_fanout != expected_out or words_fanin != expected_in:
        raise AssertionError("baseline word counts drifted")
    row_l = _lexsort_axis_lambdas(matrix.rows, parts, m)
    col_l = _lexsort_axis_lambdas(matrix.cols, parts, n)
    fanin_lb = int(np.maximum(row_l - 1, 0).sum())
    fanout_lb = int(np.maximum(col_l - 1, 0).sum())
    if words_fanout < fanout_lb or words_fanin < fanin_lb:
        raise AssertionError("baseline words below the eqn-(3) bound")
    fanout_send, fanin_send = _baseline_phase_loads(
        matrix, parts, nparts, dist
    )
    if int(fanout_send.sum()) != words_fanout or (
        int(fanin_send.sum()) != words_fanin
    ):
        raise AssertionError("baseline BSP loads disagree with simulation")
    return u, words_fanout, words_fanin
