"""Micro-benchmarks of the library's computational kernels.

Not a paper artifact — these time the building blocks so performance
regressions in the hot paths (model construction, FM, coarsening, volume
accounting, SpMV simulation) are visible in isolation.  Grouped by
pytest-benchmark for ``--benchmark-only`` runs.
"""

import numpy as np
import pytest

from repro.core.medium_grain import build_medium_grain
from repro.core.split import initial_split
from repro.core.volume import communication_volume
from repro.hypergraph.models import fine_grain_model, row_net_model
from repro.hypergraph.metrics import connectivity_volume
from repro.partitioner.coarsen import coarsen_level
from repro.partitioner.config import get_config
from repro.partitioner.fm import fm_refine
from repro.sparse.collection import load_instance
from repro.spmv.simulate import simulate_spmv

MATRIX = "sqr_cl_m"  # 1800 x 1800, 7200 nonzeros


@pytest.fixture(scope="module")
def matrix():
    return load_instance(MATRIX)


@pytest.mark.benchmark(group="models")
def test_row_net_build(benchmark, matrix):
    h = benchmark(lambda: row_net_model(matrix).hypergraph)
    assert h.nverts == matrix.ncols


@pytest.mark.benchmark(group="models")
def test_fine_grain_build(benchmark, matrix):
    h = benchmark(lambda: fine_grain_model(matrix).hypergraph)
    assert h.nverts == matrix.nnz


@pytest.mark.benchmark(group="models")
def test_medium_grain_build(benchmark, matrix):
    split = initial_split(matrix, seed=0)
    inst = benchmark(lambda: build_medium_grain(split))
    assert inst.hypergraph.nverts <= sum(matrix.shape)


@pytest.mark.benchmark(group="partitioner")
def test_coarsen_one_level(benchmark, matrix):
    h = row_net_model(matrix).hypergraph
    rng = np.random.default_rng(0)
    level = benchmark(
        lambda: coarsen_level(h, get_config("mondriaan"), rng, 10**9)
    )
    assert level.coarse.nverts < h.nverts


@pytest.mark.benchmark(group="partitioner")
def test_fm_refine_pass(benchmark, matrix):
    h = row_net_model(matrix).hypergraph
    rng = np.random.default_rng(1)
    parts = rng.integers(0, 2, size=h.nverts).astype(np.int64)
    cap = int(1.2 * h.total_weight() / 2)
    before = connectivity_volume(h, parts)

    def run():
        return fm_refine(h, parts, (cap, cap), seed=2, max_passes=1)

    res = benchmark(run)
    assert res.cut <= before


@pytest.mark.benchmark(group="metrics")
def test_communication_volume_kernel(benchmark, matrix):
    rng = np.random.default_rng(3)
    parts = rng.integers(0, 64, size=matrix.nnz)
    vol = benchmark(lambda: communication_volume(matrix, parts))
    assert vol > 0


@pytest.mark.benchmark(group="metrics")
def test_connectivity_volume_kernel(benchmark, matrix):
    h = fine_grain_model(matrix).hypergraph
    rng = np.random.default_rng(4)
    parts = rng.integers(0, 2, size=h.nverts).astype(np.int64)
    cut = benchmark(lambda: connectivity_volume(h, parts))
    assert cut > 0


@pytest.mark.benchmark(group="spmv")
def test_spmv_simulation_kernel(benchmark, matrix):
    rng = np.random.default_rng(5)
    parts = rng.integers(0, 4, size=matrix.nnz)
    report = benchmark.pedantic(
        lambda: simulate_spmv(matrix, parts, 4), iterations=1, rounds=3
    )
    assert report.volume == communication_volume(matrix, parts)
