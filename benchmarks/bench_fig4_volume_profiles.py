"""Fig. 4 — communication-volume performance profiles (internal partitioner).

The paper's four panels compare LB / LB+IR / FG / FG+IR / MG / MG+IR over
(a) all matrices, (b) square non-symmetric, (c) symmetric, and
(d) rectangular matrices, with eps = 0.03 and p = 2.  Headline readings:

* (a) MG+IR is the top curve: ~90% of matrices within factor 1.2 of best
  (FG+IR ~80%, FG without IR ~50%);
* (b) square non-symmetric: MG+IR strongest, LB weak;
* (c) symmetric: IR has the largest impact; MG ~ FG;
* (d) rectangular: LB competitive, MG+IR ties LB+IR.

This bench regenerates all four profiles over the synthetic collection and
asserts the orderings that constitute the claim (on profile area, a scalar
summary of "higher curve").
"""

import pytest

from repro.eval.experiments import run_fig4_profiles


@pytest.fixture(scope="module")
def report(internal_sweep, results_dir):
    rep = run_fig4_profiles(internal_sweep)
    rep.write(results_dir)
    return rep


def test_fig4_renders_all_panels(report):
    print()
    print(report.text)
    assert {"all", "Rec", "Sym", "Sqr"} <= set(report.profiles)


def test_fig4a_mg_ir_is_best_overall(report):
    """Panel (a): MG+IR has the highest profile over all matrices."""
    profile = report.profiles["all"]
    auc = {m: profile.auc(m) for m in profile.fractions}
    assert auc["MG+IR"] == max(auc.values())


def test_fig4a_ir_improves_every_method(report):
    """IR curves dominate their base methods in area."""
    profile = report.profiles["all"]
    for base in ("LB", "MG", "FG"):
        assert profile.auc(f"{base}+IR") >= profile.auc(base)


def test_fig4b_square_mg_ir_beats_lb(report):
    """Panel (b): on square non-symmetric matrices localbest performs
    relatively badly, MG+IR relatively well."""
    profile = report.profiles["Sqr"]
    assert profile.auc("MG+IR") > profile.auc("LB")


def test_fig4c_symmetric_ir_impact_largest(report):
    """Panel (c): on symmetric matrices IR's lift (area gained) is larger
    than on rectangular matrices, for the localbest method."""
    lift_sym = report.profiles["Sym"].auc("LB+IR") - report.profiles[
        "Sym"
    ].auc("LB")
    lift_rec = report.profiles["Rec"].auc("LB+IR") - report.profiles[
        "Rec"
    ].auc("LB")
    assert lift_sym > lift_rec


def test_fig4d_rectangular_lb_competitive(report):
    """Panel (d): localbest+IR is within a whisker of MG+IR on
    rectangular matrices (the paper reports a tie)."""
    profile = report.profiles["Rec"]
    assert profile.auc("LB+IR") >= 0.9 * profile.auc("MG+IR")


@pytest.mark.benchmark(group="fig4")
def test_fig4_profile_computation_kernel(benchmark, internal_sweep):
    """Time the analysis step itself (profile construction)."""
    from repro.eval.profiles import performance_profile

    values = internal_sweep.mean_metric("volume")
    profile = benchmark(lambda: performance_profile(values, max_tau=2.0))
    assert profile.n_instances > 0


@pytest.mark.benchmark(group="artifacts")
def test_fig4_regenerate(benchmark, internal_sweep, results_dir):
    """Regenerate and print the Fig. 4 artifact (also under
    ``--benchmark-only``, where the assertion tests above are skipped)."""
    rep = benchmark.pedantic(
        lambda: run_fig4_profiles(internal_sweep), iterations=1, rounds=1
    )
    rep.write(results_dir)
    print()
    print(rep.text)
