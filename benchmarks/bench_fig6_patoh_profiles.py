"""Fig. 6 — volume profiles under the second ("PaToH") partitioner preset,
p = 2 (panel a) and p = 64 by recursive bisection (panel b).

The paper uses PaToH to show its conclusions are partitioner-robust: with
it, FG+IR closes the gap to MG+IR (both best), MG remains fastest, and at
p = 64 the IR impact grows.  The reproduction's second preset plays
PaToH's role (see DESIGN.md); the assertions demand the same robustness:
the +IR 2D methods lead, and the ordering survives at p = 64.
"""

import pytest

from repro.eval.experiments import run_fig6_profiles


@pytest.fixture(scope="module")
def report(patoh_sweep, patoh_sweep_p64, results_dir):
    rep = run_fig6_profiles(patoh_sweep, patoh_sweep_p64)
    rep.write(results_dir)
    return rep


def test_fig6_renders_both_panels(report):
    print()
    print(report.text)
    assert "p2" in report.profiles
    assert "p64" in report.profiles


def test_fig6a_refined_2d_methods_lead(report):
    """Panel (a): the refined methods lead (the paper finds MG+IR and
    FG+IR tied).  Assert MG+IR within 5% of the best curve's area
    (EXPERIMENTS.md documents that LB+IR runs stronger on the synthetic
    collection than on UF), and that IR dominates each base method and
    plain LB."""
    profile = report.profiles["p2"]
    auc = {m: profile.auc(m) for m in profile.fractions}
    assert auc["MG+IR"] >= 0.95 * max(auc.values())
    assert auc["MG+IR"] >= auc["MG"]
    assert auc["FG+IR"] >= auc["FG"]
    assert auc["MG+IR"] > auc["LB"]


def test_fig6b_conclusions_survive_at_p64(report):
    """Panel (b): at p = 64 the refined methods still dominate, and IR's
    impact is at least as large as at p = 2 (the paper: 'even larger')."""
    p2 = report.profiles["p2"]
    p64 = report.profiles["p64"]
    auc64 = {m: p64.auc(m) for m in p64.fractions}
    assert auc64["MG+IR"] >= auc64["MG"]
    best = max(auc64.values())
    assert auc64["MG+IR"] >= 0.93 * best
    # IR keeps delivering at p = 64 (the paper reports an even larger
    # impact there; our p = 64 pool is only the 15 largest instances, so
    # demand a substantial but noise-tolerant fraction of the p = 2 lift).
    lift_p2 = p2.auc("LB+IR") - p2.auc("LB")
    lift_p64 = auc64["LB+IR"] - auc64["LB"]
    assert lift_p64 >= 0.35 * lift_p2
    assert lift_p64 > 0


@pytest.mark.benchmark(group="artifacts")
def test_fig6_regenerate(benchmark, patoh_sweep, patoh_sweep_p64, results_dir):
    """Regenerate and print the Fig. 6 artifact under any bench mode."""
    rep = benchmark.pedantic(
        lambda: run_fig6_profiles(patoh_sweep, patoh_sweep_p64),
        iterations=1,
        rounds=1,
    )
    rep.write(results_dir)
    print()
    print(rep.text)


@pytest.mark.benchmark(group="fig6")
def test_fig6_p64_kernel(benchmark, patoh_sweep_p64):
    """Time one p = 64 recursive bisection on the smallest qualifying
    instance (the figure's unit of work)."""
    from repro.core.recursive import partition
    from repro.sparse.collection import load_instance

    name = min(
        patoh_sweep_p64.instances(),
        key=lambda n: load_instance(n).nnz,
    )
    matrix = load_instance(name)
    result = benchmark.pedantic(
        lambda: partition(
            matrix, 64, method="mediumgrain", config="patoh", seed=0
        ),
        iterations=1,
        rounds=1,
    )
    assert result.feasible
