"""Table I — normalized geometric means of volume and time per class
(internal partitioner, p = 2, relative to LB).

Paper values for reference (volume / time, row "All"):

====  =====  =====  =====  =====  =====  =====
       LB    LB+IR   MG    MG+IR   FG    FG+IR
Vol   1.00   0.80   0.81   0.73   0.93   0.77
Time  1.00   1.10   0.62   0.72   1.32   1.43
====  =====  =====  =====  =====  =====  =====

The reproduction asserts the *shape*: MG+IR lowest volume overall, MG
fastest, FG slowest, LB+IR best on rectangular, IR always reducing volume.
Absolute values are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.eval.experiments import run_table1_geomeans
from repro.eval.geomean import normalized_geomeans


@pytest.fixture(scope="module")
def report(internal_sweep, results_dir):
    rep = run_table1_geomeans(internal_sweep)
    rep.write(results_dir)
    return rep


def _means(data, metric, cls=None):
    subset = data if cls is None else data.subset(cls)
    values = subset.mean_metric(metric)
    means, _ = normalized_geomeans(values, "LB")
    return means


def test_table1_renders(report):
    print()
    print(report.text)
    assert report.tables["geomeans"]


def test_volume_all_mg_ir_lowest(internal_sweep):
    means = _means(internal_sweep, "volume")
    assert means["MG+IR"] == min(means.values())


def test_volume_all_ordering(internal_sweep):
    """MG+IR <= FG+IR and MG < FG, as in the paper's All row."""
    means = _means(internal_sweep, "volume")
    assert means["MG+IR"] <= means["FG+IR"] + 1e-9
    assert means["MG"] < means["FG"]


def test_volume_ir_always_helps(internal_sweep):
    means = _means(internal_sweep, "volume")
    for base in ("LB", "MG", "FG"):
        assert means[f"{base}+IR"] <= means[base] + 1e-9


def test_volume_rectangular_lb_ir_competitive(internal_sweep):
    """Paper Rec row: LB+IR 0.94 vs MG+IR 0.96 — the single class where
    the 1D method wins; assert MG+IR does not beat LB+IR by much."""
    means = _means(internal_sweep, "volume", "Rec")
    assert means["LB+IR"] <= means["MG+IR"] * 1.1


def test_time_all_mg_fastest(internal_sweep):
    means = _means(internal_sweep, "seconds")
    assert means["MG"] == min(means.values())


def test_time_fg_slowest_family(internal_sweep):
    means = _means(internal_sweep, "seconds")
    assert means["FG+IR"] == max(means.values())
    assert means["FG"] > means["MG"]


def test_time_mg_saves_vs_lb(internal_sweep):
    """Paper: MG takes on average ~28% less time than LB; assert a
    saving of at least 15% for the reproduction."""
    means = _means(internal_sweep, "seconds")
    assert means["MG"] < 0.85


@pytest.mark.benchmark(group="artifacts")
def test_table1_regenerate(benchmark, internal_sweep, results_dir):
    """Regenerate and print the Table I artifact under any bench mode."""
    rep = benchmark.pedantic(
        lambda: run_table1_geomeans(internal_sweep),
        iterations=1,
        rounds=1,
    )
    rep.write(results_dir)
    print()
    print(rep.text)
