"""Kernel benchmark-regression harness.

Times the partitioner's hot kernels on collection matrices, against the
frozen *seed* implementations in ``_baseline_kernels.py``:

``fm_pass``
    One FM pass on the medium-grain hypergraph — seed closure-based loop
    vs. the ``repro.kernels`` backend with its reusable pass state.
``matching``
    One greedy matching sweep — seed convert-per-call loop vs. the
    backend sweep on cached mirrors.
``contraction``
    Identical-net merging on a duplicate-heavy net list — seed per-net
    ``tobytes()`` hashing vs. the vectorized group-by-size merge.
``medium_grain_build``
    The derived structures FM needs on a fresh medium-grain hypergraph
    (transpose, gain bound, net ids) — seed per-site ``np.repeat``
    expansions vs. the shared ``Hypergraph.net_ids()`` cache.

Usage::

    python -m benchmarks.bench_regress              # write BENCH_kernels.json
    python -m benchmarks.bench_regress --check      # compare vs. committed
    make bench-regress                              # the --check mode

The default run writes ``BENCH_kernels.json`` at the repository root —
the perf trajectory artifact tracked in git.  ``--check`` re-times the
"after" side and exits non-zero when any kernel regressed more than
``--tolerance`` (default 25%) against the committed file; it is also
exposed as the opt-in ``bench`` pytest marker (deselected by default so
tier-1 stays fast).

Every timed pair is verified to produce identical results before the
numbers are trusted; a benchmark that drifts behaviourally fails loudly.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from benchmarks._baseline_kernels import (
    baseline_derived_structures,
    baseline_fm_pass,
    baseline_hot_lists,
    baseline_match_vertices,
    baseline_merge_identical,
)
from repro.core.medium_grain import build_medium_grain
from repro.core.split import initial_split
from repro.hypergraph.models import row_net_model
from repro.kernels import BACKEND_CHOICES, numba_available, resolve_backend
from repro.kernels.python_backend import merge_identical_nets
from repro.partitioner.coarsen import match_vertices
from repro.partitioner.config import get_config
from repro.sparse.collection import load_instance

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_kernels.json"
DEFAULT_MATRICES = ("sqr_cl_m", "sym_grid2d_m", "rec_bp_med")
KERNELS = ("fm_pass", "matching", "contraction", "medium_grain_build")
SEED = 2014


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock seconds of ``repeats`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _balanced_parts(nverts: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    parts = np.zeros(nverts, dtype=np.int64)
    parts[rng.permutation(nverts)[: nverts // 2]] = 1
    return parts


def _medium_grain_hypergraph(matrix):
    split = initial_split(matrix, seed=SEED)
    return build_medium_grain(split).hypergraph


def bench_fm_pass(matrix, backend, repeats: int, after_only: bool = False) -> dict:
    """Seed FM pass vs. backend FM pass on the medium-grain hypergraph."""
    h = _medium_grain_hypergraph(matrix)
    cfg = get_config("mondriaan")
    parts0 = _balanced_parts(h.nverts, SEED)
    cap = int(1.03 * h.total_weight() / 2) + 1
    maxw = (cap, cap)
    lists = baseline_hot_lists(h)  # seed cached these per hypergraph too
    state = backend.fm_state(h)

    def run_before():
        return baseline_fm_pass(
            h, lists, parts0.copy(), maxw, cfg, np.random.default_rng(7)
        )

    def run_after():
        return backend.fm_pass(
            state, parts0.copy(), maxw, cfg, np.random.default_rng(7)
        )

    d_before = run_before()
    d_after = run_after()  # also JIT-warms the numba backend
    if d_before != (int(d_after[0]), bool(d_after[1])):
        raise AssertionError(
            f"fm_pass drift: baseline {d_before} != backend {d_after}"
        )
    out = {"after_s": _best_of(repeats, run_after)}
    if not after_only:
        out["before_s"] = _best_of(repeats, run_before)
    return out


def bench_matching(matrix, backend, repeats: int, after_only: bool = False) -> dict:
    """Seed matching sweep vs. backend sweep (same RNG per run)."""
    h = _medium_grain_hypergraph(matrix)
    cfg = get_config("mondriaan")
    cap = max(1, int(0.35 * h.total_weight() / 2))
    backend.fm_state(h).list_mirrors()  # warm, like repeated coarsening

    def run_before():
        return baseline_match_vertices(
            h, cfg, np.random.default_rng(9), cap
        )

    def run_after():
        return match_vertices(
            h, cfg, np.random.default_rng(9), cap, backend=backend
        )

    if run_before().tolist() != run_after().tolist():
        raise AssertionError("matching drift between baseline and backend")
    out = {"after_s": _best_of(repeats, run_after)}
    if not after_only:
        out["before_s"] = _best_of(repeats, run_before)
    return out


def bench_contraction(matrix, backend, repeats: int, after_only: bool = False) -> dict:
    """Identical-net merge on a duplicate-heavy net list.

    The rows of the row-net model are tiled four times, mimicking the
    coarse levels where contraction maps many fine nets onto the same
    pin set (the case ``merge_identical_nets`` exists for).
    """
    h = row_net_model(matrix).hypergraph
    tile = 4
    sizes = np.diff(h.xpins)
    xpins = np.zeros(tile * h.nnets + 1, dtype=np.int64)
    np.cumsum(np.tile(sizes, tile), out=xpins[1:])
    # Sort pins within each net (merge precondition, as after contract).
    row_sorted = np.concatenate(
        [np.sort(h.pins[h.xpins[n] : h.xpins[n + 1]]) for n in range(h.nnets)]
    ) if h.npins else np.empty(0, dtype=np.int64)
    pins = np.tile(row_sorted, tile)
    ncost = np.ones(tile * h.nnets, dtype=np.int64)

    def run_before():
        return baseline_merge_identical(xpins, pins, ncost)

    def run_after():
        return backend.merge_identical(xpins, pins, ncost)

    rb, ra = run_before(), run_after()
    for got, want in zip(ra, rb):
        if got.tolist() != want.tolist():
            raise AssertionError("contraction merge drift")
    out = {"after_s": _best_of(repeats, run_after)}
    if not after_only:
        out["before_s"] = _best_of(repeats, run_before)
    return out


def bench_medium_grain_build(matrix, backend, repeats: int, after_only: bool = False) -> dict:
    """Derived-structure build on fresh medium-grain hypergraphs.

    Times what the partitioner computes between building the model and
    the first FM pass — transpose, gain bound, net-id expansion — with
    the seed's independent ``np.repeat`` per consumer vs. the shared
    ``Hypergraph.net_ids()`` cache.  The model build itself is identical
    code on both sides and ~30x larger, so it is excluded: it would
    swamp the delta being tracked.  Hypergraphs are prebuilt outside the
    timer (one per run; the caches are per-instance).
    """
    split = initial_split(matrix, seed=SEED)

    def fresh():
        return build_medium_grain(split).hypergraph

    before_pool = [] if after_only else [fresh() for _ in range(repeats + 1)]
    after_pool = [fresh() for _ in range(repeats + 1)]

    def run_before():
        baseline_derived_structures(before_pool.pop())

    def run_after():
        h = after_pool.pop()
        h.xnets  # transpose via cached net_ids
        h.max_vertex_net_cost()
        h.net_ids()

    out = {"after_s": _best_of(repeats, run_after)}
    if not after_only:
        out["before_s"] = _best_of(repeats, run_before)
    return out


BENCH_FNS = {
    "fm_pass": bench_fm_pass,
    "matching": bench_matching,
    "contraction": bench_contraction,
    "medium_grain_build": bench_medium_grain_build,
}


def run_benchmarks(
    matrices=DEFAULT_MATRICES, repeats: int = 5, backend_spec: str = "auto"
) -> dict:
    """Time every kernel on every matrix; returns the report dict."""
    backend = resolve_backend(backend_spec)
    report = {
        "schema": 1,
        "backend": backend.name,
        "numba_available": numba_available(),
        "repeats": repeats,
        "matrices": {},
        "geomean_speedup": {},
    }
    for name in matrices:
        matrix = load_instance(name)
        entry = {}
        for kernel, fn in BENCH_FNS.items():
            timing = fn(matrix, backend, repeats)
            timing["speedup"] = round(
                timing["before_s"] / timing["after_s"], 3
            ) if timing["after_s"] > 0 else float("inf")
            timing["before_s"] = round(timing["before_s"], 6)
            timing["after_s"] = round(timing["after_s"], 6)
            entry[kernel] = timing
            print(
                f"  {name:14s} {kernel:18s} "
                f"before {timing['before_s'] * 1e3:9.3f} ms   "
                f"after {timing['after_s'] * 1e3:9.3f} ms   "
                f"x{timing['speedup']:.2f}"
            )
        report["matrices"][name] = entry
    for kernel in KERNELS:
        speedups = [
            report["matrices"][m][kernel]["speedup"] for m in matrices
        ]
        report["geomean_speedup"][kernel] = round(
            float(np.exp(np.mean(np.log(speedups)))), 3
        )
    return report


def check_regression(
    committed: dict, matrices, repeats: int, tolerance: float,
    backend_spec="auto", min_delta: float = 1e-4,
) -> int:
    """Re-time the *after* side and compare against the committed file.

    The seed baselines are not re-timed here (their numbers are never
    read in check mode).  A kernel counts as regressed only when it is
    both ``tolerance`` slower *relatively* and ``min_delta`` seconds
    slower *absolutely* — sub-millisecond kernels jitter by tens of
    microseconds on a loaded machine, which is scheduling noise, not a
    regression.  Returns a process exit code: 0 when every kernel is
    within budget, 1 otherwise.
    """
    backend = resolve_backend(backend_spec)
    failures = []
    for name in matrices:
        ref_entry = committed.get("matrices", {}).get(name)
        if ref_entry is None:
            print(f"  {name}: not in committed file, skipping")
            continue
        matrix = load_instance(name)
        for kernel, fn in BENCH_FNS.items():
            if kernel not in ref_entry:
                continue
            cur = fn(matrix, backend, repeats, after_only=True)["after_s"]
            ref = ref_entry[kernel]["after_s"]
            ratio = cur / ref if ref > 0 else 1.0
            regressed = ratio > 1.0 + tolerance and cur - ref > min_delta
            flag = "REGRESSION" if regressed else "ok"
            print(
                f"  {name:14s} {kernel:18s} committed {ref * 1e3:9.3f} ms  "
                f"current {cur * 1e3:9.3f} ms  x{ratio:5.2f}  {flag}"
            )
            if regressed:
                failures.append((name, kernel, ratio))
    if failures:
        print(
            f"\n{len(failures)} kernel timing(s) regressed more than "
            f"{tolerance:.0%}:"
        )
        for name, kernel, ratio in failures:
            print(f"  {name}/{kernel}: {ratio:.2f}x the committed time")
        return 1
    print("\nall kernels within tolerance")
    return 0


def main(argv=None) -> int:
    """CLI entry point; see the module docstring."""
    parser = argparse.ArgumentParser(
        prog="bench_regress",
        description="kernel benchmark-regression harness",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed JSON instead of rewriting it",
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument(
        "--matrices",
        default=",".join(DEFAULT_MATRICES),
        help="comma-separated collection instance names",
    )
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions (min is kept); default 7 "
                             "when writing, 5 in --check mode")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="--check relative failure threshold (fraction)")
    parser.add_argument("--min-delta", type=float, default=1e-4,
                        help="--check absolute floor in seconds: slower by "
                             "less than this is treated as timing noise")
    parser.add_argument("--backend", default=None,
                        choices=BACKEND_CHOICES,
                        help="kernel backend to time; in --check mode "
                             "defaults to the committed file's backend")
    args = parser.parse_args(argv)
    matrices = tuple(m for m in args.matrices.split(",") if m)
    out = Path(args.out)

    if args.check:
        if not out.exists():
            print(f"no committed benchmark file at {out}; "
                  f"run `python -m benchmarks.bench_regress` first")
            return 2
        committed = json.loads(out.read_text(encoding="utf-8"))
        # Timings are only comparable on the backend they were measured
        # with: default to it, and refuse a cross-backend comparison
        # (committed-python vs current-numba would mask real
        # regressions; the reverse would flag spurious ones).
        spec = args.backend if args.backend else committed.get(
            "backend", "auto"
        )
        resolved = resolve_backend(spec)
        if resolved.name != committed.get("backend", resolved.name):
            print(
                f"committed file was measured with backend "
                f"{committed.get('backend')!r} but {resolved.name!r} is "
                f"selected here; timings are not comparable — regenerate "
                f"with `python -m benchmarks.bench_regress "
                f"--backend {resolved.name}`"
            )
            return 2
        repeats = args.repeats if args.repeats is not None else 5
        print(f"checking against {out} (backend {resolved.name}, "
              f"tolerance {args.tolerance:.0%})")
        return check_regression(
            committed, matrices, repeats, args.tolerance, resolved,
            min_delta=args.min_delta,
        )

    repeats = args.repeats if args.repeats is not None else 7
    spec = args.backend if args.backend else "auto"
    print(f"timing kernels on {', '.join(matrices)} "
          f"(backend: {resolve_backend(spec).name}, "
          f"min of {repeats} runs)")
    report = run_benchmarks(matrices, repeats, spec)
    out.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"\ngeomean speedups: " + ", ".join(
        f"{k}: x{v}" for k, v in report["geomean_speedup"].items()
    ))
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
