"""Ablation — Algorithm-2 design choices, plus the hMetis comparator.

Quantifies the IR mechanisms the paper motivates but does not ablate:

* direction *alternation* (switch the Ar/Ac encoding on stagnation) vs a
  single fixed direction;
* the choice of starting direction (0 vs 1);
* Algorithm 2 vs the hMetis-style V-cycle refinement the paper contrasts
  it with (Section III-C) — multilevel restricted coarsening on the
  fine-grain hypergraph instead of single-level FM on the medium-grain
  re-encoding.

Each variant post-processes the same localbest bipartitionings (the
paper's "cheap post-processing for any method" use case).
"""

import numpy as np
import pytest

from repro.core.methods import bipartition
from repro.core.refine import iterative_refine, vcycle_refine_bipartition
from repro.core.volume import communication_volume
from repro.eval.geomean import normalized_geomeans
from repro.eval.report import markdown_table, write_csv
from repro.sparse.collection import build_collection, load_instance
from repro.utils.rng import spawn_seeds

from conftest import BENCH_SEED

VARIANTS = {
    "paper (alternate, dir 0)": dict(alternate=True, start_direction=0),
    "alternate, dir 1": dict(alternate=True, start_direction=1),
    "single dir 0": dict(alternate=False, start_direction=0),
    "single dir 1": dict(alternate=False, start_direction=1),
}


@pytest.fixture(scope="module")
def ablation_data(results_dir):
    entries = build_collection(tier="small") + build_collection(
        tier="medium"
    )
    seeds = spawn_seeds(BENCH_SEED + 1, 2)
    labels = ("unrefined",) + tuple(VARIANTS) + ("v-cycle (hMetis-style)",)
    values = {label: [] for label in labels}
    for entry in entries:
        matrix = load_instance(entry.name)
        base_runs = [
            bipartition(matrix, method="localbest", seed=s) for s in seeds
        ]
        values["unrefined"].append(
            float(np.mean([r.volume for r in base_runs]))
        )
        for label, kwargs in VARIANTS.items():
            vols = []
            for s, base in zip(seeds, base_runs):
                parts, _ = iterative_refine(
                    matrix, base.parts, eps=0.03, seed=s, **kwargs
                )
                vols.append(communication_volume(matrix, parts))
            values[label].append(float(np.mean(vols)))
        vols = []
        for s, base in zip(seeds, base_runs):
            parts, _ = vcycle_refine_bipartition(
                matrix, base.parts, eps=0.03, seed=s
            )
            vols.append(communication_volume(matrix, parts))
        values["v-cycle (hMetis-style)"].append(float(np.mean(vols)))
    values = {k: np.array(v) for k, v in values.items()}
    means, n = normalized_geomeans(values, "unrefined")
    rows = [["variant", "normalized_geomean_volume"]]
    rows += [[k, round(v, 4)] for k, v in means.items()]
    write_csv(results_dir / "ablation_refine.csv", rows[0], rows[1:])
    return means, n, rows


def test_refine_ablation_report(ablation_data):
    means, n, rows = ablation_data
    print()
    print(f"IR ablation over {n} matrices "
          "(post-processing localbest, volume geomean vs unrefined):")
    print(markdown_table(rows[0], rows[1:]))


def test_ir_reduces_volume_substantially(ablation_data):
    """Paper: IR yields roughly 20% lower volume; demand >= 5% on the
    synthetic collection."""
    means, _, _ = ablation_data
    assert means["paper (alternate, dir 0)"] <= 0.95


def test_alternation_beats_single_direction(ablation_data):
    """Alternating directions dominates each single-direction variant
    (it continues exactly where the single-direction run stops)."""
    means, _, _ = ablation_data
    assert means["paper (alternate, dir 0)"] <= means["single dir 0"] + 1e-9
    assert means["alternate, dir 1"] <= means["single dir 1"] + 1e-9


def test_start_direction_is_minor(ablation_data):
    """The starting direction should not matter much (< 5% geomean gap)."""
    means, _, _ = ablation_data
    a = means["paper (alternate, dir 0)"]
    b = means["alternate, dir 1"]
    assert abs(a - b) < 0.05


def test_vcycle_also_refines(ablation_data):
    """The hMetis-style comparator must also reduce volume (it is a valid
    monotone refiner) — the interesting quantity is the gap to IR, which
    the report table shows."""
    means, _, _ = ablation_data
    assert means["v-cycle (hMetis-style)"] <= 1.0


@pytest.mark.benchmark(group="artifacts")
def test_refine_ablation_regenerate(benchmark, ablation_data):
    """Print the ablation table under any bench mode."""
    means, n, rows = ablation_data
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(f"IR ablation over {n} matrices:")
    print(markdown_table(rows[0], rows[1:]))


@pytest.mark.benchmark(group="refine")
def test_ir_kernel(benchmark):
    """Time one full IR convergence on a medium localbest partitioning."""
    matrix = load_instance("sym_cl_m")
    base = bipartition(matrix, method="localbest", seed=4)

    def run():
        return iterative_refine(matrix, base.parts, eps=0.03, seed=4)

    parts, trace = benchmark(run)
    assert trace.final_volume <= base.volume
