"""Frozen *seed* implementations of the kernel hot loops.

These are verbatim copies (modulo plumbing) of the pre-``repro.kernels``
code: the closure-based FM pass, the convert-per-call matching sweep, the
per-net ``tobytes()`` identical-net merge, and the independent
``np.repeat`` net-id expansions.  They exist solely as the **before**
side of ``bench_regress.py`` so the perf trajectory in
``BENCH_kernels.json`` measures real, reproducible deltas against the
seed — do not use them from library code, and do not "fix" them: their
slowness is the point.
"""

from __future__ import annotations

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph

__all__ = [
    "BaselineGainBuckets",
    "baseline_hot_lists",
    "baseline_fm_pass",
    "baseline_match_vertices",
    "baseline_merge_identical",
    "baseline_derived_structures",
]


class BaselineGainBuckets:
    """Seed gain buckets: ``best_movable`` takes a predicate closure."""

    __slots__ = ("nverts", "offset", "nbuckets", "head", "nxt", "prv",
                 "gain", "inside", "maxptr")

    def __init__(self, nverts: int, max_gain: int) -> None:
        self.nverts = nverts
        self.offset = max_gain
        self.nbuckets = 2 * max_gain + 1
        self.head = [[-1] * self.nbuckets, [-1] * self.nbuckets]
        self.nxt = [-1] * nverts
        self.prv = [-1] * nverts
        self.gain = [0] * nverts
        self.inside = [False] * nverts
        self.maxptr = [-1, -1]

    def insert(self, v: int, side: int, gain: int) -> None:
        b = gain + self.offset
        head = self.head[side]
        first = head[b]
        self.nxt[v] = first
        self.prv[v] = -1
        if first != -1:
            self.prv[first] = v
        head[b] = v
        self.gain[v] = gain
        self.inside[v] = True
        if b > self.maxptr[side]:
            self.maxptr[side] = b

    def remove(self, v: int, side: int) -> None:
        if not self.inside[v]:
            return
        p, n = self.prv[v], self.nxt[v]
        if p != -1:
            self.nxt[p] = n
        else:
            self.head[side][self.gain[v] + self.offset] = n
        if n != -1:
            self.prv[n] = p
        self.inside[v] = False

    def adjust(self, v: int, side: int, delta: int) -> None:
        if not self.inside[v]:
            return
        g = self.gain[v] + delta
        self.remove(v, side)
        self.insert(v, side, g)

    def best_movable(self, side: int, movable) -> int:
        head = self.head[side]
        b = self.maxptr[side]
        while b >= 0:
            v = head[b]
            if v == -1:
                self.maxptr[side] = b - 1
                b -= 1
                continue
            while v != -1:
                if movable(v):
                    return v
                v = self.nxt[v]
            b -= 1
        return -1


def baseline_hot_lists(h: Hypergraph) -> dict:
    """Seed ``_hot_lists``: list mirrors + per-site ``np.repeat``."""
    return {
        "xpins": h.xpins.tolist(),
        "pins": h.pins.tolist(),
        "xnets": h.xnets.tolist(),
        "vnets": h.vnets.tolist(),
        "cost": h.ncost.tolist(),
        "vwgt": h.vwgt.tolist(),
        "net_ids": np.repeat(
            np.arange(h.nnets, dtype=np.int64), h.net_sizes()
        ),
    }


def baseline_fm_pass(
    h: Hypergraph,
    lists: dict,
    parts: np.ndarray,
    maxw: tuple[int, int],
    cfg,
    rng: np.random.Generator,
) -> tuple[int, bool]:
    """The seed ``_fm_pass``: closure-based scans, method-call updates."""
    nverts = h.nverts
    if nverts == 0:
        return 0, True
    xpins_l: list = lists["xpins"]
    pins_l: list = lists["pins"]
    xnets_l: list = lists["xnets"]
    vnets_l: list = lists["vnets"]
    cost_l: list = lists["cost"]
    vw_l: list = lists["vwgt"]
    net_ids: np.ndarray = lists["net_ids"]

    pin_parts = parts[h.pins]
    pc1_np = np.zeros(h.nnets, dtype=np.int64)
    np.add.at(pc1_np, net_ids, pin_parts)
    sizes = h.net_sizes()
    pc0_np = sizes - pc1_np
    own = np.where(pin_parts == 0, pc0_np[net_ids], pc1_np[net_ids])
    other = np.where(pin_parts == 0, pc1_np[net_ids], pc0_np[net_ids])
    contrib = h.ncost[net_ids] * (
        (own == 1).astype(np.int64) - (other == 0).astype(np.int64)
    )
    gain_np = np.zeros(nverts, dtype=np.int64)
    np.add.at(gain_np, h.pins, contrib)

    max_gain = h.max_vertex_net_cost()
    buckets = BaselineGainBuckets(nverts, max_gain)
    bgain = buckets.gain
    for v, g in enumerate(gain_np.tolist()):
        bgain[v] = g

    insert_order = rng.permutation(nverts)
    if cfg.boundary_only:
        cut_net = (pc0_np > 0) & (pc1_np > 0)
        boundary = np.zeros(nverts, dtype=bool)
        boundary_flags = cut_net[net_ids]
        np.logical_or.at(boundary, h.pins, boundary_flags)
        insert_mask = boundary
    else:
        insert_mask = np.ones(nverts, dtype=bool)

    parts_l = parts.tolist()
    pc0 = pc0_np.tolist()
    pc1 = pc1_np.tolist()
    locked = [False] * nverts
    w1 = int(np.dot(parts, h.vwgt))
    weights = [h.total_weight() - w1, w1]
    maxw0, maxw1 = maxw
    slack = int(h.vwgt.max(initial=0))

    for v in insert_order.tolist():
        if insert_mask[v]:
            buckets.insert(v, parts_l[v], bgain[v])

    def balance_metric() -> float:
        return max(
            weights[0] / maxw0 if maxw0 else float(weights[0] > 0),
            weights[1] / maxw1 if maxw1 else float(weights[1] > 0),
        )

    initially_feasible = weights[0] <= maxw0 and weights[1] <= maxw1
    best_feasible = initially_feasible
    best_cum = 0
    best_len = 0
    best_metric = balance_metric()
    cum = 0
    moved: list[int] = []
    stall = 0
    stall_limit = max(32, int(cfg.fm_early_exit_frac * nverts))

    inside = buckets.inside

    def gain_touch(u: int, delta: int) -> None:
        if inside[u]:
            buckets.adjust(u, parts_l[u], delta)
        else:
            bgain[u] += delta
            if not locked[u]:
                buckets.insert(u, parts_l[u], bgain[u])

    while True:
        overweight0 = weights[0] > maxw0
        overweight1 = weights[1] > maxw1
        best_v = -1
        best_side = -1
        best_g = None
        for s in (0, 1):
            if overweight0 and s != 0:
                continue
            if overweight1 and s != 1:
                continue
            t = 1 - s
            cap = maxw1 if t == 1 else maxw0
            room = cap + slack - weights[t]
            v = buckets.best_movable(s, lambda u: vw_l[u] <= room)
            if v == -1:
                continue
            g = bgain[v]
            if (
                best_v == -1
                or g > best_g
                or (g == best_g and weights[s] > weights[best_side])
            ):
                best_v, best_side, best_g = v, s, g
        if best_v == -1:
            break

        v, s = best_v, best_side
        t = 1 - s
        buckets.remove(v, s)
        locked[v] = True

        for idx in range(xnets_l[v], xnets_l[v + 1]):
            n = vnets_l[idx]
            c = cost_l[n]
            if c == 0:
                continue
            p0, p1 = xpins_l[n], xpins_l[n + 1]
            pcT = pc1[n] if t == 1 else pc0[n]
            if pcT == 0:
                for k in range(p0, p1):
                    u = pins_l[k]
                    if not locked[u]:
                        gain_touch(u, c)
            elif pcT == 1:
                for k in range(p0, p1):
                    u = pins_l[k]
                    if parts_l[u] == t:
                        if not locked[u]:
                            gain_touch(u, -c)
                        break
            if s == 0:
                pc0[n] -= 1
                pc1[n] += 1
                pcF = pc0[n]
            else:
                pc1[n] -= 1
                pc0[n] += 1
                pcF = pc1[n]
            if pcF == 0:
                for k in range(p0, p1):
                    u = pins_l[k]
                    if not locked[u]:
                        gain_touch(u, -c)
            elif pcF == 1:
                for k in range(p0, p1):
                    u = pins_l[k]
                    if u != v and parts_l[u] == s:
                        if not locked[u]:
                            gain_touch(u, c)
                        break

        parts_l[v] = t
        weights[s] -= vw_l[v]
        weights[t] += vw_l[v]
        cum += best_g
        moved.append(v)

        feasible_now = weights[0] <= maxw0 and weights[1] <= maxw1
        improved = False
        if feasible_now:
            metric = balance_metric()
            if (
                not best_feasible
                or cum > best_cum
                or (cum == best_cum and metric < best_metric)
            ):
                best_feasible = True
                best_cum = cum
                best_len = len(moved)
                best_metric = metric
                improved = True
        if improved:
            stall = 0
        else:
            stall += 1
            if stall > stall_limit and best_feasible:
                break

    for v in moved[best_len:]:
        parts_l[v] = 1 - parts_l[v]
    parts[:] = parts_l

    if not best_feasible:
        return 0, False
    return best_cum, True


def baseline_match_vertices(
    h: Hypergraph,
    config,
    rng: np.random.Generator,
    max_cluster_weight: int,
    restrict_parts: np.ndarray | None = None,
) -> np.ndarray:
    """Seed ``match_vertices``: converts every array per call."""
    nverts = h.nverts
    match = [-1] * nverts
    if nverts == 0 or h.npins == 0:
        return np.full(nverts, -1, dtype=np.int64)
    parts_l = (
        restrict_parts.tolist() if restrict_parts is not None else None
    )

    xpins_l = h.xpins.tolist()
    pins_l = h.pins.tolist()
    xnets_l = h.xnets.tolist()
    vnets_l = h.vnets.tolist()
    cost_l = h.ncost.tolist()
    vw_l = h.vwgt.tolist()
    sizes_l = h.net_sizes().tolist()
    absorption = config.matching == "absorption"
    max_net = config.max_net_size_matching

    score = [0.0] * nverts
    for v in rng.permutation(nverts).tolist():
        if match[v] != -1:
            continue
        wv = vw_l[v]
        touched: list[int] = []
        for i in range(xnets_l[v], xnets_l[v + 1]):
            n = vnets_l[i]
            sz = sizes_l[n]
            if sz < 2 or sz > max_net:
                continue
            c = cost_l[n]
            if c == 0:
                continue
            w = c / (sz - 1) if absorption else float(c)
            for k in range(xpins_l[n], xpins_l[n + 1]):
                u = pins_l[k]
                if u == v or match[u] != -1:
                    continue
                if parts_l is not None and parts_l[u] != parts_l[v]:
                    continue
                if wv + vw_l[u] > max_cluster_weight:
                    continue
                if score[u] == 0.0:
                    touched.append(u)
                score[u] += w
        if touched:
            best_u = -1
            best_s = 0.0
            for u in touched:
                s = score[u]
                if s > best_s or (
                    s == best_s and best_u != -1 and vw_l[u] < vw_l[best_u]
                ):
                    best_u, best_s = u, s
                score[u] = 0.0
            if best_u != -1:
                match[v] = best_u
                match[best_u] = v
    return np.asarray(match, dtype=np.int64)


def baseline_merge_identical(
    xpins: np.ndarray, pins: np.ndarray, ncost: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Seed ``_merge_identical``: per-net ``tobytes()`` hashing loop."""
    nnets = xpins.size - 1
    groups: dict[bytes, int] = {}
    rep_of = np.empty(nnets, dtype=np.int64)
    starts = xpins[:-1].tolist()
    ends = xpins[1:].tolist()
    for n in range(nnets):
        key = pins[starts[n] : ends[n]].tobytes()
        rep = groups.setdefault(key, n)
        rep_of[n] = rep
    reps = np.unique(rep_of)
    if reps.size == nnets:
        return xpins, pins, ncost
    merged_cost = np.zeros(nnets, dtype=np.int64)
    np.add.at(merged_cost, rep_of, ncost)
    sizes = np.diff(xpins)[reps]
    new_xpins = np.zeros(reps.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=new_xpins[1:])
    chunks = [pins[xpins[r] : xpins[r + 1]] for r in reps.tolist()]
    new_pins = (
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    )
    return new_xpins, new_pins, merged_cost[reps]


def baseline_derived_structures(h: Hypergraph) -> int:
    """Seed-style derived-structure build: independent ``np.repeat`` per
    consumer (transpose, gain bound, FM net-id mirror), as the four call
    sites did before ``Hypergraph.net_ids()`` existed."""
    # Transpose (seed _build_transpose).
    deg = np.bincount(h.pins, minlength=h.nverts)
    xnets = np.zeros(h.nverts + 1, dtype=np.int64)
    np.cumsum(deg, out=xnets[1:])
    net_ids = np.repeat(np.arange(h.nnets, dtype=np.int64), h.net_sizes())
    order = np.argsort(h.pins, kind="stable")
    vnets = net_ids[order]
    # Gain bound (seed max_vertex_net_cost).
    costs = np.repeat(h.ncost, h.net_sizes())
    tot = np.zeros(h.nverts, dtype=np.int64)
    np.add.at(tot, h.pins, costs)
    # FM net-id mirror (seed _hot_lists).
    net_ids2 = np.repeat(np.arange(h.nnets, dtype=np.int64), h.net_sizes())
    return int(vnets.size + tot.max(initial=0) + net_ids2.size)
