"""Extension — the full iterative method of the paper's Section V.

The paper sketches a method where each iteration performs a *complete*
multilevel medium-grain partitioning seeded by the previous result,
"trad[ing] computation time for solution quality, by using more or less
iterations".  This bench realizes the sketch: it sweeps the iteration
count over a collection subset and reports the quality/time trade-off
against the paper's MG+IR configuration.
"""

import numpy as np
import pytest

from repro.core.iterate import full_iterative_bipartition
from repro.core.methods import bipartition
from repro.eval.geomean import normalized_geomeans
from repro.eval.report import markdown_table, write_csv
from repro.sparse.collection import build_collection, load_instance
from repro.utils.rng import spawn_seeds

from conftest import BENCH_SEED

ITERATION_SWEEP = (0, 2, 4, 8)


@pytest.fixture(scope="module")
def sweep_data(results_dir):
    entries = build_collection(tier="small") + build_collection(
        tier="medium"
    )[:10]
    seeds = spawn_seeds(BENCH_SEED + 2, 2)
    vol = {"MG+IR": []}
    tim = {"MG+IR": []}
    for k in ITERATION_SWEEP:
        vol[f"full-it({k})"] = []
        tim[f"full-it({k})"] = []
    for entry in entries:
        matrix = load_instance(entry.name)
        runs = [
            bipartition(
                matrix, method="mediumgrain", refine=True, seed=s
            )
            for s in seeds
        ]
        vol["MG+IR"].append(float(np.mean([r.volume for r in runs])))
        tim["MG+IR"].append(float(np.mean([r.seconds for r in runs])))
        for k in ITERATION_SWEEP:
            results = [
                full_iterative_bipartition(matrix, iterations=k, seed=s)
                for s in seeds
            ]
            vol[f"full-it({k})"].append(
                float(np.mean([r.volume for r in results]))
            )
            tim[f"full-it({k})"].append(
                float(np.mean([r.seconds for r in results]))
            )
    vol = {k: np.array(v) for k, v in vol.items()}
    tim = {k: np.array(v) for k, v in tim.items()}
    vmeans, n = normalized_geomeans(vol, "MG+IR")
    tmeans, _ = normalized_geomeans(tim, "MG+IR")
    rows = [["variant", "volume_geomean", "time_geomean"]]
    for label in vol:
        rows.append(
            [label, round(vmeans[label], 4), round(tmeans[label], 4)]
        )
    write_csv(results_dir / "ext_full_iterative.csv", rows[0], rows[1:])
    return vmeans, tmeans, n, rows


def test_full_iterative_report(sweep_data):
    vmeans, tmeans, n, rows = sweep_data
    print()
    print(f"Full iterative method over {n} matrices "
          "(geomeans vs MG+IR = 1.00):")
    print(markdown_table(rows[0], rows[1:]))


def test_quality_monotone_in_iterations(sweep_data):
    """More iterations never hurt the volume geomean (keep-best)."""
    vmeans, _, _, _ = sweep_data
    values = [vmeans[f"full-it({k})"] for k in ITERATION_SWEEP]
    assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))


def test_iterations_buy_quality_over_mg_ir(sweep_data):
    """At the largest iteration budget the method beats plain MG+IR."""
    vmeans, _, _, _ = sweep_data
    assert vmeans[f"full-it({ITERATION_SWEEP[-1]})"] < 1.0


def test_time_scales_with_iterations(sweep_data):
    """The trade-off's cost side: more iterations cost more time."""
    _, tmeans, _, _ = sweep_data
    assert tmeans[f"full-it({ITERATION_SWEEP[-1]})"] > tmeans["full-it(0)"]


@pytest.mark.benchmark(group="artifacts")
def test_full_iterative_regenerate(benchmark, sweep_data):
    vmeans, tmeans, n, rows = sweep_data
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    print()
    print(f"Full iterative method over {n} matrices:")
    print(markdown_table(rows[0], rows[1:]))
