"""Serving-tier benchmark: cache speedup and saturation under faults.

Where ``bench_e2e`` times the batch pipeline, this times the *daemon*
(:mod:`repro.serve`) as a black box over HTTP, the way a caller sees it.
Every stage drives a real ``repro-partition serve`` subprocess via
:func:`repro.serve.testing.start_daemon`.

Three gated stages:

``cache``
    Each request key is submitted cold (computed) and then warm (served
    from the content-addressed partition cache).  The gate is the point
    of memoizing at all: the median warm latency must be at least
    **20x** faster than the median cold latency, and every warm answer
    must be bit-identical to its cold twin.
``saturation``
    A thread fleet saturates the admission lanes twice with identical
    workloads: once fault-free, once with a **10% injected worker-crash
    rate** (real SIGKILLs via :mod:`repro.utils.faults`, absorbed by the
    daemon's retry machinery).  The gate is graceful degradation: the
    faulted p99 latency must stay within **3x** of the fault-free p99,
    with every completed answer bit-identical across the two runs.
``deadline``
    The same workload twice more: once unconstrained (the quality
    baseline), once under a deliberately tight per-request soft
    deadline (a quarter of the baseline median latency).  The gate is
    the anytime contract: at least **95%** of the deadline-constrained
    requests must answer 200 — degraded 200s count, that is the point —
    and every request that *didn't* degrade must be bit-identical to
    its unconstrained baseline twin.

Latencies are wall-clock per request as measured by the client,
including HTTP framing — the serving contract, not the kernel time.

Usage::

    python -m benchmarks.bench_serve             # write BENCH_serve.json
    python -m benchmarks.bench_serve --check     # re-run, enforce gates
    python -m benchmarks.bench_serve --smoke     # CI smoke (no timings)
    make bench-serve                             # the --check mode
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.errors import ServeError
from repro.serve.client import DegradedResult
from repro.serve.protocol import DEFAULT_SEED
from repro.serve.testing import start_daemon
from repro.utils import faults
from repro.utils.rng import spawn_seeds

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"
BASE_SEED = 2014

#: Large enough that one request is real work (the cache stage's cold
#: side and the saturation stage's service time), small enough that the
#: whole benchmark stays in CI territory.
INSTANCE = "sym_grid2d_m"
NPARTS = 4

#: Gates (mirrored into the report so the JSON is self-describing).
GATE_CACHE_SPEEDUP = 20.0
GATE_FAULT_P99_RATIO = 3.0
GATE_DEADLINE_200_RATE = 0.95
CRASH_RATE = 0.1

#: Deadline stage: the soft deadline is this fraction of the baseline
#: median latency, floored so HTTP framing alone can't expire it.
DEADLINE_FRACTION = 0.25
DEADLINE_FLOOR_S = 0.05


def _p99(latencies: list[float]) -> float:
    ordered = sorted(latencies)
    index = max(0, int(round(0.99 * len(ordered))) - 1)
    return ordered[index]


def _ms(seconds: float) -> float:
    return round(seconds * 1000.0, 3)


# --------------------------------------------------------------------- #
# Stage 1: cold vs cached latency
# --------------------------------------------------------------------- #
def bench_cache(tmp_path: Path, keys: int, jobs: int) -> dict:
    """Cold-vs-warm latency over ``keys`` distinct request keys."""
    handle = start_daemon(
        tmp_path, "--jobs", str(jobs),
        "--cache", str(tmp_path / "bench.cache"),
    )
    try:
        client = handle.client()
        seeds = spawn_seeds(BASE_SEED, keys)
        cold, warm = [], []
        for seed in seeds:
            t0 = time.perf_counter()
            first = client.partition(
                instance=INSTANCE, nparts=NPARTS, seed=seed
            )
            cold.append(time.perf_counter() - t0)
            if first["cached"]:
                raise AssertionError(f"seed {seed}: first request was warm")
            t0 = time.perf_counter()
            again = client.partition(
                instance=INSTANCE, nparts=NPARTS, seed=seed
            )
            warm.append(time.perf_counter() - t0)
            if not again["cached"]:
                raise AssertionError(f"seed {seed}: resubmission missed")
            if again["parts"] != first["parts"]:
                raise AssertionError(
                    f"seed {seed}: cached partition differs from computed"
                )
        median_cold = statistics.median(cold)
        median_warm = statistics.median(warm)
        return {
            "instance": INSTANCE,
            "nparts": NPARTS,
            "keys": keys,
            "cold_ms": [_ms(t) for t in cold],
            "warm_ms": [_ms(t) for t in warm],
            "median_cold_ms": _ms(median_cold),
            "median_warm_ms": _ms(median_warm),
            "speedup_cache": round(median_cold / median_warm, 2),
            "bit_identical": True,
            "gate_min_speedup": GATE_CACHE_SPEEDUP,
        }
    finally:
        handle.kill()


# --------------------------------------------------------------------- #
# Stage 2: saturation, fault-free vs 10% worker crashes
# --------------------------------------------------------------------- #
def _saturate(
    tmp_path: Path, seeds: list[int], jobs: int, env: dict | None,
    timeout: float | None = None,
) -> dict:
    """One saturation run; returns per-seed latencies and volumes.

    A non-``None`` ``timeout`` rides along on every request as its soft
    anytime deadline; degraded 200s are counted (and listed by seed)
    separately from full-quality answers.
    """
    handle = start_daemon(
        tmp_path, "--jobs", str(jobs), "--retries", "3", env=env,
    )
    try:
        extra = {} if timeout is None else {"timeout": timeout}

        def submit(seed: int):
            client = handle.client()
            t0 = time.perf_counter()
            try:
                result = client.partition(
                    instance=INSTANCE, nparts=NPARTS, seed=seed,
                    include_parts=False, **extra,
                )
            except ServeError as exc:
                return seed, time.perf_counter() - t0, None, type(exc).__name__
            # Degraded[...] briefs mean "deadline cut", not "fault
            # recovered" — keep the two stories apart.
            recovered = any(
                not b.startswith("Degraded") for b in result["failures"]
            )
            return seed, time.perf_counter() - t0, result, recovered

        with ThreadPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(submit, seeds))
        if not handle.alive():
            raise AssertionError("daemon died during the saturation run")
        served = [(s, t, r, f) for s, t, r, f in outcomes if r is not None]
        latencies = [t for _, t, _, _ in served]
        degraded = [s for s, _, r, _ in served if isinstance(r, DegradedResult)]
        return {
            "requests": len(seeds),
            "served": len(served),
            "failed": len(seeds) - len(served),
            "recovered": sum(1 for _, _, _, f in served if f is True),
            "degraded": len(degraded),
            "degraded_seeds": [str(s) for s in degraded],
            "volumes": {str(s): r["volume"] for s, _, r, _ in served},
            "latencies_ms": [_ms(t) for t in latencies],
            "p50_ms": _ms(statistics.median(latencies)),
            "p99_ms": _ms(_p99(latencies)),
        }
    finally:
        handle.kill()


def bench_saturation(tmp_path: Path, requests: int, jobs: int) -> dict:
    """The same saturating workload, fault-free and under crash faults."""
    seeds = spawn_seeds(BASE_SEED + 1, requests)
    fault_free = _saturate(tmp_path, seeds, jobs, env=None)
    if fault_free["failed"]:
        raise AssertionError("fault-free saturation run dropped requests")

    plan = faults.plan_to_env([
        faults.FaultRule(
            point="executor.task", kind="crash", hits=(),
            rate=CRASH_RATE, seed=BASE_SEED, scope="worker",
        )
    ])
    faulted = _saturate(tmp_path, seeds, jobs, env={"REPRO_FAULTS": plan})

    # Completed answers must be bit-identical across the two runs: a
    # crash the daemon absorbed is invisible in the result.
    for seed, volume in faulted["volumes"].items():
        if fault_free["volumes"][seed] != volume:
            raise AssertionError(
                f"seed {seed}: faulted volume {volume} != fault-free "
                f"{fault_free['volumes'][seed]}"
            )
    return {
        "instance": INSTANCE,
        "nparts": NPARTS,
        "threads": 4,
        "crash_rate": CRASH_RATE,
        "fault_free": fault_free,
        "faulted": faulted,
        "p99_ratio": round(faulted["p99_ms"] / fault_free["p99_ms"], 2),
        "bit_identical": True,
        "gate_max_p99_ratio": GATE_FAULT_P99_RATIO,
    }


# --------------------------------------------------------------------- #
# Stage 3: anytime deadlines — degraded 200s, never wrong answers
# --------------------------------------------------------------------- #
def bench_deadline(tmp_path: Path, requests: int, jobs: int) -> dict:
    """The same workload unconstrained, then under a tight soft deadline.

    The constrained run must keep answering 200 (degraded counts), and
    any request that *didn't* degrade must be bit-identical to its
    unconstrained twin — the deadline may cost quality, never
    correctness.
    """
    seeds = spawn_seeds(BASE_SEED + 2, requests)
    baseline = _saturate(tmp_path, seeds, jobs, env=None)
    if baseline["failed"]:
        raise AssertionError("baseline deadline run dropped requests")
    if baseline["degraded"]:
        raise AssertionError("baseline run degraded without a deadline")

    soft = max(DEADLINE_FLOOR_S, DEADLINE_FRACTION * baseline["p50_ms"] / 1e3)
    constrained = _saturate(tmp_path, seeds, jobs, env=None, timeout=soft)

    # Full-quality answers under the deadline are the *same* answers.
    degraded_seeds = set(constrained["degraded_seeds"])
    for seed, volume in constrained["volumes"].items():
        if seed in degraded_seeds:
            continue
        if baseline["volumes"][seed] != volume:
            raise AssertionError(
                f"seed {seed}: non-degraded volume {volume} != baseline "
                f"{baseline['volumes'][seed]}"
            )
    return {
        "instance": INSTANCE,
        "nparts": NPARTS,
        "threads": 4,
        "soft_deadline_ms": _ms(soft),
        "baseline": baseline,
        "constrained": constrained,
        "rate_200": round(constrained["served"] / constrained["requests"], 4),
        "degraded_200s": constrained["degraded"],
        "bit_identical_full_quality": True,
        "gate_min_200_rate": GATE_DEADLINE_200_RATE,
    }


def enforce_gates(report: dict) -> int:
    """Print and enforce the serving gates; returns failure count."""
    failures = 0
    speedup = report["cache"]["speedup_cache"]
    ok = speedup >= GATE_CACHE_SPEEDUP
    print(
        f"  gate cache-speedup : x{speedup:<8.2f} "
        f"(>= x{GATE_CACHE_SPEEDUP:.0f})  {'ok' if ok else 'FAIL'}"
    )
    failures += not ok
    ratio = report["saturation"]["p99_ratio"]
    ok = ratio <= GATE_FAULT_P99_RATIO
    print(
        f"  gate faulted-p99   : x{ratio:<8.2f} "
        f"(<= x{GATE_FAULT_P99_RATIO:.0f})  {'ok' if ok else 'FAIL'}"
    )
    failures += not ok
    dropped = report["saturation"]["faulted"]["failed"]
    ok = dropped <= 1
    print(
        f"  gate faulted-drops : {dropped} of "
        f"{report['saturation']['faulted']['requests']} "
        f"(<= 1)  {'ok' if ok else 'FAIL'}"
    )
    failures += not ok
    rate = report["deadline"]["rate_200"]
    ok = rate >= GATE_DEADLINE_200_RATE
    print(
        f"  gate deadline-200s : {rate:<8.0%} "
        f"(>= {GATE_DEADLINE_200_RATE:.0%}, "
        f"{report['deadline']['degraded_200s']} degraded)  "
        f"{'ok' if ok else 'FAIL'}"
    )
    failures += not ok
    return failures


def run_benchmarks(tmp_path: Path, keys: int, requests: int, jobs: int) -> dict:
    report = {
        "schema": 1,
        "base_seed": BASE_SEED,
        "jobs": jobs,
        "cache": bench_cache(tmp_path, keys, jobs),
        "saturation": bench_saturation(tmp_path, requests, jobs),
        "deadline": bench_deadline(tmp_path, requests, jobs),
    }
    cache = report["cache"]
    sat = report["saturation"]
    dl = report["deadline"]
    print(
        f"  cache      : cold {cache['median_cold_ms']:8.1f} ms   warm "
        f"{cache['median_warm_ms']:6.2f} ms   x{cache['speedup_cache']:.1f}"
    )
    print(
        f"  saturation : p99 fault-free {sat['fault_free']['p99_ms']:8.1f} ms"
        f"   faulted {sat['faulted']['p99_ms']:8.1f} ms   "
        f"x{sat['p99_ratio']:.2f}   "
        f"({sat['faulted']['recovered']} recovered crashes)"
    )
    print(
        f"  deadline   : soft {dl['soft_deadline_ms']:8.1f} ms   "
        f"200-rate {dl['rate_200']:.0%}   "
        f"({dl['degraded_200s']} of {dl['constrained']['requests']} degraded)"
    )
    return report


# --------------------------------------------------------------------- #
# CI smoke: both algorithms, cache hit, /metrics scrape, clean drain
# --------------------------------------------------------------------- #
def _scrape_metrics(port: int) -> dict[str, float]:
    """GET /metrics and parse the Prometheus text exposition format.

    Returns ``{sample_name_with_labels: value}``; raises
    ``AssertionError`` on any structural violation (a family without
    HELP/TYPE headers, a malformed sample line, a sample outside its
    family) — the smoke test's format gate.
    """
    import http.client
    import re

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        body = resp.read().decode("utf-8")
        if resp.status != 200:
            raise AssertionError(f"GET /metrics answered {resp.status}")
        ctype = resp.getheader("Content-Type", "")
        if not ctype.startswith("text/plain"):
            raise AssertionError(f"GET /metrics Content-Type: {ctype!r}")
    finally:
        conn.close()

    sample_re = re.compile(
        r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
        r'(?P<labels>\{[^}]*\})?'
        r' (?P<value>[0-9eE.+-]+|\+Inf|-Inf|NaN)$'
    )
    samples: dict[str, float] = {}
    family = None
    typed = set()
    for line in body.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            family = line.split(" ", 3)[2]
        elif line.startswith("# TYPE "):
            name, kind = line.split(" ", 3)[2:4]
            if name != family:
                raise AssertionError(f"TYPE {name} does not follow its HELP")
            if kind not in ("counter", "gauge", "histogram", "untyped"):
                raise AssertionError(f"unknown metric type {kind!r}")
            typed.add(name)
        else:
            m = sample_re.match(line)
            if m is None:
                raise AssertionError(f"malformed sample line: {line!r}")
            if family is None or not m.group("name").startswith(family):
                raise AssertionError(
                    f"sample {m.group('name')} outside family {family}"
                )
            samples[m.group("name") + (m.group("labels") or "")] = float(
                m.group("value").replace("+Inf", "inf")
            )
    if family is not None and not typed:
        raise AssertionError("exposition has HELP lines but no TYPE lines")
    return samples


def run_smoke(tmp_path: Path) -> int:
    """Boot a daemon, submit p in {2, 4} over both algorithms, verify a
    cache hit on resubmission, scrape and validate ``GET /metrics``,
    and drain it cleanly.  **No wall-clock gating** — this proves the
    serving plumbing on a cold CI runner."""
    failures = 0
    handle = start_daemon(
        tmp_path, "--cache", str(tmp_path / "smoke.cache"),
    )
    client = handle.client()
    for algo in ("recursive", "kway"):
        for nparts in (2, 4):
            first = client.partition(
                instance="sym_grid2d_s", nparts=nparts, algo=algo,
                seed=DEFAULT_SEED,
            )
            again = client.partition(
                instance="sym_grid2d_s", nparts=nparts, algo=algo,
                seed=DEFAULT_SEED,
            )
            ok = (
                not first["cached"] and again["cached"]
                and again["parts"] == first["parts"]
                and again["volume"] == first["volume"]
            )
            failures += not ok
            print(
                f"  {algo:10s} p={nparts}  volume={first['volume']:<6d} "
                f"cache-hit={'ok' if ok else 'MISMATCH'}"
            )
    try:
        samples = _scrape_metrics(handle.port)
    except AssertionError as exc:
        failures += 1
        print(f"  metrics: FAIL ({exc})")
    else:
        requests = samples.get(
            'repro_serve_events_total{event="requests"}', 0.0
        )
        served = samples.get('repro_serve_events_total{event="served"}', 0.0)
        lat_count = sum(
            v for k, v in samples.items()
            if k.startswith("repro_serve_request_seconds_count")
        )
        ok = requests >= 8 and served >= 8 and lat_count >= 8
        failures += not ok
        print(
            f"  metrics: {len(samples)} samples  "
            f"requests={requests:.0f} served={served:.0f} "
            f"latency-observations={lat_count:.0f} "
            f"{'ok' if ok else 'FAIL (expected >= 8 of each)'}"
        )
    stats = client.stats()
    rc = handle.terminate(timeout=60)
    ok = rc == 0
    failures += not ok
    print(
        f"  drain: exit {rc} {'ok' if ok else 'FAIL'}   "
        f"served={stats['served']} cache_hits={stats['cache']['hits']}"
    )
    print(f"\nserve smoke: {failures} failure(s)")
    return 1 if failures else 0


def main(argv=None) -> int:
    """CLI entry point; see the module docstring."""
    import tempfile

    parser = argparse.ArgumentParser(
        prog="bench_serve",
        description="serving-tier latency / saturation benchmark",
    )
    parser.add_argument("--check", action="store_true",
                        help="re-run and enforce the serving gates "
                             "without rewriting the committed JSON")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: both algorithms, cache hit on "
                             "resubmit, clean drain (no timings, no JSON)")
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument("--keys", type=int, default=5,
                        help="distinct request keys for the cache stage")
    parser.add_argument("--requests", type=int, default=24,
                        help="requests per saturation run")
    parser.add_argument("--jobs", type=int, default=2,
                        help="daemon worker-pool size")
    args = parser.parse_args(argv)
    out = Path(args.out)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        tmp_path = Path(tmp)
        if args.smoke:
            print("serving smoke (both algorithms, cache hit, drain)")
            return run_smoke(tmp_path)

        if args.check:
            # Serving latency is host-dependent; the committed file
            # records one trajectory point, the *gates* are the
            # contract — so --check re-measures and enforces them.
            keys = max(3, args.keys // 2)
            requests = max(12, args.requests // 2)
            print(
                f"checking the serving gates ({keys} keys, "
                f"{requests} requests per saturation run)"
            )
            report = run_benchmarks(tmp_path, keys, requests, args.jobs)
            if out.exists():
                committed = json.loads(out.read_text(encoding="utf-8"))
                print(
                    f"  committed  : cache x"
                    f"{committed['cache']['speedup_cache']:.1f}   "
                    f"faulted p99 x"
                    f"{committed['saturation']['p99_ratio']:.2f}"
                )
            failures = enforce_gates(report)
            if failures:
                print(f"\n{failures} serving gate(s) failed")
                return 1
            print("\nserving gates hold")
            return 0

        print(
            f"timing the serving tier on {INSTANCE} p={NPARTS} "
            f"({args.keys} cache keys, {args.requests} requests per "
            f"saturation run, jobs={args.jobs})"
        )
        report = run_benchmarks(tmp_path, args.keys, args.requests, args.jobs)
        failures = enforce_gates(report)
        if failures:
            print(f"\n{failures} serving gate(s) failed — not writing {out}")
            return 1
        out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"written to {out}")
        return 0


if __name__ == "__main__":
    sys.exit(main())
