"""Opt-in serving-gate check (``pytest -m bench``).

Deselected by default (see ``pytest.ini``): latency gates belong in a
quiet environment, not in tier-1.  The test shells out to the same
entry point as ``make bench-serve`` so the two paths cannot drift.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_serving_gates_hold():
    """Cache speedup and faulted-saturation p99 stay within the gates
    committed alongside BENCH_serve.json."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    proc = subprocess.run(
        [sys.executable, "-m", "benchmarks.bench_serve", "--check"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, (
        f"serving gate regression:\n{proc.stdout}\n{proc.stderr}"
    )
