"""Opt-in benchmark-regression gate (``pytest -m bench``).

Deselected by default (see ``pytest.ini``): timing checks belong in a
quiet environment, not in tier-1.  The test shells out to the same
entry point as ``make bench-regress`` so the two paths cannot drift.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_kernels_within_committed_budget():
    """Current kernel timings stay within 25% of BENCH_kernels.json."""
    if not (REPO_ROOT / "BENCH_kernels.json").exists():
        pytest.skip("no committed BENCH_kernels.json")
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    proc = subprocess.run(
        [sys.executable, "-m", "benchmarks.bench_regress", "--check"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, (
        f"kernel benchmark regression:\n{proc.stdout}\n{proc.stderr}"
    )
