"""Tests for the row-net, column-net, and fine-grain models.

The central invariant (tested property-based): for any vertex
partitioning, the connectivity-1 cut of the model hypergraph equals the
communication volume of the mapped nonzero partitioning *restricted to the
dimension(s) the model can cut*:

* row-net: cut == total volume (columns are never cut by construction);
* column-net: cut == total volume (rows never cut);
* fine-grain: cut == total volume, always.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.volume import communication_volume, row_col_lambdas
from repro.errors import PartitioningError
from repro.hypergraph.metrics import connectivity_volume
from repro.hypergraph.models import (
    column_net_model,
    fine_grain_model,
    row_net_model,
)
from tests.conftest import sparse_matrices


class TestRowNetModel:
    def test_dimensions(self, paper_matrix):
        mdl = row_net_model(paper_matrix)
        assert mdl.hypergraph.nverts == paper_matrix.ncols  # n vertices
        assert mdl.hypergraph.nnets == paper_matrix.nrows  # m nets

    def test_vertex_weights_are_column_counts(self, paper_matrix):
        mdl = row_net_model(paper_matrix)
        np.testing.assert_array_equal(
            mdl.hypergraph.vwgt, paper_matrix.nnz_per_col()
        )

    def test_net_contents(self, tiny_square):
        mdl = row_net_model(tiny_square)
        for i in range(tiny_square.nrows):
            pins = set(mdl.hypergraph.net_pins(i).tolist())
            expected = set(
                tiny_square.cols[tiny_square.rows == i].tolist()
            )
            assert pins == expected

    def test_mapper_column_assignment(self, paper_matrix):
        mdl = row_net_model(paper_matrix)
        vparts = np.arange(mdl.hypergraph.nverts) % 2
        nz = mdl.nonzero_parts(vparts)
        np.testing.assert_array_equal(nz, vparts[paper_matrix.cols])

    def test_columns_never_cut(self, paper_matrix, rng):
        mdl = row_net_model(paper_matrix)
        vparts = rng.integers(0, 2, size=mdl.hypergraph.nverts)
        nz = mdl.nonzero_parts(vparts)
        _, col_l = row_col_lambdas(paper_matrix, nz)
        assert (col_l <= 1).all()

    def test_mapper_rejects_wrong_shape(self, paper_matrix):
        mdl = row_net_model(paper_matrix)
        with pytest.raises(PartitioningError):
            mdl.nonzero_parts(np.zeros(3, dtype=np.int64))


class TestColumnNetModel:
    def test_dimensions(self, paper_matrix):
        mdl = column_net_model(paper_matrix)
        assert mdl.hypergraph.nverts == paper_matrix.nrows
        assert mdl.hypergraph.nnets == paper_matrix.ncols

    def test_transpose_duality(self, paper_matrix):
        """column-net of A == row-net of A^T structurally."""
        a_model = column_net_model(paper_matrix)
        t_model = row_net_model(paper_matrix.T)
        np.testing.assert_array_equal(
            a_model.hypergraph.xpins, t_model.hypergraph.xpins
        )
        np.testing.assert_array_equal(
            np.sort(a_model.hypergraph.pins),
            np.sort(t_model.hypergraph.pins),
        )

    def test_rows_never_cut(self, paper_matrix, rng):
        mdl = column_net_model(paper_matrix)
        vparts = rng.integers(0, 2, size=mdl.hypergraph.nverts)
        nz = mdl.nonzero_parts(vparts)
        row_l, _ = row_col_lambdas(paper_matrix, nz)
        assert (row_l <= 1).all()


class TestFineGrainModel:
    def test_dimensions(self, paper_matrix):
        mdl = fine_grain_model(paper_matrix)
        assert mdl.hypergraph.nverts == paper_matrix.nnz
        assert mdl.hypergraph.nnets == (
            paper_matrix.nrows + paper_matrix.ncols
        )

    def test_unit_weights(self, paper_matrix):
        mdl = fine_grain_model(paper_matrix)
        assert (mdl.hypergraph.vwgt == 1).all()

    def test_every_vertex_in_two_nets(self, paper_matrix):
        mdl = fine_grain_model(paper_matrix)
        assert (mdl.hypergraph.vertex_degrees() == 2).all()

    def test_mapper_is_identity(self, paper_matrix, rng):
        mdl = fine_grain_model(paper_matrix)
        vparts = rng.integers(0, 3, size=paper_matrix.nnz)
        np.testing.assert_array_equal(mdl.nonzero_parts(vparts), vparts)


class TestCutEqualsVolume:
    """The load-bearing property: model cut == matrix volume."""

    @given(sparse_matrices(), st.randoms(use_true_random=False))
    def test_row_net(self, a, rnd):
        mdl = row_net_model(a)
        vparts = np.array(
            [rnd.randint(0, 2) for _ in range(mdl.hypergraph.nverts)]
        )
        cut = connectivity_volume(mdl.hypergraph, vparts)
        vol = communication_volume(a, mdl.nonzero_parts(vparts))
        assert cut == vol

    @given(sparse_matrices(), st.randoms(use_true_random=False))
    def test_column_net(self, a, rnd):
        mdl = column_net_model(a)
        vparts = np.array(
            [rnd.randint(0, 2) for _ in range(mdl.hypergraph.nverts)]
        )
        cut = connectivity_volume(mdl.hypergraph, vparts)
        vol = communication_volume(a, mdl.nonzero_parts(vparts))
        assert cut == vol

    @given(sparse_matrices(), st.randoms(use_true_random=False))
    def test_fine_grain(self, a, rnd):
        mdl = fine_grain_model(a)
        vparts = np.array([rnd.randint(0, 3) for _ in range(a.nnz)])
        cut = connectivity_volume(mdl.hypergraph, vparts)
        vol = communication_volume(a, mdl.nonzero_parts(vparts))
        assert cut == vol

    def test_paper_matrix_example(self, paper_matrix):
        """Hand-checked: split columns of the 3x6 matrix in half."""
        mdl = row_net_model(paper_matrix)
        vparts = np.array([0, 0, 0, 1, 1, 1])
        nz = mdl.nonzero_parts(vparts)
        # Every row has nonzeros in both column halves -> each row cut once.
        assert communication_volume(paper_matrix, nz) == 3
        assert connectivity_volume(mdl.hypergraph, vparts) == 3
