"""Tests for hypergraph cut metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PartitioningError
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.metrics import (
    connectivity_volume,
    cut_net_count,
    net_lambdas,
    part_weights,
)


@pytest.fixture
def h() -> Hypergraph:
    return Hypergraph.from_net_lists(
        5, [[0, 1, 2], [2, 3], [3, 4], [0, 4]], ncost=[1, 2, 1, 3]
    )


class TestNetLambdas:
    def test_all_one_part(self, h):
        parts = np.zeros(5, dtype=np.int64)
        assert net_lambdas(h, parts).tolist() == [1, 1, 1, 1]

    def test_bipartition(self, h):
        parts = np.array([0, 0, 1, 1, 1])
        assert net_lambdas(h, parts).tolist() == [2, 1, 1, 2]

    def test_three_parts(self, h):
        parts = np.array([0, 1, 2, 0, 1])
        assert net_lambdas(h, parts).tolist() == [3, 2, 2, 2]

    def test_empty_net(self):
        hh = Hypergraph.from_net_lists(2, [[], [0, 1]])
        assert net_lambdas(hh, np.array([0, 1])).tolist() == [0, 2]

    def test_wrong_shape(self, h):
        with pytest.raises(PartitioningError):
            net_lambdas(h, np.zeros(3, dtype=np.int64))

    def test_negative_part(self, h):
        with pytest.raises(PartitioningError):
            net_lambdas(h, np.array([0, 0, 0, 0, -1]))


class TestConnectivityVolume:
    def test_uncut_is_zero(self, h):
        assert connectivity_volume(h, np.zeros(5, dtype=np.int64)) == 0

    def test_costs_weighted(self, h):
        parts = np.array([0, 0, 1, 1, 1])
        # nets 0 (cost 1) and 3 (cost 3) are cut
        assert connectivity_volume(h, parts) == 4

    def test_kway_lambda_minus_one(self, h):
        parts = np.array([0, 1, 2, 0, 1])
        # lambdas [3,2,2,2], costs [1,2,1,3] -> 2*1+1*2+1*1+1*3 = 8
        assert connectivity_volume(h, parts) == 8

    def test_cut_net_count(self, h):
        parts = np.array([0, 0, 1, 1, 1])
        assert cut_net_count(h, parts) == 2

    @given(st.lists(st.integers(0, 2), min_size=5, max_size=5))
    def test_volume_nonnegative(self, parts_list):
        hh = Hypergraph.from_net_lists(
            5, [[0, 1, 2], [2, 3], [3, 4], [0, 4]]
        )
        assert connectivity_volume(hh, np.array(parts_list)) >= 0


class TestPartWeights:
    def test_unit_weights(self, h):
        parts = np.array([0, 0, 1, 1, 1])
        assert part_weights(h, parts, 2).tolist() == [2, 3]

    def test_custom_weights(self):
        hh = Hypergraph.from_net_lists(3, [[0, 1, 2]], vwgt=[5, 2, 1])
        assert part_weights(hh, np.array([1, 0, 1]), 2).tolist() == [2, 6]

    def test_empty_parts_zero(self, h):
        w = part_weights(h, np.zeros(5, dtype=np.int64), 4)
        assert w.tolist() == [5, 0, 0, 0]

    def test_part_out_of_range(self, h):
        with pytest.raises(PartitioningError):
            part_weights(h, np.array([0, 0, 0, 0, 5]), 2)
