"""Tests for the CSR hypergraph structure."""

import numpy as np
import pytest

from repro.errors import HypergraphError
from repro.hypergraph.hypergraph import Hypergraph


@pytest.fixture
def small_h() -> Hypergraph:
    """4 vertices; nets {0,1}, {1,2,3}, {0,3}."""
    return Hypergraph.from_net_lists(4, [[0, 1], [1, 2, 3], [0, 3]])


class TestConstruction:
    def test_basic(self, small_h):
        assert small_h.nverts == 4
        assert small_h.nnets == 3
        assert small_h.npins == 7

    def test_net_sizes(self, small_h):
        assert small_h.net_sizes().tolist() == [2, 3, 2]

    def test_net_pins(self, small_h):
        assert small_h.net_pins(1).tolist() == [1, 2, 3]

    def test_net_ids(self, small_h):
        assert small_h.net_ids().tolist() == [0, 0, 1, 1, 1, 2, 2]
        # Cached (hypergraphs are immutable) and read-only.
        assert small_h.net_ids() is small_h.net_ids()
        assert not small_h.net_ids().flags.writeable

    def test_net_ids_with_empty_nets(self):
        h = Hypergraph.from_net_lists(3, [[], [0, 1], [], [2]])
        assert h.net_ids().tolist() == [1, 1, 3]

    def test_default_weights_and_costs(self, small_h):
        assert small_h.vwgt.tolist() == [1, 1, 1, 1]
        assert small_h.ncost.tolist() == [1, 1, 1]
        assert small_h.total_weight() == 4

    def test_custom_weights(self):
        h = Hypergraph.from_net_lists(2, [[0, 1]], vwgt=[5, 7])
        assert h.total_weight() == 12

    def test_empty_nets_allowed(self):
        h = Hypergraph.from_net_lists(3, [[], [0, 1]])
        assert h.net_sizes().tolist() == [0, 2]

    def test_isolated_vertices_allowed(self):
        h = Hypergraph.from_net_lists(5, [[0, 1]])
        assert h.vertex_degrees().tolist() == [1, 1, 0, 0, 0]

    def test_no_nets(self):
        h = Hypergraph(3, np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert h.nnets == 0

    def test_duplicate_pin_rejected(self):
        with pytest.raises(HypergraphError, match="duplicate"):
            Hypergraph.from_net_lists(3, [[0, 0, 1]])

    def test_pin_out_of_range(self):
        with pytest.raises(HypergraphError, match="out of range"):
            Hypergraph.from_net_lists(2, [[0, 5]])

    def test_negative_weight_rejected(self):
        with pytest.raises(HypergraphError, match="non-negative"):
            Hypergraph.from_net_lists(2, [[0, 1]], vwgt=[1, -1])

    def test_negative_cost_rejected(self):
        with pytest.raises(HypergraphError, match="non-negative"):
            Hypergraph.from_net_lists(2, [[0, 1]], ncost=[-2])

    def test_bad_xpins_monotonicity(self):
        with pytest.raises(HypergraphError):
            Hypergraph(2, np.array([0, 2, 1]), np.array([0, 1]))

    def test_bad_xpins_terminal(self):
        with pytest.raises(HypergraphError):
            Hypergraph(2, np.array([0, 1]), np.array([0, 1]))

    def test_weight_length_mismatch(self):
        with pytest.raises(HypergraphError, match="vwgt"):
            Hypergraph.from_net_lists(3, [[0, 1]], vwgt=[1, 1])

    def test_cost_length_mismatch(self):
        with pytest.raises(HypergraphError, match="ncost"):
            Hypergraph.from_net_lists(3, [[0, 1]], ncost=[1, 1])

    def test_arrays_readonly(self, small_h):
        with pytest.raises(ValueError):
            small_h.pins[0] = 3


class TestTranspose:
    def test_vertex_nets(self, small_h):
        assert sorted(small_h.vertex_nets(0).tolist()) == [0, 2]
        assert sorted(small_h.vertex_nets(1).tolist()) == [0, 1]
        assert sorted(small_h.vertex_nets(3).tolist()) == [1, 2]

    def test_transpose_consistency(self, small_h):
        """v in net n  <=>  n in nets-of-v."""
        for n in range(small_h.nnets):
            for v in small_h.net_pins(n).tolist():
                assert n in small_h.vertex_nets(v).tolist()

    def test_degrees(self, small_h):
        assert small_h.vertex_degrees().tolist() == [2, 2, 1, 2]

    def test_max_vertex_net_cost_unit(self, small_h):
        assert small_h.max_vertex_net_cost() == 2

    def test_max_vertex_net_cost_weighted(self):
        h = Hypergraph.from_net_lists(2, [[0, 1], [0, 1]], ncost=[3, 4])
        assert h.max_vertex_net_cost() == 7
