"""Tests for distributed-matrix / vector-distribution I/O."""

import io

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import MatrixMarketError
from repro.sparse.io_dist import (
    read_distributed_matrix_market,
    read_vector_distribution,
    write_distributed_matrix_market,
    write_vector_distribution,
)
from repro.sparse.matrix import SparseMatrix
from tests.conftest import matrices_with_parts


class TestDistributedMatrix:
    def test_roundtrip(self, tiny_square, rng):
        parts = rng.integers(0, 3, size=tiny_square.nnz)
        buf = io.StringIO()
        write_distributed_matrix_market(tiny_square, parts, 3, buf)
        buf.seek(0)
        back, back_parts, nparts = read_distributed_matrix_market(buf)
        assert back == tiny_square
        assert nparts == 3
        np.testing.assert_array_equal(back_parts, parts)

    def test_file_roundtrip(self, tmp_path, tiny_square, rng):
        parts = rng.integers(0, 2, size=tiny_square.nnz)
        path = tmp_path / "m-P2.mtx"
        write_distributed_matrix_market(tiny_square, parts, 2, path)
        back, back_parts, nparts = read_distributed_matrix_market(path)
        assert back == tiny_square
        np.testing.assert_array_equal(back_parts, parts)

    def test_pstart_block_structure(self, tiny_square):
        parts = np.zeros(tiny_square.nnz, dtype=np.int64)
        parts[:3] = 1
        buf = io.StringIO()
        write_distributed_matrix_market(tiny_square, parts, 2, buf)
        lines = buf.getvalue().splitlines()
        assert lines[0].startswith("%%MatrixMarket distributed-matrix")
        m, n, nnz, p = (int(x) for x in lines[1].split())
        assert (m, n, nnz, p) == (4, 4, tiny_square.nnz, 2)
        pstart = [int(lines[2 + i]) for i in range(3)]
        assert pstart == [0, tiny_square.nnz - 3, tiny_square.nnz]

    def test_empty_part_allowed(self, tiny_square):
        parts = np.zeros(tiny_square.nnz, dtype=np.int64)
        buf = io.StringIO()
        write_distributed_matrix_market(tiny_square, parts, 4, buf)
        buf.seek(0)
        _, back_parts, nparts = read_distributed_matrix_market(buf)
        assert nparts == 4
        assert (back_parts == 0).all()

    def test_values_preserved(self, rng):
        a = SparseMatrix((3, 3), [0, 1, 2], [1, 2, 0], [0.5, -1.25, 3.0])
        buf = io.StringIO()
        write_distributed_matrix_market(a, np.array([0, 1, 0]), 2, buf)
        buf.seek(0)
        back, _, _ = read_distributed_matrix_market(buf)
        np.testing.assert_array_equal(back.vals, a.vals)

    def test_wrong_banner_rejected(self):
        buf = io.StringIO("%%MatrixMarket matrix coordinate real general\n")
        with pytest.raises(MatrixMarketError, match="banner"):
            read_distributed_matrix_market(buf)

    def test_bad_pstart_rejected(self):
        text = (
            "%%MatrixMarket distributed-matrix coordinate real general\n"
            "2 2 2 2\n0\n5\n2\n1 1 1.0\n2 2 1.0\n"
        )
        with pytest.raises(MatrixMarketError, match="Pstart"):
            read_distributed_matrix_market(io.StringIO(text))

    def test_out_of_bounds_entry_rejected(self):
        text = (
            "%%MatrixMarket distributed-matrix coordinate real general\n"
            "2 2 1 1\n0\n1\n3 1 1.0\n"
        )
        with pytest.raises(MatrixMarketError, match="bounds"):
            read_distributed_matrix_market(io.StringIO(text))

    def test_truncated_file_rejected(self):
        text = (
            "%%MatrixMarket distributed-matrix coordinate real general\n"
            "2 2 2 1\n0\n2\n1 1 1.0\n"
        )
        with pytest.raises(MatrixMarketError, match="end of file"):
            read_distributed_matrix_market(io.StringIO(text))

    @settings(max_examples=30, deadline=None)
    @given(matrices_with_parts())
    def test_roundtrip_property(self, case):
        matrix, parts, nparts = case
        buf = io.StringIO()
        write_distributed_matrix_market(matrix, parts, nparts, buf)
        buf.seek(0)
        back, back_parts, back_p = read_distributed_matrix_market(buf)
        assert back == matrix
        assert back_p == nparts
        np.testing.assert_array_equal(back_parts, parts)


class TestVectorDistribution:
    def test_roundtrip(self, rng):
        owner = rng.integers(0, 4, size=10)
        buf = io.StringIO()
        write_vector_distribution(owner, 4, buf)
        buf.seek(0)
        back, nparts = read_vector_distribution(buf)
        assert nparts == 4
        np.testing.assert_array_equal(back, owner)

    def test_empty_vector(self):
        buf = io.StringIO()
        write_vector_distribution(np.array([], dtype=np.int64), 2, buf)
        buf.seek(0)
        back, nparts = read_vector_distribution(buf)
        assert back.size == 0 and nparts == 2

    def test_one_based_in_file(self):
        buf = io.StringIO()
        write_vector_distribution(np.array([0, 1]), 2, buf)
        lines = buf.getvalue().splitlines()
        assert lines[2] == "1 1"
        assert lines[3] == "2 2"

    def test_owner_out_of_range_write(self):
        with pytest.raises(MatrixMarketError):
            write_vector_distribution(np.array([5]), 2, io.StringIO())

    def test_duplicate_index_rejected(self):
        text = (
            "%%MatrixMarket distributed-vector array integer general\n"
            "2 2\n1 1\n1 2\n"
        )
        with pytest.raises(MatrixMarketError, match="duplicate"):
            read_vector_distribution(io.StringIO(text))

    def test_owner_out_of_range_read(self):
        text = (
            "%%MatrixMarket distributed-vector array integer general\n"
            "1 2\n1 3\n"
        )
        with pytest.raises(MatrixMarketError, match="owner"):
            read_vector_distribution(io.StringIO(text))


class TestEndToEnd:
    def test_partition_write_read_simulate(self, tmp_path):
        """Full workflow: partition, persist all artifacts, reload,
        verify the reloaded partitioning simulates identically."""
        from repro import bipartition
        from repro.sparse.generators import erdos_renyi
        from repro.spmv import distribute_vectors, simulate_spmv

        a = erdos_renyi(30, 40, 240, seed=11)
        res = bipartition(a, method="mediumgrain", refine=True, seed=2)
        dist = distribute_vectors(a, res.parts, 2)
        write_distributed_matrix_market(
            a, res.parts, 2, tmp_path / "A-P2.mtx"
        )
        write_vector_distribution(
            dist.input_owner, 2, tmp_path / "A-v2.mtx"
        )
        write_vector_distribution(
            dist.output_owner, 2, tmp_path / "A-u2.mtx"
        )
        back, parts, nparts = read_distributed_matrix_market(
            tmp_path / "A-P2.mtx"
        )
        vin, _ = read_vector_distribution(tmp_path / "A-v2.mtx")
        vout, _ = read_vector_distribution(tmp_path / "A-u2.mtx")
        from repro.spmv.vector_dist import VectorDistribution

        report = simulate_spmv(
            back,
            parts,
            nparts,
            dist=VectorDistribution(vin, vout, nparts),
        )
        assert report.volume == res.volume
