"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse import generators as gen
from repro.sparse.stats import classify_matrix, MatrixClass, pattern_symmetry


class TestErdosRenyi:
    def test_exact_nnz(self):
        a = gen.erdos_renyi(50, 40, 300, seed=1)
        assert a.shape == (50, 40)
        assert a.nnz == 300

    def test_deterministic(self):
        assert gen.erdos_renyi(30, 30, 100, seed=5) == gen.erdos_renyi(
            30, 30, 100, seed=5
        )

    def test_different_seeds_differ(self):
        assert gen.erdos_renyi(30, 30, 100, seed=1) != gen.erdos_renyi(
            30, 30, 100, seed=2
        )

    def test_dense_case(self):
        a = gen.erdos_renyi(4, 4, 16, seed=0)
        assert a.nnz == 16

    def test_nnz_too_large(self):
        with pytest.raises(SparseFormatError):
            gen.erdos_renyi(2, 2, 5, seed=0)

    def test_values_nonzero(self):
        a = gen.erdos_renyi(20, 20, 80, seed=3)
        assert (a.vals != 0).all()


class TestChungLu:
    def test_shape_and_nnz(self):
        a = gen.chung_lu(60, 40, 400, seed=2)
        assert a.shape == (60, 40)
        assert a.nnz == 400

    def test_skewed_degrees(self):
        a = gen.chung_lu(200, 200, 2000, seed=4)
        deg = np.sort(a.nnz_per_row())[::-1]
        # Power-law-ish: the top decile holds well over its uniform share.
        assert deg[:20].sum() > 2 * (2000 / 10)


class TestRmat:
    def test_size(self):
        a = gen.rmat(6, 300, seed=3)
        assert a.shape == (64, 64)
        assert a.nnz == 300

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            gen.rmat(4, 10, seed=0, a=0.9, b=0.2, c=0.2)


class TestGrids:
    def test_grid2d_structure(self):
        a = gen.grid2d_laplacian(4, 5)
        assert a.shape == (20, 20)
        # interior vertices have 5 entries, corners 3
        assert a.nnz == 20 + 2 * (4 * (5 - 1) + (4 - 1) * 5)
        assert classify_matrix(a) == MatrixClass.SYMMETRIC

    def test_grid2d_row_sums_zero(self):
        a = gen.grid2d_laplacian(5, 5)
        # Laplacian row sums: 4 - (#neighbors); only interior rows are 0... so
        # check matvec with the constant vector is >= 0 and 0 at interior.
        u = a.matvec(np.ones(a.ncols))
        grid = u.reshape(5, 5)
        assert np.allclose(grid[1:-1, 1:-1], 0.0)

    def test_grid3d_structure(self):
        a = gen.grid3d_laplacian(3, 3, 3)
        assert a.shape == (27, 27)
        assert classify_matrix(a) == MatrixClass.SYMMETRIC

    def test_grid_1d_degenerate(self):
        a = gen.grid2d_laplacian(1, 4)  # a path
        assert a.nnz == 4 + 2 * 3


class TestBandedBlockArrow:
    def test_banded_within_band(self):
        a = gen.banded(30, 3, 0.5, seed=1)
        assert (np.abs(a.rows - a.cols) <= 3).all()

    def test_banded_full_diagonal(self):
        a = gen.banded(30, 2, 0.3, seed=2)
        diag = (a.rows == a.cols).sum()
        assert diag == 30

    def test_banded_bad_fill(self):
        with pytest.raises(ValueError):
            gen.banded(10, 2, 0.0, seed=0)

    def test_block_diagonal_blocks(self):
        a = gen.block_diagonal(3, 10, 0.5, noise_nnz=0, seed=3)
        assert a.shape == (30, 30)
        # all nonzeros inside diagonal blocks
        assert ((a.rows // 10) == (a.cols // 10)).all()

    def test_block_diagonal_noise(self):
        a = gen.block_diagonal(3, 10, 0.5, noise_nnz=50, seed=3)
        off_block = ((a.rows // 10) != (a.cols // 10)).sum()
        assert off_block > 0

    def test_arrow_symmetric(self):
        a = gen.arrow(50, 2, seed=5)
        assert pattern_symmetry(a) == 1.0

    def test_arrow_dense_border(self):
        a = gen.arrow(50, 1, seed=5)
        assert a.nnz_per_row()[0] == 50
        assert a.nnz_per_col()[0] == 50


class TestRectangularGenerators:
    def test_term_document(self):
        a = gen.term_document(100, 60, 5, 500, seed=6)
        assert a.shape == (100, 60)
        assert a.nnz == 500

    def test_term_document_clustered(self):
        # With zero spread every document stays inside its topic block.
        a = gen.term_document(100, 60, 5, 500, seed=6, topic_spread=0.0)
        bounds = np.linspace(0, 100, 6).astype(int)
        # Count cross-topic entries: should be none.
        doc_topic_ok = 0
        # Every column's rows must fall inside one topic block.
        for j in range(60):
            rows = a.rows[a.cols == j]
            if rows.size == 0:
                continue
            blocks = np.searchsorted(bounds, rows, side="right")
            doc_topic_ok += int(len(set(blocks.tolist())) == 1)
        assert doc_topic_ok >= 55  # allow a couple of boundary artifacts

    def test_bipartite_preferential_heavy_rows(self):
        a = gen.bipartite_preferential(100, 80, 800, seed=7)
        assert a.nnz == 800
        deg = np.sort(a.nnz_per_row())[::-1]
        assert deg[0] > 8 * (800 / 100 / 8)


class TestTransforms:
    def test_symmetrize(self):
        a = gen.erdos_renyi(20, 20, 60, seed=8)
        s = gen.symmetrize(a)
        assert pattern_symmetry(s) == 1.0
        assert s.nnz >= a.nnz

    def test_symmetrize_rejects_rectangular(self):
        with pytest.raises(SparseFormatError):
            gen.symmetrize(gen.erdos_renyi(3, 4, 5, seed=0))

    def test_random_permute_preserves_nnz(self):
        a = gen.banded(40, 2, 0.5, seed=9)
        p = gen.random_permute(a, seed=10)
        assert p.nnz == a.nnz
        assert p.shape == a.shape

    def test_random_permute_changes_pattern(self):
        a = gen.banded(40, 2, 0.5, seed=9)
        p = gen.random_permute(a, seed=10)
        assert p != a


class TestGd97Like:
    def test_dimensions_match_paper(self):
        a = gen.gd97_like()
        assert a.shape == (47, 47)
        assert a.nnz == 264  # exactly as gd97_b in the paper's Fig. 3

    def test_symmetric(self):
        assert pattern_symmetry(gen.gd97_like()) == 1.0

    def test_no_diagonal(self):
        a = gen.gd97_like()
        assert (a.rows != a.cols).all()

    def test_deterministic_default(self):
        assert gen.gd97_like() == gen.gd97_like()
