"""The deterministic k-diagonal generator."""

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse.generators import kdiagonal
from repro.sparse.stats import classify_matrix, MatrixClass


def test_kdiagonal_exact_pattern():
    m = kdiagonal(10, (-2, 0, 3), seed=1)
    assert m.shape == (10, 10)
    # Full diagonals: n - |off| entries each.
    assert m.nnz == (10 - 2) + 10 + (10 - 3)
    offs = np.unique(m.cols - m.rows)
    np.testing.assert_array_equal(offs, [-2, 0, 3])


def test_kdiagonal_pattern_independent_of_seed():
    a = kdiagonal(40, (-5, -1, 0, 1, 5), seed=1)
    b = kdiagonal(40, (-5, -1, 0, 1, 5), seed=2)
    np.testing.assert_array_equal(a.rows, b.rows)
    np.testing.assert_array_equal(a.cols, b.cols)
    assert not np.array_equal(a.vals, b.vals)  # values are seeded


def test_kdiagonal_symmetry_classes():
    sym = kdiagonal(60, (-7, -1, 0, 1, 7), seed=3)
    assert classify_matrix(sym) == MatrixClass.SYMMETRIC
    nonsym = kdiagonal(60, (-3, 0, 2, 7), seed=3)
    assert classify_matrix(nonsym) == MatrixClass.SQUARE_NONSYMMETRIC


def test_kdiagonal_duplicate_offsets_collapse():
    m = kdiagonal(12, (0, 0, 1, 1), seed=0)
    assert m.nnz == 12 + 11


def test_kdiagonal_validation():
    with pytest.raises(SparseFormatError):
        kdiagonal(5, ())
    with pytest.raises(SparseFormatError):
        kdiagonal(5, (0, 5))
