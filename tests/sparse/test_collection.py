"""Tests for the synthetic test-matrix collection."""

import pytest

from repro.errors import EvaluationError
from repro.sparse.collection import (
    TIERS,
    build_collection,
    collection_names,
    load_instance,
)
from repro.sparse.stats import MatrixClass, classify_matrix


class TestRegistry:
    def test_all_three_classes_present_per_tier(self):
        for tier in TIERS:
            classes = {e.matrix_class for e in build_collection(tier=tier)}
            assert classes == set(MatrixClass)

    def test_names_unique(self):
        names = collection_names()
        assert len(names) == len(set(names))

    def test_reasonable_size(self):
        # Comparable spread to the paper's three categories.
        assert len(build_collection()) >= 45

    def test_tier_filter(self):
        small = build_collection(tier="small")
        assert all(e.tier == "small" for e in small)

    def test_max_tier_filter(self):
        upto = build_collection(max_tier="medium")
        assert all(e.tier in ("small", "medium") for e in upto)
        assert len(upto) > len(build_collection(tier="small"))

    def test_class_filter(self):
        recs = build_collection(matrix_class=MatrixClass.RECTANGULAR)
        assert all(
            e.matrix_class == MatrixClass.RECTANGULAR for e in recs
        )

    def test_tier_and_max_tier_exclusive(self):
        with pytest.raises(EvaluationError):
            build_collection(tier="small", max_tier="medium")

    def test_unknown_tier(self):
        with pytest.raises(EvaluationError, match="unknown tier"):
            build_collection(tier="huge")


class TestInstances:
    def test_unknown_name(self):
        with pytest.raises(EvaluationError, match="unknown"):
            load_instance("no_such_matrix")

    def test_deterministic_and_cached(self):
        a = load_instance("sqr_er_s")
        b = load_instance("sqr_er_s")
        assert a is b  # lru_cache

    @pytest.mark.parametrize(
        "entry", build_collection(tier="small"), ids=lambda e: e.name
    )
    def test_small_tier_builds_and_classifies(self, entry):
        matrix = load_instance(entry.name)
        assert classify_matrix(matrix) == entry.matrix_class
        assert matrix.nnz >= 200

    def test_small_tier_nnz_range(self):
        for e in build_collection(tier="small"):
            assert load_instance(e.name).nnz <= 2500

    def test_paper_nnz_floor(self):
        """The paper uses matrices with >= 500 nonzeros; all but the Fig.3
        demo instance respect that floor."""
        for e in build_collection():
            if e.name == "sym_gd97_like":
                continue
            assert load_instance(e.name).nnz >= 500, e.name
